// walinspect: offline dump and verification of durability artifacts.
//
//   walinspect [--verify] [--json] <path>...
//
// Each operand is a WAL file, a checkpoint file, or a storage directory
// containing them (other files inside a directory are skipped). The dump
// lists every WAL entry (seq, entry tag, per-table delta cardinalities)
// and every checkpoint's tables with row counts. With --json the dump is
// one machine-readable JSON document instead:
//   {"clean": bool, "reports": [<one object per operand, see
//   storage/inspect.h>]}
//
// Without --verify the exit code only reflects usability of the operands
// (2 = missing path / not a recognized file). With --verify, exit 1 when
// any inspected file is corrupt or a WAL carries a torn tail — artifacts
// of a *cleanly finished* run must verify clean; a torn tail is evidence
// of an unrepaired crash. CI runs `walinspect --verify` over the storage
// directories the smoke benchmarks leave behind, and `--verify --json`
// where a script consumes the verdict.

#include <cstdio>
#include <string>
#include <vector>

#include "storage/inspect.h"

int main(int argc, char** argv) {
  bool verify = false;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: walinspect [--verify] [--json] <path>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "walinspect: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: walinspect [--verify] [--json] <path>...\n");
    return 2;
  }
  bool all_clean = true;
  std::string reports_json;
  for (const std::string& path : paths) {
    gpivot::Result<gpivot::storage::InspectReport> report =
        gpivot::storage::Inspect(path);
    if (!report.ok()) {
      std::fprintf(stderr, "walinspect: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    if (json) {
      if (!reports_json.empty()) reports_json += ", ";
      reports_json += report->json;
    } else {
      std::fputs(report->text.c_str(), stdout);
    }
    all_clean = all_clean && report->clean;
  }
  if (json) {
    std::printf("{\"clean\": %s, \"reports\": [%s]}\n",
                all_clean ? "true" : "false", reports_json.c_str());
  }
  if (verify && !all_clean) {
    std::fprintf(stderr, "walinspect: verification FAILED\n");
    return 1;
  }
  return 0;
}
