// eventlog_check: validates a GPIVOT epoch event log (JSONL).
//
//   eventlog_check [--require-committed] <events.jsonl>...
//
// Every line must be one strict JSON object of a known record kind —
// epoch record (with outcome/seq/entry), recovery summary, or serve
// install/retire (see tools/eventlog_check.h). With --require-committed,
// each file must additionally contain at least one committed epoch and no
// rolled-back/rejected ones — the contract for fault-free smoke runs.
//
// Exit codes follow bench_diff: 0 = all files valid, 1 = a validation
// failure, 2 = usage error or unreadable file.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/eventlog_check.h"
#include "util/file_io.h"

int main(int argc, char** argv) {
  bool require_committed = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--require-committed") {
      require_committed = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: eventlog_check [--require-committed] "
                   "<events.jsonl>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "eventlog_check: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: eventlog_check [--require-committed] "
                 "<events.jsonl>...\n");
    return 2;
  }
  bool all_ok = true;
  for (const std::string& path : paths) {
    gpivot::Result<std::string> contents = gpivot::ReadFileToString(path);
    if (!contents.ok()) {
      std::fprintf(stderr, "eventlog_check: %s\n",
                   contents.status().ToString().c_str());
      return 2;
    }
    gpivot::tools::EventLogCheckResult result =
        gpivot::tools::CheckEventLog(*contents, require_committed);
    std::printf(
        "%s: %llu record(s): %llu epoch (%llu committed, %llu no-op), "
        "%llu recovery, %llu serve\n",
        path.c_str(), static_cast<unsigned long long>(result.lines),
        static_cast<unsigned long long>(result.epoch_records),
        static_cast<unsigned long long>(result.committed),
        static_cast<unsigned long long>(result.no_ops),
        static_cast<unsigned long long>(result.recovery_records),
        static_cast<unsigned long long>(result.serve_records));
    if (!result.ok) {
      std::fprintf(stderr, "eventlog_check: %s: %s\n", path.c_str(),
                   result.error.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
