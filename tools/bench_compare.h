#ifndef GPIVOT_TOOLS_BENCH_COMPARE_H_
#define GPIVOT_TOOLS_BENCH_COMPARE_H_

#include <string>
#include <vector>

namespace gpivot::tools {

// Exit codes shared by the library and the bench_diff CLI.
inline constexpr int kDiffOk = 0;       // comparable, within tolerance
inline constexpr int kDiffFailed = 1;   // regression or shape mismatch
inline constexpr int kDiffUnusable = 2; // I/O or parse failure

struct BenchDiffOptions {
  // Allowed candidate/baseline wall-time ratio per (strategy, fraction)
  // point. Wall times are inherently noisy; the CI gate uses a generous
  // ratio so only order-of-magnitude regressions (a strategy silently
  // degrading to recompute-like cost) trip it.
  double time_tolerance = 1.5;
  // Skip the wall-time gate entirely and compare only deterministic facts
  // (row counts, counters, cost reports). The gate is also skipped
  // automatically when the two files disagree on num_threads — times from
  // different parallelism are not comparable, the shape facts still are.
  bool shape_only = false;
  // Directory mode: every BENCH_*.json in the baseline must exist in the
  // candidate (missing file = failure). Extra candidate files are noted.
  bool require_all = true;
  // Counters whose values depend on scheduling rather than on the work
  // (matched by prefix) are excluded from the exact-equality check.
  // serve.acquire.* counts reader-side fast-path traffic and serve.retire.*
  // counts versions released at install time — both depend on how reader
  // hazards interleave with the maintenance thread, not on the workload.
  std::vector<std::string> ignore_counter_prefixes = {
      "thread_pool.", "serve.acquire.", "serve.retire."};
};

// Human-readable findings of one comparison run.
struct BenchDiffReport {
  std::vector<std::string> errors;  // cause a nonzero exit
  std::vector<std::string> notes;   // informational only
  std::string ToString() const;
};

// Compares two BENCH_<figure>.json documents. The figure identity
// (figure/scale_factor/seed) must match; per-(strategy, delta_fraction)
// rows must agree exactly on view_rows/delta_rows, on metrics counters
// (minus ignored prefixes) and cost reports when both sides carry them,
// and on wall time within `time_tolerance`. Returns a kDiff* exit code.
int DiffBenchFiles(const std::string& baseline_path,
                   const std::string& candidate_path,
                   const BenchDiffOptions& options, BenchDiffReport* report);

// Compares every BENCH_*.json in `baseline_dir` against its same-named
// counterpart in `candidate_dir`. Returns the worst per-file exit code.
int DiffBenchDirs(const std::string& baseline_dir,
                  const std::string& candidate_dir,
                  const BenchDiffOptions& options, BenchDiffReport* report);

}  // namespace gpivot::tools

#endif  // GPIVOT_TOOLS_BENCH_COMPARE_H_
