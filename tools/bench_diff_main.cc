// bench_diff: the CI bench-regression gate.
//
//   bench_diff [options] <baseline> <candidate>
//
// Each operand is a BENCH_<figure>.json file or a directory of them; a bare
// name that exists under bench/results/ (e.g. "baseline", "parallel") is
// resolved there for convenience. Exit code 0 = within tolerance, 1 =
// regression or shape mismatch, 2 = unusable input.
//
// Options:
//   --time-tolerance=<ratio>  allowed candidate/baseline wall-time ratio
//                             (default 1.5; the gate auto-disables when the
//                             two sides ran with different num_threads)
//   --shape-only              never gate on wall time, compare only
//                             deterministic facts
//   --allow-missing           directory mode: tolerate baseline figures
//                             absent from the candidate

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "tools/bench_compare.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff [--time-tolerance=<ratio>] [--shape-only]\n"
      "                  [--allow-missing] <baseline> <candidate>\n"
      "  operands: BENCH_*.json files or directories of them; bare names\n"
      "  are also resolved under bench/results/\n");
}

// A bare operand like "baseline" means bench/results/baseline when that
// exists and the operand itself does not.
std::string Resolve(const std::string& operand) {
  namespace fs = std::filesystem;
  if (fs::exists(operand)) return operand;
  fs::path fallback = fs::path("bench/results") / operand;
  if (fs::exists(fallback)) return fallback.string();
  return operand;
}

}  // namespace

int main(int argc, char** argv) {
  gpivot::tools::BenchDiffOptions options;
  std::string baseline, candidate;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--time-tolerance=", 0) == 0) {
      char* end = nullptr;
      options.time_tolerance =
          std::strtod(arg.c_str() + arg.find('=') + 1, &end);
      if (end == nullptr || *end != '\0' || options.time_tolerance <= 0.0) {
        std::fprintf(stderr, "bench_diff: bad ratio in '%s'\n", arg.c_str());
        return gpivot::tools::kDiffUnusable;
      }
    } else if (arg == "--shape-only") {
      options.shape_only = true;
    } else if (arg == "--allow-missing") {
      options.require_all = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return gpivot::tools::kDiffOk;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown option '%s'\n", arg.c_str());
      Usage();
      return gpivot::tools::kDiffUnusable;
    } else if (baseline.empty()) {
      baseline = arg;
    } else if (candidate.empty()) {
      candidate = arg;
    } else {
      Usage();
      return gpivot::tools::kDiffUnusable;
    }
  }
  if (baseline.empty() || candidate.empty()) {
    Usage();
    return gpivot::tools::kDiffUnusable;
  }
  baseline = Resolve(baseline);
  candidate = Resolve(candidate);

  gpivot::tools::BenchDiffReport report;
  int rc;
  if (std::filesystem::is_directory(baseline)) {
    rc = gpivot::tools::DiffBenchDirs(baseline, candidate, options, &report);
  } else {
    rc = gpivot::tools::DiffBenchFiles(baseline, candidate, options, &report);
  }
  std::string rendered = report.ToString();
  if (!rendered.empty()) std::fputs(rendered.c_str(), stderr);
  std::printf("bench_diff: %s vs %s -> %s\n", baseline.c_str(),
              candidate.c_str(),
              rc == gpivot::tools::kDiffOk ? "OK"
              : rc == gpivot::tools::kDiffFailed ? "REGRESSION"
                                                 : "UNUSABLE");
  return rc;
}
