#include "tools/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json_util.h"

namespace gpivot::tools {

namespace {

using obs::JsonValue;

std::string Fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return !in.bad();
}

// Structural equality; object members are order-sensitive, which is exact
// for documents our own deterministic writers produced.
bool JsonEquals(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.bool_value == b.bool_value;
    case JsonValue::Kind::kNumber:
      return a.number_value == b.number_value;
    case JsonValue::Kind::kString:
      return a.string_value == b.string_value;
    case JsonValue::Kind::kArray:
      return a.array.size() == b.array.size() &&
             std::equal(a.array.begin(), a.array.end(), b.array.begin(),
                        JsonEquals);
    case JsonValue::Kind::kObject:
      if (a.object.size() != b.object.size()) return false;
      for (size_t i = 0; i < a.object.size(); ++i) {
        if (a.object[i].first != b.object[i].first ||
            !JsonEquals(a.object[i].second, b.object[i].second)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

double NumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

std::string StringOr(const JsonValue* value, const std::string& fallback) {
  return value != nullptr && value->is_string() ? value->string_value
                                                : fallback;
}

// Key of one measurement row within a figure.
std::string RowKey(const JsonValue& row) {
  return Fmt("%s @%.4f", StringOr(row.Find("strategy"), "?").c_str(),
             NumberOr(row.Find("delta_fraction"), -1.0));
}

bool CounterIgnored(const std::string& name,
                    const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// Exact comparison of the "counters" object inside a row's metrics.
void DiffCounters(const std::string& where, const JsonValue& base,
                  const JsonValue& cand, const BenchDiffOptions& options,
                  BenchDiffReport* report) {
  for (const auto& [name, value] : base.object) {
    if (CounterIgnored(name, options.ignore_counter_prefixes)) continue;
    const JsonValue* other = cand.Find(name);
    if (other == nullptr) {
      report->errors.push_back(
          Fmt("%s: counter '%s' missing from candidate", where.c_str(),
              name.c_str()));
    } else if (!JsonEquals(value, *other)) {
      report->errors.push_back(Fmt(
          "%s: counter '%s' changed: %.0f -> %.0f", where.c_str(),
          name.c_str(), value.number_value, other->number_value));
    }
  }
  for (const auto& [name, value] : cand.object) {
    (void)value;
    if (CounterIgnored(name, options.ignore_counter_prefixes)) continue;
    if (base.Find(name) == nullptr) {
      report->errors.push_back(Fmt("%s: counter '%s' new in candidate",
                                   where.c_str(), name.c_str()));
    }
  }
}

void DiffRow(const std::string& where, const JsonValue& base,
             const JsonValue& cand, const BenchDiffOptions& options,
             bool gate_wall_time, BenchDiffReport* report) {
  // Deterministic shape facts first: these must match exactly.
  for (const char* field : {"view_rows", "delta_rows"}) {
    double b = NumberOr(base.Find(field), -1.0);
    double c = NumberOr(cand.Find(field), -1.0);
    if (b != c) {
      report->errors.push_back(Fmt("%s: %s changed: %.0f -> %.0f",
                                   where.c_str(), field, b, c));
    }
  }
  const JsonValue* base_metrics = base.Find("metrics");
  const JsonValue* cand_metrics = cand.Find("metrics");
  if (base_metrics != nullptr && cand_metrics != nullptr) {
    const JsonValue* base_counters = base_metrics->Find("counters");
    const JsonValue* cand_counters = cand_metrics->Find("counters");
    if (base_counters != nullptr && cand_counters != nullptr) {
      DiffCounters(where, *base_counters, *cand_counters, options, report);
    }
  } else if (base_metrics != nullptr || cand_metrics != nullptr) {
    report->notes.push_back(
        Fmt("%s: metrics present on only one side; counter check skipped",
            where.c_str()));
  }
  const JsonValue* base_cost = base.Find("cost");
  const JsonValue* cand_cost = cand.Find("cost");
  if (base_cost != nullptr && cand_cost != nullptr) {
    if (!JsonEquals(*base_cost, *cand_cost)) {
      report->errors.push_back(
          Fmt("%s: per-node cost report changed", where.c_str()));
    }
  } else if (base_cost != nullptr || cand_cost != nullptr) {
    report->notes.push_back(
        Fmt("%s: cost report present on only one side; check skipped",
            where.c_str()));
  }
  if (!gate_wall_time) return;
  // Medians are steadier than means across reps; fall back for old files.
  double b = NumberOr(base.Find("wall_ms_median"),
                      NumberOr(base.Find("wall_ms"), 0.0));
  double c = NumberOr(cand.Find("wall_ms_median"),
                      NumberOr(cand.Find("wall_ms"), 0.0));
  if (b > 0.0 && c > b * options.time_tolerance) {
    report->errors.push_back(
        Fmt("%s: wall time regressed %.4f -> %.4f ms (%.2fx > %.2fx "
            "tolerance)",
            where.c_str(), b, c, c / b, options.time_tolerance));
  }
}

}  // namespace

std::string BenchDiffReport::ToString() const {
  std::string out;
  for (const std::string& error : errors) out += "FAIL " + error + "\n";
  for (const std::string& note : notes) out += "note " + note + "\n";
  return out;
}

int DiffBenchFiles(const std::string& baseline_path,
                   const std::string& candidate_path,
                   const BenchDiffOptions& options, BenchDiffReport* report) {
  std::string base_text, cand_text;
  if (!ReadFile(baseline_path, &base_text)) {
    report->errors.push_back(Fmt("cannot read %s", baseline_path.c_str()));
    return kDiffUnusable;
  }
  if (!ReadFile(candidate_path, &cand_text)) {
    report->errors.push_back(Fmt("cannot read %s", candidate_path.c_str()));
    return kDiffUnusable;
  }
  std::string error;
  std::optional<JsonValue> base = obs::ParseJson(base_text, &error);
  if (!base.has_value()) {
    report->errors.push_back(
        Fmt("%s: %s", baseline_path.c_str(), error.c_str()));
    return kDiffUnusable;
  }
  std::optional<JsonValue> cand = obs::ParseJson(cand_text, &error);
  if (!cand.has_value()) {
    report->errors.push_back(
        Fmt("%s: %s", candidate_path.c_str(), error.c_str()));
    return kDiffUnusable;
  }

  std::string figure = StringOr(base->Find("figure"), "?");
  size_t before = report->errors.size();
  // Identity: the two files must describe the same experiment.
  if (figure != StringOr(cand->Find("figure"), "?")) {
    report->errors.push_back(
        Fmt("%s: figure mismatch ('%s' vs '%s')", baseline_path.c_str(),
            figure.c_str(), StringOr(cand->Find("figure"), "?").c_str()));
    return kDiffFailed;
  }
  for (const char* field : {"scale_factor", "seed"}) {
    double b = NumberOr(base->Find(field), -1.0);
    double c = NumberOr(cand->Find(field), -1.0);
    if (b != c) {
      report->errors.push_back(Fmt("%s: %s mismatch (%g vs %g)",
                                   figure.c_str(), field, b, c));
    }
  }
  if (report->errors.size() != before) return kDiffFailed;

  bool gate_wall_time = !options.shape_only;
  double base_threads = NumberOr(base->Find("num_threads"), -1.0);
  double cand_threads = NumberOr(cand->Find("num_threads"), -1.0);
  if (gate_wall_time && base_threads != cand_threads) {
    gate_wall_time = false;
    report->notes.push_back(
        Fmt("%s: num_threads differ (%.0f vs %.0f); wall-time gate skipped",
            figure.c_str(), base_threads, cand_threads));
  }
  // Batch width changes timings the same way thread count does; rows and
  // counters must still match exactly. Files predating the field read as
  // -1 on both sides and stay comparable.
  double base_chunk = NumberOr(base->Find("vector_chunk_size"), -1.0);
  double cand_chunk = NumberOr(cand->Find("vector_chunk_size"), -1.0);
  if (gate_wall_time && base_chunk != cand_chunk) {
    gate_wall_time = false;
    report->notes.push_back(Fmt(
        "%s: vector_chunk_size differ (%.0f vs %.0f); wall-time gate skipped",
        figure.c_str(), base_chunk, cand_chunk));
  }
  // Shard count is the third timing-only knob: artifacts are byte-identical
  // across shard counts by design, so rows and counters still gate, but
  // comparing wall time across different GPIVOT_SHARDS would flag the
  // speedup sharding exists to produce. Files predating the field read as
  // -1 on both sides and stay comparable.
  double base_shards = NumberOr(base->Find("num_shards"), -1.0);
  double cand_shards = NumberOr(cand->Find("num_shards"), -1.0);
  if (gate_wall_time && base_shards != cand_shards) {
    gate_wall_time = false;
    report->notes.push_back(
        Fmt("%s: num_shards differ (%.0f vs %.0f); wall-time gate skipped",
            figure.c_str(), base_shards, cand_shards));
  }

  const JsonValue* base_rows = base->Find("results");
  const JsonValue* cand_rows = cand->Find("results");
  if (base_rows == nullptr || !base_rows->is_array() || cand_rows == nullptr ||
      !cand_rows->is_array()) {
    report->errors.push_back(
        Fmt("%s: missing results array", figure.c_str()));
    return kDiffUnusable;
  }
  for (const JsonValue& row : base_rows->array) {
    std::string key = RowKey(row);
    const JsonValue* match = nullptr;
    for (const JsonValue& other : cand_rows->array) {
      if (RowKey(other) == key) {
        match = &other;
        break;
      }
    }
    if (match == nullptr) {
      report->errors.push_back(Fmt("%s %s: missing from candidate",
                                   figure.c_str(), key.c_str()));
      continue;
    }
    DiffRow(Fmt("%s %s", figure.c_str(), key.c_str()), row, *match, options,
            gate_wall_time, report);
  }
  for (const JsonValue& row : cand_rows->array) {
    std::string key = RowKey(row);
    bool found = false;
    for (const JsonValue& other : base_rows->array) {
      if (RowKey(other) == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      report->notes.push_back(Fmt("%s %s: new measurement (no baseline)",
                                  figure.c_str(), key.c_str()));
    }
  }
  return report->errors.size() == before ? kDiffOk : kDiffFailed;
}

int DiffBenchDirs(const std::string& baseline_dir,
                  const std::string& candidate_dir,
                  const BenchDiffOptions& options, BenchDiffReport* report) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> names;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(baseline_dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json") {
      names.push_back(name);
    }
  }
  if (ec) {
    report->errors.push_back(
        Fmt("cannot list %s: %s", baseline_dir.c_str(),
            ec.message().c_str()));
    return kDiffUnusable;
  }
  if (names.empty()) {
    report->errors.push_back(
        Fmt("no BENCH_*.json files in %s", baseline_dir.c_str()));
    return kDiffUnusable;
  }
  std::sort(names.begin(), names.end());
  int worst = kDiffOk;
  for (const std::string& name : names) {
    fs::path candidate = fs::path(candidate_dir) / name;
    if (!fs::exists(candidate)) {
      if (options.require_all) {
        report->errors.push_back(
            Fmt("%s: missing from %s", name.c_str(), candidate_dir.c_str()));
        worst = std::max(worst, kDiffFailed);
      } else {
        report->notes.push_back(
            Fmt("%s: missing from %s (skipped)", name.c_str(),
                candidate_dir.c_str()));
      }
      continue;
    }
    int rc = DiffBenchFiles((fs::path(baseline_dir) / name).string(),
                            candidate.string(), options, report);
    worst = std::max(worst, rc);
  }
  for (const fs::directory_entry& entry :
       fs::directory_iterator(candidate_dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json" &&
        std::find(names.begin(), names.end(), name) == names.end()) {
      report->notes.push_back(
          Fmt("%s: only in %s", name.c_str(), candidate_dir.c_str()));
    }
  }
  return worst;
}

}  // namespace gpivot::tools
