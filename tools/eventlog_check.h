#ifndef GPIVOT_TOOLS_EVENTLOG_CHECK_H_
#define GPIVOT_TOOLS_EVENTLOG_CHECK_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace gpivot::tools {

// Validation result for one event-log document (the JSONL file
// GPIVOT_EVENT_LOG points at). `ok` is false on the first malformed line;
// `error` then says which line and why. Counts cover the whole file so a
// caller can also assert on volume ("at least one committed epoch").
struct EventLogCheckResult {
  bool ok = true;
  std::string error;
  uint64_t lines = 0;
  uint64_t epoch_records = 0;   // records with an "outcome" member
  uint64_t committed = 0;       // ... of those, outcome == "committed"
  uint64_t no_ops = 0;          // ... outcome == "no_op"
  uint64_t recovery_records = 0;  // {"recovery": {...}} (recovery summary)
  uint64_t serve_records = 0;     // {"serve": "install"|"retire", ...}
};

// Validates `contents` line by line. Every line must be one strict JSON
// object of a known record kind:
//   - epoch record: has "outcome" (committed / rolled_back / rejected /
//     no_op), a numeric "seq", and a string "entry"
//   - recovery summary: has "recovery" holding an object with "epoch_seq"
//   - serve record: has "serve" equal to "install" (with "seq" and a
//     "views" array) or "retire" (with "view" and "seq")
// Anything else — unparseable line, unknown shape, bad outcome — fails.
//
// With `require_committed`, additionally fail unless at least one epoch
// record committed and no epoch record rolled back or was rejected (the
// smoke benches run fault-free, so any non-committed outcome there is a
// regression).
EventLogCheckResult CheckEventLog(std::string_view contents,
                                  bool require_committed);

}  // namespace gpivot::tools

#endif  // GPIVOT_TOOLS_EVENTLOG_CHECK_H_
