#include "tools/eventlog_check.h"

#include <optional>

#include "obs/json_util.h"
#include "util/string_util.h"

namespace gpivot::tools {

namespace {

// Sets the failure on the first bad line only: one clear diagnosis beats a
// flood of knock-on errors from the same malformed file.
void Fail(EventLogCheckResult* result, uint64_t line_no,
          const std::string& why) {
  if (!result->ok) return;
  result->ok = false;
  result->error = StrCat("line ", line_no, ": ", why);
}

void CheckLine(std::string_view line, uint64_t line_no,
               EventLogCheckResult* result) {
  std::string parse_error;
  std::optional<obs::JsonValue> parsed =
      obs::ParseJson(line, &parse_error);
  if (!parsed.has_value()) {
    Fail(result, line_no, StrCat("not valid JSON (", parse_error, ")"));
    return;
  }
  if (!parsed->is_object()) {
    Fail(result, line_no, "record is not a JSON object");
    return;
  }

  if (const obs::JsonValue* recovery = parsed->Find("recovery");
      recovery != nullptr) {
    ++result->recovery_records;
    if (!recovery->is_object() || recovery->Find("epoch_seq") == nullptr) {
      Fail(result, line_no,
           "recovery record must hold an object with \"epoch_seq\"");
    }
    return;
  }

  if (const obs::JsonValue* serve = parsed->Find("serve"); serve != nullptr) {
    ++result->serve_records;
    if (!serve->is_string()) {
      Fail(result, line_no, "\"serve\" must be a string");
      return;
    }
    if (serve->string_value == "install") {
      const obs::JsonValue* views = parsed->Find("views");
      if (parsed->Find("seq") == nullptr || views == nullptr ||
          !views->is_array()) {
        Fail(result, line_no,
             "serve install record needs \"seq\" and a \"views\" array");
      }
    } else if (serve->string_value == "retire") {
      if (parsed->Find("view") == nullptr || parsed->Find("seq") == nullptr) {
        Fail(result, line_no,
             "serve retire record needs \"view\" and \"seq\"");
      }
    } else {
      Fail(result, line_no,
           StrCat("unknown serve record kind '", serve->string_value, "'"));
    }
    return;
  }

  const obs::JsonValue* outcome = parsed->Find("outcome");
  if (outcome == nullptr) {
    Fail(result, line_no,
         "unknown record kind (no \"outcome\", \"recovery\", or \"serve\")");
    return;
  }
  ++result->epoch_records;
  if (!outcome->is_string()) {
    Fail(result, line_no, "\"outcome\" must be a string");
    return;
  }
  const std::string& value = outcome->string_value;
  if (value == "committed") {
    ++result->committed;
  } else if (value == "no_op") {
    ++result->no_ops;
  } else if (value != "rolled_back" && value != "rejected") {
    Fail(result, line_no, StrCat("unknown outcome '", value, "'"));
    return;
  }
  const obs::JsonValue* seq = parsed->Find("seq");
  if (seq == nullptr || !seq->is_number()) {
    Fail(result, line_no, "epoch record needs a numeric \"seq\"");
    return;
  }
  const obs::JsonValue* entry = parsed->Find("entry");
  if (entry == nullptr || !entry->is_string()) {
    Fail(result, line_no, "epoch record needs a string \"entry\"");
  }
}

}  // namespace

EventLogCheckResult CheckEventLog(std::string_view contents,
                                  bool require_committed) {
  EventLogCheckResult result;
  size_t start = 0;
  uint64_t line_no = 0;
  while (start < contents.size()) {
    size_t end = contents.find('\n', start);
    if (end == std::string_view::npos) end = contents.size();
    std::string_view line = contents.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;  // tolerate a trailing newline only
    ++result.lines;
    CheckLine(line, line_no, &result);
  }
  if (result.ok && require_committed) {
    uint64_t failed =
        result.epoch_records - result.committed - result.no_ops;
    if (result.committed == 0) {
      result.ok = false;
      result.error = "no committed epoch record found";
    } else if (failed > 0) {
      result.ok = false;
      result.error = StrCat(failed,
                            " epoch record(s) rolled back or were rejected");
    }
  }
  return result;
}

}  // namespace gpivot::tools
