file(REMOVE_RECURSE
  "libgpivot_rewrite.a"
)
