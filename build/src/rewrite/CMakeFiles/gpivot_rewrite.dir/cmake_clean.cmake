file(REMOVE_RECURSE
  "CMakeFiles/gpivot_rewrite.dir/combine.cc.o"
  "CMakeFiles/gpivot_rewrite.dir/combine.cc.o.d"
  "CMakeFiles/gpivot_rewrite.dir/pullup.cc.o"
  "CMakeFiles/gpivot_rewrite.dir/pullup.cc.o.d"
  "CMakeFiles/gpivot_rewrite.dir/pushdown.cc.o"
  "CMakeFiles/gpivot_rewrite.dir/pushdown.cc.o.d"
  "CMakeFiles/gpivot_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/gpivot_rewrite.dir/rewriter.cc.o.d"
  "CMakeFiles/gpivot_rewrite.dir/unpivot_rules.cc.o"
  "CMakeFiles/gpivot_rewrite.dir/unpivot_rules.cc.o.d"
  "libgpivot_rewrite.a"
  "libgpivot_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
