# Empty compiler generated dependencies file for gpivot_rewrite.
# This may be replaced when dependencies are built.
