
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/combine.cc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/combine.cc.o" "gcc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/combine.cc.o.d"
  "/root/repo/src/rewrite/pullup.cc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/pullup.cc.o" "gcc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/pullup.cc.o.d"
  "/root/repo/src/rewrite/pushdown.cc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/pushdown.cc.o" "gcc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/pushdown.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/rewriter.cc.o" "gcc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/rewriter.cc.o.d"
  "/root/repo/src/rewrite/unpivot_rules.cc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/unpivot_rules.cc.o" "gcc" "src/rewrite/CMakeFiles/gpivot_rewrite.dir/unpivot_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/gpivot_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpivot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gpivot_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/gpivot_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/gpivot_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpivot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
