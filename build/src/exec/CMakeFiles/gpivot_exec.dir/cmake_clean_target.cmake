file(REMOVE_RECURSE
  "libgpivot_exec.a"
)
