# Empty compiler generated dependencies file for gpivot_exec.
# This may be replaced when dependencies are built.
