
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/basic_ops.cc" "src/exec/CMakeFiles/gpivot_exec.dir/basic_ops.cc.o" "gcc" "src/exec/CMakeFiles/gpivot_exec.dir/basic_ops.cc.o.d"
  "/root/repo/src/exec/group_by.cc" "src/exec/CMakeFiles/gpivot_exec.dir/group_by.cc.o" "gcc" "src/exec/CMakeFiles/gpivot_exec.dir/group_by.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/gpivot_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/gpivot_exec.dir/join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/gpivot_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/gpivot_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpivot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
