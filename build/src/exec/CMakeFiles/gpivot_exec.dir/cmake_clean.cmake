file(REMOVE_RECURSE
  "CMakeFiles/gpivot_exec.dir/basic_ops.cc.o"
  "CMakeFiles/gpivot_exec.dir/basic_ops.cc.o.d"
  "CMakeFiles/gpivot_exec.dir/group_by.cc.o"
  "CMakeFiles/gpivot_exec.dir/group_by.cc.o.d"
  "CMakeFiles/gpivot_exec.dir/join.cc.o"
  "CMakeFiles/gpivot_exec.dir/join.cc.o.d"
  "libgpivot_exec.a"
  "libgpivot_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
