# Empty dependencies file for gpivot_tpch.
# This may be replaced when dependencies are built.
