file(REMOVE_RECURSE
  "CMakeFiles/gpivot_tpch.dir/dbgen.cc.o"
  "CMakeFiles/gpivot_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/gpivot_tpch.dir/views.cc.o"
  "CMakeFiles/gpivot_tpch.dir/views.cc.o.d"
  "libgpivot_tpch.a"
  "libgpivot_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
