file(REMOVE_RECURSE
  "libgpivot_tpch.a"
)
