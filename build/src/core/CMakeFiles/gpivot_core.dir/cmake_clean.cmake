file(REMOVE_RECURSE
  "CMakeFiles/gpivot_core.dir/gpivot.cc.o"
  "CMakeFiles/gpivot_core.dir/gpivot.cc.o.d"
  "CMakeFiles/gpivot_core.dir/parallel.cc.o"
  "CMakeFiles/gpivot_core.dir/parallel.cc.o.d"
  "CMakeFiles/gpivot_core.dir/pivot_spec.cc.o"
  "CMakeFiles/gpivot_core.dir/pivot_spec.cc.o.d"
  "libgpivot_core.a"
  "libgpivot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
