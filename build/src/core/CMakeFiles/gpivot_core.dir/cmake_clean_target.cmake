file(REMOVE_RECURSE
  "libgpivot_core.a"
)
