# Empty dependencies file for gpivot_core.
# This may be replaced when dependencies are built.
