# Empty dependencies file for gpivot_ivm.
# This may be replaced when dependencies are built.
