file(REMOVE_RECURSE
  "libgpivot_ivm.a"
)
