file(REMOVE_RECURSE
  "CMakeFiles/gpivot_ivm.dir/apply.cc.o"
  "CMakeFiles/gpivot_ivm.dir/apply.cc.o.d"
  "CMakeFiles/gpivot_ivm.dir/delta.cc.o"
  "CMakeFiles/gpivot_ivm.dir/delta.cc.o.d"
  "CMakeFiles/gpivot_ivm.dir/maintenance.cc.o"
  "CMakeFiles/gpivot_ivm.dir/maintenance.cc.o.d"
  "CMakeFiles/gpivot_ivm.dir/propagate.cc.o"
  "CMakeFiles/gpivot_ivm.dir/propagate.cc.o.d"
  "CMakeFiles/gpivot_ivm.dir/view_manager.cc.o"
  "CMakeFiles/gpivot_ivm.dir/view_manager.cc.o.d"
  "libgpivot_ivm.a"
  "libgpivot_ivm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_ivm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
