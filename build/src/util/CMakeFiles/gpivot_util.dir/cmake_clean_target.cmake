file(REMOVE_RECURSE
  "libgpivot_util.a"
)
