file(REMOVE_RECURSE
  "CMakeFiles/gpivot_util.dir/random.cc.o"
  "CMakeFiles/gpivot_util.dir/random.cc.o.d"
  "CMakeFiles/gpivot_util.dir/status.cc.o"
  "CMakeFiles/gpivot_util.dir/status.cc.o.d"
  "CMakeFiles/gpivot_util.dir/string_util.cc.o"
  "CMakeFiles/gpivot_util.dir/string_util.cc.o.d"
  "libgpivot_util.a"
  "libgpivot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
