# Empty compiler generated dependencies file for gpivot_util.
# This may be replaced when dependencies are built.
