file(REMOVE_RECURSE
  "libgpivot_expr.a"
)
