# Empty compiler generated dependencies file for gpivot_expr.
# This may be replaced when dependencies are built.
