file(REMOVE_RECURSE
  "CMakeFiles/gpivot_expr.dir/aggregate.cc.o"
  "CMakeFiles/gpivot_expr.dir/aggregate.cc.o.d"
  "CMakeFiles/gpivot_expr.dir/expr.cc.o"
  "CMakeFiles/gpivot_expr.dir/expr.cc.o.d"
  "libgpivot_expr.a"
  "libgpivot_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
