file(REMOVE_RECURSE
  "CMakeFiles/gpivot_algebra.dir/evaluate.cc.o"
  "CMakeFiles/gpivot_algebra.dir/evaluate.cc.o.d"
  "CMakeFiles/gpivot_algebra.dir/plan.cc.o"
  "CMakeFiles/gpivot_algebra.dir/plan.cc.o.d"
  "libgpivot_algebra.a"
  "libgpivot_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
