file(REMOVE_RECURSE
  "libgpivot_algebra.a"
)
