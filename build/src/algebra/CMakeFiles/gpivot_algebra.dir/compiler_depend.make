# Empty compiler generated dependencies file for gpivot_algebra.
# This may be replaced when dependencies are built.
