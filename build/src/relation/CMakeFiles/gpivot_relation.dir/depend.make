# Empty dependencies file for gpivot_relation.
# This may be replaced when dependencies are built.
