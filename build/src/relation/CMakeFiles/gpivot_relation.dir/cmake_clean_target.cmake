file(REMOVE_RECURSE
  "libgpivot_relation.a"
)
