file(REMOVE_RECURSE
  "CMakeFiles/gpivot_relation.dir/key_index.cc.o"
  "CMakeFiles/gpivot_relation.dir/key_index.cc.o.d"
  "CMakeFiles/gpivot_relation.dir/row.cc.o"
  "CMakeFiles/gpivot_relation.dir/row.cc.o.d"
  "CMakeFiles/gpivot_relation.dir/schema.cc.o"
  "CMakeFiles/gpivot_relation.dir/schema.cc.o.d"
  "CMakeFiles/gpivot_relation.dir/table.cc.o"
  "CMakeFiles/gpivot_relation.dir/table.cc.o.d"
  "CMakeFiles/gpivot_relation.dir/value.cc.o"
  "CMakeFiles/gpivot_relation.dir/value.cc.o.d"
  "libgpivot_relation.a"
  "libgpivot_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
