# Empty compiler generated dependencies file for bench_ablation_pivot_exec.
# This may be replaced when dependencies are built.
