file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pivot_exec.dir/bench_ablation_pivot_exec.cc.o"
  "CMakeFiles/bench_ablation_pivot_exec.dir/bench_ablation_pivot_exec.cc.o.d"
  "bench_ablation_pivot_exec"
  "bench_ablation_pivot_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pivot_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
