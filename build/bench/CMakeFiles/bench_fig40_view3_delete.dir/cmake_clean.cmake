file(REMOVE_RECURSE
  "CMakeFiles/bench_fig40_view3_delete.dir/bench_fig40_view3_delete.cc.o"
  "CMakeFiles/bench_fig40_view3_delete.dir/bench_fig40_view3_delete.cc.o.d"
  "bench_fig40_view3_delete"
  "bench_fig40_view3_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig40_view3_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
