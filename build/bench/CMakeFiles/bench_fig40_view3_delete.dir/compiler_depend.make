# Empty compiler generated dependencies file for bench_fig40_view3_delete.
# This may be replaced when dependencies are built.
