# Empty dependencies file for bench_fig37_view2_delete.
# This may be replaced when dependencies are built.
