file(REMOVE_RECURSE
  "CMakeFiles/bench_fig37_view2_delete.dir/bench_fig37_view2_delete.cc.o"
  "CMakeFiles/bench_fig37_view2_delete.dir/bench_fig37_view2_delete.cc.o.d"
  "bench_fig37_view2_delete"
  "bench_fig37_view2_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig37_view2_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
