
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig37_view2_delete.cc" "bench/CMakeFiles/bench_fig37_view2_delete.dir/bench_fig37_view2_delete.cc.o" "gcc" "bench/CMakeFiles/bench_fig37_view2_delete.dir/bench_fig37_view2_delete.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gpivot_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/gpivot_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/ivm/CMakeFiles/gpivot_ivm.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/gpivot_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/gpivot_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpivot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gpivot_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/gpivot_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/gpivot_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpivot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
