# Empty dependencies file for bench_fig35_view1_insert_new.
# This may be replaced when dependencies are built.
