file(REMOVE_RECURSE
  "CMakeFiles/bench_fig35_view1_insert_new.dir/bench_fig35_view1_insert_new.cc.o"
  "CMakeFiles/bench_fig35_view1_insert_new.dir/bench_fig35_view1_insert_new.cc.o.d"
  "bench_fig35_view1_insert_new"
  "bench_fig35_view1_insert_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig35_view1_insert_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
