# Empty dependencies file for gpivot_bench_common.
# This may be replaced when dependencies are built.
