file(REMOVE_RECURSE
  "CMakeFiles/gpivot_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/gpivot_bench_common.dir/bench_common.cc.o.d"
  "libgpivot_bench_common.a"
  "libgpivot_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
