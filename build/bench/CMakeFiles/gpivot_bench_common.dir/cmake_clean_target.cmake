file(REMOVE_RECURSE
  "libgpivot_bench_common.a"
)
