# Empty dependencies file for bench_fig33_view1_delete.
# This may be replaced when dependencies are built.
