# Empty compiler generated dependencies file for bench_fig38_view2_insert.
# This may be replaced when dependencies are built.
