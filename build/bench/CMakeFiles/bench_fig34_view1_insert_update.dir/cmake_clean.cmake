file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34_view1_insert_update.dir/bench_fig34_view1_insert_update.cc.o"
  "CMakeFiles/bench_fig34_view1_insert_update.dir/bench_fig34_view1_insert_update.cc.o.d"
  "bench_fig34_view1_insert_update"
  "bench_fig34_view1_insert_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_view1_insert_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
