# Empty compiler generated dependencies file for bench_fig34_view1_insert_update.
# This may be replaced when dependencies are built.
