# Empty compiler generated dependencies file for bench_fig41_view3_insert.
# This may be replaced when dependencies are built.
