# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auction_catalog "/root/repo/build/examples/auction_catalog")
set_tests_properties(example_auction_catalog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sales_crosstab "/root/repo/build/examples/sales_crosstab")
set_tests_properties(example_sales_crosstab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rewrite_explorer "/root/repo/build/examples/rewrite_explorer")
set_tests_properties(example_rewrite_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_horizontal_aggregation "/root/repo/build/examples/horizontal_aggregation")
set_tests_properties(example_horizontal_aggregation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
