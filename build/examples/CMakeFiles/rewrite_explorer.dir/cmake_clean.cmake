file(REMOVE_RECURSE
  "CMakeFiles/rewrite_explorer.dir/rewrite_explorer.cpp.o"
  "CMakeFiles/rewrite_explorer.dir/rewrite_explorer.cpp.o.d"
  "rewrite_explorer"
  "rewrite_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
