file(REMOVE_RECURSE
  "CMakeFiles/horizontal_aggregation.dir/horizontal_aggregation.cpp.o"
  "CMakeFiles/horizontal_aggregation.dir/horizontal_aggregation.cpp.o.d"
  "horizontal_aggregation"
  "horizontal_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizontal_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
