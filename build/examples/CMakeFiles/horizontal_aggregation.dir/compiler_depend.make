# Empty compiler generated dependencies file for horizontal_aggregation.
# This may be replaced when dependencies are built.
