file(REMOVE_RECURSE
  "CMakeFiles/sales_crosstab.dir/sales_crosstab.cpp.o"
  "CMakeFiles/sales_crosstab.dir/sales_crosstab.cpp.o.d"
  "sales_crosstab"
  "sales_crosstab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_crosstab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
