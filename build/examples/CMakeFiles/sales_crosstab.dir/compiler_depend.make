# Empty compiler generated dependencies file for sales_crosstab.
# This may be replaced when dependencies are built.
