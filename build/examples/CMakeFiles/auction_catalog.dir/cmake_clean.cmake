file(REMOVE_RECURSE
  "CMakeFiles/auction_catalog.dir/auction_catalog.cpp.o"
  "CMakeFiles/auction_catalog.dir/auction_catalog.cpp.o.d"
  "auction_catalog"
  "auction_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
