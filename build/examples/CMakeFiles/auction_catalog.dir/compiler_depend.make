# Empty compiler generated dependencies file for auction_catalog.
# This may be replaced when dependencies are built.
