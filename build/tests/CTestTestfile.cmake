# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pivot_test[1]_include.cmake")
include("/root/repo/build/tests/ivm_views_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_rules_test[1]_include.cmake")
include("/root/repo/build/tests/unpivot_rules_test[1]_include.cmake")
include("/root/repo/build/tests/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/ivm_unit_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/fig2_crosstab_test[1]_include.cmake")
include("/root/repo/build/tests/keep_null_rows_test[1]_include.cmake")
include("/root/repo/build/tests/ivm_multisource_test[1]_include.cmake")
include("/root/repo/build/tests/exec_property_test[1]_include.cmake")
include("/root/repo/build/tests/apply_errors_test[1]_include.cmake")
include("/root/repo/build/tests/expr_property_test[1]_include.cmake")
