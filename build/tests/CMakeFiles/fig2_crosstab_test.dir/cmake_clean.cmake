file(REMOVE_RECURSE
  "CMakeFiles/fig2_crosstab_test.dir/fig2_crosstab_test.cc.o"
  "CMakeFiles/fig2_crosstab_test.dir/fig2_crosstab_test.cc.o.d"
  "fig2_crosstab_test"
  "fig2_crosstab_test.pdb"
  "fig2_crosstab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_crosstab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
