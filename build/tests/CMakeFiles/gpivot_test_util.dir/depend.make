# Empty dependencies file for gpivot_test_util.
# This may be replaced when dependencies are built.
