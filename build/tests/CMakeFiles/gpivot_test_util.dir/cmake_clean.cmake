file(REMOVE_RECURSE
  "CMakeFiles/gpivot_test_util.dir/test_util.cc.o"
  "CMakeFiles/gpivot_test_util.dir/test_util.cc.o.d"
  "libgpivot_test_util.a"
  "libgpivot_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpivot_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
