file(REMOVE_RECURSE
  "libgpivot_test_util.a"
)
