# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for unpivot_rules_test.
