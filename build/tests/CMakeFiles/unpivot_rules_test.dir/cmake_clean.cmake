file(REMOVE_RECURSE
  "CMakeFiles/unpivot_rules_test.dir/unpivot_rules_test.cc.o"
  "CMakeFiles/unpivot_rules_test.dir/unpivot_rules_test.cc.o.d"
  "unpivot_rules_test"
  "unpivot_rules_test.pdb"
  "unpivot_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unpivot_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
