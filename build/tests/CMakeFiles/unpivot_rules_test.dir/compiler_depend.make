# Empty compiler generated dependencies file for unpivot_rules_test.
# This may be replaced when dependencies are built.
