file(REMOVE_RECURSE
  "CMakeFiles/ivm_multisource_test.dir/ivm_multisource_test.cc.o"
  "CMakeFiles/ivm_multisource_test.dir/ivm_multisource_test.cc.o.d"
  "ivm_multisource_test"
  "ivm_multisource_test.pdb"
  "ivm_multisource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivm_multisource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
