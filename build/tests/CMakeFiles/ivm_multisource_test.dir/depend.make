# Empty dependencies file for ivm_multisource_test.
# This may be replaced when dependencies are built.
