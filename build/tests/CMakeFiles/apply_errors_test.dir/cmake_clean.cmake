file(REMOVE_RECURSE
  "CMakeFiles/apply_errors_test.dir/apply_errors_test.cc.o"
  "CMakeFiles/apply_errors_test.dir/apply_errors_test.cc.o.d"
  "apply_errors_test"
  "apply_errors_test.pdb"
  "apply_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apply_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
