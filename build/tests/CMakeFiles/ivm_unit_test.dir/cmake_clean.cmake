file(REMOVE_RECURSE
  "CMakeFiles/ivm_unit_test.dir/ivm_unit_test.cc.o"
  "CMakeFiles/ivm_unit_test.dir/ivm_unit_test.cc.o.d"
  "ivm_unit_test"
  "ivm_unit_test.pdb"
  "ivm_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivm_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
