file(REMOVE_RECURSE
  "CMakeFiles/keep_null_rows_test.dir/keep_null_rows_test.cc.o"
  "CMakeFiles/keep_null_rows_test.dir/keep_null_rows_test.cc.o.d"
  "keep_null_rows_test"
  "keep_null_rows_test.pdb"
  "keep_null_rows_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keep_null_rows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
