# Empty dependencies file for keep_null_rows_test.
# This may be replaced when dependencies are built.
