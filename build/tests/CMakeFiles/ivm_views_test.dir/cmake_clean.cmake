file(REMOVE_RECURSE
  "CMakeFiles/ivm_views_test.dir/ivm_views_test.cc.o"
  "CMakeFiles/ivm_views_test.dir/ivm_views_test.cc.o.d"
  "ivm_views_test"
  "ivm_views_test.pdb"
  "ivm_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivm_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
