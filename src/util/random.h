#ifndef GPIVOT_UTIL_RANDOM_H_
#define GPIVOT_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace gpivot {

// Deterministic pseudo-random generator used by the data generators and
// property tests. Same seed => same sequence on every platform (mt19937_64
// is fully specified by the standard).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi);
  // Uniform double in [lo, hi).
  double Real(double lo, double hi);
  // True with probability p.
  bool Chance(double p);
  // Uniformly chosen element index for a container of `size` elements.
  size_t Index(size_t size);
  // Random lowercase string of length `length`.
  std::string String(size_t length);
  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gpivot

#endif  // GPIVOT_UTIL_RANDOM_H_
