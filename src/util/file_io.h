#ifndef GPIVOT_UTIL_FILE_IO_H_
#define GPIVOT_UTIL_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace gpivot {

// POSIX file helpers for the durability layer. Every mutation boundary a
// crash could tear — write, fsync, rename, truncate — carries a
// FaultInjector site, so the crash-loop tests can kill the process (by
// forcing an error with the bytes written so far left on disk) at each one
// and assert recovery converges. Fault site names are the ones listed here;
// sweeps iterate over whatever a code path traverses.
//
// The crash model is process-kill: a fault at a write site leaves a real
// partial write behind, which is exactly the torn-tail shape the WAL reader
// must truncate. Fsync sites are placed where a power-loss-safe
// implementation needs them; the in-process tests cannot test the kernel's
// buffering, but the call order is the contract.

// An owned file descriptor opened for writing. Not thread-safe.
class FdFile {
 public:
  FdFile() = default;
  ~FdFile();
  FdFile(FdFile&& other) noexcept;
  FdFile& operator=(FdFile&& other) noexcept;
  FdFile(const FdFile&) = delete;
  FdFile& operator=(const FdFile&) = delete;

  // Opens `path` for appending, creating it when absent. The write offset
  // starts at the current end of file (see offset()).
  static Result<FdFile> OpenForAppend(const std::string& path);
  // Opens `path` for writing from scratch (created or truncated to empty).
  static Result<FdFile> CreateTruncated(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  // Logical end-of-file as tracked by this writer: advanced by WriteFully
  // (including the bytes a torn write got out before failing), reset by
  // Truncate.
  uint64_t offset() const { return offset_; }

  // Appends all of `data`. Fault sites: "file.write" (before any byte) and
  // "file.write.torn" (after the first half of a multi-byte write — the
  // injected failure leaves a real partial write on disk).
  Status WriteFully(std::string_view data);

  // Flushes file contents to stable storage. Fault site: "file.fsync"
  // (before the fsync).
  Status Fsync();

  // Truncates the file to `size` bytes and moves the write offset there.
  // Fault site: "file.truncate".
  Status Truncate(uint64_t size);

  Status Close();

 private:
  FdFile(int fd, std::string path, uint64_t offset)
      : fd_(fd), path_(std::move(path)), offset_(offset) {}

  int fd_ = -1;
  std::string path_;
  uint64_t offset_ = 0;
};

// Reads the whole of `path` into a string. NotFound when absent.
Result<std::string> ReadFileToString(const std::string& path);

// Writes `contents` to `path` atomically: a sibling "<path>.tmp" is
// written, fsynced, closed, renamed over `path`, and the parent directory
// fsynced, so a crash leaves either the old file or the complete new one —
// never a partial. Fault sites: the FdFile write/fsync sites plus
// "file.rename" (before the rename) and "file.dirsync" (before the
// directory fsync). A failed attempt may leave the .tmp sibling behind;
// callers ignore and eventually clean *.tmp.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

// Fsyncs the directory itself (durability of rename/unlink metadata).
// Fault site: "file.dirsync".
Status FsyncDir(const std::string& dir);

// Regular-file names (not paths) inside `dir`, sorted. NotFound when the
// directory does not exist.
Result<std::vector<std::string>> ListDirFiles(const std::string& dir);

// Creates `dir` (and parents) when missing.
Status EnsureDir(const std::string& dir);

// Deletes a file if it exists. Best-effort helpers for checkpoint pruning;
// no fault site (pruning is not a correctness boundary — stale files are
// ignored by recovery).
Status RemoveFileIfExists(const std::string& path);

bool FileExists(const std::string& path);

}  // namespace gpivot

#endif  // GPIVOT_UTIL_FILE_IO_H_
