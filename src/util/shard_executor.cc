#include "util/shard_executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "obs/metrics.h"

namespace gpivot {

void RunSharded(const ExecContext& ctx, size_t n,
                const std::function<void(size_t)>& fn) {
  size_t workers = std::min(ctx.num_threads, n);
  obs::MetricsRegistry& pool_metrics = obs::MetricsRegistry::Global();
  if (pool_metrics.enabled()) {
    pool_metrics.AddCounter("thread_pool.run_sharded.calls");
  }
  if (workers <= 1 || ThreadPool::OnWorkerThread()) {
    if (pool_metrics.enabled()) {
      pool_metrics.AddCounter("thread_pool.run_sharded.inline_calls");
    }
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (pool_metrics.enabled()) {
    pool_metrics.AddCounter("thread_pool.run_sharded.workers", workers);
  }
  // The claim counter: every worker (pool threads plus the caller) loops
  // fetch_add-ing the next unclaimed index until the range is exhausted.
  // relaxed suffices for the claim itself — each index is claimed exactly
  // once, and the completion handshake below publishes all of fn's writes
  // to the caller.
  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = workers - 1;
  ThreadPool& pool = ThreadPool::Global();
  for (size_t t = 1; t < workers; ++t) {
    pool.Submit([&] {
      drain();
      // Notify while holding done_mu: the waiting caller cannot observe
      // remaining == 0 (and destroy done_cv on return) until this worker
      // releases the lock, which is after notify_one completes.
      std::lock_guard<std::mutex> lock(done_mu);
      --remaining;
      done_cv.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace gpivot
