#ifndef GPIVOT_UTIL_HASH_UTIL_H_
#define GPIVOT_UTIL_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace gpivot {

// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

template <typename T>
size_t HashCombineValue(size_t seed, const T& value) {
  return HashCombine(seed, std::hash<T>{}(value));
}

}  // namespace gpivot

#endif  // GPIVOT_UTIL_HASH_UTIL_H_
