#ifndef GPIVOT_UTIL_RESULT_H_
#define GPIVOT_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace gpivot {

// A value-or-error type in the style of arrow::Result. A Result either holds
// a valid T (status is OK) or a non-OK Status describing why no value is
// available. Accessing the value of an errored Result aborts via CHECK.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    GPIVOT_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GPIVOT_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    GPIVOT_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GPIVOT_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or aborts with a readable message. Named per
  // absl::StatusOr conventions.
  T ValueOrDie() && { return std::move(*this).value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gpivot

// Assigns the value of a Result expression to `lhs`, or returns its status.
#define GPIVOT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define GPIVOT_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define GPIVOT_ASSIGN_OR_RETURN_NAME(a, b) GPIVOT_ASSIGN_OR_RETURN_CONCAT(a, b)

#define GPIVOT_ASSIGN_OR_RETURN(lhs, expr) \
  GPIVOT_ASSIGN_OR_RETURN_IMPL(            \
      GPIVOT_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

#endif  // GPIVOT_UTIL_RESULT_H_
