#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "util/check.h"

namespace gpivot {

namespace {

// Set while a Global()-pool worker is executing tasks; read by
// ParallelFor's inline-fallback check.
thread_local bool t_on_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  GPIVOT_CHECK(num_threads > 0) << "thread pool needs at least one worker";
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Pool-level accounting goes to the global registry: task counts and
  // queue waits depend on scheduling, so they are deliberately kept out of
  // ExecContext-carried (deterministic) registries.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.AddCounter("thread_pool.tasks_submitted");
    auto enqueued = std::chrono::steady_clock::now();
    task = [task = std::move(task), enqueued, &metrics] {
      std::chrono::duration<double, std::milli> wait =
          std::chrono::steady_clock::now() - enqueued;
      metrics.RecordLatency("thread_pool.queue_wait_ms", wait.count());
      task();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    GPIVOT_CHECK(!stop_) << "Submit on stopped pool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  // Intentionally leaked (never destroyed): worker threads must not be
  // joined during static destruction, where other static state they might
  // touch is already gone.
  static ThreadPool* const kPool = [] {
    size_t hw = std::thread::hardware_concurrency();
    return new ThreadPool(std::max<size_t>(hw, 4) - 1);
  }();
  return *kPool;
}

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

void ParallelFor(const ExecContext& ctx, size_t n,
                 const std::function<void(size_t)>& fn) {
  size_t stripes = std::min(ctx.num_threads, n);
  obs::MetricsRegistry& pool_metrics = obs::MetricsRegistry::Global();
  if (pool_metrics.enabled()) {
    pool_metrics.AddCounter("thread_pool.parallel_for.calls");
  }
  if (stripes <= 1 || ThreadPool::OnWorkerThread()) {
    if (pool_metrics.enabled()) {
      pool_metrics.AddCounter("thread_pool.parallel_for.inline_calls");
    }
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (pool_metrics.enabled()) {
    pool_metrics.AddCounter("thread_pool.parallel_for.stripes", stripes);
  }
  // Static contiguous stripes: stripe t covers [t*n/stripes,
  // (t+1)*n/stripes). The caller runs stripe 0; workers run the rest.
  auto run_stripe = [&](size_t t) {
    size_t begin = t * n / stripes;
    size_t end = (t + 1) * n / stripes;
    for (size_t i = begin; i < end; ++i) fn(i);
  };
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = stripes - 1;
  ThreadPool& pool = ThreadPool::Global();
  for (size_t t = 1; t < stripes; ++t) {
    pool.Submit([&, t] {
      run_stripe(t);
      // Notify while holding done_mu: the waiting caller can't observe
      // remaining == 0 (and destroy done_cv on return) until this worker
      // releases the lock, which is after notify_one completes.
      std::lock_guard<std::mutex> lock(done_mu);
      --remaining;
      done_cv.notify_one();
    });
  }
  run_stripe(0);
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

size_t NumChunks(const ExecContext& ctx, size_t n) {
  if (!ctx.ShouldParallelize(n)) return 1;
  return std::min(ctx.num_threads, n);
}

void ParallelForChunks(
    const ExecContext& ctx, size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn) {
  size_t chunks = NumChunks(ctx, n);
  if (chunks <= 1) {
    fn(0, 0, n);
    return;
  }
  ParallelFor(ExecContext{chunks, 0}, chunks, [&](size_t c) {
    fn(c, c * n / chunks, (c + 1) * n / chunks);
  });
}

}  // namespace gpivot
