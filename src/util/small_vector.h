#ifndef GPIVOT_UTIL_SMALL_VECTOR_H_
#define GPIVOT_UTIL_SMALL_VECTOR_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gpivot {

// A vector with inline storage for the first N elements, restricted to
// trivially copyable element types so growth and copies are memcpy.
//
// The columnar layer holds per-column typed payloads in these: delta tables
// in the IVM hot path are routinely a handful of rows, and per-column heap
// allocations would dominate the cost of building their column views. Join
// and group-by fast paths also use SmallVector for hash-bucket candidate
// lists, which are almost always a single entry (unique keys).
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable elements");
  static_assert(N > 0, "SmallVector needs at least one inline slot");

 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { CopyFrom(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      FreeHeap();
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { StealFrom(&other); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      StealFrom(&other);
    }
    return *this;
  }

  ~SmallVector() { FreeHeap(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return heap_ == nullptr ? N : heap_capacity_; }

  T* data() { return heap_ == nullptr ? inline_ : heap_; }
  const T* data() const { return heap_ == nullptr ? inline_ : heap_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  T* begin() { return data(); }
  const T* begin() const { return data(); }
  T* end() { return data() + size_; }
  const T* end() const { return data() + size_; }

  void push_back(const T& value) {
    if (size_ == capacity()) Grow(size_ + 1);
    data()[size_++] = value;
  }

  void reserve(size_t want) {
    if (want > capacity()) Grow(want);
  }

  // New elements are value-initialized (zeroed, for the trivially copyable
  // types this container accepts).
  void resize(size_t new_size) {
    if (new_size > capacity()) Grow(new_size);
    if (new_size > size_) {
      std::memset(static_cast<void*>(data() + size_), 0,
                  (new_size - size_) * sizeof(T));
    }
    size_ = new_size;
  }

  void clear() { size_ = 0; }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    return size_ == 0 ||
           std::memcmp(data(), other.data(), size_ * sizeof(T)) == 0;
  }

 private:
  void CopyFrom(const SmallVector& other) {
    heap_ = nullptr;
    size_ = other.size_;
    if (size_ > N) {
      heap_capacity_ = size_;
      heap_ = static_cast<T*>(std::malloc(heap_capacity_ * sizeof(T)));
      if (heap_ == nullptr) throw std::bad_alloc();
    }
    if (size_ > 0) std::memcpy(data(), other.data(), size_ * sizeof(T));
  }

  void StealFrom(SmallVector* other) {
    heap_ = other->heap_;
    heap_capacity_ = other->heap_capacity_;
    size_ = other->size_;
    if (heap_ == nullptr && size_ > 0) {
      std::memcpy(inline_, other->inline_, size_ * sizeof(T));
    }
    other->heap_ = nullptr;
    other->size_ = 0;
  }

  void Grow(size_t want) {
    size_t new_capacity = capacity() * 2;
    if (new_capacity < want) new_capacity = want;
    T* new_heap = static_cast<T*>(std::malloc(new_capacity * sizeof(T)));
    if (new_heap == nullptr) throw std::bad_alloc();
    if (size_ > 0) std::memcpy(new_heap, data(), size_ * sizeof(T));
    FreeHeap();
    heap_ = new_heap;
    heap_capacity_ = new_capacity;
  }

  void FreeHeap() {
    std::free(heap_);
    heap_ = nullptr;
  }

  T inline_[N];
  T* heap_ = nullptr;
  size_t heap_capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace gpivot

#endif  // GPIVOT_UTIL_SMALL_VECTOR_H_
