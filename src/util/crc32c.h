#ifndef GPIVOT_UTIL_CRC32C_H_
#define GPIVOT_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gpivot {

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum LevelDB/RocksDB frame their log records with. The storage layer
// uses it to detect torn writes and bit rot in WAL entries and checkpoint
// payloads; the serialization fuzz tests assert every single-bit flip in a
// framed entry is caught.
//
// Software slicing-by-4 implementation: no SSE4.2 dependency, fast enough
// for checkpoint-sized payloads at test and smoke-bench scale.

// CRC of `data`, optionally extending a running crc (pass the previous
// return value to checksum a payload in chunks; start with 0).
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t crc = 0) {
  return Crc32c(data.data(), data.size(), crc);
}

}  // namespace gpivot

#endif  // GPIVOT_UTIL_CRC32C_H_
