#include "util/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace gpivot {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(
      StrCat(op, " '", path, "' failed: ", std::strerror(errno)));
}

// Raw write(2) loop with EINTR retry; advances *offset by what landed.
Status WriteAll(int fd, const char* data, size_t n, const std::string& path,
                uint64_t* offset) {
  while (n > 0) {
    ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    data += written;
    n -= static_cast<size_t>(written);
    *offset += static_cast<uint64_t>(written);
  }
  return Status::OK();
}

}  // namespace

FdFile::~FdFile() {
  if (fd_ >= 0) ::close(fd_);
}

FdFile::FdFile(FdFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), offset_(other.offset_) {
  other.fd_ = -1;
}

FdFile& FdFile::operator=(FdFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    offset_ = other.offset_;
    other.fd_ = -1;
  }
  return *this;
}

Result<FdFile> FdFile::OpenForAppend(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  return FdFile(fd, path, static_cast<uint64_t>(end));
}

Result<FdFile> FdFile::CreateTruncated(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", path);
  return FdFile(fd, path, 0);
}

Status FdFile::WriteFully(std::string_view data) {
  if (fd_ < 0) return Status::Internal("WriteFully on closed file");
  GPIVOT_FAULT_POINT("file.write");
  if (data.size() >= 2) {
    // Land the first half before the torn-write fault site so an injected
    // crash here leaves a genuine partial record on disk.
    size_t half = data.size() / 2;
    GPIVOT_RETURN_NOT_OK(WriteAll(fd_, data.data(), half, path_, &offset_));
    GPIVOT_FAULT_POINT("file.write.torn");
    GPIVOT_RETURN_NOT_OK(
        WriteAll(fd_, data.data() + half, data.size() - half, path_,
                 &offset_));
    return Status::OK();
  }
  return WriteAll(fd_, data.data(), data.size(), path_, &offset_);
}

Status FdFile::Fsync() {
  if (fd_ < 0) return Status::Internal("Fsync on closed file");
  GPIVOT_FAULT_POINT("file.fsync");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status FdFile::Truncate(uint64_t size) {
  if (fd_ < 0) return Status::Internal("Truncate on closed file");
  GPIVOT_FAULT_POINT("file.truncate");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  // ftruncate does not move the kernel file offset; without a reseek a
  // non-O_APPEND fd would write past the new EOF, leaving a zero hole.
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Errno("lseek", path_);
  }
  offset_ = size;
  return Status::OK();
}

Status FdFile::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrCat("file '", path, "' does not exist"));
    }
    return Errno("open", path);
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  std::string tmp = path + ".tmp";
  GPIVOT_ASSIGN_OR_RETURN(FdFile file, FdFile::CreateTruncated(tmp));
  GPIVOT_RETURN_NOT_OK(file.WriteFully(contents));
  GPIVOT_RETURN_NOT_OK(file.Fsync());
  GPIVOT_RETURN_NOT_OK(file.Close());
  GPIVOT_FAULT_POINT("file.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", tmp);
  }
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  return FsyncDir(parent.empty() ? "." : parent.string());
}

Status FsyncDir(const std::string& dir) {
  GPIVOT_FAULT_POINT("file.dirsync");
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::OK();
}

Result<std::vector<std::string>> ListDirFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) {
      return Status::NotFound(StrCat("directory '", dir, "' does not exist"));
    }
    return Status::Internal(
        StrCat("list '", dir, "' failed: ", ec.message()));
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec) && !ec) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(
        StrCat("create directory '", dir, "' failed: ", ec.message()));
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::Internal(
        StrCat("remove '", path, "' failed: ", ec.message()));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec;
}

}  // namespace gpivot
