#include "util/string_util.h"

namespace gpivot {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(std::string_view input,
                               std::string_view separator) {
  std::vector<std::string> parts;
  if (separator.empty()) {
    parts.emplace_back(input);
    return parts;
  }
  size_t start = 0;
  while (true) {
    size_t pos = input.find(separator, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      return parts;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + separator.size();
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace gpivot
