#include "util/status.h"

namespace gpivot {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kNotApplicable:
      return "Not applicable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kConstraintViolation:
      return "Constraint violation";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ == nullptr ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace gpivot
