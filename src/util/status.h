#ifndef GPIVOT_UTIL_STATUS_H_
#define GPIVOT_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace gpivot {

// Error categories used across the library. `kOk` carries no state.
enum class StatusCode {
  kOk = 0,
  // A request that is syntactically valid but semantically wrong, e.g. a
  // pivot whose (K, A1..Am) columns do not form a key of the input.
  kInvalidArgument,
  // A named entity (column, table, view) was not found.
  kNotFound,
  // A rewrite or propagation rule does not apply to the given plan shape.
  kNotApplicable,
  // An internal invariant was violated; indicates a bug in this library.
  kInternal,
  // Data violates a declared constraint (duplicate key, type mismatch).
  kConstraintViolation,
};

// Returns a stable human-readable name, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

// Arrow/RocksDB-style status object. The OK status is represented by a null
// state pointer, so passing OK around is cheap. Statuses are copyable and
// movable; moved-from statuses are OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status NotApplicable(std::string message) {
    return Status(StatusCode::kNotApplicable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ConstraintViolation(std::string message) {
    return Status(StatusCode::kConstraintViolation, std::move(message));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsNotApplicable() const { return code() == StatusCode::kNotApplicable; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;
};

}  // namespace gpivot

// Propagates a non-OK status to the caller.
#define GPIVOT_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::gpivot::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // GPIVOT_UTIL_STATUS_H_
