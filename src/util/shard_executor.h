#ifndef GPIVOT_UTIL_SHARD_EXECUTOR_H_
#define GPIVOT_UTIL_SHARD_EXECUTOR_H_

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace gpivot {

// Work-stealing task executor for shard-shaped work: runs fn(i) for every
// i in [0, n), with up to ctx.num_threads workers *dynamically claiming*
// task indices off a shared atomic counter (the master/worker batch-
// stealing shape of Bitcoin-lineage CCheckQueue). Unlike ParallelFor's
// static stripes, a worker that finishes a light shard immediately claims
// the next one, so one heavy shard cannot serialize the whole batch —
// exactly the skew case hot-key maintenance shards produce.
//
// Determinism contract: which thread runs which index is scheduling-
// dependent, so fn must confine its writes to per-index state (slot i of a
// pre-sized result vector, shard i's undo log). Under that discipline the
// combined result is a pure function of (n, fn) — byte-identical for every
// thread count — because slots are combined in index order by the caller.
//
// Runs inline (plain loop, no pool traffic) when ctx.num_threads <= 1,
// n <= 1, or when already on a pool worker (same nesting rule as
// ParallelFor: workers never block on the queue, so no deadlock and no
// oversubscription). Returns after every index completed. fn must not
// throw; errors travel through per-index Status slots.
void RunSharded(const ExecContext& ctx, size_t n,
                const std::function<void(size_t)>& fn);

}  // namespace gpivot

#endif  // GPIVOT_UTIL_SHARD_EXECUTOR_H_
