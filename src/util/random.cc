#include "util/random.h"

#include "util/check.h"

namespace gpivot {

int64_t Rng::Int(int64_t lo, int64_t hi) {
  GPIVOT_CHECK(lo <= hi) << "Rng::Int range [" << lo << ", " << hi << "]";
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Real(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

size_t Rng::Index(size_t size) {
  GPIVOT_CHECK(size > 0) << "Rng::Index on empty range";
  return static_cast<size_t>(Int(0, static_cast<int64_t>(size) - 1));
}

std::string Rng::String(size_t length) {
  std::string result(length, 'a');
  for (char& c : result) {
    c = static_cast<char>('a' + Int(0, 25));
  }
  return result;
}

}  // namespace gpivot
