#ifndef GPIVOT_UTIL_FAULT_INJECTION_H_
#define GPIVOT_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>

#include "util/status.h"

namespace gpivot {

// Deterministic fault injection for robustness tests. The maintenance paths
// (propagate, staged apply, epoch commit) call Poke() at named injection
// points; a test arms the injector to force a Status error at the N-th point
// reached, and the epoch machinery must then roll back to the exact
// pre-epoch state. Fault-sweep tests iterate N over every point.
//
// Disabled — the default, and the only state benchmarks ever see — a poke is
// a single relaxed atomic load; the mutex is taken only while armed or
// counting.
class FaultInjector {
 public:
  // Process-wide instance; the injection-point macro below targets it.
  static FaultInjector& Global();

  // Arms the injector: the `trigger`-th Poke after this call (1-based)
  // returns an Internal error naming its site. Fires once, then stays quiet
  // until re-armed.
  void Arm(size_t trigger);

  // Counting mode: pokes are counted but never fire. Lets a sweep discover
  // how many injection points a code path traverses.
  void StartCounting();

  // Disables the injector; returns the number of pokes since the last
  // Arm/StartCounting.
  size_t Disarm();

  // True when the armed fault has fired since the last Arm.
  bool fired() const;
  // Site name of the fired fault; empty when none fired.
  std::string fired_site() const;

  // Called at each injection point. Returns OK unless this poke is the
  // armed trigger.
  Status Poke(const char* site);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;

  mutable std::mutex mutex_;
  std::atomic<bool> active_{false};
  bool armed_ = false;  // false while counting
  size_t trigger_ = 0;
  size_t count_ = 0;
  bool fired_ = false;
  std::string fired_site_;
};

}  // namespace gpivot

// Injection point: propagates the injected error to the caller. The site
// name shows up in the returned Status so sweep failures are attributable.
#define GPIVOT_FAULT_POINT(site) \
  GPIVOT_RETURN_NOT_OK(::gpivot::FaultInjector::Global().Poke(site))

#endif  // GPIVOT_UTIL_FAULT_INJECTION_H_
