#ifndef GPIVOT_UTIL_STRING_UTIL_H_
#define GPIVOT_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gpivot {

// Joins `parts` with `separator`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Splits `input` on the multi-character `separator`. Split("a**b", "**")
// == {"a", "b"}. An empty input yields {""}.
std::vector<std::string> Split(std::string_view input,
                               std::string_view separator);

// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (void)(out << ... << args);
  return out.str();
}

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace gpivot

#endif  // GPIVOT_UTIL_STRING_UTIL_H_
