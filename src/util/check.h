#ifndef GPIVOT_UTIL_CHECK_H_
#define GPIVOT_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace gpivot::internal_check {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the GPIVOT_CHECK macro below for programmer errors;
// recoverable errors use Status/Result instead.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace gpivot::internal_check

// Aborts with a message when `condition` is false. Supports streaming extra
// context: GPIVOT_CHECK(x != nullptr) << "while opening " << name;
// Usable only as a statement (which is the only sensible place for it).
#define GPIVOT_CHECK(condition)                                    \
  for (bool _gpivot_check_done = (condition); !_gpivot_check_done; \
       _gpivot_check_done = true)                                  \
  ::gpivot::internal_check::CheckFailure(__FILE__, __LINE__, #condition)

#define GPIVOT_DCHECK(condition) GPIVOT_CHECK(condition)

#endif  // GPIVOT_UTIL_CHECK_H_
