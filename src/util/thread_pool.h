#ifndef GPIVOT_UTIL_THREAD_POOL_H_
#define GPIVOT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpivot::obs {
class CostCollector;
class MetricsRegistry;
class Tracer;
}  // namespace gpivot::obs

namespace gpivot {

struct PlanNodeIds;

// Sentinel for ExecContext::vector_chunk_size: resolve the batch width from
// the GPIVOT_VECTOR_CHUNK_SIZE environment variable (default 1024) on first
// use — see exec::EffectiveVectorChunkSize.
inline constexpr size_t kVectorChunkAuto = static_cast<size_t>(-1);

// Concurrency knob threaded through the operator APIs (HashJoin, GroupBy,
// GPivotParallel, Evaluate, the maintenance planner, ViewManager). The
// default — one thread — is exactly the pre-existing sequential behavior,
// so every caller that doesn't opt in is unaffected.
//
// Parallel operators are *deterministic*: their output is byte-identical
// for every num_threads value, because work is split into statically
// assigned stripes whose results are combined in stripe order (no work
// stealing, no contended output buffers). The §4.3 analogy: stripes play
// the role of GPIVOT partitions, the stripe-order combine plays the
// group-wise merge.
struct ExecContext {
  size_t num_threads = 1;

  // Inputs with fewer rows than this stay sequential even when
  // num_threads > 1: dispatch overhead would dominate, and delta
  // propagation runs many tiny operator calls. Tests lower it to force the
  // parallel code paths onto small tables.
  size_t min_parallel_rows = 1024;

  // Observability sinks (src/obs/). Null — the default — disables
  // instrumentation at the cost of a pointer check per operator call.
  // Counter values recorded through `metrics` are deterministic across
  // num_threads; only histogram timings vary.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  // Plan-shape cost accounting (src/obs/cost.h). When `cost` is set and
  // `cost_node` is a valid id from `plan_ids` (AssignNodeIds in
  // algebra/plan.h), operators add their rows-in/rows-out/build-probe
  // actuals to that node's NodeStats. The maintenance planner attaches a
  // per-plan collector in Stage and the evaluator/propagator re-resolve
  // cost_node as they descend; everything stays off (-1 / nullptr) for
  // callers that never opt in. Stats are pure functions of the work, so
  // they share the counters' cross-thread-count determinism guarantee.
  obs::CostCollector* cost = nullptr;
  const PlanNodeIds* plan_ids = nullptr;
  int cost_node = -1;

  bool ShouldParallelize(size_t rows) const {
    return num_threads > 1 && rows >= min_parallel_rows && rows >= 2;
  }

  // Vectorized-executor batch width: the number of rows each columnar fast
  // path (Select / Project / HashJoin / GroupBy / GPivot) processes per
  // typed inner loop. 0 forces the row-at-a-time shim everywhere;
  // kVectorChunkAuto (the default) resolves GPIVOT_VECTOR_CHUNK_SIZE.
  // Results are byte-identical for every setting — the knob changes only
  // which inner loop produces them — so it shares the determinism guarantee
  // num_threads has. Appended last to keep aggregate initialization of the
  // earlier fields source-compatible.
  size_t vector_chunk_size = kVectorChunkAuto;
};

// A fixed set of worker threads draining a FIFO task queue. Deliberately
// work-stealing-free: ParallelFor assigns stripes statically, so a run's
// write pattern (which thread writes which output slot) is a pure function
// of (n, num_threads) — the foundation of the determinism guarantee.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues one task. Tasks must not block waiting for other pool tasks
  // (ParallelFor guarantees this by running inline on worker threads).
  void Submit(std::function<void()> task);

  // Process-wide pool, created on first use with
  // max(hardware_concurrency, 4) - 1 workers (the ParallelFor caller
  // contributes the remaining stripe), so requested parallelism is
  // available even on small machines.
  static ThreadPool& Global();

  // True when called from inside a Global()-pool worker. ParallelFor uses
  // this to run nested invocations inline, which both prevents deadlock
  // (workers never wait on the queue) and avoids thread oversubscription
  // when an already-parallel phase calls parallel operators.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for every i in [0, n), splitting the index range into at most
// ctx.num_threads contiguous stripes on the global pool. Runs inline (plain
// loop) when ctx.num_threads <= 1, n <= 1, or when already on a pool
// worker. Returns after every index completed. fn must confine its writes
// to per-index state; it must not throw (this codebase reports errors via
// Status slots the caller indexes by i).
void ParallelFor(const ExecContext& ctx, size_t n,
                 const std::function<void(size_t)>& fn);

// The chunk count ParallelForChunks will use for n items: 1 when the input
// stays sequential (per ctx.ShouldParallelize), else min(num_threads, n).
// Callers pre-size per-chunk result buffers with this.
size_t NumChunks(const ExecContext& ctx, size_t n);

// Range-parallel variant for row loops: runs fn(chunk, begin, end) for each
// of NumChunks(ctx, n) contiguous chunks covering [0, n). Chunk boundaries
// are a pure function of (n, chunk count), so per-chunk outputs
// concatenated in chunk order reproduce the sequential row order exactly.
void ParallelForChunks(
    const ExecContext& ctx, size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

}  // namespace gpivot

#endif  // GPIVOT_UTIL_THREAD_POOL_H_
