#include "util/fault_injection.h"

#include "util/string_util.h"

namespace gpivot {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* const kInjector = new FaultInjector();
  return *kInjector;
}

void FaultInjector::Arm(size_t trigger) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = true;
  trigger_ = trigger;
  count_ = 0;
  fired_ = false;
  fired_site_.clear();
  active_.store(true, std::memory_order_release);
}

void FaultInjector::StartCounting() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  trigger_ = 0;
  count_ = 0;
  fired_ = false;
  fired_site_.clear();
  active_.store(true, std::memory_order_release);
}

size_t FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.store(false, std::memory_order_release);
  armed_ = false;
  return count_;
}

bool FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

std::string FaultInjector::fired_site() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_site_;
}

Status FaultInjector::Poke(const char* site) {
  if (!active_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  ++count_;
  if (armed_ && !fired_ && count_ == trigger_) {
    fired_ = true;
    fired_site_ = site;
    return Status::Internal(
        StrCat("injected fault at '", site, "' (point #", count_, ")"));
  }
  return Status::OK();
}

}  // namespace gpivot
