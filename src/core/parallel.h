#ifndef GPIVOT_CORE_PARALLEL_H_
#define GPIVOT_CORE_PARALLEL_H_

#include <cstddef>
#include <vector>

#include "core/pivot_spec.h"
#include "relation/table.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot {

// §4.3's parallel-processing split of GPIVOT, analogous to local/global
// aggregation: compute GPIVOT sub-results per partition, then combine them
// with the insert-case propagation rules (§6.1). A key whose rows are
// scattered across partitions yields one partial row per partition; the
// merge joins them group-wise (the function f of the Fig. 22/23 proofs:
// present groups overwrite ⊥ ones — by the key property at most one
// partition carries any given (K, combo)).

// Splits `input` into `num_partitions` row-wise partitions (round-robin, so
// keys deliberately straddle partitions — the hard case).
std::vector<Table> PartitionRows(const Table& input, size_t num_partitions);

// Merges per-partition GPIVOT outputs into the global result. Every partial
// must have the schema GPivot(spec) produces. Fails with
// ConstraintViolation if two partials both carry a non-⊥ group for the same
// key (which would mean the pivot key property was violated).
Result<Table> MergePivotedPartials(const std::vector<Table>& partials,
                                   const PivotSpec& spec,
                                   const Schema& output_schema);

// GPIVOT via the split: partition → pivot locally → merge globally.
// Equivalent to GPivot(input, spec) for every ctx: the per-partition pivots
// run on up to ctx.num_threads pool workers (sequentially by default), and
// the merge consumes the partials in partition order, so the result is
// byte-identical regardless of thread count.
Result<Table> GPivotParallel(const Table& input, const PivotSpec& spec,
                             size_t num_partitions,
                             const ExecContext& ctx = {});

}  // namespace gpivot

#endif  // GPIVOT_CORE_PARALLEL_H_
