#include "core/gpivot.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "exec/basic_ops.h"
#include "exec/join.h"
#include "exec/vector_ops.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/small_vector.h"
#include "util/string_util.h"

namespace gpivot {

namespace {

// The actual pivot; the public GPivot wraps it with instrumentation.
Result<Table> GPivotImpl(const Table& input, const PivotSpec& spec,
                         const ExecContext& ctx) {
  GPIVOT_RETURN_NOT_OK(spec.Validate(input.schema()));
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          spec.KeyColumns(input.schema()));
  GPIVOT_ASSIGN_OR_RETURN(Schema output_schema,
                          spec.OutputSchema(input.schema()));
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> key_idx,
                          input.schema().ColumnIndices(key_names));
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> by_idx,
                          input.schema().ColumnIndices(spec.pivot_by));
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> on_idx,
                          input.schema().ColumnIndices(spec.pivot_on));

  // combo row -> combo index
  std::unordered_map<Row, size_t, RowHash, RowEq> combo_index;
  combo_index.reserve(spec.combos.size());
  for (size_t c = 0; c < spec.combos.size(); ++c) {
    combo_index.emplace(spec.combos[c], c);
  }

  const size_t num_key = key_idx.size();
  const size_t num_measures = spec.pivot_on.size();
  const size_t num_cells = spec.num_combos() * num_measures;

  // Vectorized cell routing: typed dimension/key columns, chunked batch
  // hashing of both key sets, and hash -> id buckets replacing the two
  // Row-keyed maps. The scan stays sequential (output slot order and the
  // first-duplicate error must match the row path exactly); only the hash
  // and comparison work is batched. Combo buckets keep ascending ids and
  // take the first equal match, reproducing combo_index's emplace-keeps-
  // first behavior. Mixed-type columns or chunk size 0 use the row shim.
  const size_t vec_chunk = exec::EffectiveVectorChunkSize(ctx);
  std::optional<exec::KeyColumns> by_cols;
  std::optional<exec::KeyColumns> key_cols;
  if (vec_chunk > 0 && input.num_rows() > 0 &&
      input.num_rows() <= UINT32_MAX) {
    by_cols = exec::KeyColumns::Make(input, by_idx);
    key_cols = exec::KeyColumns::Make(input, key_idx);
  }
  if (by_cols.has_value() && key_cols.has_value()) {
    std::unordered_map<size_t, SmallVector<uint32_t, 2>> combo_buckets;
    combo_buckets.reserve(spec.combos.size());
    for (size_t c = 0; c < spec.combos.size(); ++c) {
      combo_buckets[HashRow(spec.combos[c])].push_back(
          static_cast<uint32_t>(c));
    }

    struct VSlot {
      uint32_t row_position = 0;     // index into out_rows
      uint32_t first_input_row = 0;  // input row that created this slot
      std::vector<bool> combo_filled;
    };
    std::vector<VSlot> slots;
    std::unordered_map<size_t, SmallVector<uint32_t, 2>> key_buckets;
    key_buckets.reserve(input.num_rows());
    std::vector<Row> out_rows;

    const size_t n = input.num_rows();
    std::vector<size_t> by_hashes(std::min(vec_chunk, n));
    std::vector<size_t> key_hashes(std::min(vec_chunk, n));
    for (size_t cb = 0; cb < n; cb += vec_chunk) {
      const size_t ce = std::min(n, cb + vec_chunk);
      by_cols->BatchHash(cb, ce, by_hashes.data());
      key_cols->BatchHash(cb, ce, key_hashes.data());
      for (size_t r = cb; r < ce; ++r) {
        const Row& row = input.RowAt(r);
        std::optional<size_t> combo_id;
        auto cit = combo_buckets.find(by_hashes[r - cb]);
        if (cit != combo_buckets.end()) {
          for (uint32_t c : cit->second) {
            if (by_cols->RowEqualsValues(r, spec.combos[c])) {
              combo_id = c;
              break;
            }
          }
        }
        if (!combo_id.has_value() && !spec.keep_all_null_rows) {
          continue;  // unlisted dimension value (Eq. 3 semantics)
        }

        VSlot* slot = nullptr;
        SmallVector<uint32_t, 2>& ids = key_buckets[key_hashes[r - cb]];
        for (uint32_t sid : ids) {
          if (key_cols->RowsEqual(r, *key_cols, slots[sid].first_input_row)) {
            slot = &slots[sid];
            break;
          }
        }
        if (slot == nullptr) {
          ids.push_back(static_cast<uint32_t>(slots.size()));
          VSlot fresh;
          fresh.row_position = static_cast<uint32_t>(out_rows.size());
          fresh.first_input_row = static_cast<uint32_t>(r);
          fresh.combo_filled.assign(spec.num_combos(), false);
          Row out;
          out.reserve(num_key + num_cells);
          for (size_t k : key_idx) out.push_back(row[k]);
          out.resize(num_key + num_cells, Value::Null());
          out_rows.push_back(std::move(out));
          slots.push_back(std::move(fresh));
          slot = &slots.back();
        }
        if (!combo_id.has_value()) {
          continue;  // keep_all_null_rows: the key row exists, no cell
        }
        const size_t c = *combo_id;
        if (slot->combo_filled[c]) {
          // Reconstruct both rows the row path would print: the stored key
          // (projected from the slot-creating input row) and this row's
          // dimension values.
          return Status::ConstraintViolation(StrCat(
              "GPIVOT input violates key: duplicate (",
              RowToString(
                  ProjectRow(input.RowAt(slot->first_input_row), key_idx)),
              ", ", RowToString(ProjectRow(row, by_idx)), ")"));
        }
        slot->combo_filled[c] = true;
        Row& out = out_rows[slot->row_position];
        for (size_t b = 0; b < num_measures; ++b) {
          out[num_key + c * num_measures + b] = row[on_idx[b]];
        }
      }
    }
    Table result(output_schema, std::move(out_rows));
    GPIVOT_RETURN_NOT_OK(result.SetKey(key_names));
    return result;
  }

  struct OutputSlot {
    size_t row_position;
    std::vector<bool> combo_filled;  // one bit per combo, for key checking
  };
  std::unordered_map<Row, OutputSlot, RowHash, RowEq> by_key;
  by_key.reserve(input.num_rows());

  Table result(output_schema);
  // One mutable-rows borrow for the whole scan (each call re-checks the
  // columnar-cache flag); the vector reference survives AddRow growth.
  std::vector<Row>& shim_rows = result.mutable_rows();
  for (const Row& row : input.rows()) {
    Row combo = ProjectRow(row, by_idx);
    auto combo_it = combo_index.find(combo);
    if (combo_it == combo_index.end() && !spec.keep_all_null_rows) {
      continue;  // unlisted dimension value (Eq. 3 semantics)
    }

    Row key = ProjectRow(row, key_idx);
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      Row out;
      out.reserve(num_key + num_cells);
      out.insert(out.end(), key.begin(), key.end());
      out.resize(num_key + num_cells, Value::Null());
      result.AddRow(std::move(out));
      OutputSlot slot{result.num_rows() - 1,
                      std::vector<bool>(spec.num_combos(), false)};
      it = by_key.emplace(std::move(key), std::move(slot)).first;
    }
    if (combo_it == combo_index.end()) {
      continue;  // keep_all_null_rows: the key row exists, no cell to fill
    }
    size_t c = combo_it->second;
    OutputSlot& slot = it->second;
    if (slot.combo_filled[c]) {
      return Status::ConstraintViolation(
          StrCat("GPIVOT input violates key: duplicate (",
                 RowToString(it->first), ", ", RowToString(combo), ")"));
    }
    slot.combo_filled[c] = true;
    Row& out = shim_rows[slot.row_position];
    for (size_t b = 0; b < num_measures; ++b) {
      out[num_key + c * num_measures + b] = row[on_idx[b]];
    }
  }

  GPIVOT_RETURN_NOT_OK(result.SetKey(key_names));
  return result;
}

}  // namespace

Result<Table> GPivot(const Table& input, const PivotSpec& spec,
                     const ExecContext& ctx) {
  obs::ScopedSpan span = obs::TraceEnabled(ctx.tracer)
                             ? obs::ScopedSpan(ctx.tracer, "GPivot")
                             : obs::ScopedSpan();
  obs::ScopedLatency latency(ctx.metrics, "core.gpivot.ms");
  GPIVOT_ASSIGN_OR_RETURN(Table result, GPivotImpl(input, spec, ctx));
  if (ctx.cost != nullptr && ctx.cost_node >= 0) {
    obs::NodeStats stats;
    stats.invocations = 1;
    stats.rows_in = input.num_rows();
    stats.rows_out = result.num_rows();
    ctx.cost->Record(ctx.cost_node, stats);
  }
  if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
    ctx.metrics->AddCounter("core.gpivot.calls");
    ctx.metrics->AddCounter("core.gpivot.rows_in", input.num_rows());
    ctx.metrics->AddCounter("core.gpivot.rows_out", result.num_rows());
  }
  if (span.active()) {
    span.AddAttr("rows_in", static_cast<uint64_t>(input.num_rows()));
    span.AddAttr("rows_out", static_cast<uint64_t>(result.num_rows()));
  }
  return result;
}

Result<Table> GUnpivot(const Table& input, const UnpivotSpec& spec) {
  GPIVOT_RETURN_NOT_OK(spec.Validate(input.schema()));
  GPIVOT_ASSIGN_OR_RETURN(Schema output_schema,
                          spec.OutputSchema(input.schema()));

  // K = input columns not consumed by any group.
  std::unordered_set<std::string> consumed;
  for (const std::string& name : spec.AllSourceColumns()) {
    consumed.insert(name);
  }
  std::vector<size_t> key_idx;
  for (size_t i = 0; i < input.schema().num_columns(); ++i) {
    if (consumed.count(input.schema().column(i).name) == 0) {
      key_idx.push_back(i);
    }
  }

  // Per group: source column indices.
  std::vector<std::vector<size_t>> group_src_idx;
  group_src_idx.reserve(spec.groups.size());
  for (const UnpivotGroup& g : spec.groups) {
    GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                            input.schema().ColumnIndices(g.source_columns));
    group_src_idx.push_back(std::move(idx));
  }

  Table result(output_schema);
  for (const Row& row : input.rows()) {
    for (size_t g = 0; g < spec.groups.size(); ++g) {
      bool all_null = true;
      for (size_t idx : group_src_idx[g]) {
        if (!row[idx].is_null()) {
          all_null = false;
          break;
        }
      }
      if (all_null) continue;
      Row out;
      out.reserve(output_schema.num_columns());
      for (size_t idx : key_idx) out.push_back(row[idx]);
      for (const Value& v : spec.groups[g].combo) out.push_back(v);
      for (size_t idx : group_src_idx[g]) out.push_back(row[idx]);
      result.AddRow(std::move(out));
    }
  }
  return result;
}

Result<Table> SimplePivot(const Table& input, const std::string& by,
                          const std::string& on,
                          const std::vector<Value>& values) {
  PivotSpec spec;
  spec.pivot_by = {by};
  spec.pivot_on = {on};
  for (const Value& v : values) spec.combos.push_back({v});
  GPIVOT_ASSIGN_OR_RETURN(Table pivoted, GPivot(input, spec));
  // Rename "value**measure" columns to just "value" (Fig. 1 convention).
  std::vector<std::pair<std::string, std::string>> renames;
  for (size_t c = 0; c < spec.combos.size(); ++c) {
    renames.emplace_back(spec.OutputColumnName(c, 0),
                         spec.combos[c][0].ToString());
  }
  GPIVOT_ASSIGN_OR_RETURN(Table renamed,
                          exec::RenameColumns(pivoted, renames));
  GPIVOT_RETURN_NOT_OK(renamed.SetKey(pivoted.key()));
  return renamed;
}

Result<Table> SimpleUnpivot(const Table& input,
                            const std::vector<std::string>& columns,
                            const std::string& name_column,
                            const std::string& value_column) {
  UnpivotSpec spec;
  spec.name_columns = {name_column};
  spec.value_columns = {value_column};
  for (const std::string& name : columns) {
    spec.groups.push_back({{Value::Str(name)}, {name}});
  }
  return GUnpivot(input, spec);
}

Result<Table> GPivotReference(const Table& input, const PivotSpec& spec) {
  GPIVOT_RETURN_NOT_OK(spec.Validate(input.schema()));
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          spec.KeyColumns(input.schema()));

  std::optional<Table> accumulated;
  if (spec.keep_all_null_rows) {
    // §8 variant: seed with every distinct key, then left-outer join the
    // per-combo terms so keys without any listed combo survive with all-⊥
    // cells.
    GPIVOT_ASSIGN_OR_RETURN(Table keys, exec::Project(input, key_names));
    GPIVOT_ASSIGN_OR_RETURN(accumulated, exec::Distinct(keys));
  }
  for (size_t c = 0; c < spec.num_combos(); ++c) {
    // σ_{(A1..Am)=(a^c)}(V)
    std::vector<ExprPtr> conjuncts;
    for (size_t d = 0; d < spec.pivot_by.size(); ++d) {
      conjuncts.push_back(Eq(Col(spec.pivot_by[d]), Lit(spec.combos[c][d])));
    }
    GPIVOT_ASSIGN_OR_RETURN(Table selected,
                            exec::Select(input, And(conjuncts)));
    // π_{K, B1..Bn}
    std::vector<std::string> projection = key_names;
    projection.insert(projection.end(), spec.pivot_on.begin(),
                      spec.pivot_on.end());
    GPIVOT_ASSIGN_OR_RETURN(Table projected,
                            exec::Project(selected, projection));
    // rename each Bj to its pivoted output name
    std::vector<std::pair<std::string, std::string>> renames;
    for (size_t b = 0; b < spec.pivot_on.size(); ++b) {
      renames.emplace_back(spec.pivot_on[b], spec.OutputColumnName(c, b));
    }
    GPIVOT_ASSIGN_OR_RETURN(Table term,
                            exec::RenameColumns(projected, renames));
    if (!accumulated.has_value()) {
      accumulated = std::move(term);
      continue;
    }
    // Full outer join on K.
    exec::JoinSpec join;
    join.left_keys = key_names;
    join.right_keys = key_names;
    join.type = exec::JoinType::kFullOuter;
    GPIVOT_ASSIGN_OR_RETURN(Table joined,
                            exec::HashJoin(*accumulated, term, join));
    accumulated = std::move(joined);
  }
  GPIVOT_RETURN_NOT_OK(accumulated->SetKey(key_names));
  return *std::move(accumulated);
}

}  // namespace gpivot
