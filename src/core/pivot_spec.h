#ifndef GPIVOT_CORE_PIVOT_SPEC_H_
#define GPIVOT_CORE_PIVOT_SPEC_H_

#include <string>
#include <vector>

#include "relation/row.h"
#include "relation/schema.h"
#include "relation/value.h"
#include "util/result.h"

namespace gpivot {

// The paper's output-column naming protocol (§4.1): the cell holding
// measure Bj for dimension-value combination (a1, ..., am) is named
// "a1**a2**...**am**Bj".
inline constexpr char kPivotNameSeparator[] = "**";

// Builds "a1**...**am**measure".
std::string PivotColumnName(const Row& combo, const std::string& measure);

// Decodes a pivoted column name into its combo value strings and measure
// name: "Sony**TV**Price" -> ({"Sony","TV"}, "Price"). `arity` = m.
Result<std::pair<std::vector<std::string>, std::string>> ParsePivotColumnName(
    const std::string& name, size_t arity);

// GPIVOT parameters (Eq. 3). Input table V(K, A1..Am, B1..Bn) where
// (K, A1..Am) forms a key; K is implicitly every column not listed here.
//
//   GPIVOT^{combos}_{[pivot_by] on [pivot_on]}(V)
//
// pivots the measures `pivot_on` by the dimensions `pivot_by`, emitting the
// listed dimension-value `combos` as output columns. The output key is K.
struct PivotSpec {
  std::vector<std::string> pivot_by;  // A1..Am (dimension columns)
  std::vector<std::string> pivot_on;  // B1..Bn (measure columns)
  std::vector<Row> combos;            // output params {(a1..am)}, each of size m

  // §8's semantic variant (the PIVOT of [8] / SQL Server): emit one output
  // row for *every* key value in the input, even when none of its dimension
  // values is listed — such rows carry all-⊥ cells. Under the default
  // (Eq. 3) semantics those keys are absent. The rewrite and update
  // propagation rules are proven for the default; views using this variant
  // are maintained with the insert/delete rules (see §8's discussion of the
  // auxiliary COUNT view this would otherwise require).
  bool keep_all_null_rows = false;

  size_t num_dimensions() const { return pivot_by.size(); }
  size_t num_measures() const { return pivot_on.size(); }
  size_t num_combos() const { return combos.size(); }

  // Output column name for combo index `c` and measure index `b`.
  std::string OutputColumnName(size_t c, size_t b) const;
  // All pivoted output column names, combo-major.
  std::vector<std::string> OutputColumnNames() const;

  // The non-pivoted (key) columns K of `input_schema`, in schema order.
  Result<std::vector<std::string>> KeyColumns(const Schema& input_schema) const;

  // Output schema: K columns followed by num_combos * num_measures pivoted
  // cells. Fails when referenced columns are missing or combos malformed.
  Result<Schema> OutputSchema(const Schema& input_schema) const;

  // Structural validation against an input schema (columns exist, disjoint,
  // combos have arity m and no ⊥ components, no duplicate combos).
  Status Validate(const Schema& input_schema) const;

  // Cartesian-product helper: combos = dims[0] x dims[1] x ... (Fig. 5's
  // "{Sony, Panasonic} x {TV, VCR}" notation).
  static std::vector<Row> CrossProduct(const std::vector<std::vector<Value>>& dims);

  std::string ToString() const;
  bool operator==(const PivotSpec& other) const;
};

// One decoding group of a GUNPIVOT (Eq. 4): the input columns
// `source_columns` (size n) all carry dimension values `combo` (size m).
struct UnpivotGroup {
  Row combo;
  std::vector<std::string> source_columns;

  bool operator==(const UnpivotGroup& other) const {
    return combo == other.combo && source_columns == other.source_columns;
  }
};

// GUNPIVOT parameters (Eq. 4): decodes pivoted columns back into rows.
// Output: K columns, then `name_columns` (the decoded dimensions A1..Am),
// then `value_columns` (the decoded measures B1..Bn). Groups whose source
// cells are all ⊥ produce no row.
struct UnpivotSpec {
  std::vector<std::string> name_columns;   // output A1..Am
  std::vector<std::string> value_columns;  // output B1..Bn
  std::vector<UnpivotGroup> groups;

  size_t num_dimensions() const { return name_columns.size(); }
  size_t num_measures() const { return value_columns.size(); }

  // Every input column consumed by some group.
  std::vector<std::string> AllSourceColumns() const;

  Result<Schema> OutputSchema(const Schema& input_schema) const;
  Status Validate(const Schema& input_schema) const;

  // The exact inverse of `spec` applied to its output: decodes every
  // pivoted cell back into (A1..Am, B1..Bn) rows.
  static UnpivotSpec InverseOf(const PivotSpec& spec);

  std::string ToString() const;
  bool operator==(const UnpivotSpec& other) const;
};

}  // namespace gpivot

#endif  // GPIVOT_CORE_PIVOT_SPEC_H_
