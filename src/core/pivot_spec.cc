#include "core/pivot_spec.h"

#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

std::string PivotColumnName(const Row& combo, const std::string& measure) {
  std::string name;
  for (const Value& v : combo) {
    name += v.ToString();
    name += kPivotNameSeparator;
  }
  name += measure;
  return name;
}

Result<std::pair<std::vector<std::string>, std::string>> ParsePivotColumnName(
    const std::string& name, size_t arity) {
  std::vector<std::string> parts = Split(name, kPivotNameSeparator);
  if (parts.size() != arity + 1) {
    return Status::InvalidArgument(
        StrCat("pivoted column name '", name, "' does not have ", arity,
               " dimension components"));
  }
  std::string measure = parts.back();
  parts.pop_back();
  return std::make_pair(std::move(parts), std::move(measure));
}

std::string PivotSpec::OutputColumnName(size_t c, size_t b) const {
  GPIVOT_CHECK(c < combos.size() && b < pivot_on.size())
      << "OutputColumnName(" << c << ", " << b << ") out of range";
  return PivotColumnName(combos[c], pivot_on[b]);
}

std::vector<std::string> PivotSpec::OutputColumnNames() const {
  std::vector<std::string> names;
  names.reserve(combos.size() * pivot_on.size());
  for (size_t c = 0; c < combos.size(); ++c) {
    for (size_t b = 0; b < pivot_on.size(); ++b) {
      names.push_back(OutputColumnName(c, b));
    }
  }
  return names;
}

Result<std::vector<std::string>> PivotSpec::KeyColumns(
    const Schema& input_schema) const {
  GPIVOT_RETURN_NOT_OK(Validate(input_schema));
  std::unordered_set<std::string> pivoted(pivot_by.begin(), pivot_by.end());
  pivoted.insert(pivot_on.begin(), pivot_on.end());
  std::vector<std::string> key;
  for (const Column& c : input_schema.columns()) {
    if (pivoted.count(c.name) == 0) key.push_back(c.name);
  }
  return key;
}

Result<Schema> PivotSpec::OutputSchema(const Schema& input_schema) const {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key,
                          KeyColumns(input_schema));
  std::vector<Column> columns;
  for (const std::string& name : key) {
    columns.push_back(input_schema.column(input_schema.ColumnIndexOrDie(name)));
  }
  for (size_t c = 0; c < combos.size(); ++c) {
    for (size_t b = 0; b < pivot_on.size(); ++b) {
      DataType type = input_schema
                          .column(input_schema.ColumnIndexOrDie(pivot_on[b]))
                          .type;
      columns.push_back({OutputColumnName(c, b), type});
    }
  }
  return Schema(std::move(columns));
}

Status PivotSpec::Validate(const Schema& input_schema) const {
  if (pivot_by.empty()) {
    return Status::InvalidArgument("GPIVOT needs at least one pivot-by column");
  }
  if (pivot_on.empty()) {
    return Status::InvalidArgument("GPIVOT needs at least one pivot-on column");
  }
  if (combos.empty()) {
    return Status::InvalidArgument("GPIVOT needs at least one output combo");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& name : pivot_by) {
    if (!input_schema.HasColumn(name)) {
      return Status::NotFound(StrCat("pivot-by column '", name, "' missing"));
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(
          StrCat("column '", name, "' listed twice in GPIVOT parameters"));
    }
  }
  for (const std::string& name : pivot_on) {
    if (!input_schema.HasColumn(name)) {
      return Status::NotFound(StrCat("pivot-on column '", name, "' missing"));
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(
          StrCat("column '", name, "' listed twice in GPIVOT parameters"));
    }
  }
  std::unordered_set<Row, RowHash, RowEq> combo_set;
  for (const Row& combo : combos) {
    if (combo.size() != pivot_by.size()) {
      return Status::InvalidArgument(
          StrCat("combo ", RowToString(combo), " arity != ", pivot_by.size()));
    }
    for (const Value& v : combo) {
      if (v.is_null()) {
        return Status::InvalidArgument("⊥ not allowed in GPIVOT output combos");
      }
    }
    if (!combo_set.insert(combo).second) {
      return Status::InvalidArgument(
          StrCat("duplicate combo ", RowToString(combo)));
    }
  }
  return Status::OK();
}

std::vector<Row> PivotSpec::CrossProduct(
    const std::vector<std::vector<Value>>& dims) {
  std::vector<Row> result = {{}};
  for (const std::vector<Value>& dim : dims) {
    std::vector<Row> next;
    next.reserve(result.size() * dim.size());
    for (const Row& prefix : result) {
      for (const Value& v : dim) {
        Row combo = prefix;
        combo.push_back(v);
        next.push_back(std::move(combo));
      }
    }
    result = std::move(next);
  }
  return result;
}

std::string PivotSpec::ToString() const {
  std::vector<std::string> combo_strings;
  combo_strings.reserve(combos.size());
  for (const Row& combo : combos) combo_strings.push_back(RowToString(combo));
  return StrCat("GPIVOT^{", Join(combo_strings, ", "), "}_{[",
                Join(pivot_by, ", "), "] on [", Join(pivot_on, ", "), "]}",
                keep_all_null_rows ? " KEEP ⊥-ROWS" : "");
}

bool PivotSpec::operator==(const PivotSpec& other) const {
  return pivot_by == other.pivot_by && pivot_on == other.pivot_on &&
         combos == other.combos &&
         keep_all_null_rows == other.keep_all_null_rows;
}

std::vector<std::string> UnpivotSpec::AllSourceColumns() const {
  std::vector<std::string> all;
  for (const UnpivotGroup& g : groups) {
    all.insert(all.end(), g.source_columns.begin(), g.source_columns.end());
  }
  return all;
}

Result<Schema> UnpivotSpec::OutputSchema(const Schema& input_schema) const {
  GPIVOT_RETURN_NOT_OK(Validate(input_schema));
  std::unordered_set<std::string> consumed;
  for (const std::string& name : AllSourceColumns()) consumed.insert(name);
  std::vector<Column> columns;
  for (const Column& c : input_schema.columns()) {
    if (consumed.count(c.name) == 0) columns.push_back(c);
  }
  // Dimension column types come from the first group's combo values.
  for (size_t d = 0; d < name_columns.size(); ++d) {
    columns.push_back({name_columns[d], groups[0].combo[d].type()});
  }
  // Measure column types come from the first group's source columns.
  for (size_t b = 0; b < value_columns.size(); ++b) {
    DataType type =
        input_schema
            .column(input_schema.ColumnIndexOrDie(groups[0].source_columns[b]))
            .type;
    columns.push_back({value_columns[b], type});
  }
  return Schema(std::move(columns));
}

Status UnpivotSpec::Validate(const Schema& input_schema) const {
  if (groups.empty()) {
    return Status::InvalidArgument("GUNPIVOT needs at least one group");
  }
  if (name_columns.empty() && value_columns.empty()) {
    return Status::InvalidArgument("GUNPIVOT needs output columns");
  }
  std::unordered_set<std::string> consumed;
  std::unordered_set<Row, RowHash, RowEq> combo_set;
  for (const UnpivotGroup& g : groups) {
    if (g.combo.size() != name_columns.size()) {
      return Status::InvalidArgument(
          StrCat("group combo ", RowToString(g.combo), " arity != ",
                 name_columns.size()));
    }
    if (g.source_columns.size() != value_columns.size()) {
      return Status::InvalidArgument(
          StrCat("group for ", RowToString(g.combo), " has ",
                 g.source_columns.size(), " source columns, expected ",
                 value_columns.size()));
    }
    if (!combo_set.insert(g.combo).second) {
      return Status::InvalidArgument(
          StrCat("duplicate group combo ", RowToString(g.combo)));
    }
    for (const std::string& name : g.source_columns) {
      if (!input_schema.HasColumn(name)) {
        return Status::NotFound(
            StrCat("GUNPIVOT source column '", name, "' missing"));
      }
      if (!consumed.insert(name).second) {
        return Status::InvalidArgument(
            StrCat("GUNPIVOT source column '", name, "' used twice"));
      }
    }
  }
  for (const std::string& name : name_columns) {
    if (input_schema.HasColumn(name) && consumed.count(name) == 0) {
      return Status::InvalidArgument(
          StrCat("GUNPIVOT output column '", name, "' collides with input"));
    }
  }
  for (const std::string& name : value_columns) {
    if (input_schema.HasColumn(name) && consumed.count(name) == 0) {
      return Status::InvalidArgument(
          StrCat("GUNPIVOT output column '", name, "' collides with input"));
    }
  }
  return Status::OK();
}

UnpivotSpec UnpivotSpec::InverseOf(const PivotSpec& spec) {
  UnpivotSpec result;
  result.name_columns = spec.pivot_by;
  result.value_columns = spec.pivot_on;
  result.groups.reserve(spec.combos.size());
  for (size_t c = 0; c < spec.combos.size(); ++c) {
    UnpivotGroup group;
    group.combo = spec.combos[c];
    for (size_t b = 0; b < spec.pivot_on.size(); ++b) {
      group.source_columns.push_back(spec.OutputColumnName(c, b));
    }
    result.groups.push_back(std::move(group));
  }
  return result;
}

std::string UnpivotSpec::ToString() const {
  std::vector<std::string> group_strings;
  group_strings.reserve(groups.size());
  for (const UnpivotGroup& g : groups) {
    group_strings.push_back(
        StrCat(RowToString(g.combo), ":(", Join(g.source_columns, ", "), ")"));
  }
  return StrCat("GUNPIVOT[", Join(group_strings, "; "), "] -> (",
                Join(name_columns, ", "), " | ", Join(value_columns, ", "),
                ")");
}

bool UnpivotSpec::operator==(const UnpivotSpec& other) const {
  return name_columns == other.name_columns &&
         value_columns == other.value_columns && groups == other.groups;
}

}  // namespace gpivot
