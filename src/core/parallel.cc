#include "core/parallel.h"

#include <optional>
#include <unordered_map>

#include "core/gpivot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gpivot {

std::vector<Table> PartitionRows(const Table& input, size_t num_partitions) {
  GPIVOT_CHECK(num_partitions > 0) << "need at least one partition";
  std::vector<Table> partitions(num_partitions, Table(input.schema()));
  for (Table& p : partitions) {
    Status st = p.SetKey(input.key());
    GPIVOT_CHECK(st.ok()) << st.ToString();
    p.mutable_rows().reserve(input.num_rows() / num_partitions + 1);
  }
  for (size_t i = 0; i < input.num_rows(); ++i) {
    partitions[i % num_partitions].AddRow(input.rows()[i]);
  }
  return partitions;
}

Result<Table> MergePivotedPartials(const std::vector<Table>& partials,
                                   const PivotSpec& spec,
                                   const Schema& output_schema) {
  const size_t num_measures = spec.num_measures();
  const size_t num_cells = spec.num_combos() * num_measures;
  const size_t num_key = output_schema.num_columns() - num_cells;

  size_t max_keys = 0;
  for (const Table& partial : partials) max_keys += partial.num_rows();
  Table result(output_schema);
  result.mutable_rows().reserve(max_keys);
  std::unordered_map<Row, size_t, RowHash, RowEq> by_key;
  by_key.reserve(max_keys);
  for (const Table& partial : partials) {
    if (partial.schema() != output_schema) {
      return Status::InvalidArgument(
          StrCat("partial schema ", partial.schema().ToString(),
                 " != expected ", output_schema.ToString()));
    }
    for (const Row& row : partial.rows()) {
      Row key(row.begin(), row.begin() + num_key);
      auto it = by_key.find(key);
      if (it == by_key.end()) {
        by_key.emplace(std::move(key), result.num_rows());
        result.AddRow(row);
        continue;
      }
      // Group-wise merge (insert-case function f): a group present in the
      // incoming partial fills the ⊥ slot of the accumulated row.
      Row& accumulated = result.mutable_rows()[it->second];
      for (size_t c = 0; c < spec.num_combos(); ++c) {
        bool incoming_present = false;
        bool existing_present = false;
        for (size_t b = 0; b < num_measures; ++b) {
          size_t cell = num_key + c * num_measures + b;
          if (!row[cell].is_null()) incoming_present = true;
          if (!accumulated[cell].is_null()) existing_present = true;
        }
        if (!incoming_present) continue;
        if (existing_present) {
          return Status::ConstraintViolation(
              StrCat("two partitions carry group ",
                     RowToString(spec.combos[c]), " for key ",
                     RowToString(Row(row.begin(), row.begin() + num_key))));
        }
        for (size_t b = 0; b < num_measures; ++b) {
          size_t cell = num_key + c * num_measures + b;
          accumulated[cell] = row[cell];
        }
      }
    }
  }
  return result;
}

Result<Table> GPivotParallel(const Table& input, const PivotSpec& spec,
                             size_t num_partitions, const ExecContext& ctx) {
  obs::ScopedSpan span = obs::TraceEnabled(ctx.tracer)
                             ? obs::ScopedSpan(ctx.tracer, "GPivotParallel")
                             : obs::ScopedSpan();
  obs::ScopedLatency latency(ctx.metrics, "core.gpivot_parallel.ms");
  if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
    ctx.metrics->AddCounter("core.gpivot_parallel.calls");
    ctx.metrics->AddCounter("core.gpivot_parallel.rows_in", input.num_rows());
    ctx.metrics->AddCounter("core.gpivot_parallel.partitions", num_partitions);
  }
  if (span.active()) {
    span.AddAttr("rows_in", static_cast<uint64_t>(input.num_rows()));
    span.AddAttr("partitions", static_cast<uint64_t>(num_partitions));
  }
  GPIVOT_RETURN_NOT_OK(spec.Validate(input.schema()));
  GPIVOT_ASSIGN_OR_RETURN(Schema output_schema,
                          spec.OutputSchema(input.schema()));
  std::vector<Table> partitions = PartitionRows(input, num_partitions);
  // Local pivots are independent; run them on the pool. Result<Table> has
  // no default state, so slots are optionals filled exactly once each.
  // The per-partition calls keep ctx's metrics (partition contents — and so
  // the counters — are scheduling-independent) but drop the tracer: a
  // worker-thread span could not nest under this one deterministically.
  ExecContext partition_ctx = ctx;
  partition_ctx.tracer = nullptr;
  std::vector<std::optional<Result<Table>>> slots(num_partitions);
  ParallelFor(ctx, num_partitions, [&](size_t p) {
    slots[p].emplace(GPivot(partitions[p], spec, partition_ctx));
  });
  std::vector<Table> partials;
  partials.reserve(num_partitions);
  for (std::optional<Result<Table>>& slot : slots) {
    // Surface the first failure in partition order (deterministic pick).
    GPIVOT_ASSIGN_OR_RETURN(Table partial, std::move(*slot));
    partials.push_back(std::move(partial));
  }
  GPIVOT_ASSIGN_OR_RETURN(Table merged,
                          MergePivotedPartials(partials, spec,
                                               output_schema));
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          spec.KeyColumns(input.schema()));
  GPIVOT_RETURN_NOT_OK(merged.SetKey(key_names));
  return merged;
}

}  // namespace gpivot
