#ifndef GPIVOT_CORE_GPIVOT_H_
#define GPIVOT_CORE_GPIVOT_H_

#include <string>
#include <vector>

#include "core/pivot_spec.h"
#include "relation/table.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot {

// Executes GPIVOT (Eq. 3) over `input`. Requirements:
//  * every column in spec.pivot_by / spec.pivot_on exists in the input;
//  * (K, A1..Am) is a key of the input — violations among listed combos are
//    detected and reported as ConstraintViolation.
// Output: one row per K value having at least one listed combo; cells the
// input lacks are ⊥. The output's declared key is K. Rows whose dimension
// values match no listed combo are ignored (they join into no output row),
// exactly as the full-outer-join formulation prescribes.
//
// The trailing ExecContext only feeds observability (core.gpivot.* counters
// and a "GPivot" span); execution is single-pass sequential — use
// GPivotParallel (core/parallel.h) for the §4.3 partitioned variant.
Result<Table> GPivot(const Table& input, const PivotSpec& spec,
                     const ExecContext& ctx = {});

// Executes GUNPIVOT (Eq. 4): one output row per input row and group whose
// source cells are not all ⊥.
Result<Table> GUnpivot(const Table& input, const UnpivotSpec& spec);

// Simple PIVOT (Eq. 1): pivot column `on` by column `by`, emitting
// `values`; output columns are named by the value itself ("TV", not
// "TV**Price"), matching Fig. 1.
Result<Table> SimplePivot(const Table& input, const std::string& by,
                          const std::string& on,
                          const std::vector<Value>& values);

// Simple UNPIVOT (Eq. 2): turns columns `columns` into (name, value) pairs
// named `name_column` / `value_column`, dropping ⊥ cells — Fig. 1.
Result<Table> SimpleUnpivot(const Table& input,
                            const std::vector<std::string>& columns,
                            const std::string& name_column,
                            const std::string& value_column);

// Executable specification of Eq. 3: literally materializes
// π_{K,B1..Bn}(σ_{(A1..Am)=(a_i)}(V)) for every combo and full-outer-joins
// the results on K. Quadratically slower than GPivot; exists so tests can
// verify the optimized operator against the paper's definition.
Result<Table> GPivotReference(const Table& input, const PivotSpec& spec);

}  // namespace gpivot

#endif  // GPIVOT_CORE_GPIVOT_H_
