#include "exec/join.h"

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "exec/partition.h"
#include "exec/vector_ops.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/small_vector.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gpivot::exec {

const char* JoinTypeToString(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "INNER";
    case JoinType::kLeftOuter:
      return "LEFT OUTER";
    case JoinType::kFullOuter:
      return "FULL OUTER";
    case JoinType::kLeftSemi:
      return "LEFT SEMI";
    case JoinType::kLeftAnti:
      return "LEFT ANTI";
  }
  return "?";
}

namespace {

// Row-key wrapper with NULL poisoning: SQL equi-joins never match NULL keys,
// so NULL-containing keys are excluded from the hash table / probes.
bool KeyHasNull(const Row& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

// Moves per-chunk probe outputs into `result` in chunk order; since chunks
// cover the probe rows contiguously, this reproduces sequential row order.
Table ConcatChunks(Schema schema, std::vector<std::vector<Row>> chunk_rows) {
  size_t total = 0;
  for (const std::vector<Row>& rows : chunk_rows) total += rows.size();
  Table result(std::move(schema));
  result.mutable_rows().reserve(total);
  for (std::vector<Row>& rows : chunk_rows) {
    for (Row& row : rows) result.AddRow(std::move(row));
  }
  return result;
}

// The actual join; the public HashJoin wraps it with instrumentation.
Result<Table> HashJoinImpl(const Table& left, const Table& right,
                           const JoinSpec& spec, const ExecContext& ctx) {
  if (spec.left_keys.size() != spec.right_keys.size()) {
    return Status::InvalidArgument("HashJoin: key lists differ in length");
  }
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> left_key_idx,
                          left.schema().ColumnIndices(spec.left_keys));
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> right_key_idx,
                          right.schema().ColumnIndices(spec.right_keys));

  // Right payload = right columns minus its join keys.
  std::unordered_set<size_t> right_key_set(right_key_idx.begin(),
                                           right_key_idx.end());
  std::vector<size_t> right_payload_idx;
  for (size_t i = 0; i < right.schema().num_columns(); ++i) {
    if (right_key_set.count(i) == 0) right_payload_idx.push_back(i);
  }

  Schema output_schema = left.schema();
  bool semi_or_anti =
      spec.type == JoinType::kLeftSemi || spec.type == JoinType::kLeftAnti;
  if (!semi_or_anti) {
    Schema right_payload_schema = right.schema().Select(right_payload_idx);
    GPIVOT_ASSIGN_OR_RETURN(output_schema,
                            left.schema().Concat(right_payload_schema));
  }

  CompiledExpr residual;
  if (spec.residual != nullptr) {
    if (semi_or_anti) {
      // Residual needs the combined schema; build it for evaluation only.
      Schema right_payload_schema = right.schema().Select(right_payload_idx);
      GPIVOT_ASSIGN_OR_RETURN(Schema combined,
                              left.schema().Concat(right_payload_schema));
      GPIVOT_ASSIGN_OR_RETURN(residual, CompileExpr(spec.residual, combined));
    } else {
      GPIVOT_ASSIGN_OR_RETURN(residual,
                              CompileExpr(spec.residual, output_schema));
    }
  }

  auto combined_row_of = [&](const Row& l, const Row& r) {
    // One exact-capacity allocation per output row. (Copy-then-reserve
    // allocated at the left arity and regrew for the payload columns on
    // every combined row of the probe hot loop.)
    Row out;
    out.reserve(l.size() + right_payload_idx.size());
    out.insert(out.end(), l.begin(), l.end());
    for (size_t i : right_payload_idx) out.push_back(r[i]);
    return out;
  };

  if (spec.type == JoinType::kInner &&
      (left.empty() || right.empty())) {
    return Table(output_schema);
  }

  // Vectorized inner-join fast path: typed key columns on both sides, one
  // hash -> candidate-row bucket table instead of Row-keyed map nodes, and
  // column-major batch hashing of the probe side. Candidates carry ascending
  // build-row indices and are verified with typed key equality, so the match
  // set and emission order are exactly the row path's (which iterates the
  // ascending per-key index list). Falls back below on mixed-type key
  // columns or when the chunk knob disables batching.
  if (spec.type == JoinType::kInner) {
    const size_t chunk_size = EffectiveVectorChunkSize(ctx);
    const bool build_left = left.num_rows() < right.num_rows();
    const Table& build_table = build_left ? left : right;
    const Table& probe_table = build_left ? right : left;
    const std::vector<size_t>& build_key_idx =
        build_left ? left_key_idx : right_key_idx;
    const std::vector<size_t>& probe_key_idx =
        build_left ? right_key_idx : left_key_idx;
    std::optional<KeyColumns> build_keys;
    std::optional<KeyColumns> probe_keys;
    if (chunk_size > 0 && build_table.num_rows() <= UINT32_MAX) {
      build_keys = KeyColumns::Make(build_table, build_key_idx);
      probe_keys = KeyColumns::Make(probe_table, probe_key_idx);
    }
    if (build_keys.has_value() && probe_keys.has_value()) {
      std::unordered_map<size_t, SmallVector<uint32_t, 2>> buckets;
      buckets.reserve(build_table.num_rows());
      for (size_t i = 0; i < build_table.num_rows(); ++i) {
        if (build_keys->HasNull(i)) continue;
        buckets[build_keys->Hash(i)].push_back(static_cast<uint32_t>(i));
      }
      const size_t num_probe = probe_table.num_rows();
      // Hash and null-test the whole probe side up front (in row chunks):
      // the hashes drive both the bucket lookups and the skew-aware chunk
      // boundaries below.
      std::vector<size_t> probe_hashes(num_probe);
      std::vector<uint8_t> probe_nulls(num_probe);
      ParallelForChunks(ctx, num_probe,
                        [&](size_t /*chunk*/, size_t begin, size_t end) {
                          for (size_t cb = begin; cb < end; cb += chunk_size) {
                            const size_t ce = std::min(end, cb + chunk_size);
                            probe_keys->BatchHash(cb, ce,
                                                  probe_hashes.data() + cb);
                            probe_keys->BatchHasNull(cb, ce,
                                                     probe_nulls.data() + cb);
                          }
                        });
      // Skew-aware probe split: chunk boundaries equalize estimated probe
      // cost (1 + candidate build matches per row) instead of raw row
      // counts, so a hot key whose bucket holds most of the build side no
      // longer serializes one chunk. Chunks stay contiguous and ascending,
      // so ConcatChunks still reproduces sequential row order exactly —
      // output bytes are invariant to where the boundaries land.
      const size_t chunks = NumChunks(ctx, num_probe);
      std::vector<size_t> bounds;
      if (chunks > 1) {
        std::vector<uint64_t> cumulative(num_probe + 1, 0);
        for (size_t r = 0; r < num_probe; ++r) {
          uint64_t cost = 1;
          if (!probe_nulls[r]) {
            auto it = buckets.find(probe_hashes[r]);
            if (it != buckets.end()) cost += it->second.size();
          }
          cumulative[r + 1] = cumulative[r] + cost;
        }
        bounds = WeightedChunkBoundaries(cumulative, chunks);
      } else {
        bounds = {0, num_probe};
      }
      std::vector<std::vector<Row>> chunk_rows(chunks);
      ParallelFor(ExecContext{chunks, 0}, chunks, [&](size_t chunk) {
        std::vector<Row>& out_rows = chunk_rows[chunk];
        for (size_t r = bounds[chunk]; r < bounds[chunk + 1]; ++r) {
          if (probe_nulls[r]) continue;
          auto it = buckets.find(probe_hashes[r]);
          if (it == buckets.end()) continue;
          for (uint32_t bi : it->second) {
            if (!probe_keys->RowsEqual(r, *build_keys, bi)) continue;
            const Row& lrow = build_left ? build_table.RowAt(bi)
                                         : probe_table.RowAt(r);
            const Row& rrow = build_left ? probe_table.RowAt(r)
                                         : build_table.RowAt(bi);
            Row out = combined_row_of(lrow, rrow);
            if (residual && !ValueIsTrue(residual(out))) continue;
            out_rows.push_back(std::move(out));
          }
        }
      });
      return ConcatChunks(output_schema, std::move(chunk_rows));
    }
  }

  // Inner joins build the hash table on the smaller side; delta-sized
  // inputs (the common IVM case) then avoid hashing the large table.
  if (spec.type == JoinType::kInner && left.num_rows() < right.num_rows()) {
    std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> build;
    build.reserve(left.num_rows());
    for (size_t i = 0; i < left.num_rows(); ++i) {
      Row key = ProjectRow(left.rows()[i], left_key_idx);
      if (KeyHasNull(key)) continue;
      build[std::move(key)].push_back(i);
    }
    std::vector<std::vector<Row>> chunk_rows(NumChunks(ctx, right.num_rows()));
    ParallelForChunks(
        ctx, right.num_rows(), [&](size_t chunk, size_t begin, size_t end) {
          std::vector<Row>& out_rows = chunk_rows[chunk];
          // Reuse one scratch key row across probes to avoid per-row allocs.
          Row key(right_key_idx.size());
          for (size_t r = begin; r < end; ++r) {
            const Row& rrow = right.rows()[r];
            for (size_t i = 0; i < right_key_idx.size(); ++i) {
              key[i] = rrow[right_key_idx[i]];
            }
            if (KeyHasNull(key)) continue;
            auto it = build.find(key);
            if (it == build.end()) continue;
            for (size_t li : it->second) {
              Row out = combined_row_of(left.rows()[li], rrow);
              if (residual && !ValueIsTrue(residual(out))) continue;
              out_rows.push_back(std::move(out));
            }
          }
        });
    return ConcatChunks(output_schema, std::move(chunk_rows));
  }

  // Build side: right.
  std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> build;
  build.reserve(right.num_rows());
  for (size_t i = 0; i < right.num_rows(); ++i) {
    Row key = ProjectRow(right.rows()[i], right_key_idx);
    if (KeyHasNull(key)) continue;
    build[std::move(key)].push_back(i);
  }

  // Matched-flag per right row; written concurrently by probe chunks
  // (monotonic set-to-1, so relaxed ordering suffices — ParallelFor's join
  // orders the flags before the right-remainder scan below).
  std::vector<std::atomic<uint8_t>> right_matched(right.num_rows());

  std::vector<std::vector<Row>> chunk_rows(NumChunks(ctx, left.num_rows()));
  ParallelForChunks(
      ctx, left.num_rows(), [&](size_t chunk, size_t begin, size_t end) {
        std::vector<Row>& out_rows = chunk_rows[chunk];
        // Reuse one scratch key row across probes to avoid per-row allocs.
        Row key(left_key_idx.size());
        for (size_t r = begin; r < end; ++r) {
          const Row& lrow = left.rows()[r];
          for (size_t i = 0; i < left_key_idx.size(); ++i) {
            key[i] = lrow[left_key_idx[i]];
          }
          bool matched = false;
          if (!KeyHasNull(key)) {
            auto it = build.find(key);
            if (it != build.end()) {
              for (size_t ri : it->second) {
                Row out = combined_row_of(lrow, right.rows()[ri]);
                if (residual && !ValueIsTrue(residual(out))) continue;
                matched = true;
                right_matched[ri].store(1, std::memory_order_relaxed);
                switch (spec.type) {
                  case JoinType::kInner:
                  case JoinType::kLeftOuter:
                  case JoinType::kFullOuter:
                    out_rows.push_back(std::move(out));
                    break;
                  case JoinType::kLeftSemi:
                  case JoinType::kLeftAnti:
                    break;  // handled below
                }
                if (semi_or_anti) break;  // one match decides
              }
            }
          }
          switch (spec.type) {
            case JoinType::kLeftSemi:
              if (matched) out_rows.push_back(lrow);
              break;
            case JoinType::kLeftAnti:
              if (!matched) out_rows.push_back(lrow);
              break;
            case JoinType::kLeftOuter:
            case JoinType::kFullOuter:
              if (!matched) {
                Row out = lrow;
                out.resize(output_schema.num_columns(), Value::Null());
                out_rows.push_back(std::move(out));
              }
              break;
            case JoinType::kInner:
              break;
          }
        }
      });
  Table result = ConcatChunks(output_schema, std::move(chunk_rows));

  if (spec.type == JoinType::kFullOuter) {
    // Right-only rows: left key columns coalesce to the right key values.
    for (size_t ri = 0; ri < right.num_rows(); ++ri) {
      if (right_matched[ri].load(std::memory_order_relaxed) != 0) continue;
      Row out(output_schema.num_columns(), Value::Null());
      const Row& rrow = right.rows()[ri];
      for (size_t k = 0; k < left_key_idx.size(); ++k) {
        out[left_key_idx[k]] = rrow[right_key_idx[k]];
      }
      for (size_t p = 0; p < right_payload_idx.size(); ++p) {
        out[left.schema().num_columns() + p] = rrow[right_payload_idx[p]];
      }
      result.AddRow(std::move(out));
    }
  }

  return result;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const JoinSpec& spec, const ExecContext& ctx) {
  obs::ScopedSpan span = obs::TraceEnabled(ctx.tracer)
                             ? obs::ScopedSpan(ctx.tracer, "HashJoin")
                             : obs::ScopedSpan();
  obs::ScopedLatency latency(ctx.metrics, "exec.join.ms");
  GPIVOT_ASSIGN_OR_RETURN(Table result, HashJoinImpl(left, right, spec, ctx));
  // Build/probe sizes mirror HashJoinImpl's side choice: inner joins build
  // on the smaller side, every other type builds on the right.
  bool inner_build_left = spec.type == JoinType::kInner &&
                          left.num_rows() < right.num_rows();
  size_t build_rows = inner_build_left ? left.num_rows() : right.num_rows();
  size_t probe_rows = inner_build_left ? right.num_rows() : left.num_rows();
  if (ctx.cost != nullptr && ctx.cost_node >= 0) {
    obs::NodeStats stats;
    stats.invocations = 1;
    stats.rows_in = left.num_rows() + right.num_rows();
    stats.rows_out = result.num_rows();
    stats.build_rows = build_rows;
    stats.probe_rows = probe_rows;
    ctx.cost->Record(ctx.cost_node, stats);
  }
  if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
    ctx.metrics->AddCounter("exec.join.calls");
    ctx.metrics->AddCounter("exec.join.build_rows", build_rows);
    ctx.metrics->AddCounter("exec.join.probe_rows", probe_rows);
    ctx.metrics->AddCounter("exec.join.rows_out", result.num_rows());
    // Logical output footprint (rows x columns x cell size). A data-derived
    // quantity rather than an allocator probe, so it is byte-identical
    // across thread counts, chunk sizes, and row/vectorized paths; scratch
    // buffers are deliberately excluded.
    ctx.metrics->AddCounter(
        "exec.join.bytes_allocated",
        result.num_rows() * result.schema().num_columns() * sizeof(Value));
  }
  if (span.active()) {
    span.AddAttr("type", JoinTypeToString(spec.type));
    span.AddAttr("build_rows", static_cast<uint64_t>(build_rows));
    span.AddAttr("probe_rows", static_cast<uint64_t>(probe_rows));
    span.AddAttr("rows_out", static_cast<uint64_t>(result.num_rows()));
  }
  return result;
}

Result<Table> EquiJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& keys,
                       const ExecContext& ctx) {
  JoinSpec spec;
  spec.left_keys = keys;
  spec.right_keys = keys;
  spec.type = JoinType::kInner;
  return HashJoin(left, right, spec, ctx);
}

Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const ExprPtr& condition, JoinType type) {
  if (type != JoinType::kInner && type != JoinType::kLeftOuter) {
    return Status::InvalidArgument(
        "NestedLoopJoin supports only INNER and LEFT OUTER");
  }
  GPIVOT_ASSIGN_OR_RETURN(Schema output_schema,
                          left.schema().Concat(right.schema()));
  GPIVOT_ASSIGN_OR_RETURN(CompiledExpr predicate,
                          CompileExpr(condition, output_schema));
  Table result(output_schema);
  for (const Row& lrow : left.rows()) {
    bool matched = false;
    for (const Row& rrow : right.rows()) {
      Row out = lrow;
      out.insert(out.end(), rrow.begin(), rrow.end());
      if (!ValueIsTrue(predicate(out))) continue;
      matched = true;
      result.AddRow(std::move(out));
    }
    if (!matched && type == JoinType::kLeftOuter) {
      Row out = lrow;
      out.resize(output_schema.num_columns(), Value::Null());
      result.AddRow(std::move(out));
    }
  }
  return result;
}

}  // namespace gpivot::exec
