#ifndef GPIVOT_EXEC_BASIC_OPS_H_
#define GPIVOT_EXEC_BASIC_OPS_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "relation/table.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot::exec {

// The trailing ExecContext parameter (defaulted, so existing call sites are
// unaffected) only feeds observability: when ctx.metrics is enabled, each
// op records exec.<op>.{calls,rows_in,rows_out} counters. These ops stay
// sequential regardless of ctx.num_threads.

// σ: rows of `input` for which `predicate` evaluates to TRUE (SQL
// three-valued semantics: NULL filters out).
Result<Table> Select(const Table& input, const ExprPtr& predicate,
                     const ExecContext& ctx = {});

// π (positive): keeps `columns` in the given order. Bag semantics: no
// duplicate elimination.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      const ExecContext& ctx = {});

// π¬ (negative project, the paper's column removal): drops `columns`.
Result<Table> DropColumns(const Table& input,
                          const std::vector<std::string>& columns);

// Computed projection: each output column is an expression over the input.
Result<Table> ProjectExprs(
    const Table& input,
    const std::vector<std::pair<std::string, ExprPtr>>& outputs,
    const ExecContext& ctx = {});

// Renames columns: {old_name -> new_name} pairs.
Result<Table> RenameColumns(
    const Table& input,
    const std::vector<std::pair<std::string, std::string>>& renames);

// ⊎: bag union. Schemas must be identical.
Result<Table> UnionAll(const Table& left, const Table& right,
                       const ExecContext& ctx = {});

// ∸: bag difference (each right row cancels at most one equal left row).
Result<Table> BagDifference(const Table& left, const Table& right,
                            const ExecContext& ctx = {});

// δ: duplicate elimination.
Result<Table> Distinct(const Table& input, const ExecContext& ctx = {});

// Rows of `input` whose key at `key_columns` appears in `keys` (a set of
// projected key rows). Used by maintenance plans to restrict base tables to
// delta-affected keys.
Result<Table> SemiJoinKeySet(const Table& input,
                             const std::vector<std::string>& key_columns,
                             const std::unordered_set<Row, RowHash, RowEq>& keys,
                             const ExecContext& ctx = {});

// The complement of SemiJoinKeySet.
Result<Table> AntiJoinKeySet(const Table& input,
                             const std::vector<std::string>& key_columns,
                             const std::unordered_set<Row, RowHash, RowEq>& keys,
                             const ExecContext& ctx = {});

// Distinct projected key rows of `input` at `key_columns`.
Result<std::unordered_set<Row, RowHash, RowEq>> CollectKeySet(
    const Table& input, const std::vector<std::string>& key_columns);

// Stable sort by the named columns (ascending, NULL first).
Result<Table> SortBy(const Table& input,
                     const std::vector<std::string>& columns);

}  // namespace gpivot::exec

#endif  // GPIVOT_EXEC_BASIC_OPS_H_
