#ifndef GPIVOT_EXEC_PARTITION_H_
#define GPIVOT_EXEC_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpivot::exec {

// Fixed logical-bucket fanout for skew-aware partition assignment. Rows map
// to buckets with hash % kPartitionFanout — a pure function of the data,
// independent of the partition count — and buckets map to partitions by
// observed weight, so one hot key can no longer pin an entire blind
// hash % num_parts partition while its siblings idle. 64 buckets give the
// balancer room at every partition count this codebase uses (threads and
// shards are single-digit to low-double-digit).
inline constexpr size_t kPartitionFanout = 64;

// Greedy longest-processing-time assignment of weighted buckets to
// `num_parts` partitions: buckets in (weight desc, index asc) order each go
// to the currently lightest partition (ties broken toward the lowest
// partition index). Returns part_of[bucket] in [0, num_parts). Deterministic:
// the result is a pure function of (weights, num_parts), never of thread
// scheduling. num_parts must be >= 1.
std::vector<uint32_t> AssignBucketsByWeight(
    const std::vector<uint64_t>& bucket_weights, size_t num_parts);

// Splits [0, n) into `chunks` contiguous ranges of near-equal *cost* given
// each row's cumulative cost prefix (cumulative[0] = 0, cumulative[n] =
// total; non-decreasing). Returns chunks + 1 boundaries with boundaries[0]
// = 0 and boundaries[chunks] = n, non-decreasing, where boundary c is the
// first row whose prefix cost reaches c/chunks of the total. Contiguity is
// what keeps concatenation order-preserving: per-chunk outputs appended in
// chunk order reproduce the sequential row order no matter where the
// boundaries land.
std::vector<size_t> WeightedChunkBoundaries(
    const std::vector<uint64_t>& cumulative, size_t chunks);

}  // namespace gpivot::exec

#endif  // GPIVOT_EXEC_PARTITION_H_
