#ifndef GPIVOT_EXEC_JOIN_H_
#define GPIVOT_EXEC_JOIN_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "relation/table.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot::exec {

enum class JoinType {
  kInner,
  kLeftOuter,
  kFullOuter,
  kLeftSemi,
  kLeftAnti,
};

const char* JoinTypeToString(JoinType type);

struct JoinSpec {
  // Equi-join columns, positionally paired.
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  JoinType type = JoinType::kInner;
  // Optional residual predicate, evaluated over the concatenated
  // (left ++ right-without-its-key-columns) schema.
  ExprPtr residual;
};

// Hash equi-join. Output schema: all left columns followed by the right
// columns minus the right join keys (natural-join style; the key values are
// available via the left columns). For kFullOuter, right-only rows populate
// the left key columns from the right key values (coalesce), everything
// else ⊥. For kLeftSemi/kLeftAnti the output schema is the left schema.
//
// Non-key right columns whose names collide with left columns are an error:
// rename before joining.
//
// With ctx.num_threads > 1 the probe phase runs on contiguous probe-row
// chunks whose per-chunk outputs are concatenated in chunk order, so the
// result is byte-identical to the sequential join (the build phase and the
// full-outer right-remainder scan stay sequential).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const JoinSpec& spec, const ExecContext& ctx = {});

// Convenience: natural inner equi-join on identically named `keys`.
Result<Table> EquiJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& keys,
                       const ExecContext& ctx = {});

// Nested-loop join with an arbitrary predicate over the concatenated
// (left ++ right) schema; right columns keep their names, so callers must
// resolve collisions via renaming first. Supports kInner and kLeftOuter.
Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const ExprPtr& condition, JoinType type);

}  // namespace gpivot::exec

#endif  // GPIVOT_EXEC_JOIN_H_
