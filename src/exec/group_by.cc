#include "exec/group_by.h"

#include <unordered_map>

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::exec {

Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_columns,
                      const std::vector<AggSpec>& aggregates) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> group_idx,
                          input.schema().ColumnIndices(group_columns));

  // Resolve aggregate input columns; kCountStar has none.
  std::vector<std::optional<size_t>> agg_input_idx;
  std::vector<Column> out_columns;
  for (size_t i : group_idx) out_columns.push_back(input.schema().column(i));
  for (const AggSpec& spec : aggregates) {
    if (spec.func == AggFunc::kCountStar) {
      agg_input_idx.push_back(std::nullopt);
      out_columns.push_back({spec.output, DataType::kInt64});
    } else {
      GPIVOT_ASSIGN_OR_RETURN(size_t idx,
                              input.schema().ColumnIndex(spec.input));
      agg_input_idx.push_back(idx);
      out_columns.push_back(
          {spec.output,
           AggResultType(spec.func, input.schema().column(idx).type)});
    }
    if (spec.output.empty()) {
      return Status::InvalidArgument("aggregate output name empty");
    }
  }

  struct GroupState {
    std::vector<Accumulator> accumulators;
  };
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  // Preserve first-appearance order for deterministic output.
  std::vector<const Row*> order;

  for (const Row& row : input.rows()) {
    Row key = ProjectRow(row, group_idx);
    auto it = groups.find(key);
    if (it == groups.end()) {
      GroupState state;
      state.accumulators.reserve(aggregates.size());
      for (const AggSpec& spec : aggregates) {
        state.accumulators.emplace_back(spec.func);
      }
      it = groups.emplace(std::move(key), std::move(state)).first;
      order.push_back(&it->first);
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const auto& input_idx = agg_input_idx[a];
      it->second.accumulators[a].Add(
          input_idx.has_value() ? row[*input_idx] : Value::Int(1));
    }
  }

  Table result{Schema(std::move(out_columns))};
  result.mutable_rows().reserve(groups.size());
  for (const Row* key : order) {
    const GroupState& state = groups.at(*key);
    Row out = *key;
    for (const Accumulator& acc : state.accumulators) {
      out.push_back(acc.Finish());
    }
    result.AddRow(std::move(out));
  }
  // The group-by columns form a key of the output.
  GPIVOT_RETURN_NOT_OK(result.SetKey(group_columns));
  return result;
}

}  // namespace gpivot::exec
