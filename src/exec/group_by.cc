#include "exec/group_by.h"

#include <algorithm>
#include <unordered_map>

#include "exec/partition.h"
#include "exec/vector_ops.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/small_vector.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gpivot::exec {

namespace {

// The actual aggregation; the public GroupBy wraps it with instrumentation.
Result<Table> GroupByImpl(const Table& input,
                          const std::vector<std::string>& group_columns,
                          const std::vector<AggSpec>& aggregates,
                          const ExecContext& ctx) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> group_idx,
                          input.schema().ColumnIndices(group_columns));

  // Resolve aggregate input columns; kCountStar has none.
  std::vector<std::optional<size_t>> agg_input_idx;
  std::vector<Column> out_columns;
  for (size_t i : group_idx) out_columns.push_back(input.schema().column(i));
  for (const AggSpec& spec : aggregates) {
    if (spec.func == AggFunc::kCountStar) {
      agg_input_idx.push_back(std::nullopt);
      out_columns.push_back({spec.output, DataType::kInt64});
    } else {
      GPIVOT_ASSIGN_OR_RETURN(size_t idx,
                              input.schema().ColumnIndex(spec.input));
      agg_input_idx.push_back(idx);
      out_columns.push_back(
          {spec.output,
           AggResultType(spec.func, input.schema().column(idx).type)});
    }
    if (spec.output.empty()) {
      return Status::InvalidArgument("aggregate output name empty");
    }
  }

  struct GroupState {
    std::vector<Accumulator> accumulators;
    size_t first_row = 0;  // global index of the group's first input row
  };
  struct Partition {
    std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
    // Group keys in this partition's first-appearance order (map nodes are
    // stable, so the pointers survive rehashing).
    std::vector<const Row*> order;
  };

  const size_t num_rows = input.num_rows();
  const size_t num_parts = ctx.ShouldParallelize(num_rows)
                               ? std::min(ctx.num_threads, num_rows)
                               : 1;

  // Skew-aware partition ownership: rows map to kPartitionFanout fixed hash
  // buckets and buckets map to partitions by observed row weight, so a hot
  // group key (one bucket) lands alone on a partition instead of dragging
  // every hash % num_parts sibling with it. Group membership still follows
  // the hash, groups stay whole within one partition, and the first_row
  // merge below emits in global order — output bytes are unchanged from the
  // blind modulo assignment at every partition count.
  auto assign_partitions = [&](const std::vector<size_t>& row_hashes) {
    std::vector<uint64_t> weights(kPartitionFanout, 0);
    for (size_t r = 0; r < num_rows; ++r) {
      ++weights[row_hashes[r] % kPartitionFanout];
    }
    return AssignBucketsByWeight(weights, num_parts);
  };

  // Vectorized fast path: typed group-key columns, batch hashing, and
  // hash -> group-id buckets instead of Row-keyed map nodes. Partition
  // ownership (hash % num_parts), per-partition accumulation in global row
  // order, and the first_row merge are identical to the row path below, so
  // group contents, accumulator addition order (hence float sums), and
  // output row order are byte-identical. Mixed-type key columns or a zero
  // chunk knob fall through to the row shim.
  const size_t chunk_size = EffectiveVectorChunkSize(ctx);
  std::optional<KeyColumns> key_cols;
  if (chunk_size > 0 && num_rows > 0 && num_rows <= UINT32_MAX) {
    key_cols = KeyColumns::Make(input, group_idx);
  }
  if (key_cols.has_value()) {
    std::vector<size_t> row_hashes(num_rows);
    ParallelForChunks(ctx, num_rows,
                      [&](size_t /*chunk*/, size_t begin, size_t end) {
                        for (size_t cb = begin; cb < end; cb += chunk_size) {
                          key_cols->BatchHash(cb, std::min(end, cb + chunk_size),
                                              row_hashes.data() + cb);
                        }
                      });

    struct VGroup {
      uint32_t first_row = 0;
      std::vector<Accumulator> accumulators;
    };
    struct VPartition {
      // hash -> ids of groups with that key hash, in creation order.
      std::unordered_map<size_t, SmallVector<uint32_t, 2>> buckets;
      std::vector<VGroup> groups;  // creation order == first_row ascending
    };
    const std::vector<uint32_t> part_of =
        num_parts > 1 ? assign_partitions(row_hashes) : std::vector<uint32_t>();
    std::vector<VPartition> partitions(num_parts);
    ParallelFor(ExecContext{num_parts, 0}, num_parts, [&](size_t p) {
      VPartition& part = partitions[p];
      part.buckets.reserve(num_rows / num_parts + 1);
      for (size_t r = 0; r < num_rows; ++r) {
        if (num_parts > 1 &&
            part_of[row_hashes[r] % kPartitionFanout] != p) {
          continue;
        }
        SmallVector<uint32_t, 2>& ids = part.buckets[row_hashes[r]];
        VGroup* group = nullptr;
        for (uint32_t gid : ids) {
          if (key_cols->RowsEqual(r, *key_cols, part.groups[gid].first_row)) {
            group = &part.groups[gid];
            break;
          }
        }
        if (group == nullptr) {
          ids.push_back(static_cast<uint32_t>(part.groups.size()));
          VGroup fresh;
          fresh.first_row = static_cast<uint32_t>(r);
          fresh.accumulators.reserve(aggregates.size());
          for (const AggSpec& spec : aggregates) {
            fresh.accumulators.emplace_back(spec.func);
          }
          part.groups.push_back(std::move(fresh));
          group = &part.groups.back();
        }
        for (size_t a = 0; a < aggregates.size(); ++a) {
          const auto& input_idx = agg_input_idx[a];
          group->accumulators[a].Add(input_idx.has_value()
                                         ? input.rows()[r][*input_idx]
                                         : Value::Int(1));
        }
      }
    });

    std::vector<std::pair<size_t, const VGroup*>> merged;
    size_t total_groups = 0;
    for (const VPartition& part : partitions) total_groups += part.groups.size();
    merged.reserve(total_groups);
    for (const VPartition& part : partitions) {
      for (const VGroup& group : part.groups) {
        merged.emplace_back(group.first_row, &group);
      }
    }
    if (num_parts > 1) {
      std::sort(merged.begin(), merged.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }

    Table result{Schema(std::move(out_columns))};
    result.mutable_rows().reserve(total_groups);
    for (const auto& [first_row, group] : merged) {
      Row out = ProjectRow(input.rows()[first_row], group_idx);
      out.reserve(group_idx.size() + aggregates.size());
      for (const Accumulator& acc : group->accumulators) {
        out.push_back(acc.Finish());
      }
      result.AddRow(std::move(out));
    }
    GPIVOT_RETURN_NOT_OK(result.SetKey(group_columns));
    return result;
  }

  // With several partitions, precompute each row's group key and its hash
  // once (in row chunks) so the per-partition scans below only pay the
  // ownership test for rows they don't own.
  std::vector<Row> keys;
  std::vector<size_t> hashes;
  if (num_parts > 1) {
    keys.resize(num_rows);
    hashes.resize(num_rows);
    ParallelForChunks(ctx, num_rows,
                      [&](size_t /*chunk*/, size_t begin, size_t end) {
                        RowHash hasher;
                        for (size_t r = begin; r < end; ++r) {
                          keys[r] = ProjectRow(input.rows()[r], group_idx);
                          hashes[r] = hasher(keys[r]);
                        }
                      });
  }

  const std::vector<uint32_t> part_of =
      num_parts > 1 ? assign_partitions(hashes) : std::vector<uint32_t>();
  std::vector<Partition> partitions(num_parts);
  ParallelFor(ExecContext{num_parts, 0}, num_parts, [&](size_t p) {
    Partition& part = partitions[p];
    part.groups.reserve(num_rows / num_parts + 1);
    for (size_t r = 0; r < num_rows; ++r) {
      if (num_parts > 1 && part_of[hashes[r] % kPartitionFanout] != p) {
        continue;
      }
      Row key = num_parts > 1 ? std::move(keys[r])
                              : ProjectRow(input.rows()[r], group_idx);
      auto it = part.groups.find(key);
      if (it == part.groups.end()) {
        GroupState state;
        state.first_row = r;
        state.accumulators.reserve(aggregates.size());
        for (const AggSpec& spec : aggregates) {
          state.accumulators.emplace_back(spec.func);
        }
        it = part.groups.emplace(std::move(key), std::move(state)).first;
        part.order.push_back(&it->first);
      }
      for (size_t a = 0; a < aggregates.size(); ++a) {
        const auto& input_idx = agg_input_idx[a];
        it->second.accumulators[a].Add(input_idx.has_value()
                                           ? input.rows()[r][*input_idx]
                                           : Value::Int(1));
      }
    }
  });

  // Emit groups in global first-appearance order. Each partition's order
  // vector is already sorted by first_row, so a merge by first_row across
  // partitions reproduces the sequential output exactly.
  std::vector<std::pair<size_t, const Row*>> merged;
  size_t total_groups = 0;
  for (const Partition& part : partitions) total_groups += part.order.size();
  merged.reserve(total_groups);
  for (const Partition& part : partitions) {
    for (const Row* key : part.order) {
      merged.emplace_back(part.groups.at(*key).first_row, key);
    }
  }
  if (num_parts > 1) {
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  Table result{Schema(std::move(out_columns))};
  result.mutable_rows().reserve(total_groups);
  for (const auto& [first_row, key] : merged) {
    const GroupState& state =
        partitions[num_parts > 1
                       ? part_of[hashes[first_row] % kPartitionFanout]
                       : 0]
            .groups.at(*key);
    Row out = *key;
    for (const Accumulator& acc : state.accumulators) {
      out.push_back(acc.Finish());
    }
    result.AddRow(std::move(out));
  }
  // The group-by columns form a key of the output.
  GPIVOT_RETURN_NOT_OK(result.SetKey(group_columns));
  return result;
}

}  // namespace

Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_columns,
                      const std::vector<AggSpec>& aggregates,
                      const ExecContext& ctx) {
  obs::ScopedSpan span = obs::TraceEnabled(ctx.tracer)
                             ? obs::ScopedSpan(ctx.tracer, "GroupBy")
                             : obs::ScopedSpan();
  obs::ScopedLatency latency(ctx.metrics, "exec.group_by.ms");
  GPIVOT_ASSIGN_OR_RETURN(Table result,
                          GroupByImpl(input, group_columns, aggregates, ctx));
  if (ctx.cost != nullptr && ctx.cost_node >= 0) {
    obs::NodeStats stats;
    stats.invocations = 1;
    stats.rows_in = input.num_rows();
    stats.rows_out = result.num_rows();
    ctx.cost->Record(ctx.cost_node, stats);
  }
  if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
    ctx.metrics->AddCounter("exec.group_by.calls");
    ctx.metrics->AddCounter("exec.group_by.rows_in", input.num_rows());
    ctx.metrics->AddCounter("exec.group_by.groups_out", result.num_rows());
  }
  if (span.active()) {
    span.AddAttr("rows_in", static_cast<uint64_t>(input.num_rows()));
    span.AddAttr("groups_out", static_cast<uint64_t>(result.num_rows()));
  }
  return result;
}

}  // namespace gpivot::exec
