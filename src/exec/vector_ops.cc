#include "exec/vector_ops.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string_view>
#include <utility>

#include "util/check.h"
#include "util/hash_util.h"

namespace gpivot::exec {

std::optional<uint64_t> ParseVectorChunkSize(const char* text) {
  if (text == nullptr || text[0] < '0' || text[0] > '9') {
    return std::nullopt;  // also rejects strtoull's whitespace/sign skipping
  }
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(parsed);
}

size_t VectorChunkSizeFromEnv() {
  static const size_t kChunk = [] {
    const char* value = std::getenv("GPIVOT_VECTOR_CHUNK_SIZE");
    if (value == nullptr || value[0] == '\0') return size_t{1024};
    std::optional<uint64_t> parsed = ParseVectorChunkSize(value);
    if (!parsed.has_value()) {
      std::fprintf(
          stderr,
          "gpivot: GPIVOT_VECTOR_CHUNK_SIZE='%s' is not a non-negative "
          "integer\n",
          value);
      std::exit(2);
    }
    return static_cast<size_t>(*parsed);
  }();
  return kChunk;
}

size_t EffectiveVectorChunkSize(const ExecContext& ctx) {
  return ctx.vector_chunk_size == kVectorChunkAuto ? VectorChunkSizeFromEnv()
                                                   : ctx.vector_chunk_size;
}

// ---- KeyColumns ----------------------------------------------------------

std::optional<KeyColumns> KeyColumns::Make(const Table& table,
                                           const std::vector<size_t>& indices) {
  KeyColumns keys;
  keys.num_rows_ = table.num_rows();
  keys.cols_.reserve(indices.size());
  for (size_t i : indices) {
    std::shared_ptr<const ColumnVector> col = table.ColumnData(i);
    if (col->kind() == ColumnKind::kMixed) return std::nullopt;
    keys.cols_.push_back(std::move(col));
  }
  return keys;
}

bool KeyColumns::HasNull(size_t r) const {
  for (const auto& col : cols_) {
    if (col->IsNull(r)) return true;
  }
  return false;
}

size_t KeyColumns::Hash(size_t r) const {
  size_t seed = 0x8f2d;
  for (const auto& col : cols_) seed = HashCombine(seed, col->CellHash(r));
  return seed;
}

bool KeyColumns::RowsEqual(size_t r, const KeyColumns& other,
                           size_t s) const {
  GPIVOT_CHECK(cols_.size() == other.cols_.size())
      << "KeyColumns::RowsEqual arity mismatch";
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (!ColumnVector::CellsEqual(*cols_[c], r, *other.cols_[c], s)) {
      return false;
    }
  }
  return true;
}

bool KeyColumns::RowEqualsValues(size_t r, const Row& values) const {
  GPIVOT_CHECK(cols_.size() == values.size())
      << "KeyColumns::RowEqualsValues arity mismatch";
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (!cols_[c]->CellEqualsValue(r, values[c])) return false;
  }
  return true;
}

void KeyColumns::BatchHash(size_t begin, size_t end, size_t* hashes) const {
  const size_t n = end - begin;
  for (size_t i = 0; i < n; ++i) hashes[i] = 0x8f2d;
  for (const auto& col : cols_) {
    const ColumnVector& c = *col;
    switch (c.kind()) {
      case ColumnKind::kInt64:
      case ColumnKind::kDouble:
      case ColumnKind::kString:
      case ColumnKind::kAllNull:
      case ColumnKind::kMixed:
        // One tight loop per column; CellHash dispatches on the column's
        // kind once per cell but with the kind branch perfectly predicted
        // (it is loop-invariant).
        for (size_t i = 0; i < n; ++i) {
          hashes[i] = HashCombine(hashes[i], c.CellHash(begin + i));
        }
        break;
    }
  }
}

void KeyColumns::BatchHasNull(size_t begin, size_t end,
                              uint8_t* has_null) const {
  const size_t n = end - begin;
  std::memset(has_null, 0, n);
  for (const auto& col : cols_) {
    const ColumnVector& c = *col;
    if (c.kind() == ColumnKind::kAllNull) {
      std::memset(has_null, 1, n);
      return;
    }
    if (!c.has_nulls()) continue;
    for (size_t i = 0; i < n; ++i) {
      has_null[i] |= static_cast<uint8_t>(c.IsNull(begin + i));
    }
  }
}

// ---- VectorPredicate -----------------------------------------------------

namespace {

// Is-TRUE of a comparison between a typed column cell and a literal of the
// same rank. Rank-mixed comparisons (numeric vs string) and NULLs never
// reach these kernels: Compile rejects the former, the null mask handles
// the latter.
template <typename T>
bool CompareCell(CompareOp op, T cell, T lit) {
  switch (op) {
    case CompareOp::kEq:
      return cell == lit;
    case CompareOp::kNe:
      return cell != lit;
    case CompareOp::kLt:
      return cell < lit;
    case CompareOp::kLe:
      return cell <= lit;
    case CompareOp::kGt:
      return cell > lit;
    case CompareOp::kGe:
      return cell >= lit;
  }
  return false;
}

}  // namespace

struct VectorPredicate::Node {
  enum class Kind { kCmpIntInt, kCmpNumeric, kCmpString, kIsNull, kAnd, kOr,
                    kNever };
  Kind kind = Kind::kNever;
  CompareOp op = CompareOp::kEq;
  std::shared_ptr<const ColumnVector> col;
  int64_t int_lit = 0;
  double double_lit = 0;
  std::string string_lit;
  bool negated = false;  // kIsNull: IS NOT NULL
  std::vector<std::shared_ptr<const Node>> children;

  void Eval(size_t begin, size_t end, uint8_t* out) const {
    const size_t n = end - begin;
    switch (kind) {
      case Kind::kNever:
        std::memset(out, 0, n);
        return;
      case Kind::kCmpIntInt:
        for (size_t i = 0; i < n; ++i) {
          size_t r = begin + i;
          out[i] = !col->IsNull(r) &&
                   CompareCell<int64_t>(op, col->Int64At(r), int_lit);
        }
        return;
      case Kind::kCmpNumeric:
        if (col->kind() == ColumnKind::kInt64) {
          for (size_t i = 0; i < n; ++i) {
            size_t r = begin + i;
            out[i] = !col->IsNull(r) &&
                     CompareCell<double>(
                         op, static_cast<double>(col->Int64At(r)), double_lit);
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            size_t r = begin + i;
            out[i] = !col->IsNull(r) &&
                     CompareCell<double>(op, col->DoubleAt(r), double_lit);
          }
        }
        return;
      case Kind::kCmpString:
        for (size_t i = 0; i < n; ++i) {
          size_t r = begin + i;
          out[i] = !col->IsNull(r) &&
                   CompareCell<std::string_view>(op, col->StringAt(r),
                                                 string_lit);
        }
        return;
      case Kind::kIsNull:
        for (size_t i = 0; i < n; ++i) {
          out[i] = col->IsNull(begin + i) != negated;
        }
        return;
      case Kind::kAnd:
      case Kind::kOr: {
        children[0]->Eval(begin, end, out);
        std::vector<uint8_t> scratch(n);
        for (size_t c = 1; c < children.size(); ++c) {
          children[c]->Eval(begin, end, scratch.data());
          if (kind == Kind::kAnd) {
            for (size_t i = 0; i < n; ++i) out[i] &= scratch[i];
          } else {
            for (size_t i = 0; i < n; ++i) out[i] |= scratch[i];
          }
        }
        return;
      }
    }
  }
};

namespace {

std::shared_ptr<const ColumnVector> ResolveColumn(const Expr* expr,
                                                  const Table& table) {
  if (expr->kind() != ExprKind::kColumnRef) return nullptr;
  const auto* ref = static_cast<const ColumnRefExpr*>(expr);
  auto index = table.schema().ColumnIndex(ref->name());
  if (!index.ok()) return nullptr;
  std::shared_ptr<const ColumnVector> col = table.ColumnData(*index);
  if (col->kind() == ColumnKind::kMixed) return nullptr;
  return col;
}

// Flips a comparison for the Lit-op-Col orientation (5 < x  ==  x > 5).
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

}  // namespace

std::optional<VectorPredicate> VectorPredicate::Compile(const ExprPtr& expr,
                                                        const Table& table) {
  GPIVOT_CHECK(expr != nullptr) << "VectorPredicate::Compile on null expr";
  std::function<std::shared_ptr<const Node>(const ExprPtr&)> build =
      [&](const ExprPtr& e) -> std::shared_ptr<const Node> {
    switch (e->kind()) {
      case ExprKind::kComparison: {
        const auto* cmp = static_cast<const ComparisonExpr*>(e.get());
        const Expr* col_side = cmp->left().get();
        const Expr* lit_side = cmp->right().get();
        CompareOp op = cmp->op();
        if (col_side->kind() == ExprKind::kLiteral &&
            lit_side->kind() == ExprKind::kColumnRef) {
          std::swap(col_side, lit_side);
          op = MirrorOp(op);
        }
        if (col_side->kind() != ExprKind::kColumnRef ||
            lit_side->kind() != ExprKind::kLiteral) {
          return nullptr;
        }
        std::shared_ptr<const ColumnVector> col =
            ResolveColumn(col_side, table);
        if (col == nullptr) return nullptr;
        const Value& lit =
            static_cast<const LiteralExpr*>(lit_side)->value();
        auto node = std::make_shared<Node>();
        node->op = op;
        node->col = col;
        if (lit.is_null() || col->kind() == ColumnKind::kAllNull) {
          // A NULL operand makes the comparison NULL on every row: never
          // TRUE, exactly like the row-path EvalCompare.
          node->kind = Node::Kind::kNever;
          return node;
        }
        bool col_string = col->kind() == ColumnKind::kString;
        if (col_string != lit.is_string()) {
          // Rank-mixed comparison: Value ordering ranks numerics below
          // strings, a case the typed kernels do not model. Row shim.
          return nullptr;
        }
        if (col_string) {
          node->kind = Node::Kind::kCmpString;
          node->string_lit = lit.AsString();
        } else if (col->kind() == ColumnKind::kInt64 && lit.is_int()) {
          node->kind = Node::Kind::kCmpIntInt;
          node->int_lit = lit.AsInt();
        } else {
          node->kind = Node::Kind::kCmpNumeric;
          node->double_lit = lit.AsNumeric();
        }
        return node;
      }
      case ExprKind::kIsNull: {
        const auto* isn = static_cast<const IsNullExpr*>(e.get());
        std::shared_ptr<const ColumnVector> col =
            ResolveColumn(isn->operand().get(), table);
        if (col == nullptr) return nullptr;
        auto node = std::make_shared<Node>();
        node->kind = Node::Kind::kIsNull;
        node->col = std::move(col);
        node->negated = isn->negated();
        return node;
      }
      case ExprKind::kBoolOp: {
        const auto* bop = static_cast<const BoolOpExpr*>(e.get());
        auto node = std::make_shared<Node>();
        node->kind = bop->op() == BoolOpKind::kAnd ? Node::Kind::kAnd
                                                   : Node::Kind::kOr;
        node->children.reserve(bop->operands().size());
        for (const ExprPtr& child : bop->operands()) {
          std::shared_ptr<const Node> built = build(child);
          if (built == nullptr) return nullptr;
          node->children.push_back(std::move(built));
        }
        return node;
      }
      default:
        return nullptr;
    }
  };
  std::shared_ptr<const Node> root = build(expr);
  if (root == nullptr) return std::nullopt;
  VectorPredicate predicate;
  predicate.root_ = std::move(root);
  return predicate;
}

void VectorPredicate::EvalChunk(size_t begin, size_t end, uint8_t* out) const {
  root_->Eval(begin, end, out);
}

}  // namespace gpivot::exec
