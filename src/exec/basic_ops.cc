#include "exec/basic_ops.h"

#include <algorithm>
#include <unordered_map>

#include "exec/vector_ops.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::exec {

namespace {

// Shared per-op accounting: exec.<op>.{calls,rows_in,rows_out}. Counter
// values depend only on the data, never on scheduling. The same numbers
// feed per-plan-node cost attribution when the caller attached a collector.
void RecordOp(const ExecContext& ctx, const char* op, size_t rows_in,
              size_t rows_out) {
  if (ctx.cost != nullptr && ctx.cost_node >= 0) {
    obs::NodeStats stats;
    stats.invocations = 1;
    stats.rows_in = rows_in;
    stats.rows_out = rows_out;
    ctx.cost->Record(ctx.cost_node, stats);
  }
  if (ctx.metrics == nullptr || !ctx.metrics->enabled()) return;
  ctx.metrics->AddCounter(StrCat("exec.", op, ".calls"));
  ctx.metrics->AddCounter(StrCat("exec.", op, ".rows_in"), rows_in);
  ctx.metrics->AddCounter(StrCat("exec.", op, ".rows_out"), rows_out);
}

}  // namespace

Result<Table> Select(const Table& input, const ExprPtr& predicate,
                     const ExecContext& ctx) {
  // Validate against the schema first (both paths must reject unknown
  // columns identically), then filter through the vectorized predicate
  // kernels when the expression shape supports them.
  GPIVOT_ASSIGN_OR_RETURN(CompiledExpr compiled,
                          CompileExpr(predicate, input.schema()));
  Table result(input.schema());
  const size_t chunk_size = EffectiveVectorChunkSize(ctx);
  const size_t num_rows = input.num_rows();
  std::optional<VectorPredicate> vectorized;
  if (chunk_size > 0 && num_rows > 0) {
    vectorized = VectorPredicate::Compile(predicate, input);
  }
  if (vectorized.has_value()) {
    std::vector<uint8_t> mask(std::min(chunk_size, num_rows));
    for (size_t begin = 0; begin < num_rows; begin += chunk_size) {
      size_t end = std::min(num_rows, begin + chunk_size);
      vectorized->EvalChunk(begin, end, mask.data());
      for (size_t r = begin; r < end; ++r) {
        if (mask[r - begin]) result.AddRow(input.RowAt(r));
      }
    }
  } else {
    for (const Row& row : input.rows()) {
      if (ValueIsTrue(compiled(row))) result.AddRow(row);
    }
  }
  RecordOp(ctx, "select", input.num_rows(), result.num_rows());
  return result;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      const ExecContext& ctx) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                          input.schema().ColumnIndices(columns));
  Table result(input.schema().Select(indices));
  const size_t chunk_size = EffectiveVectorChunkSize(ctx);
  const size_t num_rows = input.num_rows();
  if (chunk_size > 0 && num_rows > 0 && !indices.empty()) {
    // Column-at-a-time gather: pre-size every output row once, then fill
    // one source column per pass (sequential reads of the typed storage)
    // instead of per-row ProjectRow allocations with per-cell bounds
    // checks.
    std::vector<Row>& out_rows = result.mutable_rows();
    out_rows.assign(num_rows, Row(indices.size()));
    for (size_t j = 0; j < indices.size(); ++j) {
      std::shared_ptr<const ColumnVector> col = input.ColumnData(indices[j]);
      for (size_t begin = 0; begin < num_rows; begin += chunk_size) {
        size_t end = std::min(num_rows, begin + chunk_size);
        for (size_t r = begin; r < end; ++r) out_rows[r][j] = col->At(r);
      }
    }
  } else {
    result.mutable_rows().reserve(input.num_rows());
    for (const Row& row : input.rows()) {
      result.AddRow(ProjectRow(row, indices));
    }
  }
  RecordOp(ctx, "project", input.num_rows(), result.num_rows());
  return result;
}

Result<Table> DropColumns(const Table& input,
                          const std::vector<std::string>& columns) {
  GPIVOT_ASSIGN_OR_RETURN(Schema schema, input.schema().Drop(columns));
  return Project(input, schema.ColumnNames());
}

Result<Table> ProjectExprs(
    const Table& input,
    const std::vector<std::pair<std::string, ExprPtr>>& outputs,
    const ExecContext& ctx) {
  std::vector<Column> columns;
  std::vector<CompiledExpr> compiled;
  columns.reserve(outputs.size());
  compiled.reserve(outputs.size());
  for (const auto& [name, expr] : outputs) {
    GPIVOT_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(expr, input.schema()));
    compiled.push_back(std::move(c));
    // Output type: preserve the source column type for plain references.
    DataType type = DataType::kDouble;
    if (expr->kind() == ExprKind::kColumnRef) {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
      type = input.schema()
                 .column(input.schema().ColumnIndexOrDie(ref->name()))
                 .type;
    } else if (expr->kind() == ExprKind::kLiteral) {
      type = static_cast<const LiteralExpr*>(expr.get())->value().type();
    } else if (expr->kind() == ExprKind::kCase) {
      // CASE over a column keeps that column's type.
      const auto* c = static_cast<const CaseExpr*>(expr.get());
      if (c->then_value()->kind() == ExprKind::kColumnRef) {
        const auto* ref =
            static_cast<const ColumnRefExpr*>(c->then_value().get());
        type = input.schema()
                   .column(input.schema().ColumnIndexOrDie(ref->name()))
                   .type;
      }
    }
    columns.push_back({name, type});
  }
  Table result{Schema(std::move(columns))};
  result.mutable_rows().reserve(input.num_rows());
  for (const Row& row : input.rows()) {
    Row out;
    out.reserve(compiled.size());
    for (const CompiledExpr& c : compiled) out.push_back(c(row));
    result.AddRow(std::move(out));
  }
  RecordOp(ctx, "project_exprs", input.num_rows(), result.num_rows());
  return result;
}

Result<Table> RenameColumns(
    const Table& input,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  Schema schema = input.schema();
  for (const auto& [old_name, new_name] : renames) {
    GPIVOT_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(old_name));
    schema = schema.Rename(index, new_name);
  }
  return Table(std::move(schema), input.rows());
}

Result<Table> UnionAll(const Table& left, const Table& right,
                       const ExecContext& ctx) {
  if (left.schema() != right.schema()) {
    return Status::InvalidArgument(
        StrCat("UnionAll schema mismatch: ", left.schema().ToString(), " vs ",
               right.schema().ToString()));
  }
  Table result = left;
  result.mutable_rows().insert(result.mutable_rows().end(),
                               right.rows().begin(), right.rows().end());
  RecordOp(ctx, "union_all", left.num_rows() + right.num_rows(),
           result.num_rows());
  return result;
}

Result<Table> BagDifference(const Table& left, const Table& right,
                            const ExecContext& ctx) {
  if (left.schema() != right.schema()) {
    return Status::InvalidArgument(
        StrCat("BagDifference schema mismatch: ", left.schema().ToString(),
               " vs ", right.schema().ToString()));
  }
  std::unordered_map<Row, int64_t, RowHash, RowEq> to_remove;
  for (const Row& row : right.rows()) ++to_remove[row];
  Table result(left.schema());
  for (const Row& row : left.rows()) {
    auto it = to_remove.find(row);
    if (it != to_remove.end() && it->second > 0) {
      --it->second;
      continue;
    }
    result.AddRow(row);
  }
  RecordOp(ctx, "bag_difference", left.num_rows() + right.num_rows(),
           result.num_rows());
  return result;
}

Result<Table> Distinct(const Table& input, const ExecContext& ctx) {
  std::unordered_set<Row, RowHash, RowEq> seen;
  Table result(input.schema());
  for (const Row& row : input.rows()) {
    if (seen.insert(row).second) result.AddRow(row);
  }
  RecordOp(ctx, "distinct", input.num_rows(), result.num_rows());
  return result;
}

Result<Table> SemiJoinKeySet(
    const Table& input, const std::vector<std::string>& key_columns,
    const std::unordered_set<Row, RowHash, RowEq>& keys,
    const ExecContext& ctx) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                          input.schema().ColumnIndices(key_columns));
  Table result(input.schema());
  for (const Row& row : input.rows()) {
    if (keys.count(ProjectRow(row, indices)) > 0) result.AddRow(row);
  }
  RecordOp(ctx, "semi_join_key_set", input.num_rows(), result.num_rows());
  return result;
}

Result<Table> AntiJoinKeySet(
    const Table& input, const std::vector<std::string>& key_columns,
    const std::unordered_set<Row, RowHash, RowEq>& keys,
    const ExecContext& ctx) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                          input.schema().ColumnIndices(key_columns));
  Table result(input.schema());
  for (const Row& row : input.rows()) {
    if (keys.count(ProjectRow(row, indices)) == 0) result.AddRow(row);
  }
  RecordOp(ctx, "anti_join_key_set", input.num_rows(), result.num_rows());
  return result;
}

Result<std::unordered_set<Row, RowHash, RowEq>> CollectKeySet(
    const Table& input, const std::vector<std::string>& key_columns) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                          input.schema().ColumnIndices(key_columns));
  std::unordered_set<Row, RowHash, RowEq> keys;
  keys.reserve(input.num_rows());
  for (const Row& row : input.rows()) {
    keys.insert(ProjectRow(row, indices));
  }
  return keys;
}

Result<Table> SortBy(const Table& input,
                     const std::vector<std::string>& columns) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                          input.schema().ColumnIndices(columns));
  Table result = input;
  std::stable_sort(result.mutable_rows().begin(), result.mutable_rows().end(),
                   [&indices](const Row& a, const Row& b) {
                     for (size_t i : indices) {
                       if (a[i] < b[i]) return true;
                       if (b[i] < a[i]) return false;
                     }
                     return false;
                   });
  return result;
}

}  // namespace gpivot::exec
