#ifndef GPIVOT_EXEC_GROUP_BY_H_
#define GPIVOT_EXEC_GROUP_BY_H_

#include <string>
#include <vector>

#include "expr/aggregate.h"
#include "relation/table.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot::exec {

// F (the paper's GROUPBY): groups `input` by `group_columns` and computes
// `aggregates`. Output schema: group columns (original types) followed by
// one column per aggregate. Aggregates disregard ⊥ inputs and yield ⊥ when
// a group has no non-⊥ input (paper's convention, Eq. 8). NULL group values
// group together.
//
// With ctx.num_threads > 1 the groups are hash-partitioned BY KEY across
// the threads: every thread scans all rows but accumulates only its own
// groups, so each accumulator still sees its group's inputs in global row
// order — floating-point sums stay bit-identical to the sequential run —
// and the output (groups in first-appearance order) is byte-identical for
// every thread count.
Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_columns,
                      const std::vector<AggSpec>& aggregates,
                      const ExecContext& ctx = {});

}  // namespace gpivot::exec

#endif  // GPIVOT_EXEC_GROUP_BY_H_
