#ifndef GPIVOT_EXEC_GROUP_BY_H_
#define GPIVOT_EXEC_GROUP_BY_H_

#include <string>
#include <vector>

#include "expr/aggregate.h"
#include "relation/table.h"
#include "util/result.h"

namespace gpivot::exec {

// F (the paper's GROUPBY): groups `input` by `group_columns` and computes
// `aggregates`. Output schema: group columns (original types) followed by
// one column per aggregate. Aggregates disregard ⊥ inputs and yield ⊥ when
// a group has no non-⊥ input (paper's convention, Eq. 8). NULL group values
// group together.
Result<Table> GroupBy(const Table& input,
                      const std::vector<std::string>& group_columns,
                      const std::vector<AggSpec>& aggregates);

}  // namespace gpivot::exec

#endif  // GPIVOT_EXEC_GROUP_BY_H_
