#ifndef GPIVOT_EXEC_VECTOR_OPS_H_
#define GPIVOT_EXEC_VECTOR_OPS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "expr/expr.h"
#include "relation/columnar.h"
#include "relation/table.h"
#include "util/thread_pool.h"

namespace gpivot::exec {

// Shared kernels of the vectorized batch executor. Every fast path built on
// these is an *alternative inner loop*, not an alternative semantics: given
// the same inputs it produces byte-identical tables, counters, and plan
// stats as the row-at-a-time shim it replaces, for every chunk size and
// thread count. Operators fall back to the row shim whenever a kernel
// reports the input shape unsupported (mixed-type columns, unsupported
// predicate forms), so coverage gaps cost performance, never correctness.

// Strict parse of a chunk-size string: a fully-consumed non-negative
// decimal integer, else nullopt. Exposed for tests.
std::optional<uint64_t> ParseVectorChunkSize(const char* text);

// The process-wide default batch width from GPIVOT_VECTOR_CHUNK_SIZE, read
// once. Unset/empty = 1024; 0 = row shim everywhere; a garbled value exits
// the process with code 2 (same fail-fast contract as the bench knobs — a
// silently mis-parsed width would publish wrong perf numbers).
size_t VectorChunkSizeFromEnv();

// The batch width `ctx` asks for: its explicit value, or the env default
// when ctx.vector_chunk_size == kVectorChunkAuto. 0 disables the fast
// paths.
size_t EffectiveVectorChunkSize(const ExecContext& ctx);

// A typed, null-aware view of one table's key columns (join keys, group-by
// keys, pivot dimension/key columns). Hashes and equality reproduce the
// row-path HashRowAt / Value::operator== results exactly, so hash-keyed
// structures built from either path agree.
class KeyColumns {
 public:
  // nullopt when any referenced column is mixed-type (row shim territory).
  static std::optional<KeyColumns> Make(const Table& table,
                                        const std::vector<size_t>& indices);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return cols_.size(); }

  // True when any key cell of row r is NULL (SQL equi-joins skip these).
  bool HasNull(size_t r) const;

  // == HashRowAt(table.RowAt(r), indices).
  size_t Hash(size_t r) const;

  // == RowsEqualAt(...): Value equality per position (NULL equals NULL).
  bool RowsEqual(size_t r, const KeyColumns& other, size_t s) const;

  // == (ProjectRow(table.RowAt(r), indices) == values).
  bool RowEqualsValues(size_t r, const Row& values) const;

  // Column-major batch kernels over rows [begin, end): for each column in
  // turn, fold the typed cell hashes / null bits into the output arrays
  // (out sized end - begin). This is where the batch executor earns its
  // keep on wide keys — one column's storage is scanned at a time.
  void BatchHash(size_t begin, size_t end, size_t* hashes) const;
  void BatchHasNull(size_t begin, size_t end, uint8_t* has_null) const;

 private:
  std::vector<std::shared_ptr<const ColumnVector>> cols_;
  size_t num_rows_ = 0;
};

// A vectorized SQL-boolean filter for the predicate shapes the delta hot
// path actually uses: comparisons between a column and a literal (either
// side), IS [NOT] NULL of a column, and AND/OR over supported children.
// EvalChunk computes "is TRUE" under three-valued logic — exactly the
// ValueIsTrue(compiled(row)) the row shim filters on. Unsupported shapes
// (NOT, arithmetic, CASE, column-to-column comparisons, mixed-type
// columns, comparisons across the numeric/string rank) return nullopt from
// Compile and stay on the row shim.
class VectorPredicate {
 public:
  static std::optional<VectorPredicate> Compile(const ExprPtr& expr,
                                                const Table& table);

  // out[i - begin] = 1 iff the predicate is TRUE on row i, for [begin, end).
  void EvalChunk(size_t begin, size_t end, uint8_t* out) const;

 private:
  struct Node;
  VectorPredicate() = default;
  std::shared_ptr<const Node> root_;
};

}  // namespace gpivot::exec

#endif  // GPIVOT_EXEC_VECTOR_OPS_H_
