#include "exec/partition.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace gpivot::exec {

std::vector<uint32_t> AssignBucketsByWeight(
    const std::vector<uint64_t>& bucket_weights, size_t num_parts) {
  GPIVOT_CHECK(num_parts >= 1) << "AssignBucketsByWeight needs a partition";
  std::vector<uint32_t> part_of(bucket_weights.size(), 0);
  if (num_parts == 1) return part_of;

  std::vector<size_t> order(bucket_weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (bucket_weights[a] != bucket_weights[b]) {
      return bucket_weights[a] > bucket_weights[b];
    }
    return a < b;
  });

  std::vector<uint64_t> load(num_parts, 0);
  for (size_t bucket : order) {
    size_t lightest = 0;
    for (size_t p = 1; p < num_parts; ++p) {
      if (load[p] < load[lightest]) lightest = p;
    }
    part_of[bucket] = static_cast<uint32_t>(lightest);
    load[lightest] += bucket_weights[bucket];
  }
  return part_of;
}

std::vector<size_t> WeightedChunkBoundaries(
    const std::vector<uint64_t>& cumulative, size_t chunks) {
  GPIVOT_CHECK(chunks >= 1) << "WeightedChunkBoundaries needs a chunk";
  GPIVOT_CHECK(!cumulative.empty()) << "cumulative prefix missing its zero";
  const size_t n = cumulative.size() - 1;
  const uint64_t total = cumulative[n];
  std::vector<size_t> boundaries(chunks + 1, 0);
  boundaries[chunks] = n;
  for (size_t c = 1; c < chunks; ++c) {
    // First index whose prefix reaches c/chunks of the total cost, clamped
    // monotone against the previous boundary. With an all-zero prefix every
    // interior cut degenerates to 0 — a valid (empty-chunk) split.
    const uint64_t target =
        static_cast<uint64_t>((static_cast<__uint128_t>(total) * c) / chunks);
    auto it = std::lower_bound(cumulative.begin(), cumulative.begin() + n + 1,
                               target);
    boundaries[c] = std::max(static_cast<size_t>(it - cumulative.begin()),
                             boundaries[c - 1]);
    boundaries[c] = std::min(boundaries[c], n);
  }
  return boundaries;
}

}  // namespace gpivot::exec
