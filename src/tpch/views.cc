#include "tpch/views.h"

#include "core/pivot_spec.h"
#include "expr/expr.h"
#include "util/check.h"

namespace gpivot::tpch {

namespace {

PivotSpec LineitemPivotSpec(int max_line_numbers) {
  PivotSpec spec;
  spec.pivot_by = {"linenumber"};
  spec.pivot_on = {"quantity", "extendedprice"};
  for (int l = 1; l <= max_line_numbers; ++l) {
    spec.combos.push_back({Value::Int(l)});
  }
  return spec;
}

}  // namespace

Result<PlanPtr> View1(const Catalog& catalog, int max_line_numbers) {
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr lineitem, MakeScan(catalog, "lineitem"));
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr orders, MakeScan(catalog, "orders"));
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr customer, MakeScan(catalog, "customer"));
  PlanPtr pivoted = MakeGPivot(lineitem, LineitemPivotSpec(max_line_numbers));
  PlanPtr with_orders = MakeJoin(std::move(pivoted), orders, {"orderkey"});
  return MakeJoin(std::move(with_orders), customer, {"custkey"});
}

Result<PlanPtr> View2(const Catalog& catalog, int max_line_numbers,
                      double price_threshold) {
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr lineitem, MakeScan(catalog, "lineitem"));
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr orders, MakeScan(catalog, "orders"));
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr customer, MakeScan(catalog, "customer"));
  PivotSpec spec = LineitemPivotSpec(max_line_numbers);
  std::string first_price_cell = spec.OutputColumnName(0, 1);
  GPIVOT_CHECK(first_price_cell == "1**extendedprice")
      << "unexpected cell name " << first_price_cell;
  PlanPtr pivoted = MakeGPivot(lineitem, std::move(spec));
  PlanPtr filtered = MakeSelect(
      std::move(pivoted), Gt(Col(first_price_cell), Lit(price_threshold)));
  PlanPtr with_orders = MakeJoin(std::move(filtered), orders, {"orderkey"});
  return MakeJoin(std::move(with_orders), customer, {"custkey"});
}

Result<PlanPtr> View3(const Catalog& catalog, int first_year, int num_years) {
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr lineitem, MakeScan(catalog, "lineitem"));
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr orders, MakeScan(catalog, "orders"));
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr customer, MakeScan(catalog, "customer"));
  PlanPtr joined = MakeJoin(
      MakeJoin(std::move(lineitem), orders, {"orderkey"}), customer,
      {"custkey"});
  PlanPtr aggregated = MakeGroupBy(
      std::move(joined), {"custkey", "nation", "orderyear"},
      {AggSpec::Sum("extendedprice", "sum"), AggSpec::CountStar("cnt")});
  PivotSpec spec;
  spec.pivot_by = {"orderyear"};
  spec.pivot_on = {"sum", "cnt"};
  for (int y = first_year; y < first_year + num_years; ++y) {
    spec.combos.push_back({Value::Int(y)});
  }
  return MakeGPivot(std::move(aggregated), std::move(spec));
}

}  // namespace gpivot::tpch
