#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/random.h"
#include "util/string_util.h"

namespace gpivot::tpch {

namespace {

constexpr const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
    "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
    "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
constexpr size_t kNumNations = sizeof(kNations) / sizeof(kNations[0]);

Schema CustomerSchema() {
  return Schema({{"custkey", DataType::kInt64},
                 {"name", DataType::kString},
                 {"nationkey", DataType::kInt64},
                 {"nation", DataType::kString}});
}

Schema OrdersSchema() {
  return Schema({{"orderkey", DataType::kInt64},
                 {"custkey", DataType::kInt64},
                 {"orderyear", DataType::kInt64}});
}

Schema LineitemSchema() {
  return Schema({{"orderkey", DataType::kInt64},
                 {"linenumber", DataType::kInt64},
                 {"quantity", DataType::kInt64},
                 {"extendedprice", DataType::kInt64}});
}

Row MakeLine(int64_t orderkey, int64_t linenumber, Rng* rng) {
  // Prices are exact integers (whole currency units), so incremental
  // aggregate maintenance is bit-identical to recomputation — the in-memory
  // analogue of SQL DECIMAL arithmetic.
  return {Value::Int(orderkey), Value::Int(linenumber),
          Value::Int(rng->Int(1, 50)), Value::Int(rng->Int(1000, 105000))};
}

// Current number of lines per order, and each order's key.
struct LineDirectory {
  std::unordered_map<int64_t, int64_t> max_line;  // orderkey -> highest line#
  std::vector<int64_t> orderkeys;                 // all orders
};

Result<LineDirectory> ScanLines(const Catalog& catalog) {
  LineDirectory dir;
  GPIVOT_ASSIGN_OR_RETURN(const Table* orders, catalog.GetTable("orders"));
  GPIVOT_ASSIGN_OR_RETURN(const Table* lineitem,
                          catalog.GetTable("lineitem"));
  size_t ok = orders->schema().ColumnIndexOrDie("orderkey");
  for (const Row& row : orders->rows()) {
    dir.orderkeys.push_back(row[ok].AsInt());
  }
  size_t lk = lineitem->schema().ColumnIndexOrDie("orderkey");
  size_t ln = lineitem->schema().ColumnIndexOrDie("linenumber");
  for (const Row& row : lineitem->rows()) {
    int64_t& current = dir.max_line[row[lk].AsInt()];
    current = std::max(current, row[ln].AsInt());
  }
  return dir;
}

}  // namespace

Data Generate(const Config& config) {
  Rng rng(config.seed);
  Data data;
  data.customer = Table(CustomerSchema());
  data.orders = Table(OrdersSchema());
  data.lineitem = Table(LineitemSchema());

  const int64_t num_customers =
      std::max<int64_t>(10, static_cast<int64_t>(150000 * config.scale_factor));
  const int64_t num_orders = num_customers * 10;

  for (int64_t c = 1; c <= num_customers; ++c) {
    int64_t nationkey = rng.Int(0, static_cast<int64_t>(kNumNations) - 1);
    data.customer.AddRow({Value::Int(c),
                          Value::Str(StrCat("Customer#", c)),
                          Value::Int(nationkey),
                          Value::Str(kNations[nationkey])});
  }
  GPIVOT_CHECK(data.customer.SetKey({"custkey"}).ok()) << "customer key";

  for (int64_t o = 1; o <= num_orders; ++o) {
    data.orders.AddRow(
        {Value::Int(o), Value::Int(rng.Int(1, num_customers)),
         Value::Int(config.first_year + rng.Int(0, config.num_years - 1))});
    if (rng.Chance(config.lineless_order_fraction)) {
      continue;  // this order's lines are "not loaded yet" (Fig. 35 pool)
    }
    int64_t num_lines = rng.Int(1, config.max_initial_lines);
    for (int64_t l = 1; l <= num_lines; ++l) {
      data.lineitem.AddRow(MakeLine(o, l, &rng));
    }
  }
  GPIVOT_CHECK(data.orders.SetKey({"orderkey"}).ok()) << "orders key";
  GPIVOT_CHECK(data.lineitem.SetKey({"orderkey", "linenumber"}).ok())
      << "lineitem key";
  return data;
}

Result<Catalog> MakeCatalog(Data data) {
  Catalog catalog;
  GPIVOT_RETURN_NOT_OK(catalog.AddTable("customer", std::move(data.customer)));
  GPIVOT_RETURN_NOT_OK(catalog.AddTable("orders", std::move(data.orders)));
  GPIVOT_RETURN_NOT_OK(catalog.AddTable("lineitem", std::move(data.lineitem)));
  return catalog;
}

Result<ivm::SourceDeltas> MakeLineitemDeletes(const Catalog& catalog,
                                              double fraction,
                                              uint64_t seed) {
  GPIVOT_ASSIGN_OR_RETURN(const Table* lineitem,
                          catalog.GetTable("lineitem"));
  Rng rng(seed);
  size_t target = static_cast<size_t>(
      static_cast<double>(lineitem->num_rows()) * fraction);
  std::vector<size_t> positions(lineitem->num_rows());
  for (size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  rng.Shuffle(&positions);
  positions.resize(std::min(target, positions.size()));

  ivm::Delta delta = ivm::Delta::Empty(lineitem->schema());
  for (size_t position : positions) {
    delta.deletes.AddRow(lineitem->rows()[position]);
  }
  ivm::SourceDeltas deltas;
  deltas.emplace("lineitem", std::move(delta));
  return deltas;
}

Result<ivm::SourceDeltas> MakeLineitemInsertsUpdatesOnly(
    const Catalog& catalog, const Config& config, double fraction,
    uint64_t seed) {
  GPIVOT_ASSIGN_OR_RETURN(const Table* lineitem,
                          catalog.GetTable("lineitem"));
  GPIVOT_ASSIGN_OR_RETURN(LineDirectory dir, ScanLines(catalog));
  Rng rng(seed);
  size_t target = static_cast<size_t>(
      static_cast<double>(lineitem->num_rows()) * fraction);

  // Orders that already have lines but still have room below the pivot's
  // line-number ceiling: new lines update their existing view row.
  std::vector<int64_t> candidates;
  for (const auto& [orderkey, max_line] : dir.max_line) {
    if (max_line < config.max_line_numbers) candidates.push_back(orderkey);
  }
  std::sort(candidates.begin(), candidates.end());
  rng.Shuffle(&candidates);

  ivm::Delta delta = ivm::Delta::Empty(lineitem->schema());
  for (int64_t orderkey : candidates) {
    if (delta.inserts.num_rows() >= target) break;
    int64_t next = dir.max_line[orderkey] + 1;
    int64_t upto = std::min<int64_t>(config.max_line_numbers,
                                     next + rng.Int(0, 1));
    for (int64_t l = next;
         l <= upto && delta.inserts.num_rows() < target; ++l) {
      delta.inserts.AddRow(MakeLine(orderkey, l, &rng));
    }
  }
  ivm::SourceDeltas deltas;
  deltas.emplace("lineitem", std::move(delta));
  return deltas;
}

Result<ivm::SourceDeltas> MakeLineitemInsertsNewKeys(const Catalog& catalog,
                                                     const Config& config,
                                                     double fraction,
                                                     uint64_t seed) {
  GPIVOT_ASSIGN_OR_RETURN(const Table* lineitem,
                          catalog.GetTable("lineitem"));
  GPIVOT_ASSIGN_OR_RETURN(LineDirectory dir, ScanLines(catalog));
  Rng rng(seed);
  size_t target = static_cast<size_t>(
      static_cast<double>(lineitem->num_rows()) * fraction);

  // Orders with no lines at all: their first lines create new view rows.
  std::vector<int64_t> lineless;
  for (int64_t orderkey : dir.orderkeys) {
    if (dir.max_line.count(orderkey) == 0) lineless.push_back(orderkey);
  }
  std::sort(lineless.begin(), lineless.end());
  rng.Shuffle(&lineless);

  ivm::Delta delta = ivm::Delta::Empty(lineitem->schema());
  for (int64_t orderkey : lineless) {
    if (delta.inserts.num_rows() >= target) break;
    int64_t num_lines = rng.Int(1, config.max_initial_lines);
    for (int64_t l = 1;
         l <= num_lines && delta.inserts.num_rows() < target; ++l) {
      delta.inserts.AddRow(MakeLine(orderkey, l, &rng));
    }
  }
  ivm::SourceDeltas deltas;
  deltas.emplace("lineitem", std::move(delta));
  return deltas;
}

Result<ivm::SourceDeltas> MakeLineitemInsertsMixed(const Catalog& catalog,
                                                   const Config& config,
                                                   double fraction,
                                                   uint64_t seed) {
  GPIVOT_ASSIGN_OR_RETURN(
      ivm::SourceDeltas updates,
      MakeLineitemInsertsUpdatesOnly(catalog, config, fraction / 2, seed));
  GPIVOT_ASSIGN_OR_RETURN(
      ivm::SourceDeltas news,
      MakeLineitemInsertsNewKeys(catalog, config, fraction / 2, seed + 1));
  ivm::Delta& base = updates.at("lineitem");
  for (const Row& row : news.at("lineitem").inserts.rows()) {
    base.inserts.AddRow(row);
  }
  return updates;
}

Result<std::vector<ivm::SourceDeltas>> MakeLineitemZipfChurn(
    const Catalog& catalog, size_t num_batches, size_t rows_per_batch,
    double theta, uint64_t seed) {
  if (theta < 0.0) {
    return Status::InvalidArgument("Zipf theta must be non-negative");
  }
  GPIVOT_ASSIGN_OR_RETURN(const Table* lineitem,
                          catalog.GetTable("lineitem"));
  const size_t n = lineitem->num_rows();
  if (n == 0) {
    return Status::InvalidArgument("Zipf churn needs a non-empty lineitem");
  }
  rows_per_batch = std::min(rows_per_batch, n);
  const size_t qn = lineitem->schema().ColumnIndexOrDie("quantity");
  const size_t ep = lineitem->schema().ColumnIndexOrDie("extendedprice");

  // Inverse-CDF sampling over the rank weights 1/(r+1)^theta: one cumulative
  // prefix up front, one Real draw + binary search per sample.
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += theta == 0.0 ? 1.0
                          : 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cumulative[r] = total;
  }

  // Evolving row state: batch N's delete must name the version batches
  // 0..N-1 left behind, not the catalog's original row.
  std::vector<Row> current(lineitem->rows().begin(), lineitem->rows().end());

  Rng rng(seed);
  std::vector<ivm::SourceDeltas> batches;
  batches.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    ivm::Delta delta = ivm::Delta::Empty(lineitem->schema());
    std::unordered_set<size_t> touched;
    touched.reserve(rows_per_batch);
    while (touched.size() < rows_per_batch) {
      const double draw = rng.Real(0.0, total);
      const size_t position = static_cast<size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), draw) -
          cumulative.begin());
      const size_t clamped = std::min(position, n - 1);
      // Keys within one batch must be distinct (ValidateDeltas rejects
      // duplicate insert keys); re-draws of a hot row land in later
      // batches instead.
      if (!touched.insert(clamped).second) continue;
      Row& row = current[clamped];
      delta.deletes.AddRow(row);
      Row mutated = row;
      mutated[qn] = Value::Int(rng.Int(1, 50));
      mutated[ep] = Value::Int(rng.Int(1000, 105000));
      delta.inserts.AddRow(mutated);
      row = std::move(mutated);
    }
    ivm::SourceDeltas deltas;
    deltas.emplace("lineitem", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

}  // namespace gpivot::tpch
