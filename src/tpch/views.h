#ifndef GPIVOT_TPCH_VIEWS_H_
#define GPIVOT_TPCH_VIEWS_H_

#include "algebra/plan.h"
#include "util/result.h"

namespace gpivot::tpch {

// The three materialized-view definitions of the paper's evaluation (§7),
// expressed over the dbgen catalog ("lineitem", "orders", "customer").

// View 1 (Fig. 32), non-aggregate:
//   GPIVOT^{1..max_lines}_{linenumber on (quantity, extendedprice)}(lineitem)
//     ⋈_orderkey orders ⋈_custkey customer
// Output key: orderkey. One row per order that has at least one line.
Result<PlanPtr> View1(const Catalog& catalog, int max_line_numbers);

// View 2 (Fig. 36), non-aggregate with σ over a pivoted cell:
//   σ_{1**extendedprice > price_threshold}(GPIVOT(lineitem)) ⋈ orders ⋈ customer
Result<PlanPtr> View2(const Catalog& catalog, int max_line_numbers,
                      double price_threshold);

// View 3 (Fig. 39), aggregate crosstab:
//   GPIVOT^{years}_{orderyear on (sum, cnt)}(
//     F_{custkey, nation, orderyear; SUM(extendedprice) AS sum, COUNT(*) AS cnt}(
//       lineitem ⋈ orders ⋈ customer))
Result<PlanPtr> View3(const Catalog& catalog, int first_year, int num_years);

}  // namespace gpivot::tpch

#endif  // GPIVOT_TPCH_VIEWS_H_
