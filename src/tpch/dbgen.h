#ifndef GPIVOT_TPCH_DBGEN_H_
#define GPIVOT_TPCH_DBGEN_H_

#include <cstdint>

#include "algebra/plan.h"
#include "ivm/delta.h"
#include "relation/table.h"
#include "util/result.h"

namespace gpivot::tpch {

// Deterministic TPC-H-like generator covering the columns the paper's three
// experiment views use (§7). Row counts keep TPC-H's ratios (150k customers
// : 1.5M orders : ~6M lineitems at SF 1.0) but default to laptop scale.
//
// Deviations from real dbgen, chosen deliberately:
//  * lineitem line numbers range over [1, max_line_numbers] so the View-1/2
//    pivots have a fixed combo list;
//  * a `lineless_order_fraction` of orders starts with no lineitems, giving
//    the Fig. 35 "inserts that only insert view rows" workload somewhere to
//    put new orders' lines;
//  * extendedprice is a uniform integer in [1000, 105000] (exact DECIMAL-style arithmetic), making the View-2
//    condition (line-1 price > 30000) ≈ 72% selective, close to the paper's
//    890k / 1.5M ≈ 59%.
struct Config {
  double scale_factor = 0.01;
  uint64_t seed = 20050405;  // ICDE 2005 ;-)
  int max_line_numbers = 7;  // View 1/2 pivot over line numbers 1..7
  int max_initial_lines = 5; // generated orders carry 1..5 lines
  double lineless_order_fraction = 0.10;
  int num_years = 6;         // orders span [first_year, first_year+num_years)
  int first_year = 1992;
};

struct Data {
  Table customer;  // (custkey, name, nationkey, nation), key custkey
  Table orders;    // (orderkey, custkey, orderyear), key orderkey
  Table lineitem;  // (orderkey, linenumber, quantity, extendedprice),
                   // key (orderkey, linenumber)
};

Data Generate(const Config& config);

// Moves the generated tables into a catalog under the names "customer",
// "orders", "lineitem".
Result<Catalog> MakeCatalog(Data data);

// --- Delta workload generators (§7's x-axes) -------------------------------
// `fraction` is relative to the current lineitem row count. All three are
// deterministic in `seed` and leave the catalog untouched.

// Deletes a uniform sample of lineitem rows (Fig. 33 / 37 / 40).
Result<ivm::SourceDeltas> MakeLineitemDeletes(const Catalog& catalog,
                                              double fraction, uint64_t seed);

// Inserts new line numbers for orders that already have lines — every
// affected view row exists, so the view only *updates* (Fig. 34).
Result<ivm::SourceDeltas> MakeLineitemInsertsUpdatesOnly(
    const Catalog& catalog, const Config& config, double fraction,
    uint64_t seed);

// Inserts lines for orders that have none — every affected view row is new,
// so the view only *inserts* (Fig. 35).
Result<ivm::SourceDeltas> MakeLineitemInsertsNewKeys(const Catalog& catalog,
                                                     const Config& config,
                                                     double fraction,
                                                     uint64_t seed);

// Mixed insert batch (Fig. 38 / 41): half update-causing, half new-key.
Result<ivm::SourceDeltas> MakeLineitemInsertsMixed(const Catalog& catalog,
                                                   const Config& config,
                                                   double fraction,
                                                   uint64_t seed);

// Hot-key churn workload: `num_batches` delta batches, each touching
// `rows_per_batch` distinct lineitem rows drawn from a Zipf(theta)
// popularity distribution over the row positions (rank r has weight
// 1 / (r+1)^theta; theta = 0 degenerates to uniform). Each touch deletes
// the row's *current* version and inserts a mutated one (fresh quantity
// and extendedprice, same key), so under skew a few hot keys churn over
// and over — the workload the heavy/light batcher classifier and sharded
// commit target. Batches are sequentially consistent: batch N's deletes
// match the row state after batches 0..N-1 applied, and each batch's
// sampled keys are distinct (ValidateDeltas-clean). Deterministic in
// (catalog contents, num_batches, rows_per_batch, theta, seed).
Result<std::vector<ivm::SourceDeltas>> MakeLineitemZipfChurn(
    const Catalog& catalog, size_t num_batches, size_t rows_per_batch,
    double theta, uint64_t seed);

}  // namespace gpivot::tpch

#endif  // GPIVOT_TPCH_DBGEN_H_
