#include "expr/aggregate.h"

#include "util/string_util.h"

namespace gpivot {

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggSpec::ToString() const {
  if (func == AggFunc::kCountStar) {
    return StrCat("COUNT(*) AS ", output);
  }
  return StrCat(AggFuncToString(func), "(", input, ") AS ", output);
}

void Accumulator::Add(const Value& value) {
  if (func_ == AggFunc::kCountStar) {
    ++count_;
    return;
  }
  if (value.is_null()) return;
  ++count_;
  switch (func_) {
    case AggFunc::kSum:
    case AggFunc::kAvg:
      sum_ += value.AsNumeric();
      if (!value.is_int()) all_int_ = false;
      break;
    case AggFunc::kMin:
      if (extreme_.is_null() || value < extreme_) extreme_ = value;
      break;
    case AggFunc::kMax:
      if (extreme_.is_null() || extreme_ < value) extreme_ = value;
      break;
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      break;
  }
}

Value Accumulator::Finish() const {
  if (count_ == 0) return Value::Null();
  switch (func_) {
    case AggFunc::kSum:
      return all_int_ ? Value::Int(static_cast<int64_t>(sum_))
                      : Value::Real(sum_);
    case AggFunc::kAvg:
      return Value::Real(sum_ / static_cast<double>(count_));
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return Value::Int(count_);
    case AggFunc::kMin:
    case AggFunc::kMax:
      return extreme_;
  }
  return Value::Null();
}

DataType AggResultType(AggFunc func, DataType input_type) {
  switch (func) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input_type;
  }
  return DataType::kNull;
}

}  // namespace gpivot
