#include "expr/expr.h"

#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ComparisonExpr::ToString() const {
  return StrCat("(", left_->ToString(), " ", CompareOpToString(op_), " ",
                right_->ToString(), ")");
}

std::string BoolOpExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(operands_.size());
  for (const ExprPtr& e : operands_) parts.push_back(e->ToString());
  return StrCat("(", Join(parts, op_ == BoolOpKind::kAnd ? " AND " : " OR "),
                ")");
}

std::string NotExpr::ToString() const {
  return StrCat("NOT ", operand_->ToString());
}

std::string IsNullExpr::ToString() const {
  return StrCat(operand_->ToString(), negated_ ? " IS NOT NULL" : " IS NULL");
}

std::string ArithExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithOp::kAdd:
      op = "+";
      break;
    case ArithOp::kSub:
      op = "-";
      break;
    case ArithOp::kMul:
      op = "*";
      break;
    case ArithOp::kDiv:
      op = "/";
      break;
  }
  return StrCat("(", left_->ToString(), " ", op, " ", right_->ToString(), ")");
}

std::string CaseExpr::ToString() const {
  return StrCat("CASE WHEN ", condition_->ToString(), " THEN ",
                then_->ToString(), " ELSE ", else_->ToString(), " END");
}

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Lit(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}
ExprPtr Lit(int64_t value) { return Lit(Value::Int(value)); }
ExprPtr Lit(double value) { return Lit(Value::Real(value)); }
ExprPtr Lit(const char* value) { return Lit(Value::Str(value)); }
ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left),
                                          std::move(right));
}
ExprPtr Eq(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kEq, std::move(left), std::move(right));
}
ExprPtr Ne(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kNe, std::move(left), std::move(right));
}
ExprPtr Lt(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kLt, std::move(left), std::move(right));
}
ExprPtr Le(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kLe, std::move(left), std::move(right));
}
ExprPtr Gt(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kGt, std::move(left), std::move(right));
}
ExprPtr Ge(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kGe, std::move(left), std::move(right));
}
ExprPtr And(std::vector<ExprPtr> operands) {
  GPIVOT_CHECK(!operands.empty()) << "And() needs operands";
  if (operands.size() == 1) return operands[0];
  return std::make_shared<BoolOpExpr>(BoolOpKind::kAnd, std::move(operands));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return And(std::vector<ExprPtr>{std::move(a), std::move(b)});
}
ExprPtr Or(std::vector<ExprPtr> operands) {
  GPIVOT_CHECK(!operands.empty()) << "Or() needs operands";
  if (operands.size() == 1) return operands[0];
  return std::make_shared<BoolOpExpr>(BoolOpKind::kOr, std::move(operands));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Or(std::vector<ExprPtr>{std::move(a), std::move(b)});
}
ExprPtr Not(ExprPtr operand) {
  return std::make_shared<NotExpr>(std::move(operand));
}
ExprPtr IsNull(ExprPtr operand) {
  return std::make_shared<IsNullExpr>(std::move(operand), /*negated=*/false);
}
ExprPtr IsNotNull(ExprPtr operand) {
  return std::make_shared<IsNullExpr>(std::move(operand), /*negated=*/true);
}
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kAdd, std::move(a),
                                     std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kSub, std::move(a),
                                     std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kMul, std::move(a),
                                     std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kDiv, std::move(a),
                                     std::move(b));
}
ExprPtr Case(ExprPtr condition, ExprPtr then_value, ExprPtr else_value) {
  return std::make_shared<CaseExpr>(std::move(condition),
                                    std::move(then_value),
                                    std::move(else_value));
}

namespace {

// Three-valued comparison: NULL operands yield NULL.
Value EvalCompare(CompareOp op, const Value& left, const Value& right) {
  if (left.is_null() || right.is_null()) return Value::Null();
  bool result = false;
  switch (op) {
    case CompareOp::kEq:
      result = left == right;
      break;
    case CompareOp::kNe:
      result = left != right;
      break;
    case CompareOp::kLt:
      result = left < right;
      break;
    case CompareOp::kLe:
      result = left < right || left == right;
      break;
    case CompareOp::kGt:
      result = right < left;
      break;
    case CompareOp::kGe:
      result = right < left || left == right;
      break;
  }
  return Value::Int(result ? 1 : 0);
}

Value EvalArith(ArithOp op, const Value& left, const Value& right) {
  if (left.is_null() || right.is_null()) return Value::Null();
  if (left.is_int() && right.is_int() && op != ArithOp::kDiv) {
    int64_t a = left.AsInt(), b = right.AsInt();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      default:
        break;
    }
  }
  double a = left.AsNumeric(), b = right.AsNumeric();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Real(a + b);
    case ArithOp::kSub:
      return Value::Real(a - b);
    case ArithOp::kMul:
      return Value::Real(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Value::Null();
      return Value::Real(a / b);
  }
  return Value::Null();
}

}  // namespace

bool ValueIsTrue(const Value& value) {
  if (value.is_null()) return false;
  if (value.is_int()) return value.AsInt() != 0;
  if (value.is_double()) return value.AsDouble() != 0;
  return false;
}

Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema& schema) {
  GPIVOT_CHECK(expr != nullptr) << "CompileExpr on null expression";
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
      GPIVOT_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(ref->name()));
      return CompiledExpr([index](const Row& row) { return row[index]; });
    }
    case ExprKind::kLiteral: {
      Value v = static_cast<const LiteralExpr*>(expr.get())->value();
      return CompiledExpr([v](const Row&) { return v; });
    }
    case ExprKind::kComparison: {
      const auto* cmp = static_cast<const ComparisonExpr*>(expr.get());
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr left,
                              CompileExpr(cmp->left(), schema));
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr right,
                              CompileExpr(cmp->right(), schema));
      CompareOp op = cmp->op();
      return CompiledExpr([op, left, right](const Row& row) {
        return EvalCompare(op, left(row), right(row));
      });
    }
    case ExprKind::kBoolOp: {
      const auto* bop = static_cast<const BoolOpExpr*>(expr.get());
      std::vector<CompiledExpr> operands;
      operands.reserve(bop->operands().size());
      for (const ExprPtr& e : bop->operands()) {
        GPIVOT_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(e, schema));
        operands.push_back(std::move(c));
      }
      if (bop->op() == BoolOpKind::kAnd) {
        return CompiledExpr([operands](const Row& row) {
          bool saw_null = false;
          for (const CompiledExpr& e : operands) {
            Value v = e(row);
            if (v.is_null()) {
              saw_null = true;
            } else if (!ValueIsTrue(v)) {
              return Value::Int(0);
            }
          }
          return saw_null ? Value::Null() : Value::Int(1);
        });
      }
      return CompiledExpr([operands](const Row& row) {
        bool saw_null = false;
        for (const CompiledExpr& e : operands) {
          Value v = e(row);
          if (v.is_null()) {
            saw_null = true;
          } else if (ValueIsTrue(v)) {
            return Value::Int(1);
          }
        }
        return saw_null ? Value::Null() : Value::Int(0);
      });
    }
    case ExprKind::kNot: {
      const auto* n = static_cast<const NotExpr*>(expr.get());
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr operand,
                              CompileExpr(n->operand(), schema));
      return CompiledExpr([operand](const Row& row) {
        Value v = operand(row);
        if (v.is_null()) return Value::Null();
        return Value::Int(ValueIsTrue(v) ? 0 : 1);
      });
    }
    case ExprKind::kIsNull: {
      const auto* n = static_cast<const IsNullExpr*>(expr.get());
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr operand,
                              CompileExpr(n->operand(), schema));
      bool negated = n->negated();
      return CompiledExpr([operand, negated](const Row& row) {
        bool is_null = operand(row).is_null();
        return Value::Int((is_null != negated) ? 1 : 0);
      });
    }
    case ExprKind::kArith: {
      const auto* a = static_cast<const ArithExpr*>(expr.get());
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr left,
                              CompileExpr(a->left(), schema));
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr right,
                              CompileExpr(a->right(), schema));
      ArithOp op = a->op();
      return CompiledExpr([op, left, right](const Row& row) {
        return EvalArith(op, left(row), right(row));
      });
    }
    case ExprKind::kCase: {
      const auto* c = static_cast<const CaseExpr*>(expr.get());
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr cond,
                              CompileExpr(c->condition(), schema));
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr then_value,
                              CompileExpr(c->then_value(), schema));
      GPIVOT_ASSIGN_OR_RETURN(CompiledExpr else_value,
                              CompileExpr(c->else_value(), schema));
      return CompiledExpr([cond, then_value, else_value](const Row& row) {
        return ValueIsTrue(cond(row)) ? then_value(row) : else_value(row);
      });
    }
  }
  return Status::Internal("unknown expression kind");
}

std::vector<std::string> ReferencedColumns(const ExprPtr& expr) {
  std::vector<std::string> all;
  expr->CollectColumns(&all);
  std::vector<std::string> distinct;
  std::unordered_set<std::string> seen;
  for (std::string& name : all) {
    if (seen.insert(name).second) distinct.push_back(std::move(name));
  }
  return distinct;
}

bool ExprOnlyReferences(const ExprPtr& expr,
                        const std::vector<std::string>& allowed) {
  std::unordered_set<std::string> allowed_set(allowed.begin(), allowed.end());
  for (const std::string& name : ReferencedColumns(expr)) {
    if (allowed_set.count(name) == 0) return false;
  }
  return true;
}

}  // namespace gpivot
