#ifndef GPIVOT_EXPR_AGGREGATE_H_
#define GPIVOT_EXPR_AGGREGATE_H_

#include <string>
#include <vector>

#include "relation/value.h"

namespace gpivot {

// Aggregate functions. Per the paper's convention (proof of Eq. 8), every
// aggregate — including COUNT — disregards ⊥ inputs and yields ⊥ when there
// is nothing to aggregate; this is what makes GPIVOT commute with GROUPBY.
enum class AggFunc {
  kSum,
  kCount,      // COUNT(column): non-⊥ inputs
  kCountStar,  // COUNT(*): all rows
  kMin,
  kMax,
  kAvg,
};

const char* AggFuncToString(AggFunc func);

// One aggregate column in a GROUPBY: `func(input)` named `output`.
// `input` is ignored (may be empty) for kCountStar.
struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  std::string input;
  std::string output;

  static AggSpec Sum(std::string input, std::string output) {
    return {AggFunc::kSum, std::move(input), std::move(output)};
  }
  static AggSpec Count(std::string input, std::string output) {
    return {AggFunc::kCount, std::move(input), std::move(output)};
  }
  static AggSpec CountStar(std::string output) {
    return {AggFunc::kCountStar, "", std::move(output)};
  }
  static AggSpec Min(std::string input, std::string output) {
    return {AggFunc::kMin, std::move(input), std::move(output)};
  }
  static AggSpec Max(std::string input, std::string output) {
    return {AggFunc::kMax, std::move(input), std::move(output)};
  }
  static AggSpec Avg(std::string input, std::string output) {
    return {AggFunc::kAvg, std::move(input), std::move(output)};
  }

  std::string ToString() const;
  bool operator==(const AggSpec& other) const {
    return func == other.func && input == other.input &&
           output == other.output;
  }
};

// Streaming accumulator for one aggregate over one group.
class Accumulator {
 public:
  explicit Accumulator(AggFunc func) : func_(func) {}

  // Feeds one input value. For kCountStar pass any value (it is ignored).
  void Add(const Value& value);

  // Final value; ⊥ when nothing (non-⊥) was accumulated.
  Value Finish() const;

 private:
  AggFunc func_;
  int64_t count_ = 0;      // non-⊥ inputs (all rows for kCountStar)
  double sum_ = 0;
  bool all_int_ = true;    // SUM of only-int inputs stays INT64
  Value extreme_;          // running MIN/MAX
};

// Result type of `func` given an input column of type `input_type`.
DataType AggResultType(AggFunc func, DataType input_type);

}  // namespace gpivot

#endif  // GPIVOT_EXPR_AGGREGATE_H_
