#ifndef GPIVOT_EXPR_EXPR_H_
#define GPIVOT_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relation/row.h"
#include "relation/schema.h"
#include "relation/value.h"
#include "util/result.h"

namespace gpivot {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kComparison,
  kBoolOp,   // AND / OR
  kNot,
  kIsNull,   // IS NULL / IS NOT NULL
  kArith,    // + - * /
  kCase,     // CASE WHEN cond THEN a ELSE b END
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class BoolOpKind { kAnd, kOr };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpToString(CompareOp op);

// Immutable scalar expression tree over named columns. Expressions are
// unbound (they reference columns by name); `CompileExpr` resolves names
// against a schema and returns a fast evaluator closure.
class Expr {
 public:
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }

  virtual std::string ToString() const = 0;

  // Appends every referenced column name (with duplicates) to `out`.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;

  // Conservatively true when the predicate cannot evaluate to TRUE if any
  // referenced column is NULL (the paper's "null-intolerant" condition,
  // required by the SELECT-over-GPIVOT combined rules, §6.3.2).
  virtual bool IsNullIntolerant() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(std::string name)
      : Expr(ExprKind::kColumnRef), name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }
  bool IsNullIntolerant() const override { return true; }

 private:
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}
  const Value& value() const { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::vector<std::string>*) const override {}
  bool IsNullIntolerant() const override { return true; }

 private:
  Value value_;
};

class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }
  bool IsNullIntolerant() const override { return true; }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class BoolOpExpr final : public Expr {
 public:
  BoolOpExpr(BoolOpKind op, std::vector<ExprPtr> operands)
      : Expr(ExprKind::kBoolOp), op_(op), operands_(std::move(operands)) {}
  BoolOpKind op() const { return op_; }
  const std::vector<ExprPtr>& operands() const { return operands_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    for (const ExprPtr& e : operands_) e->CollectColumns(out);
  }
  // AND: any NULL operand makes the result not-TRUE. OR: TRUE only when some
  // operand is TRUE, but a NULL column could still be irrelevant to another
  // operand, so OR over disjoint columns is tolerant. We keep the paper's
  // convention: a disjunction of null-intolerant conjuncts over the *same*
  // pivot columns stays intolerant; checking column overlap here would be
  // over-engineering, so OR is conservatively reported tolerant.
  bool IsNullIntolerant() const override {
    if (op_ == BoolOpKind::kOr) return false;
    for (const ExprPtr& e : operands_) {
      if (!e->IsNullIntolerant()) return false;
    }
    return true;
  }

 private:
  BoolOpKind op_;
  std::vector<ExprPtr> operands_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand)
      : Expr(ExprKind::kNot), operand_(std::move(operand)) {}
  const ExprPtr& operand() const { return operand_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    operand_->CollectColumns(out);
  }
  bool IsNullIntolerant() const override {
    // NOT(NULL) = NULL, which is not TRUE, so NOT of an intolerant child
    // whose NULL-input result is NULL stays intolerant. NOT(FALSE)=TRUE
    // makes NOT of IS NULL style children tolerant; be conservative.
    return operand_->kind() == ExprKind::kComparison;
  }

 private:
  ExprPtr operand_;
};

class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : Expr(ExprKind::kIsNull),
        operand_(std::move(operand)),
        negated_(negated) {}
  const ExprPtr& operand() const { return operand_; }
  bool negated() const { return negated_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    operand_->CollectColumns(out);
  }
  bool IsNullIntolerant() const override { return negated_; }

 private:
  ExprPtr operand_;
  bool negated_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kArith),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }
  bool IsNullIntolerant() const override { return true; }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class CaseExpr final : public Expr {
 public:
  CaseExpr(ExprPtr condition, ExprPtr then_value, ExprPtr else_value)
      : Expr(ExprKind::kCase),
        condition_(std::move(condition)),
        then_(std::move(then_value)),
        else_(std::move(else_value)) {}
  const ExprPtr& condition() const { return condition_; }
  const ExprPtr& then_value() const { return then_; }
  const ExprPtr& else_value() const { return else_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    condition_->CollectColumns(out);
    then_->CollectColumns(out);
    else_->CollectColumns(out);
  }
  bool IsNullIntolerant() const override { return false; }

 private:
  ExprPtr condition_;
  ExprPtr then_;
  ExprPtr else_;
};

// ---- Construction helpers ----------------------------------------------

ExprPtr Col(std::string name);
ExprPtr Lit(Value value);
ExprPtr Lit(int64_t value);
ExprPtr Lit(double value);
ExprPtr Lit(const char* value);
ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr Eq(ExprPtr left, ExprPtr right);
ExprPtr Ne(ExprPtr left, ExprPtr right);
ExprPtr Lt(ExprPtr left, ExprPtr right);
ExprPtr Le(ExprPtr left, ExprPtr right);
ExprPtr Gt(ExprPtr left, ExprPtr right);
ExprPtr Ge(ExprPtr left, ExprPtr right);
ExprPtr And(std::vector<ExprPtr> operands);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(std::vector<ExprPtr> operands);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr operand);
ExprPtr IsNull(ExprPtr operand);
ExprPtr IsNotNull(ExprPtr operand);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Case(ExprPtr condition, ExprPtr then_value, ExprPtr else_value);

// ---- Evaluation ----------------------------------------------------------

// A compiled evaluator: column references already resolved to positions.
using CompiledExpr = std::function<Value(const Row&)>;

// Resolves column names in `expr` against `schema`; fails on unknown names.
Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema& schema);

// SQL truthiness: NULL and FALSE(0) are not true.
bool ValueIsTrue(const Value& value);

// Distinct referenced column names, in first-appearance order.
std::vector<std::string> ReferencedColumns(const ExprPtr& expr);

// True when every referenced column is in `allowed`.
bool ExprOnlyReferences(const ExprPtr& expr,
                        const std::vector<std::string>& allowed);

}  // namespace gpivot

#endif  // GPIVOT_EXPR_EXPR_H_
