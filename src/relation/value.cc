#include "relation/value.h"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/hash_util.h"

namespace gpivot {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_int()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

int64_t Value::AsInt() const {
  GPIVOT_CHECK(is_int()) << "Value::AsInt on " << ToString();
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  GPIVOT_CHECK(is_double()) << "Value::AsDouble on " << ToString();
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  GPIVOT_CHECK(is_string()) << "Value::AsString on " << ToString();
  return std::get<std::string>(data_);
}

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
  GPIVOT_CHECK(is_double()) << "Value::AsNumeric on " << ToString();
  return std::get<double>(data_);
}

bool Value::operator==(const Value& other) const {
  // Cross-type numeric equality (an INT64 3 equals a DOUBLE 3.0): group-by
  // and key matching treat numerics uniformly.
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_string() != other.is_string()) return false;
  if (is_string()) return AsString() == other.AsString();
  if (is_int() && other.is_int()) return AsInt() == other.AsInt();
  return AsNumeric() == other.AsNumeric();
}

bool Value::operator<(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // NULL == NULL
  if (ra == 1) {
    if (is_int() && other.is_int()) return AsInt() < other.AsInt();
    return AsNumeric() < other.AsNumeric();
  }
  return AsString() < other.AsString();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9d3f;
  if (is_string()) return std::hash<std::string>{}(AsString());
  if (is_int()) {
    // Hash integral doubles and int64s identically so that == and Hash agree.
    return std::hash<double>{}(static_cast<double>(AsInt()));
  }
  return std::hash<double>{}(AsDouble());
}

std::string Value::ToString() const {
  if (is_null()) return "⊥";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::ostringstream out;
    out << AsDouble();
    return out.str();
  }
  return AsString();
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace gpivot
