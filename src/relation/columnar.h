#ifndef GPIVOT_RELATION_COLUMNAR_H_
#define GPIVOT_RELATION_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relation/row.h"
#include "relation/value.h"
#include "util/small_vector.h"

namespace gpivot {

// Storage class of a column view, detected from the data (not the declared
// schema type: a declared INT64 column may legally carry only NULLs, and
// expression outputs can mix numerics).
enum class ColumnKind {
  kInt64,    // every non-null cell is an int64
  kDouble,   // every non-null cell is a double
  kString,   // every non-null cell is a string (pooled bytes)
  kAllNull,  // no non-null cells (includes the empty column)
  kMixed,    // anything else; falls back to per-cell Values
};

const char* ColumnKindToString(ColumnKind kind);

// An immutable, typed, column-major view of one column of a row bag.
//
// Layout: a validity bitmap (one bit per row, set = non-null, omitted when
// the column has no NULLs) plus a kind-specific payload — a flat int64 or
// double vector with zero placeholders in null positions, or a string pool
// (one concatenated byte buffer + row-count+1 offsets, cells borrowed as
// string_views). Mixed-type columns keep plain Values; the vectorized
// operators treat kMixed as "use the row shim".
//
// Every accessor reproduces the source rows exactly: At(i) rebuilds the
// original Value, CellHash matches Value::Hash, and the equality helpers
// match Value::operator== (NULL equals NULL, int64 3 equals double 3.0) —
// the fast paths built on top inherit byte-identical results from this.
class ColumnVector {
 public:
  // Builds the view of column `col` over `rows`. Never fails: columns that
  // do not fit a typed layout come back as kMixed.
  static std::shared_ptr<const ColumnVector> Build(
      const std::vector<Row>& rows, size_t col);

  ColumnKind kind() const { return kind_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return has_nulls_; }

  bool IsNull(size_t i) const {
    if (kind_ == ColumnKind::kMixed) return mixed_[i].is_null();
    if (kind_ == ColumnKind::kAllNull) return true;
    if (!has_nulls_) return false;
    return (valid_[i >> 6] & (uint64_t{1} << (i & 63))) == 0;
  }

  // Typed accessors: valid only for the matching kind on non-null cells.
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  std::string_view StringAt(size_t i) const {
    return std::string_view(pool_).substr(offsets_[i],
                                          offsets_[i + 1] - offsets_[i]);
  }

  // Exact reconstruction of the source cell.
  Value At(size_t i) const;

  // == rows[i][col].Hash().
  size_t CellHash(size_t i) const;

  // == (rows_a[i][col_a] == rows_b[j][col_b]) under Value::operator==.
  static bool CellsEqual(const ColumnVector& a, size_t i,
                         const ColumnVector& b, size_t j);

  // == (rows[i][col] == v) under Value::operator==.
  bool CellEqualsValue(size_t i, const Value& v) const;

 private:
  ColumnVector() = default;

  ColumnKind kind_ = ColumnKind::kAllNull;
  size_t size_ = 0;
  bool has_nulls_ = false;
  SmallVector<uint64_t, 2> valid_;    // validity bits; empty when !has_nulls_
  SmallVector<int64_t, 8> ints_;      // kInt64 payload
  SmallVector<double, 8> doubles_;    // kDouble payload
  std::string pool_;                  // kString bytes, concatenated
  SmallVector<uint32_t, 8> offsets_;  // kString: size_+1 offsets into pool_
  std::vector<Value> mixed_;          // kMixed fallback
};

}  // namespace gpivot

#endif  // GPIVOT_RELATION_COLUMNAR_H_
