#ifndef GPIVOT_RELATION_TABLE_H_
#define GPIVOT_RELATION_TABLE_H_

#include <string>
#include <vector>

#include "relation/row.h"
#include "relation/schema.h"
#include "util/result.h"
#include "util/status.h"

namespace gpivot {

// A bag (multiset) of rows with a schema and an optional declared key.
// The key, when declared, is the prerequisite for pivot applicability and
// for MERGE-style maintenance; it is validated on demand, not per insert.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows);

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Appends a row; aborts when arity mismatches the schema.
  void AddRow(Row row);

  // Declared key as column names. Empty = no key declared.
  const std::vector<std::string>& key() const { return key_; }
  bool has_key() const { return !key_.empty(); }
  Status SetKey(std::vector<std::string> key_columns);
  // Key column positions within the schema.
  Result<std::vector<size_t>> KeyIndices() const;

  // Verifies the declared key is actually unique in the current contents.
  Status ValidateKey() const;

  // Bag-semantics equality: same schema, same row multiset (order ignored).
  bool BagEquals(const Table& other) const;

  // Deterministic copy sorted by all columns (for printing and comparison).
  Table Sorted() const;

  // ASCII rendering with header; at most `max_rows` rows.
  std::string ToString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::string> key_;
};

}  // namespace gpivot

#endif  // GPIVOT_RELATION_TABLE_H_
