#ifndef GPIVOT_RELATION_TABLE_H_
#define GPIVOT_RELATION_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "relation/columnar.h"
#include "relation/row.h"
#include "relation/schema.h"
#include "util/result.h"
#include "util/status.h"

namespace gpivot {

// A bag (multiset) of rows with a schema and an optional declared key.
// The key, when declared, is the prerequisite for pivot applicability and
// for MERGE-style maintenance; it is validated on demand, not per insert.
//
// Row storage is authoritative: rows() / RowAt() are the row-view adapter
// every cold path keeps using. On top of it the table lazily materializes
// immutable per-column typed views (ColumnVector) for the vectorized
// operator fast paths. The cache is built on first ColumnData() call,
// shared by copies (the views are immutable), safe to build from multiple
// reader threads, and invalidated by any mutation entry point (AddRow,
// mutable_rows, the sort in Sorted). Since the views reproduce the rows
// exactly, warm/cold cache state is never observable in results.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows);

  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() {
    if (has_column_cache_.load(std::memory_order_relaxed)) {
      InvalidateColumns();
    }
    return rows_;
  }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Row-view adapter for per-row access (== rows()[i]).
  const Row& RowAt(size_t i) const { return rows_[i]; }

  // Immutable typed view of column `col`, built on first use and cached.
  // Thread-safe against concurrent ColumnData calls (concurrent mutation
  // is a caller bug, as for any container). Aborts when out of range.
  std::shared_ptr<const ColumnVector> ColumnData(size_t col) const;

  // The cached view of column `col`, or nullptr when cold — never builds.
  // The storage codec uses this to take the column-major encode path only
  // when the operators already paid for the views.
  std::shared_ptr<const ColumnVector> CachedColumnData(size_t col) const;

  // Appends a row; aborts when arity mismatches the schema.
  void AddRow(Row row);

  // Declared key as column names. Empty = no key declared.
  const std::vector<std::string>& key() const { return key_; }
  bool has_key() const { return !key_.empty(); }
  Status SetKey(std::vector<std::string> key_columns);
  // Key column positions within the schema.
  Result<std::vector<size_t>> KeyIndices() const;

  // Verifies the declared key is actually unique in the current contents.
  Status ValidateKey() const;

  // Bag-semantics equality: same schema, same row multiset (order ignored).
  bool BagEquals(const Table& other) const;

  // Deterministic copy sorted by all columns (for printing and comparison).
  Table Sorted() const;

  // ASCII rendering with header; at most `max_rows` rows.
  std::string ToString(size_t max_rows = 50) const;

 private:
  void InvalidateColumns();

  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::string> key_;

  // Lazily-built column views; empty vector = cold. The atomic flag lets
  // the mutation entry points skip the mutex entirely while the cache is
  // cold (the common case for freshly built operator outputs).
  mutable std::mutex columns_mu_;
  mutable std::vector<std::shared_ptr<const ColumnVector>> columns_;
  mutable std::atomic<bool> has_column_cache_{false};
};

}  // namespace gpivot

#endif  // GPIVOT_RELATION_TABLE_H_
