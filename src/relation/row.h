#ifndef GPIVOT_RELATION_ROW_H_
#define GPIVOT_RELATION_ROW_H_

#include <string>
#include <vector>

#include "relation/value.h"

namespace gpivot {

// A tuple of values, positionally aligned with some Schema.
using Row = std::vector<Value>;

// Values of `row` at `indices`, in order (π with duplicates allowed).
Row ProjectRow(const Row& row, const std::vector<size_t>& indices);

// Hash of the whole row (for bag semantics / duplicate detection).
size_t HashRow(const Row& row);

// Hash of the sub-row at `indices` (for key and join hashing).
size_t HashRowAt(const Row& row, const std::vector<size_t>& indices);

// True when the sub-rows at `left_indices` / `right_indices` are equal
// under Value::operator== (NULL equals NULL).
bool RowsEqualAt(const Row& left, const std::vector<size_t>& left_indices,
                 const Row& right, const std::vector<size_t>& right_indices);

// "(v1, v2, ...)".
std::string RowToString(const Row& row);

struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return a == b; }
};

}  // namespace gpivot

#endif  // GPIVOT_RELATION_ROW_H_
