#include "relation/key_index.h"

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

Result<KeyIndex> KeyIndex::Build(const Table& table,
                                 std::vector<size_t> key_indices) {
  KeyIndex index(std::move(key_indices));
  index.map_.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    Row key = ProjectRow(table.rows()[i], index.key_indices_);
    auto [it, inserted] = index.map_.emplace(std::move(key), i);
    if (!inserted) {
      return Status::ConstraintViolation(
          StrCat("KeyIndex: duplicate key ", RowToString(it->first)));
    }
  }
  return index;
}

std::optional<size_t> KeyIndex::Lookup(
    const Row& probe, const std::vector<size_t>& probe_indices) const {
  return LookupKey(ProjectRow(probe, probe_indices));
}

std::optional<size_t> KeyIndex::LookupKey(const Row& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void KeyIndex::Insert(const Row& row, size_t position) {
  Row key = ProjectRow(row, key_indices_);
  auto [it, inserted] = map_.emplace(std::move(key), position);
  GPIVOT_CHECK(inserted) << "KeyIndex::Insert duplicate key "
                         << RowToString(it->first);
}

void KeyIndex::EraseKey(const Row& key) { map_.erase(key); }

void KeyIndex::Reposition(const Row& row, size_t to) {
  Row key = ProjectRow(row, key_indices_);
  auto it = map_.find(key);
  GPIVOT_CHECK(it != map_.end())
      << "KeyIndex::Reposition unknown key " << RowToString(key);
  it->second = to;
}

}  // namespace gpivot
