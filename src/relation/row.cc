#include "relation/row.h"

#include "util/check.h"
#include "util/hash_util.h"
#include "util/string_util.h"

namespace gpivot {

Row ProjectRow(const Row& row, const std::vector<size_t>& indices) {
  Row result;
  result.reserve(indices.size());
  for (size_t i : indices) {
    GPIVOT_CHECK(i < row.size()) << "ProjectRow index out of range";
    result.push_back(row[i]);
  }
  return result;
}

size_t HashRow(const Row& row) {
  size_t seed = 0x8f2d;
  for (const Value& v : row) seed = HashCombine(seed, v.Hash());
  return seed;
}

size_t HashRowAt(const Row& row, const std::vector<size_t>& indices) {
  size_t seed = 0x8f2d;
  for (size_t i : indices) {
    GPIVOT_CHECK(i < row.size()) << "HashRowAt index out of range";
    seed = HashCombine(seed, row[i].Hash());
  }
  return seed;
}

bool RowsEqualAt(const Row& left, const std::vector<size_t>& left_indices,
                 const Row& right, const std::vector<size_t>& right_indices) {
  GPIVOT_CHECK(left_indices.size() == right_indices.size())
      << "RowsEqualAt index lists differ in size";
  for (size_t i = 0; i < left_indices.size(); ++i) {
    if (left[left_indices[i]] != right[right_indices[i]]) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::vector<std::string> parts;
  parts.reserve(row.size());
  for (const Value& v : row) parts.push_back(v.ToString());
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace gpivot
