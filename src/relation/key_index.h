#ifndef GPIVOT_RELATION_KEY_INDEX_H_
#define GPIVOT_RELATION_KEY_INDEX_H_

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "relation/row.h"
#include "relation/table.h"
#include "util/result.h"

namespace gpivot {

// Hash index from a key sub-row to a row position in a table. This is the
// in-memory analogue of the unique index commercial engines keep on a
// materialized view's key; the MERGE apply phase relies on it.
//
// The index stores row positions, so it must be rebuilt (or patched via
// Insert/Erase/MoveLast) when the underlying table mutates.
class KeyIndex {
 public:
  // Builds an index over `table` using `key_indices` (positions into the
  // table's schema). A duplicate key is a ConstraintViolation: table
  // contents come from callers, so the build must not abort on bad data.
  static Result<KeyIndex> Build(const Table& table,
                                std::vector<size_t> key_indices);

  const std::vector<size_t>& key_indices() const { return key_indices_; }

  // Position of the row whose key equals the key of `probe` projected at
  // `probe_indices`, if any.
  std::optional<size_t> Lookup(const Row& probe,
                               const std::vector<size_t>& probe_indices) const;

  // Position of the row whose key equals `key` (already projected).
  std::optional<size_t> LookupKey(const Row& key) const;

  // Registers the row at `position` (its key must be absent).
  void Insert(const Row& row, size_t position);

  // Removes the entry for `key`. No-op when absent.
  void EraseKey(const Row& key);

  // Informs the index that the row previously at `from` now lives at `to`
  // (swap-with-last deletion in the table).
  void Reposition(const Row& row, size_t to);

  size_t size() const { return map_.size(); }

 private:
  explicit KeyIndex(std::vector<size_t> key_indices)
      : key_indices_(std::move(key_indices)) {}

  std::vector<size_t> key_indices_;
  std::unordered_map<Row, size_t, RowHash, RowEq> map_;
};

}  // namespace gpivot

#endif  // GPIVOT_RELATION_KEY_INDEX_H_
