#include "relation/schema.h"

#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

namespace {
void CheckUniqueNames(const std::vector<Column>& columns) {
  std::unordered_set<std::string> seen;
  for (const Column& c : columns) {
    GPIVOT_CHECK(seen.insert(c.name).second)
        << "duplicate column name '" << c.name << "' in schema";
  }
}
}  // namespace

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  CheckUniqueNames(columns_);
}

Schema::Schema(std::initializer_list<Column> columns) : columns_(columns) {
  CheckUniqueNames(columns_);
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

size_t Schema::ColumnIndexOrDie(const std::string& name) const {
  auto index = FindColumn(name);
  GPIVOT_CHECK(index.has_value())
      << "column '" << name << "' not in schema " << ToString();
  return *index;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto index = FindColumn(name);
  if (!index.has_value()) {
    return Status::NotFound(
        StrCat("column '", name, "' not in schema ", ToString()));
  }
  return *index;
}

std::vector<std::string> Schema::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name);
  return names;
}

Result<std::vector<size_t>> Schema::ColumnIndices(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    GPIVOT_ASSIGN_OR_RETURN(size_t index, ColumnIndex(name));
    indices.push_back(index);
  }
  return indices;
}

Result<Schema> Schema::Concat(const Schema& other) const {
  std::vector<Column> columns = columns_;
  for (const Column& c : other.columns_) {
    if (HasColumn(c.name)) {
      return Status::InvalidArgument(
          StrCat("Concat: duplicate column '", c.name, "'"));
    }
    columns.push_back(c);
  }
  return Schema(std::move(columns));
}

Schema Schema::Select(const std::vector<size_t>& indices) const {
  std::vector<Column> columns;
  columns.reserve(indices.size());
  for (size_t i : indices) {
    GPIVOT_CHECK(i < columns_.size()) << "Select index out of range";
    columns.push_back(columns_[i]);
  }
  return Schema(std::move(columns));
}

Result<Schema> Schema::Drop(const std::vector<std::string>& names) const {
  std::unordered_set<std::string> to_drop;
  for (const std::string& name : names) {
    if (!HasColumn(name)) {
      return Status::NotFound(StrCat("Drop: unknown column '", name, "'"));
    }
    to_drop.insert(name);
  }
  std::vector<Column> columns;
  for (const Column& c : columns_) {
    if (to_drop.count(c.name) == 0) columns.push_back(c);
  }
  return Schema(std::move(columns));
}

Schema Schema::Rename(size_t index, std::string new_name) const {
  GPIVOT_CHECK(index < columns_.size()) << "Rename index out of range";
  std::vector<Column> columns = columns_;
  columns[index].name = std::move(new_name);
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(StrCat(c.name, " ", DataTypeToString(c.type)));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace gpivot
