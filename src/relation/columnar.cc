#include "relation/columnar.h"

#include <functional>
#include <limits>
#include <utility>

#include "util/check.h"
#include "util/hash_util.h"

namespace gpivot {

namespace {

// Per-type cell hashes, bit-for-bit the Value::Hash cases: NULL hashes to a
// fixed salt, int64s hash as the equal double so cross-type numeric
// equality and hashing agree, and string_view hashes match std::string
// (guaranteed equal for equal character sequences).
constexpr size_t kNullHash = 0x9d3f;

size_t HashInt64Cell(int64_t v) {
  return std::hash<double>{}(static_cast<double>(v));
}

size_t HashDoubleCell(double v) { return std::hash<double>{}(v); }

size_t HashStringCell(std::string_view v) {
  return std::hash<std::string_view>{}(v);
}

}  // namespace

const char* ColumnKindToString(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kInt64:
      return "INT64";
    case ColumnKind::kDouble:
      return "DOUBLE";
    case ColumnKind::kString:
      return "STRING";
    case ColumnKind::kAllNull:
      return "ALL_NULL";
    case ColumnKind::kMixed:
      return "MIXED";
  }
  return "?";
}

std::shared_ptr<const ColumnVector> ColumnVector::Build(
    const std::vector<Row>& rows, size_t col) {
  auto column = std::shared_ptr<ColumnVector>(new ColumnVector());
  column->size_ = rows.size();

  // Pass 1: detect the storage class and (for strings) the pool size.
  bool any_null = false;
  bool any_value = false;
  DataType value_type = DataType::kNull;
  bool uniform = true;
  uint64_t string_bytes = 0;
  for (const Row& row : rows) {
    GPIVOT_CHECK(col < row.size()) << "ColumnVector::Build column out of range";
    const Value& v = row[col];
    if (v.is_null()) {
      any_null = true;
      continue;
    }
    if (!any_value) {
      any_value = true;
      value_type = v.type();
    } else if (v.type() != value_type) {
      uniform = false;
      break;
    }
    if (v.is_string()) string_bytes += v.AsString().size();
  }
  if (uniform && value_type == DataType::kString &&
      string_bytes > std::numeric_limits<uint32_t>::max()) {
    uniform = false;  // offsets are u32; oversized pools use the fallback
  }

  column->has_nulls_ = any_null;
  if (!any_value) {
    column->kind_ = ColumnKind::kAllNull;
    return column;
  }
  if (!uniform) {
    // Pass 1 may have stopped early, so recompute the null flag here.
    column->kind_ = ColumnKind::kMixed;
    column->mixed_.reserve(rows.size());
    column->has_nulls_ = false;
    for (const Row& row : rows) {
      column->has_nulls_ |= row[col].is_null();
      column->mixed_.push_back(row[col]);
    }
    return column;
  }

  // Pass 2: typed fill. Null positions keep a zero placeholder so the typed
  // vectors stay positionally aligned with the rows.
  if (any_null) {
    column->valid_.resize((rows.size() + 63) / 64);
  }
  switch (value_type) {
    case DataType::kInt64:
      column->kind_ = ColumnKind::kInt64;
      column->ints_.resize(rows.size());
      break;
    case DataType::kDouble:
      column->kind_ = ColumnKind::kDouble;
      column->doubles_.resize(rows.size());
      break;
    case DataType::kString:
      column->kind_ = ColumnKind::kString;
      column->pool_.reserve(static_cast<size_t>(string_bytes));
      column->offsets_.resize(rows.size() + 1);
      break;
    case DataType::kNull:
      GPIVOT_CHECK(false) << "unreachable: kNull with any_value";
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][col];
    if (v.is_null()) continue;
    if (any_null) column->valid_[i >> 6] |= uint64_t{1} << (i & 63);
    switch (column->kind_) {
      case ColumnKind::kInt64:
        column->ints_[i] = v.AsInt();
        break;
      case ColumnKind::kDouble:
        column->doubles_[i] = v.AsDouble();
        break;
      case ColumnKind::kString:
        column->pool_.append(v.AsString());
        break;
      default:
        break;
    }
  }
  if (column->kind_ == ColumnKind::kString) {
    // Offsets need a second sweep only conceptually — fill them alongside a
    // running total (null cells get empty ranges).
    uint32_t offset = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      column->offsets_[i] = offset;
      const Value& v = rows[i][col];
      if (!v.is_null()) offset += static_cast<uint32_t>(v.AsString().size());
    }
    column->offsets_[rows.size()] = offset;
  }
  return column;
}

Value ColumnVector::At(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (kind_) {
    case ColumnKind::kInt64:
      return Value::Int(ints_[i]);
    case ColumnKind::kDouble:
      return Value::Real(doubles_[i]);
    case ColumnKind::kString:
      return Value::Str(std::string(StringAt(i)));
    case ColumnKind::kMixed:
      return mixed_[i];
    case ColumnKind::kAllNull:
      break;
  }
  return Value::Null();
}

size_t ColumnVector::CellHash(size_t i) const {
  if (IsNull(i)) return kNullHash;
  switch (kind_) {
    case ColumnKind::kInt64:
      return HashInt64Cell(ints_[i]);
    case ColumnKind::kDouble:
      return HashDoubleCell(doubles_[i]);
    case ColumnKind::kString:
      return HashStringCell(StringAt(i));
    case ColumnKind::kMixed:
      return mixed_[i].Hash();
    case ColumnKind::kAllNull:
      break;
  }
  return kNullHash;
}

bool ColumnVector::CellsEqual(const ColumnVector& a, size_t i,
                              const ColumnVector& b, size_t j) {
  bool a_null = a.IsNull(i);
  bool b_null = b.IsNull(j);
  if (a_null || b_null) return a_null && b_null;
  if (a.kind_ == ColumnKind::kMixed) return b.CellEqualsValue(j, a.mixed_[i]);
  if (b.kind_ == ColumnKind::kMixed) return a.CellEqualsValue(i, b.mixed_[j]);
  bool a_string = a.kind_ == ColumnKind::kString;
  bool b_string = b.kind_ == ColumnKind::kString;
  if (a_string != b_string) return false;
  if (a_string) return a.StringAt(i) == b.StringAt(j);
  if (a.kind_ == ColumnKind::kInt64 && b.kind_ == ColumnKind::kInt64) {
    return a.ints_[i] == b.ints_[j];
  }
  double av = a.kind_ == ColumnKind::kInt64
                  ? static_cast<double>(a.ints_[i])
                  : a.doubles_[i];
  double bv = b.kind_ == ColumnKind::kInt64
                  ? static_cast<double>(b.ints_[j])
                  : b.doubles_[j];
  return av == bv;
}

bool ColumnVector::CellEqualsValue(size_t i, const Value& v) const {
  bool cell_null = IsNull(i);
  if (cell_null || v.is_null()) return cell_null && v.is_null();
  switch (kind_) {
    case ColumnKind::kInt64:
      if (v.is_string()) return false;
      if (v.is_int()) return ints_[i] == v.AsInt();
      return static_cast<double>(ints_[i]) == v.AsNumeric();
    case ColumnKind::kDouble:
      if (v.is_string()) return false;
      return doubles_[i] == v.AsNumeric();
    case ColumnKind::kString:
      return v.is_string() && StringAt(i) == v.AsString();
    case ColumnKind::kMixed:
      return mixed_[i] == v;
    case ColumnKind::kAllNull:
      break;
  }
  return false;
}

}  // namespace gpivot
