#ifndef GPIVOT_RELATION_VALUE_H_
#define GPIVOT_RELATION_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>

namespace gpivot {

// Column data types. kNull is the type of the untyped NULL literal; columns
// themselves are declared with one of the concrete types and may hold NULLs.
enum class DataType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType type);

// A single SQL value: NULL (the paper's '⊥'), a 64-bit integer, a double, or
// a string. Values are ordered NULL-first only inside Sort; comparison
// predicates over NULL evaluate to NULL/false (null-intolerant semantics),
// which is handled at the expression layer, not here.
class Value {
 public:
  struct NullValue {
    bool operator==(const NullValue&) const { return true; }
  };

  // NULL / ⊥.
  Value() : data_(NullValue{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  bool is_null() const { return std::holds_alternative<NullValue>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  DataType type() const;

  // Accessors abort when the value holds a different alternative.
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Numeric view: int64 and double both convert; aborts on string/NULL.
  double AsNumeric() const;

  // Total equality: NULL == NULL is true here (used for grouping/keys and
  // bag-difference row matching, where SQL uses "IS NOT DISTINCT FROM").
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order for deterministic sorting: NULL < ints/doubles < strings;
  // ints and doubles compare numerically.
  bool operator<(const Value& other) const;

  size_t Hash() const;

  // "⊥" for NULL; otherwise the literal text.
  std::string ToString() const;

 private:
  std::variant<NullValue, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace gpivot

#endif  // GPIVOT_RELATION_VALUE_H_
