#ifndef GPIVOT_RELATION_SCHEMA_H_
#define GPIVOT_RELATION_SCHEMA_H_

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "relation/value.h"
#include "util/result.h"
#include "util/status.h"

namespace gpivot {

// A named, typed column.
struct Column {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

// An ordered list of columns. Column names must be unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);
  Schema(std::initializer_list<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of the column named `name`, if present.
  std::optional<size_t> FindColumn(const std::string& name) const;
  // Like FindColumn but aborts when absent (for internal plumbing where the
  // column was already validated).
  size_t ColumnIndexOrDie(const std::string& name) const;
  Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return FindColumn(name).has_value();
  }

  std::vector<std::string> ColumnNames() const;

  // Resolves a list of names to indices; fails on the first unknown name.
  Result<std::vector<size_t>> ColumnIndices(
      const std::vector<std::string>& names) const;

  // Schema with `other`'s columns appended. Fails on duplicate names.
  Result<Schema> Concat(const Schema& other) const;

  // Schema restricted to `indices`, in the given order.
  Schema Select(const std::vector<size_t>& indices) const;

  // Schema with the named columns removed (negative project).
  Result<Schema> Drop(const std::vector<std::string>& names) const;

  // Schema with column `index` renamed.
  Schema Rename(size_t index, std::string new_name) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  // "(name TYPE, name TYPE, ...)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace gpivot

#endif  // GPIVOT_RELATION_SCHEMA_H_
