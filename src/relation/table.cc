#include "relation/table.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

Table::Table(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {
  for (const Row& row : rows_) {
    GPIVOT_CHECK(row.size() == schema_.num_columns())
        << "row arity " << row.size() << " != schema arity "
        << schema_.num_columns();
  }
}

void Table::AddRow(Row row) {
  GPIVOT_CHECK(row.size() == schema_.num_columns())
      << "row arity " << row.size() << " != schema arity "
      << schema_.num_columns() << " " << schema_.ToString();
  rows_.push_back(std::move(row));
}

Status Table::SetKey(std::vector<std::string> key_columns) {
  for (const std::string& name : key_columns) {
    if (!schema_.HasColumn(name)) {
      return Status::NotFound(
          StrCat("SetKey: unknown column '", name, "'"));
    }
  }
  key_ = std::move(key_columns);
  return Status::OK();
}

Result<std::vector<size_t>> Table::KeyIndices() const {
  if (!has_key()) {
    return Status::InvalidArgument("table has no declared key");
  }
  return schema_.ColumnIndices(key_);
}

Status Table::ValidateKey() const {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices, KeyIndices());
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(rows_.size());
  for (const Row& row : rows_) {
    Row key = ProjectRow(row, indices);
    if (!seen.insert(std::move(key)).second) {
      return Status::ConstraintViolation(
          StrCat("duplicate key ", RowToString(ProjectRow(row, indices))));
    }
  }
  return Status::OK();
}

bool Table::BagEquals(const Table& other) const {
  if (schema_ != other.schema_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
  counts.reserve(rows_.size());
  for (const Row& row : rows_) ++counts[row];
  for (const Row& row : other.rows_) {
    auto it = counts.find(row);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

Table Table::Sorted() const {
  Table result = *this;
  std::sort(result.rows_.begin(), result.rows_.end(),
            [](const Row& a, const Row& b) {
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
  return result;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += "\n";
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t i = 0; i < shown; ++i) {
    out += RowToString(rows_[i]);
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrCat("... (", rows_.size() - shown, " more rows)\n");
  }
  return out;
}

}  // namespace gpivot
