#include "relation/table.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

Table::Table(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {
  for (const Row& row : rows_) {
    GPIVOT_CHECK(row.size() == schema_.num_columns())
        << "row arity " << row.size() << " != schema arity "
        << schema_.num_columns();
  }
}

Table::Table(const Table& other)
    : schema_(other.schema_), rows_(other.rows_), key_(other.key_) {
  // Copies share the immutable column views: the cache stays warm across
  // the copy-then-stage pattern in the maintenance path.
  std::lock_guard<std::mutex> lock(other.columns_mu_);
  columns_ = other.columns_;
  has_column_cache_.store(!columns_.empty(), std::memory_order_relaxed);
}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  rows_ = other.rows_;
  key_ = other.key_;
  std::lock_guard<std::mutex> lock(other.columns_mu_);
  columns_ = other.columns_;
  has_column_cache_.store(!columns_.empty(), std::memory_order_relaxed);
  return *this;
}

Table::Table(Table&& other) noexcept
    : schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      key_(std::move(other.key_)) {
  columns_ = std::move(other.columns_);
  has_column_cache_.store(!columns_.empty(), std::memory_order_relaxed);
  other.columns_.clear();
  other.has_column_cache_.store(false, std::memory_order_relaxed);
}

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  rows_ = std::move(other.rows_);
  key_ = std::move(other.key_);
  columns_ = std::move(other.columns_);
  has_column_cache_.store(!columns_.empty(), std::memory_order_relaxed);
  other.columns_.clear();
  other.has_column_cache_.store(false, std::memory_order_relaxed);
  return *this;
}

std::shared_ptr<const ColumnVector> Table::ColumnData(size_t col) const {
  GPIVOT_CHECK(col < schema_.num_columns())
      << "ColumnData index " << col << " out of range";
  {
    std::lock_guard<std::mutex> lock(columns_mu_);
    if (columns_.size() == schema_.num_columns() &&
        columns_[col] != nullptr) {
      return columns_[col];
    }
  }
  // Build outside the lock (concurrent readers of other columns keep
  // going), install with a double-check (first build wins; duplicates from
  // a race are equivalent and simply dropped).
  std::shared_ptr<const ColumnVector> built = ColumnVector::Build(rows_, col);
  std::lock_guard<std::mutex> lock(columns_mu_);
  if (columns_.size() != schema_.num_columns()) {
    columns_.assign(schema_.num_columns(), nullptr);
  }
  if (columns_[col] == nullptr) columns_[col] = std::move(built);
  has_column_cache_.store(true, std::memory_order_relaxed);
  return columns_[col];
}

std::shared_ptr<const ColumnVector> Table::CachedColumnData(size_t col) const {
  std::lock_guard<std::mutex> lock(columns_mu_);
  if (col >= columns_.size()) return nullptr;
  return columns_[col];
}

void Table::InvalidateColumns() {
  std::lock_guard<std::mutex> lock(columns_mu_);
  columns_.clear();
  has_column_cache_.store(false, std::memory_order_relaxed);
}

void Table::AddRow(Row row) {
  GPIVOT_CHECK(row.size() == schema_.num_columns())
      << "row arity " << row.size() << " != schema arity "
      << schema_.num_columns() << " " << schema_.ToString();
  if (has_column_cache_.load(std::memory_order_relaxed)) InvalidateColumns();
  rows_.push_back(std::move(row));
}

Status Table::SetKey(std::vector<std::string> key_columns) {
  for (const std::string& name : key_columns) {
    if (!schema_.HasColumn(name)) {
      return Status::NotFound(
          StrCat("SetKey: unknown column '", name, "'"));
    }
  }
  key_ = std::move(key_columns);
  return Status::OK();
}

Result<std::vector<size_t>> Table::KeyIndices() const {
  if (!has_key()) {
    return Status::InvalidArgument("table has no declared key");
  }
  return schema_.ColumnIndices(key_);
}

Status Table::ValidateKey() const {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices, KeyIndices());
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(rows_.size());
  for (const Row& row : rows_) {
    Row key = ProjectRow(row, indices);
    if (!seen.insert(std::move(key)).second) {
      return Status::ConstraintViolation(
          StrCat("duplicate key ", RowToString(ProjectRow(row, indices))));
    }
  }
  return Status::OK();
}

bool Table::BagEquals(const Table& other) const {
  if (schema_ != other.schema_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
  counts.reserve(rows_.size());
  for (const Row& row : rows_) ++counts[row];
  for (const Row& row : other.rows_) {
    auto it = counts.find(row);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

Table Table::Sorted() const {
  Table result = *this;
  std::sort(result.mutable_rows().begin(), result.mutable_rows().end(),
            [](const Row& a, const Row& b) {
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
  return result;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += "\n";
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t i = 0; i < shown; ++i) {
    out += RowToString(rows_[i]);
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrCat("... (", rows_.size() - shown, " more rows)\n");
  }
  return out;
}

}  // namespace gpivot
