#ifndef GPIVOT_SERVE_QUERY_H_
#define GPIVOT_SERVE_QUERY_H_

#include <memory>
#include <optional>
#include <string>

#include "expr/expr.h"
#include "relation/row.h"
#include "relation/table.h"
#include "serve/snapshot.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot::serve {

// Read-only query surface over a SnapshotStore. Every query acquires one
// snapshot up front and runs entirely against it, so a query observes
// exactly one committed epoch even while the maintenance thread installs
// new versions mid-query.
//
// The ExecContext given at construction is used for every query: its
// metrics registry receives the serve.query.* counters and latency
// histograms, and its vector_chunk_size routes Scan through the columnar
// fast path (snapshots share the view's warm column cache, so repeated
// scans of the same version never rebuild it). Point the context at a
// per-reader local registry when counters must stay deterministic — query
// counts per reader are workload-determined, but which global shard they
// land in is not.
class QueryService {
 public:
  explicit QueryService(const SnapshotStore* store,
                        const ExecContext& ctx = {})
      : store_(store), ctx_(ctx) {}

  // Key lookup through the snapshot's KeyIndex. `key` is the projected key
  // row (view key columns, in key order). nullopt when the key is absent;
  // NotFound status when the view itself is unknown.
  Result<std::optional<Row>> PointLookup(const std::string& view,
                                         const Row& key,
                                         ReaderHandle* handle) const;

  // σ over the snapshot table (exec::Select, vectorized when the chunk
  // size allows).
  Result<Table> Scan(const std::string& view, const ExprPtr& predicate,
                     ReaderHandle* handle) const;

  // The k rows with the largest numeric value in `measure`, descending;
  // NULL measures are skipped; ties break toward the earlier row so the
  // result is deterministic.
  Result<Table> TopK(const std::string& view, const std::string& measure,
                     size_t k, ReaderHandle* handle) const;

  // The snapshot a query starting now would run against (for callers that
  // want to tag results with the epoch they saw).
  std::shared_ptr<const Snapshot> AcquireSnapshot(const std::string& view,
                                                  ReaderHandle* handle) const {
    return store_->Acquire(view, handle);
  }

 private:
  Result<std::shared_ptr<const Snapshot>> AcquireChecked(
      const std::string& view, ReaderHandle* handle) const;

  const SnapshotStore* store_;
  ExecContext ctx_;
};

}  // namespace gpivot::serve

#endif  // GPIVOT_SERVE_QUERY_H_
