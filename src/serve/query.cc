#include "serve/query.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "exec/basic_ops.h"
#include "obs/runtime.h"
#include "util/string_util.h"

namespace gpivot::serve {

namespace {

// The live (admin-only) registry, or nullptr when the admin surface is
// off. Counters there are thread-shard sharded, so per-query publishing
// from many reader threads stays contention-free.
obs::MetricsRegistry* RuntimeMetrics() {
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  return runtime.enabled() ? &runtime.metrics() : nullptr;
}

}  // namespace

Result<std::shared_ptr<const Snapshot>> QueryService::AcquireChecked(
    const std::string& view, ReaderHandle* handle) const {
  std::shared_ptr<const Snapshot> snapshot = store_->Acquire(view, handle);
  if (snapshot == nullptr) {
    return Status::NotFound(StrCat("serve: no snapshot for view '", view,
                                   "'"));
  }
  return snapshot;
}

Result<std::optional<Row>> QueryService::PointLookup(
    const std::string& view, const Row& key, ReaderHandle* handle) const {
  obs::ScopedLatency timer(ctx_.metrics, "serve.query.lookup.ms");
  if (ctx_.metrics != nullptr && ctx_.metrics->enabled()) {
    ctx_.metrics->AddCounter("serve.query.lookup");
  }
  obs::MetricsRegistry* runtime = RuntimeMetrics();
  obs::ScopedLatency runtime_timer(runtime, "serve.query.ms");
  if (runtime != nullptr) runtime->AddCounter("serve.query.ops");
  GPIVOT_ASSIGN_OR_RETURN(std::shared_ptr<const Snapshot> snapshot,
                          AcquireChecked(view, handle));
  std::optional<size_t> position = snapshot->index().LookupKey(key);
  if (!position.has_value()) return std::optional<Row>();
  return std::optional<Row>(snapshot->table().rows()[*position]);
}

Result<Table> QueryService::Scan(const std::string& view,
                                 const ExprPtr& predicate,
                                 ReaderHandle* handle) const {
  obs::ScopedLatency timer(ctx_.metrics, "serve.query.scan.ms");
  if (ctx_.metrics != nullptr && ctx_.metrics->enabled()) {
    ctx_.metrics->AddCounter("serve.query.scan");
  }
  obs::MetricsRegistry* runtime = RuntimeMetrics();
  obs::ScopedLatency runtime_timer(runtime, "serve.query.ms");
  if (runtime != nullptr) runtime->AddCounter("serve.query.ops");
  GPIVOT_ASSIGN_OR_RETURN(std::shared_ptr<const Snapshot> snapshot,
                          AcquireChecked(view, handle));
  return exec::Select(snapshot->table(), predicate, ctx_);
}

Result<Table> QueryService::TopK(const std::string& view,
                                 const std::string& measure, size_t k,
                                 ReaderHandle* handle) const {
  obs::ScopedLatency timer(ctx_.metrics, "serve.query.topk.ms");
  if (ctx_.metrics != nullptr && ctx_.metrics->enabled()) {
    ctx_.metrics->AddCounter("serve.query.topk");
  }
  obs::MetricsRegistry* runtime = RuntimeMetrics();
  obs::ScopedLatency runtime_timer(runtime, "serve.query.ms");
  if (runtime != nullptr) runtime->AddCounter("serve.query.ops");
  GPIVOT_ASSIGN_OR_RETURN(std::shared_ptr<const Snapshot> snapshot,
                          AcquireChecked(view, handle));
  const Table& table = snapshot->table();
  GPIVOT_ASSIGN_OR_RETURN(size_t column,
                          table.schema().ColumnIndex(measure));

  std::vector<std::pair<double, size_t>> keyed;
  keyed.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Value& value = table.rows()[i][column];
    if (value.is_null()) continue;
    keyed.emplace_back(value.AsNumeric(), i);
  }
  size_t take = std::min(k, keyed.size());
  std::partial_sort(keyed.begin(), keyed.begin() + take, keyed.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  Table out(table.schema());
  for (size_t i = 0; i < take; ++i) {
    out.AddRow(table.rows()[keyed[i].second]);
  }
  return out;
}

}  // namespace gpivot::serve
