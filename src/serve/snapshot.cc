#include "serve/snapshot.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/json_util.h"
#include "obs/runtime.h"
#include "util/string_util.h"

namespace gpivot::serve {

namespace {

// Strict uint64 parse: digits only, no sign/space/suffix, nonzero.
bool ParseStrictUint64(const char* raw, uint64_t* out) {
  if (raw == nullptr || *raw == '\0') return false;
  uint64_t value = 0;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

Result<ServeOptions> ServeOptions::FromEnv() {
  ServeOptions options;
  const char* raw = std::getenv("GPIVOT_SERVE_MAX_PINNED_EPOCHS");
  if (raw != nullptr) {
    uint64_t value = 0;
    if (!ParseStrictUint64(raw, &value) || value == 0) {
      return Status::InvalidArgument(
          StrCat("GPIVOT_SERVE_MAX_PINNED_EPOCHS='", raw,
                 "' is not a positive integer"));
    }
    options.max_pinned_epochs = static_cast<size_t>(value);
  }
  return options;
}

SnapshotStore::SnapshotStore(ivm::ViewManager* manager, ServeOptions options,
                             obs::MetricsRegistry* metrics,
                             obs::EventLog* event_log)
    : manager_(manager),
      options_(options),
      metrics_(metrics),
      event_log_(event_log),
      readers_(options.max_pinned_epochs == 0 ? 1 : options.max_pinned_epochs) {
}

SnapshotStore::~SnapshotStore() { Detach(); }

Status SnapshotStore::Attach() {
  if (attached_) return Status::OK();
  const std::vector<std::string>& names = manager_->ViewNames();
  if (names.empty()) {
    return Status::InvalidArgument("serve: manager has no views to snapshot");
  }
  for (const std::string& name : names) {
    slots_[name];  // default-construct the slot in place
  }
  InstallAll(manager_->epoch_seq(), /*initial=*/true);
  manager_->set_commit_hook(this);
  attached_ = true;
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (runtime.enabled() && runtime_section_token_ == 0) {
    runtime_section_token_ = runtime.RegisterJsonSection(
        "serve", [this] { return RuntimeSectionJson(); });
  }
  return Status::OK();
}

void SnapshotStore::Detach() {
  if (runtime_section_token_ != 0) {
    obs::RuntimeRegistry::Global().UnregisterJsonSection(
        runtime_section_token_);
    runtime_section_token_ = 0;
  }
  if (!attached_) return;
  manager_->set_commit_hook(nullptr);
  attached_ = false;
}

std::string SnapshotStore::RuntimeSectionJson() const {
  // Runs on the admin thread. retire_mu_ serializes against InstallAll's
  // head swaps, so seq/view values form one consistent picture; the
  // reader-slot occupancy reads are plain atomics.
  size_t occupied = 0;
  for (const ReaderHandle& handle : readers_) {
    if (handle.in_use.load(std::memory_order_relaxed)) ++occupied;
  }
  std::lock_guard<std::mutex> lock(retire_mu_);
  std::string out =
      StrCat("{\"last_committed_seq\": ",
             last_seq_.load(std::memory_order_acquire),
             ", \"retired_pending\": ", retired_.size(),
             ", \"reader_slots\": {\"capacity\": ", readers_.size(),
             ", \"occupied\": ", occupied, "}, \"views\": [");
  bool first = true;
  for (const auto& [name, slot] : slots_) {
    const Snapshot* head = slot.head.load(std::memory_order_seq_cst);
    out += StrCat(first ? "" : ", ", "{\"view\": ", obs::JsonQuote(name),
                  ", \"snapshot_seq\": ",
                  head == nullptr ? 0 : head->epoch_seq(), "}");
    first = false;
  }
  out += "]}";
  return out;
}

Result<ReaderHandle*> SnapshotStore::RegisterReader() {
  std::lock_guard<std::mutex> lock(readers_mu_);
  for (ReaderHandle& handle : readers_) {
    if (!handle.in_use.load(std::memory_order_relaxed)) {
      handle.in_use.store(true, std::memory_order_relaxed);
      return &handle;
    }
  }
  return Status::InvalidArgument(
      StrCat("serve: all ", readers_.size(),
             " reader slots in use (GPIVOT_SERVE_MAX_PINNED_EPOCHS)"));
}

void SnapshotStore::UnregisterReader(ReaderHandle* handle) {
  if (handle == nullptr) return;
  std::lock_guard<std::mutex> lock(readers_mu_);
  handle->hazard.store(nullptr, std::memory_order_seq_cst);
  handle->in_use.store(false, std::memory_order_relaxed);
}

std::shared_ptr<const Snapshot> SnapshotStore::Acquire(
    const std::string& view, ReaderHandle* handle) const {
  auto it = slots_.find(view);
  if (it == slots_.end()) return nullptr;
  const ViewSlot& slot = it->second;
  if (handle == nullptr) return AcquireSlow(slot);

  const Snapshot* p = nullptr;
  do {
    p = slot.head.load(std::memory_order_seq_cst);
    handle->hazard.store(p, std::memory_order_seq_cst);
  } while (slot.head.load(std::memory_order_seq_cst) != p);
  // The hazard now guards p against the writer's retire scan, so the
  // control block is alive and this upgrade is race-free.
  std::shared_ptr<const Snapshot> owned =
      p == nullptr ? nullptr : p->shared_from_this();
  handle->hazard.store(nullptr, std::memory_order_release);
  if (metrics_ != nullptr && metrics_->enabled()) {
    metrics_->AddCounter("serve.acquire.fast");
  }
  return owned;
}

std::shared_ptr<const Snapshot> SnapshotStore::AcquireSlow(
    const ViewSlot& slot) const {
  // Holding retire_mu_ excludes the writer's strong-reference drops, so
  // the head's control block cannot die mid-upgrade. Correct but lock-ful;
  // serve.read.locks existing is how the bench proves its readers never
  // came through here.
  std::lock_guard<std::mutex> lock(retire_mu_);
  if (metrics_ != nullptr && metrics_->enabled()) {
    metrics_->AddCounter("serve.read.locks");
  }
  const Snapshot* p = slot.head.load(std::memory_order_seq_cst);
  return p == nullptr ? nullptr : p->shared_from_this();
}

void SnapshotStore::OnEpochCommitted(const ivm::EpochRecord& record) {
  InstallAll(record.seq, /*initial=*/false);
}

void SnapshotStore::InstallAll(uint64_t seq, bool initial) {
  std::vector<std::string> installed;
  std::vector<Retired> released;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    // Out-of-order commit notification: a newer epoch's snapshots are
    // already live, so installing this one would hand readers stale data
    // and walk last_committed_seq backwards. Drop it entirely — no head
    // swaps, no gauges, no event-log lines — so the store's artifacts are
    // identical to the in-order arrival of the same commits.
    if (!initial && has_installed_ && seq <= installed_seq_) {
      if (metrics_ != nullptr && metrics_->enabled()) {
        metrics_->AddCounter("serve.snapshot.stale_skips");
      }
      return;
    }
    installed_seq_ = std::max(installed_seq_, seq);
    has_installed_ = true;
    for (auto& [name, slot] : slots_) {
      Result<const ivm::MaterializedView*> view = manager_->GetView(name);
      if (!view.ok()) continue;  // view dropped since Attach; keep old head
      auto snapshot = std::make_shared<const Snapshot>(
          seq, (*view)->shared_table(), (*view)->shared_index());
      std::shared_ptr<const Snapshot> old = std::move(slot.strong_head);
      slot.strong_head = snapshot;
      slot.head.store(snapshot.get(), std::memory_order_seq_cst);
      if (old != nullptr) retired_.push_back({name, std::move(old)});
      installed.push_back(name);
    }
    last_seq_.store(seq, std::memory_order_release);

    // Hazard scan: keep only retired versions some reader is mid-Acquire
    // on; everything else loses the store's reference here (readers that
    // already upgraded keep theirs).
    std::vector<const Snapshot*> hazards;
    for (const ReaderHandle& handle : readers_) {
      const Snapshot* h = handle.hazard.load(std::memory_order_seq_cst);
      if (h != nullptr) hazards.push_back(h);
    }
    size_t kept = 0;
    for (Retired& entry : retired_) {
      if (std::find(hazards.begin(), hazards.end(), entry.snapshot.get()) !=
          hazards.end()) {
        retired_[kept++] = std::move(entry);
      } else {
        released.push_back(std::move(entry));
      }
    }
    retired_.resize(kept);
  }

  if (metrics_ != nullptr && metrics_->enabled()) {
    metrics_->AddCounter("serve.snapshot.installs");
    if (!released.empty()) {
      metrics_->AddCounter("serve.retire.count", released.size());
    }
  }
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (runtime.enabled()) {
    runtime.metrics().SetGauge("serve.store.last_committed_seq",
                               static_cast<double>(seq));
    for (const std::string& name : installed) {
      runtime.metrics().SetGauge("serve.view.installed_seq", "view", name,
                                 static_cast<double>(seq));
    }
  }
  if (event_log_ != nullptr && event_log_->ok()) {
    std::string line = StrCat("{\"serve\": \"install\", \"seq\": ", seq,
                              ", \"views\": [");
    for (size_t i = 0; i < installed.size(); ++i) {
      line += StrCat(i == 0 ? "" : ", ", obs::JsonQuote(installed[i]));
    }
    line += "]}";
    event_log_->Append(line);
    for (const Retired& entry : released) {
      event_log_->Append(StrCat("{\"serve\": \"retire\", \"view\": ",
                                obs::JsonQuote(entry.view),
                                ", \"seq\": ", entry.snapshot->epoch_seq(),
                                "}"));
    }
  }
}

void SnapshotStore::FlushRetired() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  FlushRetiredLocked();
}

void SnapshotStore::FlushRetiredLocked() {
  std::vector<const Snapshot*> hazards;
  for (const ReaderHandle& handle : readers_) {
    const Snapshot* h = handle.hazard.load(std::memory_order_seq_cst);
    if (h != nullptr) hazards.push_back(h);
  }
  size_t kept = 0;
  for (Retired& entry : retired_) {
    if (std::find(hazards.begin(), hazards.end(), entry.snapshot.get()) !=
        hazards.end()) {
      retired_[kept++] = std::move(entry);
    }
  }
  retired_.resize(kept);
}

size_t SnapshotStore::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

std::vector<std::string> SnapshotStore::view_names() const {
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

}  // namespace gpivot::serve
