#ifndef GPIVOT_SERVE_SNAPSHOT_H_
#define GPIVOT_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ivm/apply.h"
#include "ivm/view_manager.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "relation/key_index.h"
#include "relation/table.h"
#include "util/result.h"

namespace gpivot::serve {

// Serving-layer configuration. max_pinned_epochs sizes the reader slot
// array: each registered reader holds one hazard slot and can pin at most
// one retired version per view at a time, so it doubles as the bound on how
// many superseded epoch versions can stay live after the store has moved
// on. GPIVOT_SERVE_MAX_PINNED_EPOCHS overrides the default; the parse is
// strict (digits only, nonzero) so a typo'd knob fails loudly instead of
// silently serving with a default.
struct ServeOptions {
  size_t max_pinned_epochs = 8;

  static Result<ServeOptions> FromEnv();
};

// One immutable version of one view: the epoch sequence number it was
// committed at plus shared handles to the view's table and key index at
// that epoch. The handles alias the MaterializedView's current storage —
// installing a snapshot never copies the table — and stay valid after the
// view moves on because view mutation is copy-on-write (ivm/apply.h).
//
// enable_shared_from_this powers the lock-free Acquire: a reader that
// validated a raw head pointer against its hazard slot upgrades it to an
// owning reference without touching the store again.
class Snapshot : public std::enable_shared_from_this<Snapshot> {
 public:
  Snapshot(uint64_t epoch_seq, std::shared_ptr<const Table> table,
           std::shared_ptr<const KeyIndex> index)
      : epoch_seq_(epoch_seq),
        table_(std::move(table)),
        index_(std::move(index)) {}

  uint64_t epoch_seq() const { return epoch_seq_; }
  const Table& table() const { return *table_; }
  const KeyIndex& index() const { return *index_; }
  std::shared_ptr<const Table> shared_table() const { return table_; }

 private:
  uint64_t epoch_seq_;
  std::shared_ptr<const Table> table_;
  std::shared_ptr<const KeyIndex> index_;
};

// A reader's registration with the store: one hazard-pointer slot, alive
// from RegisterReader to UnregisterReader. Cache-line aligned so two
// readers publishing hazards never false-share. The hazard is only set
// inside Acquire's read window; between queries it is null.
struct alignas(64) ReaderHandle {
  std::atomic<const Snapshot*> hazard{nullptr};
  std::atomic<bool> in_use{false};
};

// Epoch-versioned MVCC snapshot store over a ViewManager.
//
// Single writer, many readers. The writer is the manager's epoch thread:
// Attach() registers the store as the manager's EpochCommitHook, so every
// committed epoch lands here (on the epoch thread, after the epoch record
// is written) and installs a fresh immutable Snapshot per view with one
// atomic pointer swap. Because MaterializedView mutation is copy-on-write,
// building a snapshot costs two shared_ptr copies per view — O(1)
// regardless of view size.
//
// Readers never take a lock on the path the writer also walks. Acquire
// runs the classic hazard-pointer handshake against the view's head
// pointer:
//
//   do { p = head.load(seq_cst); hazard.store(p, seq_cst); }
//   while (head.load(seq_cst) != p);
//   owned = p->shared_from_this();   // refcount pin
//   hazard.store(nullptr);
//
// and the writer, after swapping in a new head, scans all hazard slots and
// drops its strong reference only for retired snapshots no hazard
// protects (still-protected ones stay on the retired list and are
// re-scanned at the next install). Under seq_cst the two sides cannot
// both miss each other: if the writer's hazard scan did not see the
// reader's hazard store, then in the single total order the writer's
// head swap preceded the reader's validating re-load, which therefore
// cannot still return the old pointer (heads are never reused), and the
// reader retries. So shared_from_this only ever runs on an object whose
// refcount is still held somewhere.
//
// Once a reader owns the shared_ptr the snapshot lives until the last
// owner drops it — that is the MVCC pin. "Retire" in the metrics and
// event log marks the store releasing its own reference; pinned readers
// keep the version alive past that point, bounded by the slot count.
class SnapshotStore : public ivm::EpochCommitHook {
 public:
  // `manager`, `metrics`, and `event_log` must outlive the store.
  // Pass the same event log the manager writes epoch records to and the
  // serve install/retire lines interleave with them in commit order.
  explicit SnapshotStore(ivm::ViewManager* manager, ServeOptions options = {},
                         obs::MetricsRegistry* metrics = nullptr,
                         obs::EventLog* event_log = nullptr);
  ~SnapshotStore() override;

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Installs snapshots of every view at the manager's current epoch and
  // hooks the store into the manager's commit path. Call before starting
  // readers; fails if the manager has no views.
  Status Attach();

  // Unhooks from the manager. Installed snapshots stay acquirable (the
  // store just stops following new epochs). Idempotent; also run by the
  // destructor.
  void Detach();

  // Claims a free reader slot. Fails when all slots are in use
  // (max_pinned_epochs readers are already registered).
  Result<ReaderHandle*> RegisterReader();
  void UnregisterReader(ReaderHandle* handle);

  // Returns the last committed snapshot of `view`, or nullptr for an
  // unknown view. With a registered handle this is the lock-free fast
  // path described above. With handle == nullptr it falls back to
  // serializing against the writer's retire scan on a mutex and counts
  // serve.read.locks — the bench asserts that counter stays zero.
  std::shared_ptr<const Snapshot> Acquire(const std::string& view,
                                          ReaderHandle* handle) const;

  // Epoch seq of the snapshots Acquire currently returns.
  uint64_t last_committed_seq() const {
    return last_seq_.load(std::memory_order_acquire);
  }

  // EpochCommitHook: runs on the manager's epoch thread for every
  // committed epoch.
  void OnEpochCommitted(const ivm::EpochRecord& record) override;

  // Re-scans hazards and drops unprotected retired versions without
  // waiting for the next install. Test helper; the writer path calls the
  // same logic after every install.
  void FlushRetired();

  // Number of superseded versions the store still holds a reference to
  // (hazard-protected at the last scan).
  size_t retired_count() const;

  std::vector<std::string> view_names() const;

 private:
  struct ViewSlot {
    std::atomic<const Snapshot*> head{nullptr};
    std::shared_ptr<const Snapshot> strong_head;  // writer-owned reference
  };
  struct Retired {
    std::string view;
    std::shared_ptr<const Snapshot> snapshot;
  };

  // `initial` marks the Attach-time install, which always runs (fresh
  // slots need heads even when the manager's seq was already seen by a
  // previous attach). Commit-hook installs pass false and are dropped when
  // `seq` does not advance past installed_seq_: with a pool-threaded
  // commit pipeline, OnEpochCommitted calls can arrive out of epoch order,
  // and installing an older epoch over a newer head would publish stale
  // data to readers *and* regress last_committed_seq. A dropped install
  // skips everything — heads, gauges, event-log lines — and counts
  // serve.snapshot.stale_skips.
  void InstallAll(uint64_t seq, bool initial);
  void FlushRetiredLocked();
  std::string RuntimeSectionJson() const;
  std::shared_ptr<const Snapshot> AcquireSlow(const ViewSlot& slot) const;

  ivm::ViewManager* manager_;
  ServeOptions options_;
  obs::MetricsRegistry* metrics_;
  obs::EventLog* event_log_;

  bool attached_ = false;
  // Immutable after Attach: readers walk it without synchronization.
  std::map<std::string, ViewSlot> slots_;
  std::atomic<uint64_t> last_seq_{0};

  // Guards slot registration only — never touched by Acquire.
  mutable std::mutex readers_mu_;
  std::vector<ReaderHandle> readers_;

  // Guards strong_head swaps and the retired list. Writer-side (install /
  // retire scan) plus the handle-less Acquire slow path; the fast path
  // never takes it.
  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;
  // Monotonicity guard for out-of-order commit notifications (under
  // retire_mu_): the highest seq ever installed, and whether any install
  // happened at all (seq 0 is a legal first install at Attach).
  uint64_t installed_seq_ = 0;
  bool has_installed_ = false;

  // /viewz JSON-section registration with RuntimeRegistry (0 = none).
  // Attach registers, Detach unregisters — and because providers run under
  // the registry's section mutex, after Detach returns no admin scrape can
  // still be walking this store.
  int runtime_section_token_ = 0;
};

}  // namespace gpivot::serve

#endif  // GPIVOT_SERVE_SNAPSHOT_H_
