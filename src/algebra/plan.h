#ifndef GPIVOT_ALGEBRA_PLAN_H_
#define GPIVOT_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pivot_spec.h"
#include "exec/join.h"
#include "expr/aggregate.h"
#include "expr/expr.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "util/result.h"

namespace gpivot {

// Named base tables a plan evaluates against. The IVM layer mutates these
// between refreshes; plans reference tables by name so re-evaluating a plan
// always sees current contents.
//
// Tables are stored behind shared_ptr with copy-on-write: copying a Catalog
// is cheap (the delta propagator snapshots the pre-state this way), and
// GetMutableTable clones a table only when another snapshot still shares it.
class Catalog {
 public:
  Status AddTable(std::string name, Table table);
  Result<const Table*> GetTable(const std::string& name) const;
  // Shared handle to a table (no copy); used by evaluation fast paths.
  Result<std::shared_ptr<const Table>> GetSharedTable(
      const std::string& name) const;
  Table* GetMutableTable(const std::string& name);
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
};

enum class PlanKind {
  kScan,
  kSelect,
  kProject,
  kMap,
  kJoin,
  kGroupBy,
  kGPivot,
  kGUnpivot,
};

const char* PlanKindToString(PlanKind kind);

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

// Immutable logical algebra node. Rewrite rules build new trees and share
// unchanged subtrees.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  PlanKind kind() const { return kind_; }

  virtual std::vector<PlanPtr> children() const = 0;

  // Output schema, derived structurally (scans capture their schema).
  virtual Result<Schema> OutputSchema() const = 0;

  // Inferred output key column names; empty when no key is known. This is
  // the "key preservation" analysis that gates GPIVOT pullup (Fig. 8).
  virtual Result<std::vector<std::string>> OutputKey() const = 0;

  // One-line description of this node (children excluded).
  virtual std::string Label() const = 0;

 protected:
  explicit PlanNode(PlanKind kind) : kind_(kind) {}

 private:
  PlanKind kind_;
};

class ScanNode final : public PlanNode {
 public:
  ScanNode(std::string table_name, Schema schema,
           std::vector<std::string> key)
      : PlanNode(PlanKind::kScan),
        table_name_(std::move(table_name)),
        schema_(std::move(schema)),
        key_(std::move(key)) {}

  const std::string& table_name() const { return table_name_; }
  std::vector<PlanPtr> children() const override { return {}; }
  Result<Schema> OutputSchema() const override { return schema_; }
  Result<std::vector<std::string>> OutputKey() const override { return key_; }
  std::string Label() const override;

 private:
  std::string table_name_;
  Schema schema_;
  std::vector<std::string> key_;
};

class SelectNode final : public PlanNode {
 public:
  SelectNode(PlanPtr child, ExprPtr predicate)
      : PlanNode(PlanKind::kSelect),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  const PlanPtr& child() const { return child_; }
  const ExprPtr& predicate() const { return predicate_; }
  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<Schema> OutputSchema() const override {
    return child_->OutputSchema();
  }
  Result<std::vector<std::string>> OutputKey() const override {
    return child_->OutputKey();
  }
  std::string Label() const override;

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

// Positive (keep listed columns) or negative (drop listed columns) project.
class ProjectNode final : public PlanNode {
 public:
  enum class Mode { kKeep, kDrop };

  ProjectNode(PlanPtr child, Mode mode, std::vector<std::string> columns)
      : PlanNode(PlanKind::kProject),
        child_(std::move(child)),
        mode_(mode),
        columns_(std::move(columns)) {}

  const PlanPtr& child() const { return child_; }
  Mode mode() const { return mode_; }
  const std::vector<std::string>& columns() const { return columns_; }
  // The columns that remain in the output, in order.
  Result<std::vector<std::string>> KeptColumns() const;
  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<Schema> OutputSchema() const override;
  Result<std::vector<std::string>> OutputKey() const override;
  std::string Label() const override;

 private:
  PlanPtr child_;
  Mode mode_;
  std::vector<std::string> columns_;
};

// Computed projection: each output column is an expression over the child's
// columns. Used by the case-expression rewrites (Eq. 11, 13, 14), where a
// pushdown turns cells to ⊥ conditionally.
class MapNode final : public PlanNode {
 public:
  using Output = std::pair<std::string, ExprPtr>;

  MapNode(PlanPtr child, std::vector<Output> outputs)
      : PlanNode(PlanKind::kMap),
        child_(std::move(child)),
        outputs_(std::move(outputs)) {}

  const PlanPtr& child() const { return child_; }
  const std::vector<Output>& outputs() const { return outputs_; }
  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<Schema> OutputSchema() const override;
  // The child key survives when every key column passes through unchanged
  // (a plain same-named column reference).
  Result<std::vector<std::string>> OutputKey() const override;
  std::string Label() const override;

 private:
  PlanPtr child_;
  std::vector<Output> outputs_;
};

// Inner equi-join with optional residual; natural-join column handling as
// in exec::HashJoin (right join-key columns are dropped from the output).
class JoinNode final : public PlanNode {
 public:
  JoinNode(PlanPtr left, PlanPtr right, std::vector<std::string> left_keys,
           std::vector<std::string> right_keys, ExprPtr residual = nullptr)
      : PlanNode(PlanKind::kJoin),
        left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)) {}

  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }
  const std::vector<std::string>& left_keys() const { return left_keys_; }
  const std::vector<std::string>& right_keys() const { return right_keys_; }
  const ExprPtr& residual() const { return residual_; }
  std::vector<PlanPtr> children() const override { return {left_, right_}; }
  Result<Schema> OutputSchema() const override;
  Result<std::vector<std::string>> OutputKey() const override;
  std::string Label() const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
  std::vector<std::string> left_keys_;
  std::vector<std::string> right_keys_;
  ExprPtr residual_;
};

class GroupByNode final : public PlanNode {
 public:
  GroupByNode(PlanPtr child, std::vector<std::string> group_columns,
              std::vector<AggSpec> aggregates)
      : PlanNode(PlanKind::kGroupBy),
        child_(std::move(child)),
        group_columns_(std::move(group_columns)),
        aggregates_(std::move(aggregates)) {}

  const PlanPtr& child() const { return child_; }
  const std::vector<std::string>& group_columns() const {
    return group_columns_;
  }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<Schema> OutputSchema() const override;
  Result<std::vector<std::string>> OutputKey() const override {
    return group_columns_;
  }
  std::string Label() const override;

 private:
  PlanPtr child_;
  std::vector<std::string> group_columns_;
  std::vector<AggSpec> aggregates_;
};

class GPivotNode final : public PlanNode {
 public:
  GPivotNode(PlanPtr child, PivotSpec spec)
      : PlanNode(PlanKind::kGPivot),
        child_(std::move(child)),
        spec_(std::move(spec)) {}

  const PlanPtr& child() const { return child_; }
  const PivotSpec& spec() const { return spec_; }
  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<Schema> OutputSchema() const override;
  Result<std::vector<std::string>> OutputKey() const override;
  std::string Label() const override { return spec_.ToString(); }

 private:
  PlanPtr child_;
  PivotSpec spec_;
};

class GUnpivotNode final : public PlanNode {
 public:
  GUnpivotNode(PlanPtr child, UnpivotSpec spec)
      : PlanNode(PlanKind::kGUnpivot),
        child_(std::move(child)),
        spec_(std::move(spec)) {}

  const PlanPtr& child() const { return child_; }
  const UnpivotSpec& spec() const { return spec_; }
  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<Schema> OutputSchema() const override;
  Result<std::vector<std::string>> OutputKey() const override;
  std::string Label() const override { return spec_.ToString(); }

 private:
  PlanPtr child_;
  UnpivotSpec spec_;
};

// ---- Builders -------------------------------------------------------------

// Captures the named table's schema and declared key from `catalog`.
Result<PlanPtr> MakeScan(const Catalog& catalog, const std::string& name);
PlanPtr MakeSelect(PlanPtr child, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr child, std::vector<std::string> keep);
PlanPtr MakeDrop(PlanPtr child, std::vector<std::string> drop);
PlanPtr MakeMap(PlanPtr child, std::vector<MapNode::Output> outputs);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, std::vector<std::string> keys);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys, ExprPtr residual = nullptr);
PlanPtr MakeGroupBy(PlanPtr child, std::vector<std::string> group_columns,
                    std::vector<AggSpec> aggregates);
PlanPtr MakeGPivot(PlanPtr child, PivotSpec spec);
PlanPtr MakeGUnpivot(PlanPtr child, UnpivotSpec spec);

// Multi-line indented tree rendering.
std::string PlanToString(const PlanPtr& plan);

// Stable per-plan node numbering for cost attribution (obs::CostCollector):
// ids are assigned pre-order (root = 0, then children left to right), so a
// plan's ids are a pure function of its shape and survive any number of
// Stage calls. Rewrite rules share unchanged subtrees between plans — a
// node reachable more than once keeps the id of its first visit, matching
// the propagator's memoized evaluation (a shared subtree is one unit of
// work, not two).
struct PlanNodeIds {
  // id -> node, in pre-order; also keeps the nodes alive so raw-pointer
  // lookups stay valid for the lifetime of the id map.
  std::vector<PlanPtr> nodes;
  std::unordered_map<const PlanNode*, int> index;

  // The node's id, or -1 when it is not part of the numbered plan.
  int IdOf(const PlanNode* node) const {
    auto it = index.find(node);
    return it == index.end() ? -1 : it->second;
  }
  size_t size() const { return nodes.size(); }
};

PlanNodeIds AssignNodeIds(const PlanPtr& plan);

// Evaluates `plan` against current catalog contents (full computation).
// ctx parallelizes the join and group-by operators; output is byte-identical
// for every thread count.
Result<Table> Evaluate(const PlanPtr& plan, const Catalog& catalog,
                       const ExecContext& ctx = {});

}  // namespace gpivot

#endif  // GPIVOT_ALGEBRA_PLAN_H_
