#ifndef GPIVOT_ALGEBRA_EXPLAIN_H_
#define GPIVOT_ALGEBRA_EXPLAIN_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "obs/cost.h"

namespace gpivot {

// One row of an EXPLAIN ANALYZE rendering: a plan node in pre-order with
// its tree depth and the actuals a CostCollector attributed to it. A
// DAG-shared subtree appears once in full at its first position; later
// references render as a one-line back-reference (`shared_ref`), mirroring
// how the propagator evaluates shared subtrees once.
struct CostReportNode {
  int id = -1;
  PlanKind kind = PlanKind::kScan;
  std::string label;
  std::string table;  // scan nodes only: the base table read
  int depth = 0;
  bool shared_ref = false;
  obs::NodeStats stats;
};

// A deterministic, annotated operator tree — the EXPLAIN ANALYZE of one
// maintenance-plan refresh. Text and JSON renderings contain no timings, so
// two refreshes doing identical work produce byte-identical reports at any
// thread count (asserted by obs_determinism_test).
struct CostReport {
  std::string strategy;  // filled by the ivm layer; empty for bare plans
  std::vector<CostReportNode> nodes;

  // Indented tree, one node per line:
  //   #0 GPIVOT ...  [invocations=1 rows_in=12 rows_out=4]
  //     #1 SCAN lineitem  [base_accesses=0 base_rows_read=0]
  // Scan nodes always print their base-access stats — a zero there is the
  // plan-shape fact the paper's incremental strategies are measured by.
  std::string ToText() const;

  // {"strategy": ..., "plan": [{"id": .., "kind": .., "label": ..,
  //  "depth": .., "stats": {...}}, ...]} with two-space indentation shifted
  // right by `indent` for embedding.
  std::string ToJson(int indent = 0) const;
  // Same document on a single line (for JSONL embedding).
  std::string ToJsonLine() const;

  // First (pre-order) non-shared-ref scan node over `table`; nullptr when
  // the plan has none.
  const CostReportNode* FindScan(const std::string& table) const;
};

// Builds the report for `plan` from compile-time ids and collected stats.
// Nodes with no recorded stats get all-zero NodeStats (work provably not
// done, which is the interesting claim for base-table scans).
CostReport BuildCostReport(const PlanPtr& plan, const PlanNodeIds& ids,
                           const std::map<int, obs::NodeStats>& stats);

}  // namespace gpivot

#endif  // GPIVOT_ALGEBRA_EXPLAIN_H_
