#include "algebra/plan.h"

#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

Status Catalog::AddTable(std::string name, Table table) {
  auto [it, inserted] = tables_.emplace(
      std::move(name), std::make_shared<Table>(std::move(table)));
  if (!inserted) {
    return Status::InvalidArgument(
        StrCat("table '", it->first, "' already exists"));
  }
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' not in catalog"));
  }
  return it->second.get();
}

Result<std::shared_ptr<const Table>> Catalog::GetSharedTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' not in catalog"));
  }
  return std::shared_ptr<const Table>(it->second);
}

Table* Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  GPIVOT_CHECK(it != tables_.end()) << "table '" << name << "' not in catalog";
  if (it->second.use_count() > 1) {
    // Copy-on-write: another snapshot still references this table.
    it->second = std::make_shared<Table>(*it->second);
  }
  return it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "SCAN";
    case PlanKind::kSelect:
      return "SELECT";
    case PlanKind::kProject:
      return "PROJECT";
    case PlanKind::kMap:
      return "MAP";
    case PlanKind::kJoin:
      return "JOIN";
    case PlanKind::kGroupBy:
      return "GROUPBY";
    case PlanKind::kGPivot:
      return "GPIVOT";
    case PlanKind::kGUnpivot:
      return "GUNPIVOT";
  }
  return "?";
}

std::string ScanNode::Label() const { return StrCat("SCAN ", table_name_); }

std::string SelectNode::Label() const {
  return StrCat("SELECT ", predicate_->ToString());
}

Result<std::vector<std::string>> ProjectNode::KeptColumns() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, child_->OutputSchema());
  if (mode_ == Mode::kKeep) {
    for (const std::string& name : columns_) {
      if (!child_schema.HasColumn(name)) {
        return Status::NotFound(StrCat("project column '", name, "' missing"));
      }
    }
    return columns_;
  }
  GPIVOT_ASSIGN_OR_RETURN(Schema dropped, child_schema.Drop(columns_));
  return dropped.ColumnNames();
}

Result<Schema> ProjectNode::OutputSchema() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, child_->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> kept, KeptColumns());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                          child_schema.ColumnIndices(kept));
  return child_schema.Select(indices);
}

Result<std::vector<std::string>> ProjectNode::OutputKey() const {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> child_key,
                          child_->OutputKey());
  if (child_key.empty()) return child_key;
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> kept, KeptColumns());
  std::unordered_set<std::string> kept_set(kept.begin(), kept.end());
  for (const std::string& name : child_key) {
    if (kept_set.count(name) == 0) {
      // A key column was dropped: key not preserved (Fig. 8 prerequisite
      // fails; the rewriter must fall back to insert/delete rules).
      return std::vector<std::string>{};
    }
  }
  return child_key;
}

std::string ProjectNode::Label() const {
  return StrCat(mode_ == Mode::kKeep ? "PROJECT [" : "PROJECT -[",
                Join(columns_, ", "), "]");
}

Result<Schema> MapNode::OutputSchema() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, child_->OutputSchema());
  std::vector<Column> columns;
  columns.reserve(outputs_.size());
  for (const auto& [name, expr] : outputs_) {
    DataType type = DataType::kDouble;
    if (expr->kind() == ExprKind::kColumnRef) {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
      GPIVOT_ASSIGN_OR_RETURN(size_t idx,
                              child_schema.ColumnIndex(ref->name()));
      type = child_schema.column(idx).type;
    } else if (expr->kind() == ExprKind::kLiteral) {
      type = static_cast<const LiteralExpr*>(expr.get())->value().type();
    } else if (expr->kind() == ExprKind::kCase) {
      const auto* c = static_cast<const CaseExpr*>(expr.get());
      if (c->then_value()->kind() == ExprKind::kColumnRef) {
        const auto* ref =
            static_cast<const ColumnRefExpr*>(c->then_value().get());
        GPIVOT_ASSIGN_OR_RETURN(size_t idx,
                                child_schema.ColumnIndex(ref->name()));
        type = child_schema.column(idx).type;
      }
    }
    columns.push_back({name, type});
  }
  return Schema(std::move(columns));
}

Result<std::vector<std::string>> MapNode::OutputKey() const {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> child_key,
                          child_->OutputKey());
  if (child_key.empty()) return child_key;
  std::unordered_set<std::string> passthrough;
  for (const auto& [name, expr] : outputs_) {
    if (expr->kind() != ExprKind::kColumnRef) continue;
    const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
    if (ref->name() == name) passthrough.insert(name);
  }
  for (const std::string& name : child_key) {
    if (passthrough.count(name) == 0) return std::vector<std::string>{};
  }
  return child_key;
}

std::string MapNode::Label() const {
  std::vector<std::string> parts;
  parts.reserve(outputs_.size());
  for (const auto& [name, expr] : outputs_) {
    if (expr->kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr*>(expr.get())->name() == name) {
      parts.push_back(name);
    } else {
      parts.push_back(StrCat(expr->ToString(), " AS ", name));
    }
  }
  return StrCat("MAP [", Join(parts, ", "), "]");
}

Result<Schema> JoinNode::OutputSchema() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema left_schema, left_->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(Schema right_schema, right_->OutputSchema());
  GPIVOT_RETURN_NOT_OK(right_schema.ColumnIndices(right_keys_).status());
  GPIVOT_RETURN_NOT_OK(left_schema.ColumnIndices(left_keys_).status());
  GPIVOT_ASSIGN_OR_RETURN(Schema right_payload, right_schema.Drop(right_keys_));
  return left_schema.Concat(right_payload);
}

Result<std::vector<std::string>> JoinNode::OutputKey() const {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> left_key,
                          left_->OutputKey());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> right_key,
                          right_->OutputKey());
  auto is_subset = [](const std::vector<std::string>& sub,
                      const std::vector<std::string>& super) {
    std::unordered_set<std::string> super_set(super.begin(), super.end());
    for (const std::string& s : sub) {
      if (super_set.count(s) == 0) return false;
    }
    return true;
  };
  // FK-join into a keyed table on (a superset of) its key: each left row
  // matches at most one right row, so the left key survives.
  if (!left_key.empty() && !right_key.empty() &&
      is_subset(right_key, right_keys_)) {
    return left_key;
  }
  // Symmetric case: each right row matches at most one left row. The right
  // key columns that are join keys map to the left-side names.
  if (!left_key.empty() && !right_key.empty() &&
      is_subset(left_key, left_keys_)) {
    std::vector<std::string> key;
    for (const std::string& name : right_key) {
      // Right join keys are renamed to the left names in the output.
      bool mapped = false;
      for (size_t i = 0; i < right_keys_.size(); ++i) {
        if (right_keys_[i] == name) {
          key.push_back(left_keys_[i]);
          mapped = true;
          break;
        }
      }
      if (!mapped) key.push_back(name);
    }
    return key;
  }
  // General case: if both sides are keyed, (left key ∪ right key) is a key.
  if (!left_key.empty() && !right_key.empty()) {
    std::vector<std::string> key = left_key;
    for (const std::string& name : right_key) {
      bool is_join_key = false;
      for (size_t i = 0; i < right_keys_.size(); ++i) {
        if (right_keys_[i] == name) {
          is_join_key = true;  // equal to the paired left column
          break;
        }
      }
      if (!is_join_key) key.push_back(name);
    }
    return key;
  }
  return std::vector<std::string>{};
}

std::string JoinNode::Label() const {
  std::string label = "JOIN ";
  std::vector<std::string> pairs;
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    pairs.push_back(StrCat(left_keys_[i], "=", right_keys_[i]));
  }
  label += Join(pairs, " AND ");
  if (residual_ != nullptr) {
    label += StrCat(" AND ", residual_->ToString());
  }
  return label;
}

Result<Schema> GroupByNode::OutputSchema() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, child_->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> group_idx,
                          child_schema.ColumnIndices(group_columns_));
  std::vector<Column> columns;
  for (size_t i : group_idx) columns.push_back(child_schema.column(i));
  for (const AggSpec& agg : aggregates_) {
    DataType input_type = DataType::kInt64;
    if (agg.func != AggFunc::kCountStar) {
      GPIVOT_ASSIGN_OR_RETURN(size_t idx, child_schema.ColumnIndex(agg.input));
      input_type = child_schema.column(idx).type;
    }
    columns.push_back({agg.output, AggResultType(agg.func, input_type)});
  }
  return Schema(std::move(columns));
}

std::string GroupByNode::Label() const {
  std::vector<std::string> agg_strings;
  agg_strings.reserve(aggregates_.size());
  for (const AggSpec& agg : aggregates_) agg_strings.push_back(agg.ToString());
  return StrCat("GROUPBY [", Join(group_columns_, ", "), "] -> [",
                Join(agg_strings, ", "), "]");
}

Result<Schema> GPivotNode::OutputSchema() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, child_->OutputSchema());
  return spec_.OutputSchema(child_schema);
}

Result<std::vector<std::string>> GPivotNode::OutputKey() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, child_->OutputSchema());
  return spec_.KeyColumns(child_schema);
}

Result<Schema> GUnpivotNode::OutputSchema() const {
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, child_->OutputSchema());
  return spec_.OutputSchema(child_schema);
}

Result<std::vector<std::string>> GUnpivotNode::OutputKey() const {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> child_key,
                          child_->OutputKey());
  if (child_key.empty()) return child_key;
  // Unpivoting a keyed row fans it out into one row per group; the decoded
  // dimension columns disambiguate them. If the unpivot consumes part of
  // the child's key, no key is known for the output.
  std::unordered_set<std::string> consumed;
  for (const std::string& name : spec_.AllSourceColumns()) {
    consumed.insert(name);
  }
  for (const std::string& name : child_key) {
    if (consumed.count(name) > 0) return std::vector<std::string>{};
  }
  std::vector<std::string> key = child_key;
  key.insert(key.end(), spec_.name_columns.begin(), spec_.name_columns.end());
  return key;
}

Result<PlanPtr> MakeScan(const Catalog& catalog, const std::string& name) {
  GPIVOT_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
  return PlanPtr(
      std::make_shared<ScanNode>(name, table->schema(), table->key()));
}

PlanPtr MakeSelect(PlanPtr child, ExprPtr predicate) {
  return std::make_shared<SelectNode>(std::move(child), std::move(predicate));
}

PlanPtr MakeProject(PlanPtr child, std::vector<std::string> keep) {
  return std::make_shared<ProjectNode>(std::move(child),
                                       ProjectNode::Mode::kKeep,
                                       std::move(keep));
}

PlanPtr MakeDrop(PlanPtr child, std::vector<std::string> drop) {
  return std::make_shared<ProjectNode>(std::move(child),
                                       ProjectNode::Mode::kDrop,
                                       std::move(drop));
}

PlanPtr MakeMap(PlanPtr child, std::vector<MapNode::Output> outputs) {
  return std::make_shared<MapNode>(std::move(child), std::move(outputs));
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, std::vector<std::string> keys) {
  std::vector<std::string> right_keys = keys;
  return std::make_shared<JoinNode>(std::move(left), std::move(right),
                                    std::move(keys), std::move(right_keys),
                                    nullptr);
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys, ExprPtr residual) {
  return std::make_shared<JoinNode>(std::move(left), std::move(right),
                                    std::move(left_keys),
                                    std::move(right_keys),
                                    std::move(residual));
}

PlanPtr MakeGroupBy(PlanPtr child, std::vector<std::string> group_columns,
                    std::vector<AggSpec> aggregates) {
  return std::make_shared<GroupByNode>(std::move(child),
                                       std::move(group_columns),
                                       std::move(aggregates));
}

PlanPtr MakeGPivot(PlanPtr child, PivotSpec spec) {
  return std::make_shared<GPivotNode>(std::move(child), std::move(spec));
}

PlanPtr MakeGUnpivot(PlanPtr child, UnpivotSpec spec) {
  return std::make_shared<GUnpivotNode>(std::move(child), std::move(spec));
}

namespace {
void AppendPlan(const PlanPtr& plan, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(plan->Label());
  out->append("\n");
  for (const PlanPtr& child : plan->children()) {
    AppendPlan(child, depth + 1, out);
  }
}
}  // namespace

std::string PlanToString(const PlanPtr& plan) {
  std::string out;
  AppendPlan(plan, 0, &out);
  return out;
}

namespace {
void AssignIds(const PlanPtr& plan, PlanNodeIds* ids) {
  if (ids->index.count(plan.get()) > 0) return;  // DAG-shared subtree
  ids->index.emplace(plan.get(), static_cast<int>(ids->nodes.size()));
  ids->nodes.push_back(plan);
  for (const PlanPtr& child : plan->children()) {
    AssignIds(child, ids);
  }
}
}  // namespace

PlanNodeIds AssignNodeIds(const PlanPtr& plan) {
  PlanNodeIds ids;
  if (plan != nullptr) AssignIds(plan, &ids);
  return ids;
}

}  // namespace gpivot
