#include "algebra/explain.h"

#include <sstream>

#include "obs/json_util.h"
#include "util/string_util.h"

namespace gpivot {

namespace {

void AppendNodes(const PlanPtr& plan, const PlanNodeIds& ids,
                 const std::map<int, obs::NodeStats>& stats, int depth,
                 std::vector<bool>* emitted, CostReport* report) {
  CostReportNode node;
  node.id = ids.IdOf(plan.get());
  node.kind = plan->kind();
  node.label = plan->Label();
  node.depth = depth;
  if (plan->kind() == PlanKind::kScan) {
    node.table = static_cast<const ScanNode*>(plan.get())->table_name();
  }
  if (node.id >= 0) {
    auto it = stats.find(node.id);
    if (it != stats.end()) node.stats = it->second;
    if ((*emitted)[static_cast<size_t>(node.id)]) {
      node.shared_ref = true;
      report->nodes.push_back(std::move(node));
      return;  // render shared subtrees once, like the memoized evaluator
    }
    (*emitted)[static_cast<size_t>(node.id)] = true;
  }
  report->nodes.push_back(std::move(node));
  for (const PlanPtr& child : plan->children()) {
    AppendNodes(child, ids, stats, depth + 1, emitted, report);
  }
}

std::string StatsToText(const CostReportNode& node) {
  const obs::NodeStats& s = node.stats;
  std::string out = StrCat("invocations=", s.invocations,
                           " rows_in=", s.rows_in, " rows_out=", s.rows_out);
  if (s.build_rows != 0 || s.probe_rows != 0) {
    out += StrCat(" build_rows=", s.build_rows, " probe_rows=", s.probe_rows);
  }
  // Scans always show their base access counts: zero is the claim.
  if (node.kind == PlanKind::kScan || s.base_accesses != 0 ||
      s.base_rows_read != 0) {
    out += StrCat(" base_accesses=", s.base_accesses,
                  " base_rows_read=", s.base_rows_read);
  }
  if (s.delta_insert_rows != 0 || s.delta_delete_rows != 0) {
    out += StrCat(" delta_insert_rows=", s.delta_insert_rows,
                  " delta_delete_rows=", s.delta_delete_rows);
  }
  return out;
}

std::string StatsToJson(const obs::NodeStats& s) {
  return StrCat("{\"invocations\": ", s.invocations,
                ", \"rows_in\": ", s.rows_in, ", \"rows_out\": ", s.rows_out,
                ", \"build_rows\": ", s.build_rows,
                ", \"probe_rows\": ", s.probe_rows,
                ", \"base_accesses\": ", s.base_accesses,
                ", \"base_rows_read\": ", s.base_rows_read,
                ", \"delta_insert_rows\": ", s.delta_insert_rows,
                ", \"delta_delete_rows\": ", s.delta_delete_rows, "}");
}

std::string NodeToJson(const CostReportNode& node) {
  std::string out =
      StrCat("{\"id\": ", node.id, ", \"kind\": \"",
             PlanKindToString(node.kind),
             "\", \"label\": ", obs::JsonQuote(node.label));
  if (!node.table.empty()) {
    out += StrCat(", \"table\": ", obs::JsonQuote(node.table));
  }
  out += StrCat(", \"depth\": ", node.depth, ", \"shared_ref\": ",
                node.shared_ref ? "true" : "false",
                ", \"stats\": ", StatsToJson(node.stats), "}");
  return out;
}

std::string ReportToJson(const CostReport& report, int indent, bool pretty) {
  const std::string pad(pretty ? static_cast<size_t>(indent) : 0, ' ');
  const char* nl = pretty ? "\n" : "";
  const char* sp = pretty ? "  " : "";
  std::ostringstream out;
  out << "{" << nl;
  out << pad << sp << "\"strategy\": " << obs::JsonQuote(report.strategy)
      << "," << nl;
  out << pad << sp << "\"plan\": [";
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    out << (i == 0 ? "" : ",") << nl << pad << sp << sp
        << NodeToJson(report.nodes[i]);
  }
  if (!report.nodes.empty()) out << nl << pad << sp;
  out << "]" << nl << pad << "}";
  return out.str();
}

}  // namespace

std::string CostReport::ToText() const {
  std::string out;
  if (!strategy.empty()) {
    out += StrCat("strategy: ", strategy, "\n");
  }
  for (const CostReportNode& node : nodes) {
    out.append(static_cast<size_t>(node.depth) * 2, ' ');
    out += StrCat("#", node.id, " ", node.label);
    if (node.shared_ref) {
      out += "  (shared, see first occurrence)\n";
      continue;
    }
    out += StrCat("  [", StatsToText(node), "]\n");
  }
  return out;
}

std::string CostReport::ToJson(int indent) const {
  return ReportToJson(*this, indent, /*pretty=*/true);
}

std::string CostReport::ToJsonLine() const {
  return ReportToJson(*this, 0, /*pretty=*/false);
}

const CostReportNode* CostReport::FindScan(const std::string& table) const {
  for (const CostReportNode& node : nodes) {
    if (node.kind == PlanKind::kScan && !node.shared_ref &&
        node.table == table) {
      return &node;
    }
  }
  return nullptr;
}

CostReport BuildCostReport(const PlanPtr& plan, const PlanNodeIds& ids,
                           const std::map<int, obs::NodeStats>& stats) {
  CostReport report;
  if (plan == nullptr) return report;
  std::vector<bool> emitted(ids.size(), false);
  AppendNodes(plan, ids, stats, 0, &emitted, &report);
  return report;
}

}  // namespace gpivot
