#include "algebra/plan.h"

#include "core/gpivot.h"
#include "exec/basic_ops.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot {

namespace {

// The recursive evaluator; the public Evaluate wraps each node with a span
// and per-kind counters.
Result<Table> EvaluateNode(const PlanPtr& plan, const Catalog& catalog,
                           const ExecContext& ctx) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const auto* scan = static_cast<const ScanNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(const Table* table,
                              catalog.GetTable(scan->table_name()));
      if (ctx.cost != nullptr && ctx.cost_node >= 0) {
        obs::NodeStats stats;
        stats.invocations = 1;
        stats.rows_out = table->num_rows();
        stats.base_accesses = 1;
        stats.base_rows_read = table->num_rows();
        ctx.cost->Record(ctx.cost_node, stats);
      }
      return *table;
    }
    case PlanKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Table child, Evaluate(node->child(), catalog, ctx));
      GPIVOT_ASSIGN_OR_RETURN(Table result,
                              exec::Select(child, node->predicate(), ctx));
      GPIVOT_RETURN_NOT_OK(result.SetKey(child.key()));
      return result;
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Table child, Evaluate(node->child(), catalog, ctx));
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> kept,
                              node->KeptColumns());
      GPIVOT_ASSIGN_OR_RETURN(Table result, exec::Project(child, kept, ctx));
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key,
                              node->OutputKey());
      GPIVOT_RETURN_NOT_OK(result.SetKey(key));
      return result;
    }
    case PlanKind::kMap: {
      const auto* node = static_cast<const MapNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Table child, Evaluate(node->child(), catalog, ctx));
      GPIVOT_ASSIGN_OR_RETURN(
          Table result, exec::ProjectExprs(child, node->outputs(), ctx));
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key,
                              node->OutputKey());
      GPIVOT_RETURN_NOT_OK(result.SetKey(key));
      return result;
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Table left, Evaluate(node->left(), catalog, ctx));
      GPIVOT_ASSIGN_OR_RETURN(Table right, Evaluate(node->right(), catalog, ctx));
      exec::JoinSpec spec;
      spec.left_keys = node->left_keys();
      spec.right_keys = node->right_keys();
      spec.type = exec::JoinType::kInner;
      spec.residual = node->residual();
      GPIVOT_ASSIGN_OR_RETURN(Table result, exec::HashJoin(left, right, spec, ctx));
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key,
                              node->OutputKey());
      GPIVOT_RETURN_NOT_OK(result.SetKey(key));
      return result;
    }
    case PlanKind::kGroupBy: {
      const auto* node = static_cast<const GroupByNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Table child, Evaluate(node->child(), catalog, ctx));
      return exec::GroupBy(child, node->group_columns(), node->aggregates(),
                            ctx);
    }
    case PlanKind::kGPivot: {
      const auto* node = static_cast<const GPivotNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Table child, Evaluate(node->child(), catalog, ctx));
      return GPivot(child, node->spec(), ctx);
    }
    case PlanKind::kGUnpivot: {
      const auto* node = static_cast<const GUnpivotNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Table child, Evaluate(node->child(), catalog, ctx));
      GPIVOT_ASSIGN_OR_RETURN(Table result, GUnpivot(child, node->spec()));
      if (ctx.cost != nullptr && ctx.cost_node >= 0) {
        obs::NodeStats stats;
        stats.invocations = 1;
        stats.rows_in = child.num_rows();
        stats.rows_out = result.num_rows();
        ctx.cost->Record(ctx.cost_node, stats);
      }
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key,
                              node->OutputKey());
      GPIVOT_RETURN_NOT_OK(result.SetKey(key));
      return result;
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

Result<Table> Evaluate(const PlanPtr& plan, const Catalog& catalog,
                       const ExecContext& ctx) {
  GPIVOT_CHECK(plan != nullptr) << "Evaluate on null plan";
  // Re-target cost attribution at this node when the id map knows it; nodes
  // outside the map (e.g. restriction plans synthesized at refresh time)
  // inherit the caller's attribution target.
  ExecContext node_ctx = ctx;
  if (ctx.cost != nullptr && ctx.plan_ids != nullptr) {
    int id = ctx.plan_ids->IdOf(plan.get());
    if (id >= 0) node_ctx.cost_node = id;
  }
  obs::ScopedSpan span =
      obs::TraceEnabled(ctx.tracer)
          ? obs::ScopedSpan(ctx.tracer,
                            StrCat("eval:", PlanKindToString(plan->kind())))
          : obs::ScopedSpan();
  GPIVOT_ASSIGN_OR_RETURN(Table result, EvaluateNode(plan, catalog, node_ctx));
  if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
    ctx.metrics->AddCounter(
        StrCat("algebra.eval.", PlanKindToString(plan->kind()), ".calls"));
    ctx.metrics->AddCounter(
        StrCat("algebra.eval.", PlanKindToString(plan->kind()), ".rows_out"),
        result.num_rows());
  }
  if (span.active()) {
    span.AddAttr("rows_out", static_cast<uint64_t>(result.num_rows()));
  }
  return result;
}

}  // namespace gpivot
