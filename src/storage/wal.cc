#include "storage/wal.h"

#include <utility>

#include "storage/serialize.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace gpivot::storage {

namespace {

std::string EncodeFrame(uint64_t seq, const std::string& entry,
                        const ivm::SourceDeltas& deltas) {
  BinaryWriter payload;
  payload.PutU64(seq);
  payload.PutString(entry);
  EncodeSourceDeltas(deltas, &payload);
  BinaryWriter frame;
  frame.PutU32(kWalEntryMagic);
  frame.PutU32(static_cast<uint32_t>(payload.buffer().size()));
  frame.PutU32(Crc32c(payload.buffer()));
  std::string out = frame.Take();
  out += payload.buffer();
  return out;
}

std::string FileHeader() {
  BinaryWriter header;
  header.PutU32(kWalFileMagic);
  header.PutU32(kWalVersion);
  return header.Take();
}

}  // namespace

uint64_t WalEntry::TotalRows() const {
  uint64_t rows = 0;
  for (const auto& [name, delta] : deltas) {
    rows += delta.inserts.num_rows() + delta.deletes.num_rows();
  }
  return rows;
}

Result<WalContents> ReadWal(const std::string& path) {
  GPIVOT_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  BinaryReader header(bytes);
  {
    Result<uint32_t> magic = header.GetU32();
    if (!magic.ok() || *magic != kWalFileMagic) {
      return Status::InvalidArgument(
          StrCat("wal '", path, "': bad file magic"));
    }
    Result<uint32_t> version = header.GetU32();
    if (!version.ok() || *version != kWalVersion) {
      return Status::InvalidArgument(
          StrCat("wal '", path, "': unsupported version"));
    }
  }
  WalContents contents;
  contents.valid_bytes = kWalHeaderSize;
  size_t pos = kWalHeaderSize;
  while (pos < bytes.size()) {
    std::string_view rest = std::string_view(bytes).substr(pos);
    BinaryReader frame(rest);
    auto reject = [&](std::string why) {
      contents.torn_bytes = bytes.size() - pos;
      contents.tail_error = std::move(why);
    };
    if (rest.size() < kWalFrameHeaderSize) {
      reject("incomplete frame header at tail");
      break;
    }
    uint32_t magic = frame.GetU32().value();
    uint32_t payload_len = frame.GetU32().value();
    uint32_t crc = frame.GetU32().value();
    if (magic != kWalEntryMagic) {
      reject(StrCat("bad entry magic at offset ", pos));
      break;
    }
    if (rest.size() - kWalFrameHeaderSize < payload_len) {
      reject(StrCat("truncated payload at offset ", pos, " (", payload_len,
                    " claimed, ", rest.size() - kWalFrameHeaderSize,
                    " present)"));
      break;
    }
    std::string_view payload = rest.substr(kWalFrameHeaderSize, payload_len);
    if (Crc32c(payload) != crc) {
      reject(StrCat("checksum mismatch at offset ", pos));
      break;
    }
    BinaryReader body(payload);
    WalEntry entry;
    Result<uint64_t> seq = body.GetU64();
    Result<std::string> tag = seq.ok() ? body.GetString()
                                       : Result<std::string>(seq.status());
    Result<ivm::SourceDeltas> deltas =
        tag.ok() ? DecodeSourceDeltas(&body)
                 : Result<ivm::SourceDeltas>(tag.status());
    if (!deltas.ok() || !body.exhausted()) {
      // The checksum matched but the payload does not decode: a writer bug
      // or version skew, not a torn write. Still treated as end-of-log so
      // recovery can proceed with the valid prefix.
      reject(StrCat("undecodable payload at offset ", pos, ": ",
                    deltas.ok() ? "trailing bytes inside payload"
                                : deltas.status().ToString()));
      break;
    }
    entry.seq = *seq;
    entry.entry = std::move(*tag);
    entry.deltas = std::move(*deltas);
    contents.entries.push_back(std::move(entry));
    pos += kWalFrameHeaderSize + payload_len;
    contents.valid_bytes = pos;
  }
  return contents;
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  uint64_t valid_bytes) {
  if (!FileExists(path) || valid_bytes < kWalHeaderSize) {
    GPIVOT_ASSIGN_OR_RETURN(FdFile file, FdFile::CreateTruncated(path));
    WalWriter writer(std::move(file));
    GPIVOT_RETURN_NOT_OK(writer.file_.WriteFully(FileHeader()));
    GPIVOT_RETURN_NOT_OK(writer.file_.Fsync());
    writer.durable_offset_ = writer.file_.offset();
    return writer;
  }
  GPIVOT_ASSIGN_OR_RETURN(FdFile file, FdFile::OpenForAppend(path));
  if (file.offset() > valid_bytes) {
    GPIVOT_RETURN_NOT_OK(file.Truncate(valid_bytes));
    GPIVOT_RETURN_NOT_OK(file.Fsync());
  }
  return WalWriter(std::move(file));
}

Status WalWriter::Append(uint64_t seq, const std::string& entry,
                         const ivm::SourceDeltas& deltas,
                         obs::MetricsRegistry* metrics) {
  if (last_append_torn_) {
    // A previous append failed mid-frame; clear its torn bytes before this
    // entry lands, or the reader would stop at the garbage.
    GPIVOT_RETURN_NOT_OK(file_.Truncate(durable_offset_));
    last_append_torn_ = false;
  }
  std::string frame = EncodeFrame(seq, entry, deltas);
  last_append_torn_ = true;
  GPIVOT_RETURN_NOT_OK(file_.WriteFully(frame));
  GPIVOT_RETURN_NOT_OK(file_.Fsync());
  last_append_torn_ = false;
  durable_offset_ = file_.offset();
  if (metrics != nullptr && metrics->enabled()) {
    metrics->AddCounter("storage.wal.appends");
    metrics->AddCounter("storage.wal.append_bytes", frame.size());
  }
  return Status::OK();
}

Status WalWriter::TruncateTo(uint64_t offset_before) {
  GPIVOT_RETURN_NOT_OK(file_.Truncate(offset_before));
  GPIVOT_RETURN_NOT_OK(file_.Fsync());
  durable_offset_ = offset_before;
  last_append_torn_ = false;
  return Status::OK();
}

Status WalWriter::Reset() { return TruncateTo(kWalHeaderSize); }

}  // namespace gpivot::storage
