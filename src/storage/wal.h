#ifndef GPIVOT_STORAGE_WAL_H_
#define GPIVOT_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ivm/delta.h"
#include "obs/metrics.h"
#include "util/file_io.h"
#include "util/result.h"

namespace gpivot::storage {

// Write-ahead log for maintenance epochs: one framed, CRC32C-checksummed
// entry per accepted delta batch, appended and fsynced *before* the epoch
// mutates anything in memory. File layout:
//
//   [u32 file magic "GWAL"][u32 version]
//   entry*: [u32 entry magic][u32 payload_len][u32 crc32c(payload)][payload]
//   payload: [u64 epoch seq][string entry tag][SourceDeltas]
//
// The reader consumes the longest valid prefix. A tail that ends
// mid-frame, fails its checksum, or decodes to garbage is reported as torn
// — not fatal: recovery replays the valid prefix and truncates the rest,
// which is exactly what a crash mid-append must converge to. Anything
// torn is only ever at the tail because entries are written sequentially
// and fsynced in order.

inline constexpr uint32_t kWalFileMagic = 0x4C415747;   // "GWAL" LE
inline constexpr uint32_t kWalEntryMagic = 0x31454C45;  // "ELE1" LE
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderSize = 8;
inline constexpr size_t kWalFrameHeaderSize = 12;

struct WalEntry {
  uint64_t seq = 0;
  std::string entry;  // ViewManager entry tag, e.g. "apply_update"
  ivm::SourceDeltas deltas;

  // Δ + ∇ rows across all tables.
  uint64_t TotalRows() const;
};

// Result of scanning a WAL file.
struct WalContents {
  std::vector<WalEntry> entries;  // the valid prefix, in file order
  uint64_t valid_bytes = 0;       // file offset just past the last valid entry
  uint64_t torn_bytes = 0;        // bytes after the valid prefix (0 = clean)
  std::string tail_error;         // why the tail was rejected; empty = clean
};

// Scans `path`. NotFound when the file does not exist; InvalidArgument when
// the file header itself is unreadable (wrong magic/version — nothing can
// be salvaged); otherwise OK with the valid prefix and tail diagnosis.
Result<WalContents> ReadWal(const std::string& path);

// Appender. Not thread-safe; the epoch entry points are already serial.
class WalWriter {
 public:
  // Opens `path` for appending, writing the file header when the file is
  // new or empty. `valid_bytes` (from a prior ReadWal) truncates a torn
  // tail before appending resumes; pass the file's full size when it is
  // known clean.
  static Result<WalWriter> Open(const std::string& path,
                                uint64_t valid_bytes);

  // Appends and fsyncs one entry. On failure the file may hold a torn
  // frame beyond offset(); the caller treats the entry as not written
  // (recovery truncates it).
  Status Append(uint64_t seq, const std::string& entry,
                const ivm::SourceDeltas& deltas,
                obs::MetricsRegistry* metrics = nullptr);

  // End of the last durable entry; Append restores the file to this point
  // before writing when a previous append failed partway.
  uint64_t offset() const { return durable_offset_; }

  // Drops the entry appended last (the failed-epoch path: the WAL must not
  // replay an epoch the manager rolled back). `offset_before` is offset()
  // captured before that Append.
  Status TruncateTo(uint64_t offset_before);

  // Empties the log back to its file header (after a checkpoint covers
  // every entry).
  Status Reset();

  const std::string& path() const { return file_.path(); }

 private:
  explicit WalWriter(FdFile file)
      : file_(std::move(file)), durable_offset_(file_.offset()) {}

  FdFile file_;
  uint64_t durable_offset_ = 0;
  bool last_append_torn_ = false;
};

}  // namespace gpivot::storage

#endif  // GPIVOT_STORAGE_WAL_H_
