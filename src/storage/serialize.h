#ifndef GPIVOT_STORAGE_SERIALIZE_H_
#define GPIVOT_STORAGE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ivm/delta.h"
#include "relation/row.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "relation/value.h"
#include "util/result.h"

namespace gpivot::storage {

// Canonical binary serialization for the durability layer. The encoding is
// a pure function of the logical value — map-shaped inputs (SourceDeltas)
// are emitted in sorted key order — so encode(decode(encode(x))) ==
// encode(x) byte-for-byte, and two managers in the same logical state
// produce identical checkpoint payloads. Row order inside tables is
// preserved exactly (WAL replay must reconstruct the delta as handed in).
//
// Wire primitives are little-endian fixed width: u8/u32/u64, doubles as
// their IEEE-754 bit pattern (NaN payloads and -0.0 round-trip bit-exactly),
// strings as u32 length + bytes. Values carry a 1-byte type tag. Decoders
// are bounds-checked and return InvalidArgument on any malformed input —
// they never abort, because the input may be a torn or corrupted file.

// Append-only encoder over a std::string buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Bounds-checked decoder over a borrowed byte range.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Value: [u8 tag][payload]. Tags: 0 NULL, 1 int64, 2 double, 3 string.
void EncodeValue(const Value& value, BinaryWriter* out);
Result<Value> DecodeValue(BinaryReader* in);

// Row: [u32 arity][values].
void EncodeRow(const Row& row, BinaryWriter* out);
Result<Row> DecodeRow(BinaryReader* in);

// Schema: [u32 ncols][(string name, u8 type)...].
void EncodeSchema(const Schema& schema, BinaryWriter* out);
Result<Schema> DecodeSchema(BinaryReader* in);

// Table: [schema][u32 nkey][key column names][u64 nrows][rows]. The decoded
// table carries the same declared key; rows keep their physical order.
// When the table's columnar cache is warm, cells are encoded straight from
// the typed column storage — the wire bytes are identical to the row loop.
void EncodeTable(const Table& table, BinaryWriter* out);
Result<Table> DecodeTable(BinaryReader* in);

// Delta: [inserts table][deletes table].
void EncodeDelta(const ivm::Delta& delta, BinaryWriter* out);
Result<ivm::Delta> DecodeDelta(BinaryReader* in);

// SourceDeltas: [u32 ntables][(string name, Delta)...] in sorted name order
// (the canonicalization point for the unordered map).
void EncodeSourceDeltas(const ivm::SourceDeltas& deltas, BinaryWriter* out);
Result<ivm::SourceDeltas> DecodeSourceDeltas(BinaryReader* in);

// Convenience: one value per buffer.
std::string EncodeTableToString(const Table& table);

}  // namespace gpivot::storage

#endif  // GPIVOT_STORAGE_SERIALIZE_H_
