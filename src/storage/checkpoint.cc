#include "storage/checkpoint.h"

#include <algorithm>
#include <utility>

#include "storage/serialize.h"
#include "util/crc32c.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace gpivot::storage {

namespace {

constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".gpck";
constexpr size_t kSeqDigits = 20;  // enough for any u64

void EncodeTableMap(const std::map<std::string, Table>& tables,
                    BinaryWriter* out) {
  out->PutU32(static_cast<uint32_t>(tables.size()));
  for (const auto& [name, table] : tables) {
    out->PutString(name);
    EncodeTable(table, out);
  }
}

void EncodeTableMap(
    const std::map<std::string, std::shared_ptr<const Table>>& tables,
    BinaryWriter* out) {
  out->PutU32(static_cast<uint32_t>(tables.size()));
  for (const auto& [name, table] : tables) {
    out->PutString(name);
    EncodeTable(*table, out);
  }
}

Result<std::map<std::string, Table>> DecodeTableMap(BinaryReader* in,
                                                    const char* what) {
  GPIVOT_ASSIGN_OR_RETURN(uint32_t ntables, in->GetU32());
  std::map<std::string, Table> tables;
  for (uint32_t i = 0; i < ntables; ++i) {
    GPIVOT_ASSIGN_OR_RETURN(std::string name, in->GetString());
    GPIVOT_ASSIGN_OR_RETURN(Table table, DecodeTable(in));
    if (!tables.emplace(std::move(name), std::move(table)).second) {
      return Status::InvalidArgument(
          StrCat("checkpoint: duplicate ", what, " table name"));
    }
  }
  return tables;
}

}  // namespace

Status WriteCheckpoint(const std::string& path,
                       const CheckpointContents& contents,
                       obs::MetricsRegistry* metrics) {
  BinaryWriter payload;
  payload.PutU64(contents.epoch_seq);
  EncodeTableMap(contents.base_tables, &payload);
  EncodeTableMap(contents.view_tables, &payload);

  BinaryWriter file;
  file.PutU32(kCheckpointMagic);
  file.PutU32(kCheckpointVersion);
  file.PutU64(payload.buffer().size());
  uint32_t crc = Crc32c(payload.buffer());
  std::string bytes = file.Take();
  bytes += payload.buffer();
  BinaryWriter trailer;
  trailer.PutU32(crc);
  bytes += trailer.buffer();

  GPIVOT_RETURN_NOT_OK(AtomicWriteFile(path, bytes));
  if (metrics != nullptr && metrics->enabled()) {
    metrics->AddCounter("storage.checkpoint.writes");
    metrics->AddCounter("storage.checkpoint.bytes", bytes.size());
  }
  return Status::OK();
}

Result<CheckpointContents> ReadCheckpoint(const std::string& path) {
  GPIVOT_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  BinaryReader reader(bytes);
  auto bad = [&](std::string_view why) {
    return Status::InvalidArgument(
        StrCat("checkpoint '", path, "': ", why));
  };
  Result<uint32_t> magic = reader.GetU32();
  if (!magic.ok() || *magic != kCheckpointMagic) return bad("bad file magic");
  Result<uint32_t> version = reader.GetU32();
  if (!version.ok() || *version != kCheckpointVersion) {
    return bad("unsupported version");
  }
  Result<uint64_t> payload_len = reader.GetU64();
  if (!payload_len.ok() || *payload_len > reader.remaining() ||
      reader.remaining() - *payload_len < 4) {
    return bad("truncated payload");
  }
  std::string_view payload =
      std::string_view(bytes).substr(reader.position(),
                                     static_cast<size_t>(*payload_len));
  BinaryReader trailer(
      std::string_view(bytes).substr(reader.position() + payload.size()));
  Result<uint32_t> crc = trailer.GetU32();
  if (!crc.ok() || !trailer.exhausted()) return bad("malformed trailer");
  if (Crc32c(payload) != *crc) return bad("checksum mismatch");

  BinaryReader body(payload);
  CheckpointContents contents;
  GPIVOT_ASSIGN_OR_RETURN(contents.epoch_seq, body.GetU64());
  GPIVOT_ASSIGN_OR_RETURN(contents.base_tables, DecodeTableMap(&body, "base"));
  Result<std::map<std::string, Table>> view_tables =
      DecodeTableMap(&body, "view");
  GPIVOT_RETURN_NOT_OK(view_tables.status());
  for (auto& [name, table] : *view_tables) {
    contents.view_tables.emplace(
        name, std::make_shared<const Table>(std::move(table)));
  }
  if (!body.exhausted()) return bad("trailing bytes inside payload");
  return contents;
}

std::string CheckpointFileName(uint64_t epoch_seq) {
  std::string digits = std::to_string(epoch_seq);
  std::string padded(kSeqDigits - std::min(digits.size(), kSeqDigits), '0');
  padded += digits;
  return StrCat(kCheckpointPrefix, padded, kCheckpointSuffix);
}

Result<std::vector<std::string>> FindCheckpoints(const std::string& dir) {
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirFiles(dir));
  std::vector<std::string> checkpoints;
  for (const std::string& name : names) {
    if (name.size() > sizeof(kCheckpointPrefix) - 1 +
                          sizeof(kCheckpointSuffix) - 1 &&
        name.rfind(kCheckpointPrefix, 0) == 0 &&
        name.compare(name.size() - (sizeof(kCheckpointSuffix) - 1),
                     sizeof(kCheckpointSuffix) - 1, kCheckpointSuffix) == 0) {
      checkpoints.push_back(name);
    }
  }
  // Zero-padded seq in the name: lexical descending == newest first.
  std::sort(checkpoints.rbegin(), checkpoints.rend());
  return checkpoints;
}

}  // namespace gpivot::storage
