#ifndef GPIVOT_STORAGE_CHECKPOINT_H_
#define GPIVOT_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "relation/table.h"
#include "util/result.h"

namespace gpivot::storage {

// Full-state snapshot of a ViewManager: base catalog, materialized view
// contents, and the epoch sequence number they correspond to. One file per
// checkpoint:
//
//   [u32 file magic "GPCK"][u32 version][u64 payload_len][payload][u32 crc]
//   payload: [u64 epoch_seq]
//            [u32 nbase][(string name, Table)... sorted by name]
//            [u32 nviews][(string name, Table)... sorted by name]
//
// Tables carry their declared keys, so key indexes rebuild on load. The
// payload is canonical (sorted names, canonical table encoding): two
// managers in the same logical state write byte-identical checkpoints —
// the crash-identity property test depends on this.
//
// Files are written to `<path>.tmp`, fsynced, renamed into place, and the
// directory fsynced (AtomicWriteFile), so a crash leaves either the old
// file set or the new one, never a half-written checkpoint under the real
// name. A reader that finds a corrupt file (torn before the rename
// protocol existed, or bit rot) gets InvalidArgument and falls back to an
// older checkpoint.

inline constexpr uint32_t kCheckpointMagic = 0x4B435047;  // "GPCK" LE
inline constexpr uint32_t kCheckpointVersion = 1;

struct CheckpointContents {
  uint64_t epoch_seq = 0;
  std::map<std::string, Table> base_tables;
  // View tables ride as shared immutable handles: the checkpoint writer
  // only *reads* them, so it borrows the MaterializedView's current version
  // (shared_table()) instead of deep-copying every view — O(1) per view,
  // and safe against later epochs because view mutation is copy-on-write.
  std::map<std::string, std::shared_ptr<const Table>> view_tables;
};

// Serializes `contents` and writes it atomically to `path`.
Status WriteCheckpoint(const std::string& path,
                       const CheckpointContents& contents,
                       obs::MetricsRegistry* metrics = nullptr);

// Reads and validates a checkpoint file. NotFound when absent;
// InvalidArgument on any framing/checksum/decode failure.
Result<CheckpointContents> ReadCheckpoint(const std::string& path);

// Canonical file name for the checkpoint taken at `epoch_seq`
// (zero-padded so lexical order == numeric order).
std::string CheckpointFileName(uint64_t epoch_seq);

// All checkpoint file names in `dir` (by naming convention, not content),
// newest first. Empty when the directory has none; NotFound when the
// directory itself is missing.
Result<std::vector<std::string>> FindCheckpoints(const std::string& dir);

}  // namespace gpivot::storage

#endif  // GPIVOT_STORAGE_CHECKPOINT_H_
