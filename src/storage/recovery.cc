#include "storage/recovery.h"

#include <cstdlib>
#include <utility>

#include "ivm/batcher.h"
#include "obs/json_util.h"
#include "obs/runtime.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace gpivot::storage {

namespace {

constexpr char kWalFileName[] = "wal.gwal";

uint64_t TotalDeltaRows(const ivm::SourceDeltas& deltas) {
  uint64_t rows = 0;
  for (const auto& [name, delta] : deltas) {
    rows += delta.inserts.num_rows() + delta.deletes.num_rows();
  }
  return rows;
}

}  // namespace

std::string WalPath(const std::string& dir) {
  return StrCat(dir, "/", kWalFileName);
}

Result<StorageOptions> StorageOptions::FromEnv() {
  StorageOptions options;
  if (const char* dir = std::getenv("GPIVOT_WAL_DIR");
      dir != nullptr && dir[0] != '\0') {
    options.dir = dir;
  }
  if (const char* value = std::getenv("GPIVOT_CHECKPOINT_EVERY_N_EPOCHS");
      value != nullptr && value[0] != '\0') {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (value[0] == '-' || end == value || *end != '\0') {
      return Status::InvalidArgument(
          StrCat("GPIVOT_CHECKPOINT_EVERY_N_EPOCHS is not a non-negative "
                 "integer: '",
                 value, "'"));
    }
    options.checkpoint_every_n_epochs = parsed;
  }
  return options;
}

std::string RecoveryReport::ToJsonLine() const {
  return StrCat(
      "{\"recovery\": {\"used_checkpoint\": ",
      used_checkpoint ? "true" : "false",
      ", \"checkpoint_file\": ", obs::JsonQuote(checkpoint_file),
      ", \"checkpoint_seq\": ", checkpoint_seq,
      ", \"skipped_checkpoints\": ", skipped_checkpoints,
      ", \"wal_entries_valid\": ", wal_entries_valid,
      ", \"wal_entries_replayed\": ", wal_entries_replayed,
      ", \"replay_rows_raw\": ", replay_rows_raw,
      ", \"replay_rows_applied\": ", replay_rows_applied,
      ", \"replay_epochs\": ", replay_epochs,
      ", \"wal_torn_bytes\": ", wal_torn_bytes,
      ", \"wal_tail_error\": ", obs::JsonQuote(wal_tail_error),
      ", \"epoch_seq\": ", epoch_seq, "}}");
}

Result<std::unique_ptr<DurableViewManager>> DurableViewManager::Open(
    Catalog bootstrap, std::vector<ViewDefinition> views,
    const StorageOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument(
        "DurableViewManager::Open: options.dir must be set");
  }
  GPIVOT_RETURN_NOT_OK(EnsureDir(options.dir));
  std::unique_ptr<DurableViewManager> dvm(new DurableViewManager());
  dvm->options_ = options;
  RecoveryReport& report = dvm->report_;

  // Newest valid checkpoint wins; corrupt ones are passed over, not fatal
  // (a crash can tear at most the not-yet-renamed .tmp, but bit rot or a
  // pre-rename-protocol file must not strand the whole directory).
  std::optional<CheckpointContents> snapshot;
  {
    GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            FindCheckpoints(options.dir));
    for (const std::string& name : names) {
      Result<CheckpointContents> loaded =
          ReadCheckpoint(StrCat(options.dir, "/", name));
      if (loaded.ok()) {
        snapshot = std::move(*loaded);
        report.checkpoint_file = name;
        break;
      }
      ++report.skipped_checkpoints;
    }
  }

  if (snapshot.has_value()) {
    report.used_checkpoint = true;
    report.checkpoint_seq = snapshot->epoch_seq;
    Catalog catalog;
    for (auto& [name, table] : snapshot->base_tables) {
      GPIVOT_RETURN_NOT_OK(catalog.AddTable(name, std::move(table)));
    }
    for (const std::string& name : bootstrap.TableNames()) {
      if (!catalog.HasTable(name)) {
        return Status::Internal(
            StrCat("recovery: checkpoint '", report.checkpoint_file,
                   "' is missing base table '", name, "'"));
      }
    }
    dvm->manager_ = std::make_unique<ivm::ViewManager>(std::move(catalog));
  } else {
    dvm->manager_ =
        std::make_unique<ivm::ViewManager>(std::move(bootstrap));
  }
  ivm::ViewManager* manager = dvm->manager_.get();
  // Replay must not emit epoch-log lines (the pre-crash run already logged
  // those seqs) and the hook is armed only once the state is re-covered.
  manager->set_event_log(nullptr);
  manager->set_exec_context(options.exec_context);

  for (ViewDefinition& def : views) {
    bool restored = false;
    if (snapshot.has_value()) {
      auto it = snapshot->view_tables.find(def.name);
      if (it != snapshot->view_tables.end()) {
        // ReadCheckpoint created this table, so the handle is uniquely
        // owned here; one copy re-materializes it (startup only).
        GPIVOT_RETURN_NOT_OK(manager->RestoreView(
            def.name, def.query, def.strategy, Table(*it->second)));
        restored = true;
      }
    }
    if (!restored) {
      // Not in the snapshot (first boot, or a view added since it was
      // taken): evaluate from the recovered base.
      GPIVOT_RETURN_NOT_OK(
          manager->DefineView(def.name, def.query, def.strategy));
    }
  }
  if (snapshot.has_value()) {
    manager->RestoreEpochSeq(snapshot->epoch_seq);
  }

  // Scan the WAL; keep entries past the snapshot.
  const std::string wal_path = WalPath(options.dir);
  std::vector<WalEntry> pending;
  Result<WalContents> wal = ReadWal(wal_path);
  if (wal.ok()) {
    report.wal_entries_valid = wal->entries.size();
    report.wal_torn_bytes = wal->torn_bytes;
    report.wal_tail_error = wal->tail_error;
    const uint64_t covered = manager->epoch_seq();
    for (WalEntry& entry : wal->entries) {
      if (entry.seq > covered) pending.push_back(std::move(entry));
    }
  } else if (!wal.status().IsNotFound()) {
    // Unreadable file header. Entries are only ever appended after the
    // header was written and fsynced, so a torn header means no entry was
    // durable; nothing is lost by rebuilding the log. Recorded so the
    // operator can tell this apart from a clean start.
    report.wal_tail_error = wal.status().ToString();
  }

  // Replay. Epochs run hook-less: the entries being replayed are already
  // in the WAL, and a crash mid-replay just replays them again next time.
  report.wal_entries_replayed = pending.size();
  for (const WalEntry& entry : pending) {
    report.replay_rows_raw += entry.TotalRows();
  }
  if (!pending.empty()) {
    const uint64_t seq_before = manager->epoch_seq();
    const uint64_t last_seq = pending.back().seq;
    if (options.replay_mode == ReplayMode::kCompacted) {
      std::vector<ivm::SourceDeltas> batches;
      batches.reserve(pending.size());
      for (WalEntry& entry : pending) {
        batches.push_back(std::move(entry.deltas));
      }
      GPIVOT_ASSIGN_OR_RETURN(
          ivm::SourceDeltas net,
          ivm::CompactDeltas(manager->catalog(), batches));
      report.replay_rows_applied = TotalDeltaRows(net);
      GPIVOT_RETURN_NOT_OK(manager->BatchedApplyUpdate(net));
    } else {
      for (const WalEntry& entry : pending) {
        report.replay_rows_applied += entry.TotalRows();
        GPIVOT_RETURN_NOT_OK(entry.entry == "batched_apply_update"
                                 ? manager->BatchedApplyUpdate(entry.deltas)
                                 : manager->ApplyUpdate(entry.deltas));
      }
    }
    report.replay_epochs = manager->epoch_seq() - seq_before;
    // Numbering continuity: the replayed history consumed seqs up to
    // last_seq in its first life; the recovered manager continues there.
    manager->RestoreEpochSeq(last_seq);
  }

  // Re-cover: the newest checkpoint must reflect the recovered state
  // before the WAL is emptied. Skipped when the snapshot already covers
  // everything (nothing replayed) — rewriting it would be a no-op.
  if (!report.used_checkpoint || !pending.empty()) {
    GPIVOT_RETURN_NOT_OK(dvm->WriteSnapshot());
  }
  GPIVOT_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Open(wal_path, 0));
  dvm->wal_.emplace(std::move(writer));

  // Arm.
  manager->set_durability_hook(dvm.get());
  obs::EventLog* log = options.event_log != nullptr ? options.event_log
                                                    : obs::EventLogFromEnv();
  manager->set_event_log(log);
  report.epoch_seq = manager->epoch_seq();
  if (log != nullptr && log->ok()) {
    log->Append(report.ToJsonLine());
  }
  if (obs::MetricsRegistry* metrics = options.exec_context.metrics;
      metrics != nullptr && metrics->enabled()) {
    metrics->AddCounter("storage.recovery.opens");
    metrics->AddCounter("storage.recovery.replayed_entries",
                        report.wal_entries_replayed);
    metrics->AddCounter("storage.recovery.replayed_rows",
                        report.replay_rows_applied);
  }
  dvm->PublishRuntimeGauges();
  return dvm;
}

void DurableViewManager::PublishRuntimeGauges() const {
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (!runtime.enabled()) return;
  obs::MetricsRegistry& metrics = runtime.metrics();
  if (wal_.has_value()) {
    metrics.SetGauge("storage.wal.durable_offset",
                     static_cast<double>(wal_->offset()));
  }
  metrics.SetGauge("storage.wal.poisoned", wal_poisoned_ ? 1.0 : 0.0);
  metrics.SetGauge("storage.checkpoint.age_epochs",
                   static_cast<double>(epochs_since_checkpoint_));
  metrics.SetGauge("storage.checkpoint.cadence",
                   static_cast<double>(options_.checkpoint_every_n_epochs));
}

DurableViewManager::~DurableViewManager() {
  if (manager_ != nullptr) manager_->set_durability_hook(nullptr);
}

Status DurableViewManager::WriteSnapshot() {
  CheckpointContents contents;
  contents.epoch_seq = manager_->epoch_seq();
  for (const std::string& name : manager_->catalog().TableNames()) {
    GPIVOT_ASSIGN_OR_RETURN(const Table* table,
                            manager_->catalog().GetTable(name));
    contents.base_tables.emplace(name, *table);
  }
  for (const std::string& name : manager_->ViewNames()) {
    GPIVOT_ASSIGN_OR_RETURN(const ivm::MaterializedView* view,
                            manager_->GetView(name));
    // Borrow, don't copy: the writer only reads the view table, and the
    // view's copy-on-write mutation protects the borrowed version from
    // any epoch that commits while the checkpoint encodes.
    contents.view_tables.emplace(name, view->shared_table());
  }
  const std::string path =
      StrCat(options_.dir, "/", CheckpointFileName(contents.epoch_seq));
  GPIVOT_RETURN_NOT_OK(
      WriteCheckpoint(path, contents, options_.exec_context.metrics));
  // Best-effort prune, newest two kept: the one just written plus one
  // fallback in case it rots. Failures here are ignored — an extra old
  // checkpoint is clutter, not corruption (and no fault points fire in
  // this path, keeping the crash sweep bounded).
  Result<std::vector<std::string>> names = FindCheckpoints(options_.dir);
  if (names.ok()) {
    for (size_t i = 2; i < names->size(); ++i) {
      (void)RemoveFileIfExists(StrCat(options_.dir, "/", (*names)[i]));
    }
  }
  return Status::OK();
}

Status DurableViewManager::Checkpoint() {
  GPIVOT_RETURN_NOT_OK(WriteSnapshot());
  // Crash window between the rename above and this truncate is benign:
  // the leftover entries have seq <= the new checkpoint's and are skipped
  // on the next Open.
  GPIVOT_RETURN_NOT_OK(wal_->Reset());
  epochs_since_checkpoint_ = 0;
  wal_poisoned_ = false;
  PublishRuntimeGauges();
  return Status::OK();
}

Status DurableViewManager::OnEpochAccepted(uint64_t seq,
                                           const std::string& entry,
                                           const ivm::SourceDeltas& deltas) {
  if (wal_poisoned_) {
    // Self-heal: a checkpoint re-covers the state and empties the log.
    Status st = Checkpoint();
    if (!st.ok()) {
      return Status::Internal(
          StrCat("WAL holds an entry for a rolled-back epoch and cannot be "
                 "repaired: ",
                 st.ToString()));
    }
  }
  offset_before_append_ = wal_->offset();
  Status st = wal_->Append(seq, entry, deltas, options_.exec_context.metrics);
  if (!st.ok()) {
    // A failed append can still leave a complete, CRC-valid frame on disk
    // (e.g. only the fsync failed). The epoch is being rejected, so clear
    // the frame eagerly; if even the truncate fails, the writer's lazy
    // torn-bytes repair before the next append is the backstop.
    (void)wal_->TruncateTo(offset_before_append_);
  }
  PublishRuntimeGauges();
  return st;
}

Status DurableViewManager::OnEpochResolved(uint64_t seq, bool committed) {
  (void)seq;
  if (!committed) {
    Status st = wal_->TruncateTo(offset_before_append_);
    if (obs::MetricsRegistry* metrics = options_.exec_context.metrics;
        metrics != nullptr && metrics->enabled()) {
      metrics->AddCounter("storage.wal.truncates");
    }
    if (!st.ok()) {
      // The log now redoes an epoch memory rolled back. A checkpoint of
      // the (rolled-back) state both covers and discards the bad entry;
      // if even that fails, poison appends until one succeeds.
      Status ck = Checkpoint();
      if (!ck.ok()) {
        wal_poisoned_ = true;
        PublishRuntimeGauges();
        return st;
      }
    }
    PublishRuntimeGauges();
    return Status::OK();
  }
  ++epochs_since_checkpoint_;
  if (options_.checkpoint_every_n_epochs > 0 &&
      epochs_since_checkpoint_ >= options_.checkpoint_every_n_epochs) {
    return Checkpoint();
  }
  PublishRuntimeGauges();
  return Status::OK();
}

}  // namespace gpivot::storage
