#ifndef GPIVOT_STORAGE_RECOVERY_H_
#define GPIVOT_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "ivm/maintenance.h"
#include "ivm/view_manager.h"
#include "obs/event_log.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot::storage {

// Durable view maintenance: a ViewManager whose epochs survive process
// death. The protocol, in commit order:
//
//   1. OnEpochAccepted — the delta batch is appended to the WAL and fsynced
//      *before* the epoch mutates anything (write-ahead). WAL failure
//      rejects the epoch.
//   2. The epoch runs in memory exactly as without durability.
//   3. OnEpochResolved — rollback truncates the WAL entry (a rolled-back
//      epoch must not replay); commit counts toward the checkpoint cadence
//      and may snapshot the full state.
//
// Recovery (DurableViewManager::Open) is idempotent — crash anywhere
// inside it and the next Open converges to the same state:
//
//   load newest valid checkpoint (fall back to older on corruption)
//     -> rebuild catalog + views from the snapshot, no query evaluation
//   scan the WAL, truncating any torn tail
//     -> replay entries with seq > checkpoint seq (by default folded
//        through CompactDeltas into one batched epoch, so replay cost
//        scales with net churn, not history length)
//   write a fresh checkpoint at the recovered seq, atomically
//   reset the WAL (everything is now covered by the checkpoint)
//   re-arm the durability hook and the epoch event log
//
// Replayed epochs run with the event log and hook detached: recovery must
// not re-append WAL entries for epochs already in the WAL, nor emit
// duplicate epoch-log lines for seqs the pre-crash run already logged.

// How recovery applies WAL entries that postdate the checkpoint.
enum class ReplayMode {
  // Fold all pending entries through ivm::CompactDeltas into one batched
  // epoch. The default: one propagation over the net delta.
  kCompacted,
  // One epoch per WAL entry, in seq order. Costs one propagation per
  // entry; kept as the reference implementation the compacted path is
  // tested (and benchmarked) against.
  kSequential,
};

struct StorageOptions {
  // Directory holding the WAL and checkpoints. Must be non-empty.
  std::string dir;
  // Snapshot after every N committed epochs; 0 = only on demand.
  uint64_t checkpoint_every_n_epochs = 0;
  ReplayMode replay_mode = ReplayMode::kCompacted;
  // Epoch event log override. nullptr = the process-wide GPIVOT_EVENT_LOG
  // sink (ViewManager's default).
  obs::EventLog* event_log = nullptr;
  // Execution context for replay epochs and subsequent live epochs.
  ExecContext exec_context;

  // Reads GPIVOT_WAL_DIR and GPIVOT_CHECKPOINT_EVERY_N_EPOCHS. Unset vars
  // leave the defaults (empty dir = durability not requested); a set-but-
  // malformed cadence is InvalidArgument, never silently ignored.
  static Result<StorageOptions> FromEnv();
};

// One view to (re)establish at Open: compiled fresh, contents restored
// from the checkpoint when present there, else evaluated from the
// recovered base tables.
struct ViewDefinition {
  std::string name;
  PlanPtr query;
  ivm::RefreshStrategy strategy;
};

// What one Open did; also appended to the epoch event log as a single
// {"recovery": {...}} JSONL line.
struct RecoveryReport {
  bool used_checkpoint = false;   // false = first boot (no snapshot found)
  std::string checkpoint_file;    // the snapshot restored from
  uint64_t checkpoint_seq = 0;
  uint64_t skipped_checkpoints = 0;  // newer-but-corrupt files passed over
  uint64_t wal_entries_valid = 0;    // entries in the WAL's valid prefix
  uint64_t wal_entries_replayed = 0; // of those, entries past the snapshot
  uint64_t replay_rows_raw = 0;      // delta rows in the replayed entries
  uint64_t replay_rows_applied = 0;  // rows handed to replay epochs (net)
  uint64_t replay_epochs = 0;        // epochs run during replay
  uint64_t wal_torn_bytes = 0;       // truncated tail size (0 = clean)
  std::string wal_tail_error;        // why the tail was cut; empty = clean
  uint64_t epoch_seq = 0;            // manager seq after recovery

  std::string ToJsonLine() const;
};

// A ViewManager plus its durability machinery. Create only via Open; the
// returned object is pinned (the manager holds a pointer to it as its
// durability hook).
class DurableViewManager : public ivm::EpochDurabilityHook {
 public:
  // Recovers (or first-boots) from `options.dir`. `bootstrap` supplies the
  // base tables only when no checkpoint exists — a restored run takes its
  // catalog from the snapshot and only checks that the same table names
  // are present. Postcondition on success: the newest checkpoint on disk
  // equals the in-memory state, the WAL is empty, and the hook is armed.
  static Result<std::unique_ptr<DurableViewManager>> Open(
      Catalog bootstrap, std::vector<ViewDefinition> views,
      const StorageOptions& options);

  ~DurableViewManager() override;

  DurableViewManager(const DurableViewManager&) = delete;
  DurableViewManager& operator=(const DurableViewManager&) = delete;

  // The underlying manager: reads, audits, and epoch entry points (which
  // all flow through the armed hook). Hand this to a DeltaBatcher to get
  // durable batched ingest.
  ivm::ViewManager* manager() { return manager_.get(); }
  const ivm::ViewManager* manager() const { return manager_.get(); }

  Status ApplyUpdate(const ivm::SourceDeltas& deltas) {
    return manager_->ApplyUpdate(deltas);
  }
  Status BatchedApplyUpdate(const ivm::SourceDeltas& deltas) {
    return manager_->BatchedApplyUpdate(deltas);
  }

  // On-demand snapshot: writes a checkpoint at the current seq, resets the
  // WAL, prunes old snapshots. The cadence path calls this too.
  Status Checkpoint();

  const RecoveryReport& recovery_report() const { return report_; }
  const StorageOptions& options() const { return options_; }

  // EpochDurabilityHook:
  Status OnEpochAccepted(uint64_t seq, const std::string& entry,
                         const ivm::SourceDeltas& deltas) override;
  Status OnEpochResolved(uint64_t seq, bool committed) override;

 private:
  DurableViewManager() = default;

  // Builds CheckpointContents from the manager's current state, writes it
  // atomically, and prunes old snapshots (keeps the newest two). Does not
  // touch the WAL.
  Status WriteSnapshot();

  // Pushes the durability state /healthz watches (WAL offset + poisoned
  // flag, checkpoint age vs. cadence) into the runtime registry. No-op
  // unless the admin surface enabled it.
  void PublishRuntimeGauges() const;

  StorageOptions options_;
  std::unique_ptr<ivm::ViewManager> manager_;
  std::optional<WalWriter> wal_;
  uint64_t offset_before_append_ = 0;
  uint64_t epochs_since_checkpoint_ = 0;
  // Set when a rolled-back epoch's WAL entry could not be truncated AND the
  // covering checkpoint failed: the log now promises an epoch memory does
  // not have. Appending more entries would bury the inconsistency, so
  // epochs are rejected until a checkpoint succeeds.
  bool wal_poisoned_ = false;
  RecoveryReport report_;
};

// The WAL file name inside a storage directory.
std::string WalPath(const std::string& dir);

}  // namespace gpivot::storage

#endif  // GPIVOT_STORAGE_RECOVERY_H_
