#include "storage/inspect.h"

#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "storage/checkpoint.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace gpivot::storage {

namespace {

// Reads the first four bytes to classify the file; 0 when too short.
uint32_t FileMagic(const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok() || bytes->size() < 4) return 0;
  BinaryReader reader(*bytes);
  return reader.GetU32().value();
}

void InspectWalFile(const std::string& path, InspectReport* report) {
  report->text += StrCat("wal ", path, "\n");
  Result<WalContents> wal = ReadWal(path);
  if (!wal.ok()) {
    report->clean = false;
    report->text += StrCat("  UNREADABLE: ", wal.status().ToString(), "\n");
    return;
  }
  for (const WalEntry& entry : wal->entries) {
    std::string tables;
    std::map<std::string, const ivm::Delta*> sorted;
    for (const auto& [name, delta] : entry.deltas) {
      sorted.emplace(name, &delta);
    }
    for (const auto& [name, delta] : sorted) {
      tables += StrCat(" ", name, "(+", delta->inserts.num_rows(), " -",
                       delta->deletes.num_rows(), ")");
    }
    report->text += StrCat("  entry seq=", entry.seq, " tag=", entry.entry,
                           " rows=", entry.TotalRows(), tables, "\n");
  }
  report->text += StrCat("  entries=", wal->entries.size(),
                         " valid_bytes=", wal->valid_bytes);
  if (wal->torn_bytes > 0) {
    report->clean = false;
    report->text += StrCat(" TORN tail: ", wal->torn_bytes, " bytes (",
                           wal->tail_error, ")");
  } else {
    report->text += " tail=clean";
  }
  report->text += "\n";
}

void InspectCheckpointFile(const std::string& path, InspectReport* report) {
  report->text += StrCat("checkpoint ", path, "\n");
  Result<CheckpointContents> contents = ReadCheckpoint(path);
  if (!contents.ok()) {
    report->clean = false;
    report->text +=
        StrCat("  INVALID: ", contents.status().ToString(), "\n");
    return;
  }
  report->text += StrCat("  epoch_seq=", contents->epoch_seq, "\n");
  for (const auto& [name, table] : contents->base_tables) {
    report->text +=
        StrCat("  base ", name, ": ", table.num_rows(), " rows\n");
  }
  for (const auto& [name, table] : contents->view_tables) {
    report->text +=
        StrCat("  view ", name, ": ", table->num_rows(), " rows\n");
  }
}

Status InspectFile(const std::string& path, InspectReport* report) {
  switch (FileMagic(path)) {
    case kWalFileMagic:
      InspectWalFile(path, report);
      return Status::OK();
    case kCheckpointMagic:
      InspectCheckpointFile(path, report);
      return Status::OK();
    default:
      return Status::InvalidArgument(
          StrCat("'", path, "' is neither a WAL nor a checkpoint file"));
  }
}

}  // namespace

Result<InspectReport> Inspect(const std::string& path) {
  InspectReport report;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec) && !ec) {
    GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            ListDirFiles(path));
    size_t inspected = 0;
    for (const std::string& name : names) {
      const std::string full = StrCat(path, "/", name);
      // Only files this layer wrote; a directory may hold event logs,
      // bench output, leftover .tmp files from a torn checkpoint, etc.
      uint32_t magic = FileMagic(full);
      if (magic != kWalFileMagic && magic != kCheckpointMagic) continue;
      GPIVOT_RETURN_NOT_OK(InspectFile(full, &report));
      ++inspected;
    }
    report.text += StrCat("inspected ", inspected, " file(s) in ", path,
                          ": ", report.clean ? "clean" : "NOT CLEAN", "\n");
    return report;
  }
  if (!FileExists(path)) {
    return Status::NotFound(StrCat("'", path, "' does not exist"));
  }
  GPIVOT_RETURN_NOT_OK(InspectFile(path, &report));
  return report;
}

}  // namespace gpivot::storage
