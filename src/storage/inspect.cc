#include "storage/inspect.h"

#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "obs/json_util.h"
#include "storage/checkpoint.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace gpivot::storage {

namespace {

// Reads the first four bytes to classify the file; 0 when too short.
uint32_t FileMagic(const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok() || bytes->size() < 4) return 0;
  BinaryReader reader(*bytes);
  return reader.GetU32().value();
}

// Each helper appends human-readable lines to report->text and pushes one
// JSON object for the file onto `files_json`; Inspect assembles the final
// document.
void InspectWalFile(const std::string& path, InspectReport* report,
                    std::vector<std::string>* files_json) {
  report->text += StrCat("wal ", path, "\n");
  Result<WalContents> wal = ReadWal(path);
  if (!wal.ok()) {
    report->clean = false;
    report->text += StrCat("  UNREADABLE: ", wal.status().ToString(), "\n");
    files_json->push_back(StrCat(
        "{\"path\": ", obs::JsonQuote(path),
        ", \"kind\": \"wal\", \"clean\": false, \"error\": ",
        obs::JsonQuote(wal.status().ToString()), "}"));
    return;
  }
  std::string entries_json;
  for (const WalEntry& entry : wal->entries) {
    std::string tables;
    std::map<std::string, const ivm::Delta*> sorted;
    for (const auto& [name, delta] : entry.deltas) {
      sorted.emplace(name, &delta);
    }
    for (const auto& [name, delta] : sorted) {
      tables += StrCat(" ", name, "(+", delta->inserts.num_rows(), " -",
                       delta->deletes.num_rows(), ")");
    }
    report->text += StrCat("  entry seq=", entry.seq, " tag=", entry.entry,
                           " rows=", entry.TotalRows(), tables, "\n");
    entries_json += StrCat(entries_json.empty() ? "" : ", ",
                           "{\"seq\": ", entry.seq,
                           ", \"entry\": ", obs::JsonQuote(entry.entry),
                           ", \"rows\": ", entry.TotalRows(), "}");
  }
  report->text += StrCat("  entries=", wal->entries.size(),
                         " valid_bytes=", wal->valid_bytes);
  bool torn = wal->torn_bytes > 0;
  if (torn) {
    report->clean = false;
    report->text += StrCat(" TORN tail: ", wal->torn_bytes, " bytes (",
                           wal->tail_error, ")");
  } else {
    report->text += " tail=clean";
  }
  report->text += "\n";
  // valid_bytes doubles as the durable offset: everything below it
  // replays, everything past it is torn tail the writer will discard.
  files_json->push_back(StrCat(
      "{\"path\": ", obs::JsonQuote(path), ", \"kind\": \"wal\", \"clean\": ",
      torn ? "false" : "true", ", \"frames\": ", wal->entries.size(),
      ", \"valid_bytes\": ", wal->valid_bytes,
      ", \"durable_offset\": ", wal->valid_bytes,
      ", \"torn_bytes\": ", wal->torn_bytes,
      ", \"tail_error\": ", obs::JsonQuote(wal->tail_error),
      ", \"entries\": [", entries_json, "]}"));
}

void InspectCheckpointFile(const std::string& path, InspectReport* report,
                           std::vector<std::string>* files_json) {
  report->text += StrCat("checkpoint ", path, "\n");
  Result<CheckpointContents> contents = ReadCheckpoint(path);
  if (!contents.ok()) {
    report->clean = false;
    report->text +=
        StrCat("  INVALID: ", contents.status().ToString(), "\n");
    files_json->push_back(StrCat(
        "{\"path\": ", obs::JsonQuote(path),
        ", \"kind\": \"checkpoint\", \"clean\": false, \"error\": ",
        obs::JsonQuote(contents.status().ToString()), "}"));
    return;
  }
  report->text += StrCat("  epoch_seq=", contents->epoch_seq, "\n");
  std::string tables_json;
  for (const auto& [name, table] : contents->base_tables) {
    report->text +=
        StrCat("  base ", name, ": ", table.num_rows(), " rows\n");
    tables_json += StrCat(tables_json.empty() ? "" : ", ",
                          "{\"table\": ", obs::JsonQuote(name),
                          ", \"kind\": \"base\", \"rows\": ",
                          table.num_rows(), "}");
  }
  for (const auto& [name, table] : contents->view_tables) {
    report->text +=
        StrCat("  view ", name, ": ", table->num_rows(), " rows\n");
    tables_json += StrCat(tables_json.empty() ? "" : ", ",
                          "{\"table\": ", obs::JsonQuote(name),
                          ", \"kind\": \"view\", \"rows\": ",
                          table->num_rows(), "}");
  }
  files_json->push_back(StrCat(
      "{\"path\": ", obs::JsonQuote(path),
      ", \"kind\": \"checkpoint\", \"clean\": true, \"epoch_seq\": ",
      contents->epoch_seq, ", \"tables\": [", tables_json, "]}"));
}

Status InspectFile(const std::string& path, InspectReport* report,
                   std::vector<std::string>* files_json) {
  switch (FileMagic(path)) {
    case kWalFileMagic:
      InspectWalFile(path, report, files_json);
      return Status::OK();
    case kCheckpointMagic:
      InspectCheckpointFile(path, report, files_json);
      return Status::OK();
    default:
      return Status::InvalidArgument(
          StrCat("'", path, "' is neither a WAL nor a checkpoint file"));
  }
}

void FinalizeJson(InspectReport* report,
                  const std::vector<std::string>& files_json) {
  report->json = StrCat("{\"clean\": ", report->clean ? "true" : "false",
                        ", \"files\": [");
  for (size_t i = 0; i < files_json.size(); ++i) {
    report->json += StrCat(i == 0 ? "" : ", ", files_json[i]);
  }
  report->json += "]}";
}

}  // namespace

Result<InspectReport> Inspect(const std::string& path) {
  InspectReport report;
  std::vector<std::string> files_json;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec) && !ec) {
    GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            ListDirFiles(path));
    size_t inspected = 0;
    for (const std::string& name : names) {
      const std::string full = StrCat(path, "/", name);
      // Only files this layer wrote; a directory may hold event logs,
      // bench output, leftover .tmp files from a torn checkpoint, etc.
      uint32_t magic = FileMagic(full);
      if (magic != kWalFileMagic && magic != kCheckpointMagic) continue;
      GPIVOT_RETURN_NOT_OK(InspectFile(full, &report, &files_json));
      ++inspected;
    }
    report.text += StrCat("inspected ", inspected, " file(s) in ", path,
                          ": ", report.clean ? "clean" : "NOT CLEAN", "\n");
    FinalizeJson(&report, files_json);
    return report;
  }
  if (!FileExists(path)) {
    return Status::NotFound(StrCat("'", path, "' does not exist"));
  }
  GPIVOT_RETURN_NOT_OK(InspectFile(path, &report, &files_json));
  FinalizeJson(&report, files_json);
  return report;
}

}  // namespace gpivot::storage
