#ifndef GPIVOT_STORAGE_INSPECT_H_
#define GPIVOT_STORAGE_INSPECT_H_

#include <string>

#include "util/result.h"

namespace gpivot::storage {

// Offline inspection of durability artifacts, shared by the walinspect CLI
// and tests. One report per file; a directory reports every WAL /
// checkpoint file inside it.

struct InspectReport {
  // True when every inspected file verified clean: readable headers,
  // all checksums valid, and no torn WAL tail. A WAL left behind by a
  // crash legitimately has a torn tail — recovery repairs it — but an
  // artifact produced by a clean run must not, so --verify treats torn
  // bytes as failure.
  bool clean = true;
  std::string text;  // human-readable, one section per file
  // The same findings as one machine-readable JSON document:
  //   {"clean": bool, "files": [
  //     {"path", "kind": "wal", "clean", "frames", "valid_bytes",
  //      "durable_offset", "torn_bytes", "tail_error",
  //      "entries": [{"seq", "entry", "rows"}, ...]}
  //   | {"path", "kind": "checkpoint", "clean", "epoch_seq",
  //      "tables": [{"table", "kind": "base"|"view", "rows"}, ...]}
  //   | {"path", "kind", "clean": false, "error"} ]}
  // Consumed by `walinspect --json` and by anything that wants the WAL
  // verdict (durable offset, torn-tail diagnosis) without scraping text.
  std::string json;
};

// `path` is a WAL file, a checkpoint file (told apart by their magic), or
// a directory containing them. Fails only when `path` is missing or names
// a file of neither kind; corrupt contents are reported in the result,
// not as an error.
Result<InspectReport> Inspect(const std::string& path);

}  // namespace gpivot::storage

#endif  // GPIVOT_STORAGE_INSPECT_H_
