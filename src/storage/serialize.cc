#include "storage/serialize.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace gpivot::storage {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

// Hard ceiling on any single decoded collection (rows, columns, string
// bytes). A torn length field can claim 2^63 elements; a bounded decoder
// must refuse before reserving, not after. Checked against the remaining
// input, so legitimate large payloads still decode (every element costs at
// least one byte).
Status CheckCount(uint64_t count, size_t remaining, const char* what) {
  if (count > remaining) {
    return Status::InvalidArgument(
        StrCat("decode: ", what, " count ", count,
               " exceeds remaining input (", remaining, " bytes)"));
  }
  return Status::OK();
}

}  // namespace

void BinaryWriter::PutU8(uint8_t v) {
  buffer_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(bytes, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(bytes, 8);
}

void BinaryWriter::PutDouble(double v) {
  PutU64(std::bit_cast<uint64_t>(v));
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s.data(), s.size());
}

Result<uint8_t> BinaryReader::GetU8() {
  if (remaining() < 1) {
    return Status::InvalidArgument("decode: input exhausted reading u8");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::GetU32() {
  if (remaining() < 4) {
    return Status::InvalidArgument("decode: input exhausted reading u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  if (remaining() < 8) {
    return Status::InvalidArgument("decode: input exhausted reading u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> BinaryReader::GetDouble() {
  GPIVOT_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  return std::bit_cast<double>(bits);
}

Result<std::string> BinaryReader::GetString() {
  GPIVOT_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  GPIVOT_RETURN_NOT_OK(CheckCount(len, remaining(), "string byte"));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

void EncodeValue(const Value& value, BinaryWriter* out) {
  if (value.is_null()) {
    out->PutU8(kTagNull);
  } else if (value.is_int()) {
    out->PutU8(kTagInt);
    out->PutU64(static_cast<uint64_t>(value.AsInt()));
  } else if (value.is_double()) {
    out->PutU8(kTagDouble);
    out->PutDouble(value.AsDouble());
  } else {
    out->PutU8(kTagString);
    out->PutString(value.AsString());
  }
}

Result<Value> DecodeValue(BinaryReader* in) {
  GPIVOT_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInt: {
      GPIVOT_ASSIGN_OR_RETURN(uint64_t bits, in->GetU64());
      return Value::Int(static_cast<int64_t>(bits));
    }
    case kTagDouble: {
      GPIVOT_ASSIGN_OR_RETURN(double v, in->GetDouble());
      return Value::Real(v);
    }
    case kTagString: {
      GPIVOT_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value::Str(std::move(s));
    }
    default:
      return Status::InvalidArgument(
          StrCat("decode: unknown value tag ", static_cast<int>(tag)));
  }
}

void EncodeRow(const Row& row, BinaryWriter* out) {
  out->PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& value : row) EncodeValue(value, out);
}

Result<Row> DecodeRow(BinaryReader* in) {
  GPIVOT_ASSIGN_OR_RETURN(uint32_t arity, in->GetU32());
  GPIVOT_RETURN_NOT_OK(CheckCount(arity, in->remaining(), "row value"));
  Row row;
  row.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    GPIVOT_ASSIGN_OR_RETURN(Value value, DecodeValue(in));
    row.push_back(std::move(value));
  }
  return row;
}

void EncodeSchema(const Schema& schema, BinaryWriter* out) {
  out->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& column : schema.columns()) {
    out->PutString(column.name);
    out->PutU8(static_cast<uint8_t>(column.type));
  }
}

Result<Schema> DecodeSchema(BinaryReader* in) {
  GPIVOT_ASSIGN_OR_RETURN(uint32_t ncols, in->GetU32());
  GPIVOT_RETURN_NOT_OK(CheckCount(ncols, in->remaining(), "column"));
  std::vector<Column> columns;
  columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    GPIVOT_ASSIGN_OR_RETURN(std::string name, in->GetString());
    GPIVOT_ASSIGN_OR_RETURN(uint8_t type, in->GetU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::InvalidArgument(
          StrCat("decode: unknown column type tag ", static_cast<int>(type)));
    }
    columns.push_back(Column{std::move(name), static_cast<DataType>(type)});
  }
  return Schema(std::move(columns));
}

void EncodeTable(const Table& table, BinaryWriter* out) {
  EncodeSchema(table.schema(), out);
  out->PutU32(static_cast<uint32_t>(table.key().size()));
  for (const std::string& key_column : table.key()) out->PutString(key_column);
  out->PutU64(table.num_rows());
  const size_t ncols = table.schema().num_columns();
  const size_t nrows = table.num_rows();
  // Columnar fast path: when the table's column cache is already warm (hot
  // views right after vectorized execution), encode cells from the typed
  // column storage — the per-column kind is hoisted out of the cell loop —
  // instead of re-dispatching on every Value's tag. Emitted bytes are
  // identical to the row loop: same per-row arity prefix, same value tags,
  // same order. A cold cache never builds columns just to encode; rows
  // whose arity disagrees with the schema also stay on the row loop so the
  // wire bytes match exactly.
  if (nrows > 0 && ncols > 0) {
    std::vector<std::shared_ptr<const ColumnVector>> cols(ncols);
    bool warm = true;
    for (size_t c = 0; c < ncols && warm; ++c) {
      cols[c] = table.CachedColumnData(c);
      if (cols[c] == nullptr) warm = false;
    }
    for (size_t r = 0; r < nrows && warm; ++r) {
      warm = table.RowAt(r).size() == ncols;
    }
    if (warm) {
      for (size_t r = 0; r < nrows; ++r) {
        out->PutU32(static_cast<uint32_t>(ncols));
        for (size_t c = 0; c < ncols; ++c) {
          const ColumnVector& col = *cols[c];
          if (col.IsNull(r)) {
            out->PutU8(kTagNull);
            continue;
          }
          switch (col.kind()) {
            case ColumnKind::kInt64:
              out->PutU8(kTagInt);
              out->PutU64(static_cast<uint64_t>(col.Int64At(r)));
              break;
            case ColumnKind::kDouble:
              out->PutU8(kTagDouble);
              out->PutDouble(col.DoubleAt(r));
              break;
            case ColumnKind::kString:
              out->PutU8(kTagString);
              out->PutString(col.StringAt(r));
              break;
            default:  // kMixed (kAllNull cells are caught by IsNull above)
              EncodeValue(col.At(r), out);
              break;
          }
        }
      }
      return;
    }
  }
  for (const Row& row : table.rows()) EncodeRow(row, out);
}

Result<Table> DecodeTable(BinaryReader* in) {
  GPIVOT_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(in));
  GPIVOT_ASSIGN_OR_RETURN(uint32_t nkey, in->GetU32());
  GPIVOT_RETURN_NOT_OK(CheckCount(nkey, in->remaining(), "key column"));
  std::vector<std::string> key;
  key.reserve(nkey);
  for (uint32_t i = 0; i < nkey; ++i) {
    GPIVOT_ASSIGN_OR_RETURN(std::string name, in->GetString());
    key.push_back(std::move(name));
  }
  GPIVOT_ASSIGN_OR_RETURN(uint64_t nrows, in->GetU64());
  GPIVOT_RETURN_NOT_OK(CheckCount(nrows, in->remaining(), "row"));
  size_t arity = schema.num_columns();
  Table table(std::move(schema));
  for (uint64_t i = 0; i < nrows; ++i) {
    GPIVOT_ASSIGN_OR_RETURN(Row row, DecodeRow(in));
    if (row.size() != arity) {
      return Status::InvalidArgument(
          StrCat("decode: row arity ", row.size(),
                 " does not match schema (", arity, " columns)"));
    }
    table.AddRow(std::move(row));
  }
  if (!key.empty()) {
    GPIVOT_RETURN_NOT_OK(table.SetKey(std::move(key)));
  }
  return table;
}

void EncodeDelta(const ivm::Delta& delta, BinaryWriter* out) {
  EncodeTable(delta.inserts, out);
  EncodeTable(delta.deletes, out);
}

Result<ivm::Delta> DecodeDelta(BinaryReader* in) {
  GPIVOT_ASSIGN_OR_RETURN(Table inserts, DecodeTable(in));
  GPIVOT_ASSIGN_OR_RETURN(Table deletes, DecodeTable(in));
  return ivm::Delta{std::move(inserts), std::move(deletes)};
}

void EncodeSourceDeltas(const ivm::SourceDeltas& deltas, BinaryWriter* out) {
  // Canonical order: an unordered_map has none, the wire format must.
  std::map<std::string, const ivm::Delta*> sorted;
  for (const auto& [name, delta] : deltas) sorted.emplace(name, &delta);
  out->PutU32(static_cast<uint32_t>(sorted.size()));
  for (const auto& [name, delta] : sorted) {
    out->PutString(name);
    EncodeDelta(*delta, out);
  }
}

Result<ivm::SourceDeltas> DecodeSourceDeltas(BinaryReader* in) {
  GPIVOT_ASSIGN_OR_RETURN(uint32_t ntables, in->GetU32());
  GPIVOT_RETURN_NOT_OK(CheckCount(ntables, in->remaining(), "delta table"));
  ivm::SourceDeltas deltas;
  deltas.reserve(ntables);
  for (uint32_t i = 0; i < ntables; ++i) {
    GPIVOT_ASSIGN_OR_RETURN(std::string name, in->GetString());
    GPIVOT_ASSIGN_OR_RETURN(ivm::Delta delta, DecodeDelta(in));
    if (!deltas.emplace(std::move(name), std::move(delta)).second) {
      return Status::InvalidArgument("decode: duplicate table in SourceDeltas");
    }
  }
  return deltas;
}

std::string EncodeTableToString(const Table& table) {
  BinaryWriter writer;
  EncodeTable(table, &writer);
  return writer.Take();
}

}  // namespace gpivot::storage
