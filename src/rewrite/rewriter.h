#ifndef GPIVOT_REWRITE_REWRITER_H_
#define GPIVOT_REWRITE_REWRITER_H_

#include "algebra/plan.h"
#include "util/result.h"

namespace gpivot::rewrite {

// Shape of the rewritten view query's top, which selects the apply-phase
// propagation rules (§6):
enum class TopShape {
  // GPIVOT is the top operator: update propagation rules, Fig. 23.
  kGPivotTop,
  // σ directly above a GPIVOT (deliberately kept paired, §6.3.2):
  // combined SELECT/GPIVOT update rules, Fig. 29.
  kSelectOverGPivotTop,
  // GPIVOT directly above a GROUPBY: combined GPIVOT/GROUPBY update rules,
  // Fig. 27.
  kGPivotOverGroupByTop,
  // Anything else: generic insert/delete propagation (Fig. 22 for any
  // remaining intermediate pivots).
  kOther,
};

const char* TopShapeToString(TopShape shape);

struct RewriteOutcome {
  PlanPtr plan;
  TopShape top_shape = TopShape::kOther;
  int pivots_pulled = 0;     // applications of §5.1 pullup rules
  int pivots_combined = 0;   // applications of Eq. 5 / Eq. 6
  int pivots_cancelled = 0;  // applications of Eq. 9 / Eq. 12
};

// §3 step 1: pulls GPIVOT operators toward the top of the query tree,
// combining adjacent pivots along the way, so that the maintenance planner
// can use update propagation rules instead of insert/delete rules. A σ over
// pivoted cells is left paired directly above its GPIVOT (§6.3.2) rather
// than pushed down into multiple self-joins.
Result<RewriteOutcome> PullUpPivots(const PlanPtr& plan);

// Classifies what the maintenance planner should do with `plan`'s top.
TopShape ClassifyTopShape(const PlanPtr& plan);

// Rebuilds `node` with new children (same kind/parameters).
Result<PlanPtr> RebuildWithChildren(const PlanPtr& node,
                                    std::vector<PlanPtr> children);

}  // namespace gpivot::rewrite

#endif  // GPIVOT_REWRITE_REWRITER_H_
