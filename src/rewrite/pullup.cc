#include <unordered_map>
#include <unordered_set>

#include "rewrite/rules.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::rewrite {

namespace {

std::unordered_set<std::string> ToSet(const std::vector<std::string>& names) {
  return std::unordered_set<std::string>(names.begin(), names.end());
}

}  // namespace

Result<PlanPtr> PullPivotThroughSelect(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kSelect) {
    return Status::NotApplicable("needs σ(GPIVOT(V))");
  }
  const auto* select = static_cast<const SelectNode*>(plan.get());
  if (!IsGPivot(select->child())) {
    return Status::NotApplicable("needs σ(GPIVOT(V))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(select->child().get());
  if (pivot->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }

  // The condition must reference only non-pivoted (key) columns (Fig. 9's
  // σ_{Country='USA'} case); those exist unchanged below the pivot.
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key, pivot->OutputKey());
  if (!ExprOnlyReferences(select->predicate(), key)) {
    return Status::NotApplicable(
        "σ references pivoted cells; Eq.7 (PushSelectBelowPivot) applies");
  }
  return MakeGPivot(MakeSelect(pivot->child(), select->predicate()),
                    pivot->spec());
}

Result<PlanPtr> PushSelectBelowPivot(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kSelect) {
    return Status::NotApplicable("needs σ(GPIVOT(V))");
  }
  const auto* select = static_cast<const SelectNode*>(plan.get());
  if (!IsGPivot(select->child())) {
    return Status::NotApplicable("needs σ(GPIVOT(V))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(select->child().get());
  const PivotSpec& spec = pivot->spec();
  if (spec.keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }
  if (!select->predicate()->IsNullIntolerant()) {
    return Status::NotApplicable("Eq.7 requires a null-intolerant condition");
  }

  // All referenced columns must be pivoted cells with a single shared
  // dimension prefix (the "i1 = i2" same-prefix case of Eq. 7, which avoids
  // the extra self-join).
  std::vector<std::string> referenced = ReferencedColumns(select->predicate());
  if (referenced.empty()) {
    return Status::NotApplicable("condition references no columns");
  }
  std::unordered_map<std::string, size_t> cell_to_combo;
  std::unordered_map<std::string, std::string> cell_to_measure;
  for (size_t c = 0; c < spec.num_combos(); ++c) {
    for (size_t b = 0; b < spec.num_measures(); ++b) {
      cell_to_combo[spec.OutputColumnName(c, b)] = c;
      cell_to_measure[spec.OutputColumnName(c, b)] = spec.pivot_on[b];
    }
  }
  std::optional<size_t> shared_combo;
  bool multi_prefix = false;
  for (const std::string& name : referenced) {
    auto it = cell_to_combo.find(name);
    if (it == cell_to_combo.end()) {
      return Status::NotApplicable(
          StrCat("column '", name, "' is not a pivoted cell"));
    }
    if (shared_combo.has_value() && *shared_combo != it->second) {
      multi_prefix = true;
    }
    shared_combo = it->second;
  }

  if (multi_prefix) {
    // Eq. 7's general form: a comparison across two prefixes becomes a
    // self-join. Supported shape: one comparison `cell1 op cell2` with
    // cell1, cell2 under different combos.
    if (select->predicate()->kind() != ExprKind::kComparison ||
        referenced.size() != 2) {
      return Status::NotApplicable(
          "general Eq. 7 handles a single two-cell comparison");
    }
    const auto* cmp =
        static_cast<const ComparisonExpr*>(select->predicate().get());
    if (cmp->left()->kind() != ExprKind::kColumnRef ||
        cmp->right()->kind() != ExprKind::kColumnRef) {
      return Status::NotApplicable(
          "general Eq. 7 handles a plain cell-to-cell comparison");
    }
    const std::string& cell1 =
        static_cast<const ColumnRefExpr*>(cmp->left().get())->name();
    const std::string& cell2 =
        static_cast<const ColumnRefExpr*>(cmp->right().get())->name();
    size_t combo1 = cell_to_combo.at(cell1);
    size_t combo2 = cell_to_combo.at(cell2);

    GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key,
                            pivot->OutputKey());
    auto combo_select = [&](size_t c) {
      std::vector<ExprPtr> conjuncts;
      for (size_t d = 0; d < spec.pivot_by.size(); ++d) {
        conjuncts.push_back(
            Eq(Col(spec.pivot_by[d]), Lit(spec.combos[c][d])));
      }
      return MakeSelect(pivot->child(), And(std::move(conjuncts)));
    };
    // σ_{A=combo1}(V) ⋈_{K1=K2 ∧ B1 op B2} σ_{A=combo2}(V): the right side
    // is renamed with a "__rhs" suffix so the equi-join can pair K with
    // K__rhs and the residual can compare the two measure columns.
    GPIVOT_ASSIGN_OR_RETURN(Schema child_schema,
                            pivot->child()->OutputSchema());
    std::vector<MapNode::Output> renames;
    for (const Column& c : child_schema.columns()) {
      renames.emplace_back(c.name + "__rhs", Col(c.name));
    }
    PlanPtr rhs = MakeMap(combo_select(combo2), std::move(renames));
    std::vector<std::string> rhs_keys;
    for (const std::string& k : key) rhs_keys.push_back(k + "__rhs");
    ExprPtr residual = Cmp(cmp->op(), Col(cell_to_measure.at(cell1)),
                           Col(cell_to_measure.at(cell2) + "__rhs"));
    PlanPtr self_join =
        MakeJoin(combo_select(combo1), std::move(rhs), key, rhs_keys,
                 std::move(residual));
    PlanPtr qualifying = MakeProject(std::move(self_join), key);
    PlanPtr restricted = MakeJoin(std::move(qualifying), pivot->child(), key);
    return MakeGPivot(std::move(restricted), spec);
  }

  // Rewrite the condition over the pivot input: each cell a..**B becomes the
  // measure column B, guarded by (A1..Am) = combo.
  struct Rewriter {
    const std::unordered_map<std::string, std::string>* cell_to_measure;
    ExprPtr operator()(const ExprPtr& e) const {
      switch (e->kind()) {
        case ExprKind::kColumnRef: {
          const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
          auto it = cell_to_measure->find(ref->name());
          GPIVOT_CHECK(it != cell_to_measure->end())
              << "unmapped cell " << ref->name();
          return Col(it->second);
        }
        case ExprKind::kLiteral:
          return e;
        case ExprKind::kComparison: {
          const auto* c = static_cast<const ComparisonExpr*>(e.get());
          return Cmp(c->op(), (*this)(c->left()), (*this)(c->right()));
        }
        case ExprKind::kBoolOp: {
          const auto* b = static_cast<const BoolOpExpr*>(e.get());
          std::vector<ExprPtr> operands;
          for (const ExprPtr& op : b->operands()) operands.push_back((*this)(op));
          return b->op() == BoolOpKind::kAnd ? And(std::move(operands))
                                             : Or(std::move(operands));
        }
        case ExprKind::kNot:
          return Not((*this)(static_cast<const NotExpr*>(e.get())->operand()));
        case ExprKind::kArith: {
          const auto* a = static_cast<const ArithExpr*>(e.get());
          return std::make_shared<ArithExpr>(a->op(), (*this)(a->left()),
                                             (*this)(a->right()));
        }
        default:
          GPIVOT_CHECK(false) << "unsupported expression in Eq.7 rewrite";
          return e;
      }
    }
  };
  Rewriter rewriter{&cell_to_measure};
  ExprPtr base_condition = rewriter(select->predicate());
  std::vector<ExprPtr> conjuncts;
  const Row& combo = spec.combos[*shared_combo];
  for (size_t d = 0; d < spec.pivot_by.size(); ++d) {
    conjuncts.push_back(Eq(Col(spec.pivot_by[d]), Lit(combo[d])));
  }
  conjuncts.push_back(std::move(base_condition));

  // GPIVOT(π_K(σ_{A=a ∧ cond}(V)) ⋈ V)
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key, pivot->OutputKey());
  PlanPtr qualifying_keys = MakeProject(
      MakeSelect(pivot->child(), And(std::move(conjuncts))), key);
  PlanPtr restricted = MakeJoin(std::move(qualifying_keys), pivot->child(), key);
  return MakeGPivot(std::move(restricted), spec);
}

Result<PlanPtr> PullPivotThroughProject(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kProject) {
    return Status::NotApplicable("needs π(GPIVOT(V))");
  }
  const auto* project = static_cast<const ProjectNode*>(plan.get());
  if (!IsGPivot(project->child())) {
    return Status::NotApplicable("needs π(GPIVOT(V))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(project->child().get());
  if (pivot->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }

  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> kept,
                          project->KeptColumns());
  std::unordered_set<std::string> kept_set = ToSet(kept);
  // All pivoted cells must survive (§5.1.2: dropping a cell changes which
  // all-⊥ rows exist, so it does not commute).
  std::vector<std::string> cells = PivotCellNames(*pivot);
  for (const std::string& cell : cells) {
    if (kept_set.count(cell) == 0) {
      return Status::NotApplicable(
          "π drops pivoted cells; insert/delete rules required (§5.1.2)");
    }
  }
  // Dropping non-pivoted columns is legal only when a key still remains
  // afterwards (Fig. 8 prerequisite). The surviving functional key of the
  // pivot output is the child's declared key minus the pivot dimensions
  // (e.g. dropping 'Country' in Fig. 9 would kill it); when the child has
  // no declared key, the full K must survive.
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> child_key,
                          pivot->child()->OutputKey());
  std::vector<std::string> required;
  if (child_key.empty()) {
    GPIVOT_ASSIGN_OR_RETURN(required, pivot->OutputKey());
  } else {
    std::unordered_set<std::string> dims(pivot->spec().pivot_by.begin(),
                                         pivot->spec().pivot_by.end());
    for (const std::string& name : child_key) {
      if (dims.count(name) == 0) required.push_back(name);
    }
  }
  for (const std::string& k : required) {
    if (kept_set.count(k) == 0) {
      return Status::NotApplicable(
          "π drops key columns; key not preserved (Fig. 8)");
    }
  }
  // Dropped columns are non-key, non-cell key-side columns: drop them below.
  std::vector<std::string> dropped;
  GPIVOT_ASSIGN_OR_RETURN(Schema pivot_schema, pivot->OutputSchema());
  for (const Column& c : pivot_schema.columns()) {
    if (kept_set.count(c.name) == 0) dropped.push_back(c.name);
  }
  if (dropped.empty()) {
    // Nothing is actually dropped; the π is at most a reordering of the
    // pivot output, which the pivot's canonical ordering already provides.
    return project->child();
  }
  return MakeGPivot(MakeDrop(pivot->child(), dropped), pivot->spec());
}

Result<PlanPtr> PullPivotThroughJoin(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kJoin) {
    return Status::NotApplicable("needs GPIVOT(A) ⋈ B");
  }
  const auto* join = static_cast<const JoinNode*>(plan.get());

  const bool pivot_on_left = IsGPivot(join->left());
  const bool pivot_on_right = IsGPivot(join->right());
  if (pivot_on_left == pivot_on_right) {
    return Status::NotApplicable("needs exactly one GPIVOT join side");
  }

  const auto* pivot = static_cast<const GPivotNode*>(
      (pivot_on_left ? join->left() : join->right()).get());
  if (pivot->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }
  const PlanPtr& other = pivot_on_left ? join->right() : join->left();
  const std::vector<std::string>& pivot_side_keys =
      pivot_on_left ? join->left_keys() : join->right_keys();
  const std::vector<std::string>& other_side_keys =
      pivot_on_left ? join->right_keys() : join->left_keys();

  // Join condition must avoid the pivoted cells (§5.1.3).
  std::unordered_set<std::string> cells = ToSet(PivotCellNames(*pivot));
  for (const std::string& name : pivot_side_keys) {
    if (cells.count(name) > 0) {
      return Status::NotApplicable(
          "join condition on pivoted cells (§5.1.3 multi-self-join case)");
    }
  }
  if (join->residual() != nullptr) {
    for (const std::string& name : ReferencedColumns(join->residual())) {
      if (cells.count(name) > 0) {
        return Status::NotApplicable(
            "residual condition on pivoted cells (§5.1.3)");
      }
    }
  }
  // Both operands must preserve a key for the pulled-up pivot's output to
  // have one (Fig. 8).
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> join_key,
                          join->OutputKey());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> other_key,
                          other->OutputKey());
  if (join_key.empty() || other_key.empty()) {
    return Status::NotApplicable("join does not preserve a key (Fig. 8)");
  }

  // GPIVOT(A) ⋈ B = GPIVOT(A ⋈ B). The join below keeps the same key
  // pairing; when the pivot was on the right, the sides swap so the pivot
  // input columns come first — the pivot result is identical because K is
  // recomputed from the new child schema (column order within K differs,
  // which is a pure relabeling the maintenance layer tolerates).
  PlanPtr new_join =
      pivot_on_left
          ? MakeJoin(pivot->child(), other, pivot_side_keys, other_side_keys,
                     join->residual())
          : MakeJoin(other, pivot->child(), other_side_keys, pivot_side_keys,
                     join->residual());
  return MakeGPivot(std::move(new_join), pivot->spec());
}

Result<PlanPtr> PullSelectPivotPairThroughJoin(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kJoin) {
    return Status::NotApplicable("needs σ(GPIVOT(A)) ⋈ B");
  }
  const auto* join = static_cast<const JoinNode*>(plan.get());

  auto is_pair = [](const PlanPtr& side) {
    if (side->kind() != PlanKind::kSelect) return false;
    return IsGPivot(static_cast<const SelectNode*>(side.get())->child());
  };
  const bool pair_on_left = is_pair(join->left());
  const bool pair_on_right = !pair_on_left && is_pair(join->right());
  if (!pair_on_left && !pair_on_right) {
    return Status::NotApplicable("needs a σ∘GPIVOT pair on one join side");
  }
  const auto* select = static_cast<const SelectNode*>(
      (pair_on_left ? join->left() : join->right()).get());
  const auto* pivot = static_cast<const GPivotNode*>(select->child().get());

  // The pair is only kept together when the σ touches pivoted cells;
  // key-only conditions should have been pushed below the pivot already.
  std::unordered_set<std::string> cells = ToSet(PivotCellNames(*pivot));
  bool touches_cells = false;
  for (const std::string& name : ReferencedColumns(select->predicate())) {
    if (cells.count(name) > 0) touches_cells = true;
  }
  if (!touches_cells) {
    return Status::NotApplicable("σ does not touch pivoted cells");
  }

  // Reuse the plain pivot-through-join rule on the join without the σ.
  PlanPtr bare_join =
      pair_on_left
          ? MakeJoin(select->child(), join->right(), join->left_keys(),
                     join->right_keys(), join->residual())
          : MakeJoin(join->left(), select->child(), join->left_keys(),
                     join->right_keys(), join->residual());
  GPIVOT_ASSIGN_OR_RETURN(PlanPtr pulled, PullPivotThroughJoin(bare_join));
  return MakeSelect(std::move(pulled), select->predicate());
}

Result<PlanPtr> PullPivotThroughGroupBy(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kGroupBy) {
    return Status::NotApplicable("needs F(GPIVOT(V))");
  }
  const auto* groupby = static_cast<const GroupByNode*>(plan.get());
  if (!IsGPivot(groupby->child())) {
    return Status::NotApplicable("needs F(GPIVOT(V))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(groupby->child().get());
  const PivotSpec& spec = pivot->spec();
  if (spec.keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }

  // Group-by columns must be key columns of the pivot output. Grouping on a
  // pivoted cell is the Fig. 10 non-pullable case.
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> pivot_key,
                          pivot->OutputKey());
  std::unordered_set<std::string> key_set = ToSet(pivot_key);
  for (const std::string& g : groupby->group_columns()) {
    if (key_set.count(g) == 0) {
      return Status::NotApplicable(
          "group-by over pivoted cells cannot be pulled through (Fig. 10)");
    }
  }

  // Aggregates: exactly one per pivoted cell, named in place, one function
  // per measure across all combos (Eq. 8's uniform f).
  std::unordered_map<std::string, const AggSpec*> by_input;
  for (const AggSpec& agg : groupby->aggregates()) {
    if (agg.func == AggFunc::kCountStar) {
      return Status::NotApplicable(
          "COUNT(*) above a pivot is not a per-cell aggregate (Eq. 8)");
    }
    if (agg.output != agg.input) {
      return Status::NotApplicable(
          "Eq.8 pullup requires in-place aggregate naming");
    }
    if (!by_input.emplace(agg.input, &agg).second) {
      return Status::NotApplicable("duplicate aggregate input");
    }
  }
  std::vector<AggFunc> measure_func(spec.num_measures());
  for (size_t b = 0; b < spec.num_measures(); ++b) {
    std::optional<AggFunc> func;
    for (size_t c = 0; c < spec.num_combos(); ++c) {
      auto it = by_input.find(spec.OutputColumnName(c, b));
      if (it == by_input.end()) {
        return Status::NotApplicable(
            StrCat("cell '", spec.OutputColumnName(c, b),
                   "' is not aggregated (Eq. 8 needs full coverage)"));
      }
      if (func.has_value() && *func != it->second->func) {
        return Status::NotApplicable(
            "Eq.8 needs one aggregate function per measure");
      }
      func = it->second->func;
    }
    measure_func[b] = *func;
  }
  if (by_input.size() != spec.num_combos() * spec.num_measures()) {
    return Status::NotApplicable("aggregates over non-cell columns");
  }

  // Inner F: group by (K' ∪ A1..Am), aggregate each measure in place.
  std::vector<std::string> inner_groups = groupby->group_columns();
  inner_groups.insert(inner_groups.end(), spec.pivot_by.begin(),
                      spec.pivot_by.end());
  std::vector<AggSpec> inner_aggs;
  for (size_t b = 0; b < spec.num_measures(); ++b) {
    inner_aggs.push_back({measure_func[b], spec.pivot_on[b], spec.pivot_on[b]});
  }
  return MakeGPivot(
      MakeGroupBy(pivot->child(), std::move(inner_groups),
                  std::move(inner_aggs)),
      spec);
}

Result<PlanPtr> CancelUnpivotOfPivot(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs GUNPIVOT(GPIVOT(V))");
  }
  const auto* unpivot = static_cast<const GUnpivotNode*>(plan.get());
  if (!IsGPivot(unpivot->child())) {
    return Status::NotApplicable("needs GUNPIVOT(GPIVOT(V))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(unpivot->child().get());
  if (pivot->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }
  if (!(unpivot->spec() == UnpivotSpec::InverseOf(pivot->spec()))) {
    return Status::NotApplicable(
        "GUNPIVOT is not the exact inverse of the GPIVOT (Eq. 9)");
  }
  // σ_s(V) restricted to listed combos, reordered to the unpivot's output
  // column order (K, A1..Am, B1..Bn).
  GPIVOT_ASSIGN_OR_RETURN(Schema out_schema, plan->OutputSchema());
  PlanPtr selected =
      MakeSelect(pivot->child(), ComboDisjunction(pivot->spec()));
  return MakeProject(std::move(selected), out_schema.ColumnNames());
}

Result<PlanPtr> SwapUnpivotBelowPivot(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs GUNPIVOT(GPIVOT(V))");
  }
  const auto* unpivot = static_cast<const GUnpivotNode*>(plan.get());
  if (!IsGPivot(unpivot->child())) {
    return Status::NotApplicable("needs GUNPIVOT(GPIVOT(V))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(unpivot->child().get());
  if (pivot->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }

  // Eq. 10 precondition: the unpivot consumes only key-side columns of the
  // pivot output (no parameter overlap).
  std::unordered_set<std::string> cells = ToSet(PivotCellNames(*pivot));
  for (const std::string& name : unpivot->spec().AllSourceColumns()) {
    if (cells.count(name) > 0) {
      return Status::NotApplicable(
          "GUNPIVOT consumes pivoted cells (Eq. 9/partial-overlap case)");
    }
  }
  GPIVOT_ASSIGN_OR_RETURN(Schema out_schema, plan->OutputSchema());
  PlanPtr swapped =
      MakeGPivot(MakeGUnpivot(pivot->child(), unpivot->spec()), pivot->spec());
  // Reorder to the original output column order.
  return MakeProject(std::move(swapped), out_schema.ColumnNames());
}

}  // namespace gpivot::rewrite
