#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "rewrite/rules.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::rewrite {

namespace {

std::unordered_set<std::string> ToSet(const std::vector<std::string>& names) {
  return std::unordered_set<std::string>(names.begin(), names.end());
}

// Splits a conjunctive predicate into (column op literal) atoms, exactly as
// in pushdown.cc but local to the GUNPIVOT rules.
struct UnpivotAtom {
  std::string column;
  CompareOp op;
  Value literal;
};

std::optional<std::vector<UnpivotAtom>> DecomposeConjunction(
    const ExprPtr& expr) {
  std::vector<UnpivotAtom> atoms;
  std::vector<ExprPtr> pending = {expr};
  while (!pending.empty()) {
    ExprPtr e = pending.back();
    pending.pop_back();
    if (e->kind() == ExprKind::kBoolOp) {
      const auto* b = static_cast<const BoolOpExpr*>(e.get());
      if (b->op() != BoolOpKind::kAnd) return std::nullopt;
      for (const ExprPtr& op : b->operands()) pending.push_back(op);
      continue;
    }
    if (e->kind() != ExprKind::kComparison) return std::nullopt;
    const auto* c = static_cast<const ComparisonExpr*>(e.get());
    if (c->left()->kind() != ExprKind::kColumnRef ||
        c->right()->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    atoms.push_back(
        {static_cast<const ColumnRefExpr*>(c->left().get())->name(), c->op(),
         static_cast<const LiteralExpr*>(c->right().get())->value()});
  }
  return atoms;
}

bool EvalAtomStatic(const UnpivotAtom& atom, const Value& value) {
  if (value.is_null() || atom.literal.is_null()) return false;
  switch (atom.op) {
    case CompareOp::kEq:
      return value == atom.literal;
    case CompareOp::kNe:
      return value != atom.literal;
    case CompareOp::kLt:
      return value < atom.literal;
    case CompareOp::kLe:
      return value < atom.literal || value == atom.literal;
    case CompareOp::kGt:
      return atom.literal < value;
    case CompareOp::kGe:
      return atom.literal < value || value == atom.literal;
  }
  return false;
}

}  // namespace

Result<PlanPtr> PushSelectBelowUnpivot(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kSelect) {
    return Status::NotApplicable("needs σ(GUNPIVOT(H))");
  }
  const auto* select = static_cast<const SelectNode*>(plan.get());
  if (select->child()->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs σ(GUNPIVOT(H))");
  }
  const auto* unpivot =
      static_cast<const GUnpivotNode*>(select->child().get());
  const UnpivotSpec& spec = unpivot->spec();
  const PlanPtr& base = unpivot->child();

  GPIVOT_ASSIGN_OR_RETURN(Schema base_schema, base->OutputSchema());
  std::unordered_set<std::string> source_set = ToSet(spec.AllSourceColumns());
  std::vector<std::string> key_names;
  for (const Column& c : base_schema.columns()) {
    if (source_set.count(c.name) == 0) key_names.push_back(c.name);
  }

  // Non-unpivoted condition commutes unchanged (Fig. 16, σ_Country case).
  if (ExprOnlyReferences(select->predicate(), key_names)) {
    return MakeGUnpivot(MakeSelect(base, select->predicate()), spec);
  }

  auto atoms_opt = DecomposeConjunction(select->predicate());
  if (!atoms_opt.has_value()) {
    return Status::NotApplicable(
        "Eq.13 handles conjunctions of column-literal comparisons");
  }

  std::unordered_map<std::string, size_t> name_index;
  for (size_t d = 0; d < spec.name_columns.size(); ++d) {
    name_index[spec.name_columns[d]] = d;
  }
  std::unordered_map<std::string, size_t> value_index;
  for (size_t q = 0; q < spec.value_columns.size(); ++q) {
    value_index[spec.value_columns[q]] = q;
  }
  std::unordered_set<std::string> key_set = ToSet(key_names);

  std::vector<UnpivotAtom> key_atoms;
  std::vector<UnpivotAtom> name_atoms;
  std::vector<UnpivotAtom> value_atoms;
  for (const UnpivotAtom& atom : *atoms_opt) {
    if (key_set.count(atom.column) > 0) {
      key_atoms.push_back(atom);
    } else if (name_index.count(atom.column) > 0) {
      name_atoms.push_back(atom);
    } else if (value_index.count(atom.column) > 0) {
      value_atoms.push_back(atom);
    } else {
      return Status::NotFound(
          StrCat("condition column '", atom.column, "' unknown"));
    }
  }

  // Name-column atoms are decided statically per group: non-matching groups
  // are removed from the spec, and their source columns projected away ("a
  // project that removes columns", Fig. 16).
  UnpivotSpec new_spec = spec;
  new_spec.groups.clear();
  std::vector<std::string> dropped_sources;
  for (const UnpivotGroup& group : spec.groups) {
    bool pass = true;
    for (const UnpivotAtom& atom : name_atoms) {
      if (!EvalAtomStatic(atom, group.combo[name_index.at(atom.column)])) {
        pass = false;
        break;
      }
    }
    if (pass) {
      new_spec.groups.push_back(group);
    } else {
      dropped_sources.insert(dropped_sources.end(),
                             group.source_columns.begin(),
                             group.source_columns.end());
    }
  }
  if (new_spec.groups.empty()) {
    // No group can satisfy the condition: statically empty result.
    return MakeSelect(plan, Lit(Value::Int(0)));
  }

  PlanPtr result = base;
  if (!dropped_sources.empty()) {
    result = MakeDrop(std::move(result), dropped_sources);
    GPIVOT_ASSIGN_OR_RETURN(base_schema, result->OutputSchema());
  }
  if (!key_atoms.empty()) {
    std::vector<ExprPtr> conjuncts;
    for (const UnpivotAtom& atom : key_atoms) {
      conjuncts.push_back(
          Cmp(atom.op, Col(atom.column), Lit(atom.literal)));
    }
    result = MakeSelect(std::move(result), And(std::move(conjuncts)));
  }

  if (!value_atoms.empty()) {
    // Value-column atoms become a per-group case expression over H's cells
    // (Fig. 16, σ_Price case).
    std::vector<MapNode::Output> outputs;
    std::unordered_map<std::string, ExprPtr> replaced;
    for (const UnpivotGroup& group : new_spec.groups) {
      std::vector<ExprPtr> guard_conjuncts;
      for (const UnpivotAtom& atom : value_atoms) {
        size_t q = value_index.at(atom.column);
        guard_conjuncts.push_back(
            Cmp(atom.op, Col(group.source_columns[q]), Lit(atom.literal)));
      }
      ExprPtr guard = And(std::move(guard_conjuncts));
      for (const std::string& src : group.source_columns) {
        replaced[src] = Case(guard, Col(src), Lit(Value::Null()));
      }
    }
    for (const Column& c : base_schema.columns()) {
      auto it = replaced.find(c.name);
      outputs.emplace_back(c.name,
                           it == replaced.end() ? Col(c.name) : it->second);
    }
    result = MakeMap(std::move(result), std::move(outputs));
  }
  return MakeGUnpivot(std::move(result), new_spec);
}

Result<PlanPtr> PushProjectBelowUnpivot(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kProject) {
    return Status::NotApplicable("needs π(GUNPIVOT(H))");
  }
  const auto* project = static_cast<const ProjectNode*>(plan.get());
  if (project->mode() != ProjectNode::Mode::kDrop) {
    return Status::NotApplicable("§5.3.2 considers negative projects");
  }
  if (project->child()->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs π(GUNPIVOT(H))");
  }
  const auto* unpivot =
      static_cast<const GUnpivotNode*>(project->child().get());
  const UnpivotSpec& spec = unpivot->spec();

  std::unordered_set<std::string> names = ToSet(spec.name_columns);
  std::unordered_set<std::string> values = ToSet(spec.value_columns);

  std::vector<std::string> drop_below;      // non-unpivoted columns
  std::vector<size_t> drop_value_indices;   // value columns
  for (const std::string& name : project->columns()) {
    if (names.count(name) > 0) {
      // Dropping a name column requires renaming H's cells (Fig. 17, the
      // π_{¬Manu} case) — a metadata-only rewrite we do not model.
      return Status::NotApplicable(
          "dropping a name column requires cell renames (§5.3.2)");
    }
    if (values.count(name) > 0) {
      for (size_t q = 0; q < spec.value_columns.size(); ++q) {
        if (spec.value_columns[q] == name) drop_value_indices.push_back(q);
      }
    } else {
      drop_below.push_back(name);
    }
  }
  if (drop_value_indices.size() == spec.value_columns.size()) {
    return Status::NotApplicable("cannot drop every value column");
  }

  UnpivotSpec new_spec = spec;
  std::vector<std::string> dropped_cells;
  if (!drop_value_indices.empty()) {
    std::unordered_set<size_t> dropped(drop_value_indices.begin(),
                                       drop_value_indices.end());
    new_spec.value_columns.clear();
    for (size_t q = 0; q < spec.value_columns.size(); ++q) {
      if (dropped.count(q) == 0) {
        new_spec.value_columns.push_back(spec.value_columns[q]);
      }
    }
    for (UnpivotGroup& group : new_spec.groups) {
      std::vector<std::string> kept;
      for (size_t q = 0; q < group.source_columns.size(); ++q) {
        if (dropped.count(q) == 0) {
          kept.push_back(group.source_columns[q]);
        } else {
          dropped_cells.push_back(group.source_columns[q]);
        }
      }
      group.source_columns = std::move(kept);
    }
  }
  std::vector<std::string> drop_from_base = drop_below;
  drop_from_base.insert(drop_from_base.end(), dropped_cells.begin(),
                        dropped_cells.end());
  PlanPtr base = unpivot->child();
  if (!drop_from_base.empty()) {
    base = MakeDrop(std::move(base), drop_from_base);
  }
  return MakeGUnpivot(std::move(base), std::move(new_spec));
}

Result<PlanPtr> PullUnpivotThroughJoin(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kJoin) {
    return Status::NotApplicable("needs GUNPIVOT(H) ⋈ T");
  }
  const auto* join = static_cast<const JoinNode*>(plan.get());
  if (join->left()->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs the GUNPIVOT on the left join side");
  }
  if (join->residual() != nullptr) {
    return Status::NotApplicable("Eq.14 handles pure equi-joins");
  }
  const auto* unpivot = static_cast<const GUnpivotNode*>(join->left().get());
  const UnpivotSpec& spec = unpivot->spec();

  // Exactly one join key pair, with the left side being a value column
  // (Eq. 14's B_l = K1). Non-unpivoted-column joins commute trivially and
  // are handled by the caller.
  if (join->left_keys().size() != 1) {
    return Status::NotApplicable("Eq.14 handles a single join key");
  }
  const std::string& left_key = join->left_keys()[0];
  const std::string& right_key = join->right_keys()[0];
  std::optional<size_t> value_pos;
  for (size_t q = 0; q < spec.value_columns.size(); ++q) {
    if (spec.value_columns[q] == left_key) value_pos = q;
  }
  if (!value_pos.has_value()) {
    for (const std::string& name : spec.name_columns) {
      if (name == left_key) {
        return Status::NotApplicable(
            "join on a name column needs higher-order features (§5.3.3)");
      }
    }
    return Status::NotApplicable("join key is not a value column");
  }

  GPIVOT_ASSIGN_OR_RETURN(Schema original_schema, plan->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(Schema base_schema,
                          unpivot->child()->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(Schema right_schema, join->right()->OutputSchema());

  // H × T restricted to rows where some group's B_l cell equals K1.
  std::vector<ExprPtr> any_cell_matches;
  for (const UnpivotGroup& group : spec.groups) {
    any_cell_matches.push_back(
        Eq(Col(group.source_columns[*value_pos]), Col(right_key)));
  }
  PlanPtr cross = MakeJoin(unpivot->child(), join->right(), {}, {},
                           Or(std::move(any_cell_matches)));

  // Case expression: groups whose B_l cell does not equal K1 turn to ⊥.
  std::vector<MapNode::Output> outputs;
  std::unordered_map<std::string, ExprPtr> replaced;
  for (const UnpivotGroup& group : spec.groups) {
    ExprPtr guard =
        Eq(Col(group.source_columns[*value_pos]), Col(right_key));
    for (const std::string& src : group.source_columns) {
      replaced[src] = Case(guard, Col(src), Lit(Value::Null()));
    }
  }
  for (const Column& c : base_schema.columns()) {
    auto it = replaced.find(c.name);
    outputs.emplace_back(c.name,
                         it == replaced.end() ? Col(c.name) : it->second);
  }
  for (const Column& c : right_schema.columns()) {
    outputs.emplace_back(c.name, Col(c.name));
  }

  PlanPtr unpivoted = MakeGUnpivot(MakeMap(std::move(cross), outputs), spec);
  // Reorder/drop to the original output columns (the original join dropped
  // the right key column K1).
  return MakeProject(std::move(unpivoted), original_schema.ColumnNames());
}

Result<PlanPtr> PullUnpivotThroughGroupBy(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kGroupBy) {
    return Status::NotApplicable("needs F(GUNPIVOT(H))");
  }
  const auto* groupby = static_cast<const GroupByNode*>(plan.get());
  if (groupby->child()->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs F(GUNPIVOT(H))");
  }
  const auto* unpivot =
      static_cast<const GUnpivotNode*>(groupby->child().get());
  const UnpivotSpec& spec = unpivot->spec();

  std::unordered_set<std::string> values = ToSet(spec.value_columns);
  std::unordered_set<std::string> names = ToSet(spec.name_columns);

  // Group-by columns must avoid value columns (§5.3.4: cannot group same
  // values across different cells).
  for (const std::string& g : groupby->group_columns()) {
    if (values.count(g) > 0) {
      return Status::NotApplicable("grouping on a value column (§5.3.4)");
    }
  }
  // Aggregates must be SUM/COUNT/MIN/MAX over value columns, at most one
  // per value column (in-place pre-aggregation needs unique cell names).
  std::unordered_map<std::string, const AggSpec*> by_value;
  for (const AggSpec& agg : groupby->aggregates()) {
    if (agg.func == AggFunc::kCountStar || agg.func == AggFunc::kAvg) {
      return Status::NotApplicable(
          "Eq.15 supports distributive aggregates over value columns");
    }
    if (names.count(agg.input) > 0) {
      return Status::NotApplicable(
          "aggregating a name column aggregates column names (§5.3.4)");
    }
    if (values.count(agg.input) == 0) {
      return Status::NotApplicable("aggregate input is not a value column");
    }
    if (!by_value.emplace(agg.input, &agg).second) {
      return Status::NotApplicable("two aggregates over one value column");
    }
  }
  if (by_value.empty()) {
    return Status::NotApplicable("no value-column aggregates to push down");
  }

  GPIVOT_ASSIGN_OR_RETURN(Schema base_schema,
                          unpivot->child()->OutputSchema());
  std::unordered_set<std::string> sources = ToSet(spec.AllSourceColumns());
  // K'' = group-by columns that are non-unpivoted columns of H.
  std::vector<std::string> inner_groups;
  for (const std::string& g : groupby->group_columns()) {
    if (base_schema.HasColumn(g) && sources.count(g) == 0) {
      inner_groups.push_back(g);
    }
  }

  // Inner F: aggregate each referenced cell in place, grouped by K''.
  std::vector<AggSpec> inner_aggs;
  UnpivotSpec mid_spec;
  mid_spec.name_columns = spec.name_columns;
  for (const UnpivotGroup& group : spec.groups) {
    UnpivotGroup mid_group;
    mid_group.combo = group.combo;
    for (size_t q = 0; q < spec.value_columns.size(); ++q) {
      auto it = by_value.find(spec.value_columns[q]);
      if (it == by_value.end()) continue;  // value column not aggregated
      inner_aggs.push_back(
          {it->second->func, group.source_columns[q], group.source_columns[q]});
      mid_group.source_columns.push_back(group.source_columns[q]);
    }
    mid_spec.groups.push_back(std::move(mid_group));
  }
  for (const std::string& value : spec.value_columns) {
    if (by_value.count(value) > 0) mid_spec.value_columns.push_back(value);
  }

  // Outer F: re-aggregate the pre-aggregates; COUNTs re-aggregate via SUM.
  std::vector<AggSpec> outer_aggs;
  for (const AggSpec& agg : groupby->aggregates()) {
    AggFunc outer_func =
        agg.func == AggFunc::kCount ? AggFunc::kSum : agg.func;
    outer_aggs.push_back({outer_func, agg.input, agg.output});
  }

  PlanPtr inner =
      MakeGroupBy(unpivot->child(), std::move(inner_groups),
                  std::move(inner_aggs));
  PlanPtr mid = MakeGUnpivot(std::move(inner), std::move(mid_spec));
  return MakeGroupBy(std::move(mid), groupby->group_columns(),
                     std::move(outer_aggs));
}

Result<PlanPtr> PushUnpivotBelowSelect(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs GUNPIVOT(σ(H))");
  }
  const auto* unpivot = static_cast<const GUnpivotNode*>(plan.get());
  if (unpivot->child()->kind() != PlanKind::kSelect) {
    return Status::NotApplicable("needs GUNPIVOT(σ(H))");
  }
  const auto* select = static_cast<const SelectNode*>(unpivot->child().get());
  const UnpivotSpec& spec = unpivot->spec();
  const PlanPtr& base = select->child();

  GPIVOT_ASSIGN_OR_RETURN(Schema base_schema, base->OutputSchema());
  std::unordered_set<std::string> sources = ToSet(spec.AllSourceColumns());
  std::vector<std::string> key_names;
  for (const Column& c : base_schema.columns()) {
    if (sources.count(c.name) == 0) key_names.push_back(c.name);
  }
  // Non-source conditions commute trivially; Eq. 16 targets conditions on
  // the columns being unpivoted.
  if (ExprOnlyReferences(select->predicate(), key_names)) {
    return MakeGUnpivot(MakeSelect(base, select->predicate()), spec);
  }
  bool only_sources = true;
  for (const std::string& name : ReferencedColumns(select->predicate())) {
    if (sources.count(name) == 0 &&
        std::find(key_names.begin(), key_names.end(), name) ==
            key_names.end()) {
      only_sources = false;
    }
  }
  if (!only_sources) {
    return Status::NotApplicable("condition references unknown columns");
  }
  // Eq. 16 needs H keyed by K for the semijoin-style rewrite.
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> base_key,
                          base->OutputKey());
  std::unordered_set<std::string> key_set = ToSet(key_names);
  if (base_key.empty()) {
    return Status::NotApplicable("Eq.16 needs a keyed GUNPIVOT input");
  }
  for (const std::string& k : base_key) {
    if (key_set.count(k) == 0) {
      return Status::NotApplicable("H's key overlaps the unpivoted columns");
    }
  }

  PlanPtr qualifying = MakeProject(MakeSelect(base, select->predicate()),
                                   key_names);
  PlanPtr unpivoted = MakeGUnpivot(base, spec);
  return MakeJoin(std::move(qualifying), std::move(unpivoted), key_names);
}

Result<PlanPtr> PushUnpivotBelowJoin(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs GUNPIVOT(H ⋈ T)");
  }
  const auto* unpivot = static_cast<const GUnpivotNode*>(plan.get());
  if (unpivot->child()->kind() != PlanKind::kJoin) {
    return Status::NotApplicable("needs GUNPIVOT(H ⋈ T)");
  }
  const auto* join = static_cast<const JoinNode*>(unpivot->child().get());
  if (join->residual() != nullptr || join->left_keys().size() != 1) {
    return Status::NotApplicable("Eq.17 handles a single-key equi-join");
  }
  const UnpivotSpec& spec = unpivot->spec();
  std::unordered_set<std::string> sources = ToSet(spec.AllSourceColumns());
  if (sources.count(join->left_keys()[0]) == 0) {
    return Status::NotApplicable(
        "join key is not unpivoted; the join commutes trivially");
  }

  const PlanPtr& h = join->left();
  GPIVOT_ASSIGN_OR_RETURN(Schema h_schema, h->OutputSchema());
  std::vector<std::string> key_names;
  for (const Column& c : h_schema.columns()) {
    if (sources.count(c.name) == 0) key_names.push_back(c.name);
  }
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> h_key, h->OutputKey());
  std::unordered_set<std::string> key_set = ToSet(key_names);
  if (h_key.empty()) {
    return Status::NotApplicable("Eq.17 needs a keyed GUNPIVOT input");
  }
  for (const std::string& k : h_key) {
    if (key_set.count(k) == 0) {
      return Status::NotApplicable("H's key overlaps the unpivoted columns");
    }
  }

  GPIVOT_ASSIGN_OR_RETURN(Schema original_schema, plan->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(Schema join_schema, join->OutputSchema());
  // π_{K ∪ T-payload}(H ⋈ T)
  std::vector<std::string> keep = key_names;
  for (const Column& c : join_schema.columns()) {
    if (!h_schema.HasColumn(c.name)) keep.push_back(c.name);
  }
  PlanPtr qualifying = MakeProject(unpivot->child(), keep);
  PlanPtr unpivoted = MakeGUnpivot(h, spec);
  PlanPtr joined =
      MakeJoin(std::move(qualifying), std::move(unpivoted), key_names);
  return MakeProject(std::move(joined), original_schema.ColumnNames());
}

Result<PlanPtr> PushUnpivotBelowGroupBy(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs GUNPIVOT(F(T))");
  }
  const auto* unpivot = static_cast<const GUnpivotNode*>(plan.get());
  if (unpivot->child()->kind() != PlanKind::kGroupBy) {
    return Status::NotApplicable("needs GUNPIVOT(F(T))");
  }
  const auto* groupby =
      static_cast<const GroupByNode*>(unpivot->child().get());
  const UnpivotSpec& spec = unpivot->spec();

  // Map aggregate output -> AggSpec.
  std::unordered_map<std::string, const AggSpec*> by_output;
  for (const AggSpec& agg : groupby->aggregates()) {
    by_output[agg.output] = &agg;
  }
  std::unordered_set<std::string> group_set = ToSet(groupby->group_columns());

  // Every unpivoted source must be an aggregate output (unpivoting group-by
  // columns is the §5.4.4 non-pushable case), every aggregate must be
  // consumed, and the function must be uniform per value position.
  size_t consumed = 0;
  std::vector<std::optional<AggFunc>> value_funcs(spec.value_columns.size());
  UnpivotSpec new_spec = spec;
  for (size_t g = 0; g < spec.groups.size(); ++g) {
    for (size_t q = 0; q < spec.groups[g].source_columns.size(); ++q) {
      const std::string& src = spec.groups[g].source_columns[q];
      if (group_set.count(src) > 0) {
        return Status::NotApplicable(
            "unpivoting a group-by column (§5.4.4 non-pushable case)");
      }
      auto it = by_output.find(src);
      if (it == by_output.end()) {
        return Status::NotApplicable(
            StrCat("source '", src, "' is not an aggregate output"));
      }
      const AggSpec& agg = *it->second;
      if (agg.func == AggFunc::kCountStar || agg.func == AggFunc::kAvg) {
        return Status::NotApplicable(
            "Eq.18 supports ⊥-disregarding distributive aggregates");
      }
      if (value_funcs[q].has_value() && *value_funcs[q] != agg.func) {
        return Status::NotApplicable(
            "Eq.18 needs one aggregate function per value position");
      }
      value_funcs[q] = agg.func;
      new_spec.groups[g].source_columns[q] = agg.input;
      ++consumed;
    }
  }
  if (consumed != groupby->aggregates().size()) {
    return Status::NotApplicable(
        "some aggregate outputs are not unpivoted (they would dangle)");
  }

  std::vector<std::string> outer_groups = groupby->group_columns();
  outer_groups.insert(outer_groups.end(), spec.name_columns.begin(),
                      spec.name_columns.end());
  std::vector<AggSpec> outer_aggs;
  for (size_t q = 0; q < spec.value_columns.size(); ++q) {
    GPIVOT_CHECK(value_funcs[q].has_value()) << "uncovered value position";
    outer_aggs.push_back(
        {*value_funcs[q], spec.value_columns[q], spec.value_columns[q]});
  }
  return MakeGroupBy(MakeGUnpivot(groupby->child(), std::move(new_spec)),
                     std::move(outer_groups), std::move(outer_aggs));
}

}  // namespace gpivot::rewrite
