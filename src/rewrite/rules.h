#ifndef GPIVOT_REWRITE_RULES_H_
#define GPIVOT_REWRITE_RULES_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "util/result.h"

namespace gpivot::rewrite {

// Every rule returns the rewritten plan, or Status::NotApplicable when the
// plan shape does not satisfy the rule's precondition. Rules never mutate
// their input (plans are immutable).

// ---- §4.2 Combination rules ------------------------------------------------

// Eq. 5 (multicolumn pivot): a join of two GPIVOTs over the *same* input
// with identical pivot-by columns and combos, joined on their common key K,
// merges into one GPIVOT pivoting the union of the measure columns:
//   GPIVOT_{A on B1..Bj}(V) ⋈_K GPIVOT_{A on Bj+1..Bn}(V)
//     = GPIVOT_{A on B1..Bn}(V)
// "Same input" is detected structurally (same node pointer or equal scans).
Result<PlanPtr> CombineMulticolumnPivots(const PlanPtr& plan);

// Eq. 6 (pivot composition): two adjacent GPIVOTs where the outer pivots
// *all* pivoted output columns of the inner merge into one GPIVOT whose
// dimension list is the concatenation and whose combos are the cross
// product:
//   GPIVOT_{[A1..Al] on inner-cells}(GPIVOT_{[Al+1..Am] on [B1..Bn]}(V))
//     = GPIVOT^{outer x inner}_{[A1..Am] on [B1..Bn]}(V)
Result<PlanPtr> ComposeAdjacentPivots(const PlanPtr& plan);

// §4.2.3 classification of two adjacent GPIVOTs (Fig. 7 cases).
enum class AdjacentPivotVerdict {
  kComposable,          // Eq. 6 applies
  kKeyViolation,        // pivoted output columns would enter the key (cases 1/2)
  kNameLoss,            // inner cell names would be lost as data (case 3)
  kStructureMismatch,   // outer pivots extra non-cell columns (case 4)
};
Result<AdjacentPivotVerdict> ClassifyAdjacentPivots(const PlanPtr& plan);

// §4.3 splits (inverses of the combination rules).
// Splits one GPIVOT into two joined on K, partitioning the measures at
// `measure_split` (Eq. 5 right-to-left).
Result<PlanPtr> SplitPivotByMeasures(const PlanPtr& plan, size_t measure_split);
// Splits one GPIVOT into a composition, partitioning the dimensions at
// `dimension_split` (Eq. 6 right-to-left). Requires the combo list to be a
// full cross product of the two dimension groups.
Result<PlanPtr> SplitPivotByDimensions(const PlanPtr& plan,
                                       size_t dimension_split);

// ---- §5.1 GPIVOT pullup ----------------------------------------------------

// §5.1.1 easy case: σ over non-pivoted (key) columns commutes with GPIVOT:
//   σ_K(GPIVOT(V)) = GPIVOT(σ_K(V)).
Result<PlanPtr> PullPivotThroughSelect(const PlanPtr& plan);

// Eq. 7 (single-cell and same-prefix forms): a σ over pivoted output cells
// becomes a semijoin-style self-join below the pivot:
//   σ_{a..**B op lit}(GPIVOT(V)) = GPIVOT(π_K(σ_{A=a ∧ B op lit}(V)) ⋈ V)
// Supports predicates over cells sharing one dimension prefix; predicates
// across different prefixes need the general multi-self-join form, which the
// maintenance framework deliberately avoids (§6.3.2) — NotApplicable.
Result<PlanPtr> PushSelectBelowPivot(const PlanPtr& plan);

// §5.1.2: a negative project dropping only non-pivoted columns commutes
// when the key survives; dropping pivoted cells does not (NotApplicable).
Result<PlanPtr> PullPivotThroughProject(const PlanPtr& plan);

// §5.1.3: GPIVOT(A) ⋈ B on non-pivoted columns = GPIVOT(A ⋈ B), provided
// both operands preserve a key. Handles the pivot on either join side.
Result<PlanPtr> PullPivotThroughJoin(const PlanPtr& plan);

// §6.3.2 preparation: a σ whose condition is over pivoted cells stays
// paired with its GPIVOT, and the *pair* is pulled through a join:
//   σ_cells(GPIVOT(A)) ⋈_K B = σ_cells(GPIVOT(A ⋈_K B))
// (σ commutes with the join because its columns come from the left side,
// then §5.1.3 pulls the pivot.)
Result<PlanPtr> PullSelectPivotPairThroughJoin(const PlanPtr& plan);

// Eq. 8: GROUPBY aggregating pivoted cells (grouping only on key columns)
// commutes by pushing the aggregate below the pivot:
//   F_{K', f(cells)}(GPIVOT_{A on B}(V))
//     = GPIVOT_{A on f(B)}(F_{K' ∪ A, f(B)}(V))
// Requires in-place aggregate naming (output column = input cell name) and
// full cell coverage with one function per measure.
Result<PlanPtr> PullPivotThroughGroupBy(const PlanPtr& plan);

// Eq. 9: GUNPIVOT that exactly inverts the GPIVOT below it cancels into a
// selection of the listed combos (plus a column-order project).
Result<PlanPtr> CancelUnpivotOfPivot(const PlanPtr& plan);

// Eq. 10: GUNPIVOT over key columns of a GPIVOT commutes with it.
Result<PlanPtr> SwapUnpivotBelowPivot(const PlanPtr& plan);

// ---- §5.2 GPIVOT pushdown --------------------------------------------------

// Eq. 11 and its simple variants: pushes GPIVOT below a σ.
//  * condition on key columns: commutes unchanged;
//  * condition on pivot-by columns (A_u = x): MAP turning non-matching
//    combos' cells to ⊥, then a not-all-⊥ σ;
//  * condition A_u = x ∧ B_v = y: the full Eq. 11 case expression.
Result<PlanPtr> PushPivotBelowSelect(const PlanPtr& plan);

// Eq. 12: GPIVOT that exactly inverts the GUNPIVOT below it cancels into a
// not-all-⊥ selection (plus a column-order project).
Result<PlanPtr> CancelPivotOfUnpivot(const PlanPtr& plan);

// ---- §5.3 GUNPIVOT pullup (push σ/F below it) -------------------------------

// Eq. 13 and §5.3.1/§5.3.2: pushes a σ below a GUNPIVOT.
//  * condition on non-unpivoted columns: unchanged;
//  * condition on a name column (A_p = x): drops the non-matching groups;
//  * condition on a value column (B_q = y): MAP case expression;
//  * conjunction A_p = x ∧ B_q = y: both.
Result<PlanPtr> PushSelectBelowUnpivot(const PlanPtr& plan);

// §5.3.2: pushes a negative project below a GUNPIVOT (non-unpivoted column,
// or a value column — dropping a name column is NotApplicable here since it
// requires renaming cell names).
Result<PlanPtr> PushProjectBelowUnpivot(const PlanPtr& plan);

// Eq. 14: join on a value column of GUNPIVOT(H) pulls the GUNPIVOT above
// the join via a MAP case expression on the pivoted cells.
Result<PlanPtr> PullUnpivotThroughJoin(const PlanPtr& plan);

// Eq. 15: GROUPBY over GUNPIVOT output becomes a two-level aggregation
// (horizontal pre-aggregation below the GUNPIVOT). Supports SUM/COUNT.
Result<PlanPtr> PullUnpivotThroughGroupBy(const PlanPtr& plan);

// ---- §5.4 GUNPIVOT pushdown -------------------------------------------------

// Eq. 16: GUNPIVOT(σ_{cell1 op cell2}(H)) = π_K(σ(H)) ⋈ GUNPIVOT(H).
Result<PlanPtr> PushUnpivotBelowSelect(const PlanPtr& plan);

// Eq. 17: GUNPIVOT(H ⋈_{cell=K1} T) = π_K(H ⋈ T) ⋈ GUNPIVOT(H).
Result<PlanPtr> PushUnpivotBelowJoin(const PlanPtr& plan);

// Eq. 18: GUNPIVOT over a GROUPBY's aggregate outputs pushes below it:
//   GUNPIVOT_{[f(B_i)]}(F_{K, f(B_i)}(T)) = F_{K ∪ names, f(value)}(GUNPIVOT_{[B_i]}(T))
Result<PlanPtr> PushUnpivotBelowGroupBy(const PlanPtr& plan);

// ---- Helpers shared by rules and the rewriter -------------------------------

// True when `plan` is a GPivotNode.
bool IsGPivot(const PlanPtr& plan);

// The pivoted output cell names of a GPivotNode.
std::vector<std::string> PivotCellNames(const GPivotNode& node);

// Disjunction σ_s over the pivot-by columns: (A=combo1) ∨ (A=combo2) ∨ ...
ExprPtr ComboDisjunction(const PivotSpec& spec);

// (IS NOT NULL c1) ∨ (IS NOT NULL c2) ∨ ... — the paper's "not all ⊥".
ExprPtr NotAllNull(const std::vector<std::string>& columns);

}  // namespace gpivot::rewrite

#endif  // GPIVOT_REWRITE_RULES_H_
