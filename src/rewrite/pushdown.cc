#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "rewrite/rules.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::rewrite {

namespace {

// One atom of a conjunctive condition: column op literal.
struct Atom {
  std::string column;
  CompareOp op;
  Value literal;
};

// Decomposes `expr` into a conjunction of (column op literal) atoms.
// Returns nullopt for any other shape.
std::optional<std::vector<Atom>> DecomposeConjunction(const ExprPtr& expr) {
  std::vector<Atom> atoms;
  std::vector<ExprPtr> pending = {expr};
  while (!pending.empty()) {
    ExprPtr e = pending.back();
    pending.pop_back();
    if (e->kind() == ExprKind::kBoolOp) {
      const auto* b = static_cast<const BoolOpExpr*>(e.get());
      if (b->op() != BoolOpKind::kAnd) return std::nullopt;
      for (const ExprPtr& op : b->operands()) pending.push_back(op);
      continue;
    }
    if (e->kind() != ExprKind::kComparison) return std::nullopt;
    const auto* c = static_cast<const ComparisonExpr*>(e.get());
    const ExprPtr* column = &c->left();
    const ExprPtr* literal = &c->right();
    CompareOp op = c->op();
    if ((*column)->kind() == ExprKind::kLiteral &&
        (*literal)->kind() == ExprKind::kColumnRef) {
      std::swap(column, literal);
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    }
    if ((*column)->kind() != ExprKind::kColumnRef ||
        (*literal)->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    atoms.push_back(
        {static_cast<const ColumnRefExpr*>(column->get())->name(), op,
         static_cast<const LiteralExpr*>(literal->get())->value()});
  }
  return atoms;
}

// Statically evaluates `value op literal` (both known constants).
bool EvalAtomStatic(const Atom& atom, const Value& value) {
  if (value.is_null() || atom.literal.is_null()) return false;
  switch (atom.op) {
    case CompareOp::kEq:
      return value == atom.literal;
    case CompareOp::kNe:
      return value != atom.literal;
    case CompareOp::kLt:
      return value < atom.literal;
    case CompareOp::kLe:
      return value < atom.literal || value == atom.literal;
    case CompareOp::kGt:
      return atom.literal < value;
    case CompareOp::kGe:
      return atom.literal < value || value == atom.literal;
  }
  return false;
}

}  // namespace

Result<PlanPtr> PushPivotBelowSelect(const PlanPtr& plan) {
  if (!IsGPivot(plan)) {
    return Status::NotApplicable("needs GPIVOT(σ(V))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(plan.get());
  if (pivot->child()->kind() != PlanKind::kSelect) {
    return Status::NotApplicable("needs GPIVOT(σ(V))");
  }
  const auto* select = static_cast<const SelectNode*>(pivot->child().get());
  const PivotSpec& spec = pivot->spec();
  const PlanPtr& base = select->child();
  if (spec.keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }


  GPIVOT_ASSIGN_OR_RETURN(Schema base_schema, base->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          spec.KeyColumns(base_schema));
  std::unordered_set<std::string> key_set(key_names.begin(), key_names.end());

  // Trivial case: condition on key columns only — GPIVOT commutes unchanged.
  if (ExprOnlyReferences(select->predicate(), key_names)) {
    return MakeSelect(MakeGPivot(base, spec), select->predicate());
  }

  auto atoms_opt = DecomposeConjunction(select->predicate());
  if (!atoms_opt.has_value()) {
    return Status::NotApplicable(
        "Eq.11 handles conjunctions of column-literal comparisons");
  }

  std::unordered_map<std::string, size_t> dim_index;
  for (size_t d = 0; d < spec.pivot_by.size(); ++d) {
    dim_index[spec.pivot_by[d]] = d;
  }
  std::unordered_map<std::string, size_t> measure_index;
  for (size_t b = 0; b < spec.pivot_on.size(); ++b) {
    measure_index[spec.pivot_on[b]] = b;
  }

  std::vector<Atom> key_atoms;
  std::vector<Atom> dim_atoms;
  std::vector<Atom> measure_atoms;
  for (const Atom& atom : *atoms_opt) {
    if (key_set.count(atom.column) > 0) {
      key_atoms.push_back(atom);
    } else if (dim_index.count(atom.column) > 0) {
      dim_atoms.push_back(atom);
    } else if (measure_index.count(atom.column) > 0) {
      measure_atoms.push_back(atom);
    } else {
      return Status::NotFound(
          StrCat("condition column '", atom.column, "' not in input"));
    }
  }

  // Per combo: the dimension atoms are decided statically; the measure atoms
  // become a guard over that combo's cells (the Eq. 11 case expression).
  std::vector<MapNode::Output> outputs;
  for (const std::string& k : key_names) outputs.emplace_back(k, Col(k));
  std::vector<std::string> cell_names;
  for (size_t c = 0; c < spec.num_combos(); ++c) {
    bool dims_pass = true;
    for (const Atom& atom : dim_atoms) {
      size_t d = dim_index.at(atom.column);
      if (!EvalAtomStatic(atom, spec.combos[c][d])) {
        dims_pass = false;
        break;
      }
    }
    ExprPtr guard;
    if (!dims_pass) {
      guard = Lit(Value::Int(0));  // statically false
    } else if (measure_atoms.empty()) {
      guard = nullptr;  // statically true: pass cells through
    } else {
      std::vector<ExprPtr> conjuncts;
      for (const Atom& atom : measure_atoms) {
        size_t b = measure_index.at(atom.column);
        conjuncts.push_back(
            Cmp(atom.op, Col(spec.OutputColumnName(c, b)), Lit(atom.literal)));
      }
      guard = And(std::move(conjuncts));
    }
    for (size_t b = 0; b < spec.num_measures(); ++b) {
      std::string cell = spec.OutputColumnName(c, b);
      cell_names.push_back(cell);
      if (guard == nullptr) {
        outputs.emplace_back(cell, Col(cell));
      } else {
        outputs.emplace_back(cell,
                             Case(guard, Col(cell), Lit(Value::Null())));
      }
    }
  }

  PlanPtr result = MakeMap(MakeGPivot(base, spec), std::move(outputs));
  std::vector<ExprPtr> top_conjuncts;
  top_conjuncts.push_back(NotAllNull(cell_names));
  for (const Atom& atom : key_atoms) {
    top_conjuncts.push_back(Cmp(atom.op, Col(atom.column), Lit(atom.literal)));
  }
  return MakeSelect(std::move(result), And(std::move(top_conjuncts)));
}

Result<PlanPtr> CancelPivotOfUnpivot(const PlanPtr& plan) {
  if (!IsGPivot(plan)) {
    return Status::NotApplicable("needs GPIVOT(GUNPIVOT(H))");
  }
  const auto* pivot = static_cast<const GPivotNode*>(plan.get());
  if (pivot->child()->kind() != PlanKind::kGUnpivot) {
    return Status::NotApplicable("needs GPIVOT(GUNPIVOT(H))");
  }
  const auto* unpivot =
      static_cast<const GUnpivotNode*>(pivot->child().get());
  if (pivot->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }
  if (!(unpivot->spec() == UnpivotSpec::InverseOf(pivot->spec()))) {
    return Status::NotApplicable(
        "GPIVOT is not the exact inverse of the GUNPIVOT (Eq. 12)");
  }
  GPIVOT_ASSIGN_OR_RETURN(Schema out_schema, plan->OutputSchema());
  PlanPtr selected = MakeSelect(
      unpivot->child(), NotAllNull(unpivot->spec().AllSourceColumns()));
  return MakeProject(std::move(selected), out_schema.ColumnNames());
}

}  // namespace gpivot::rewrite
