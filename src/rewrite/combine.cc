#include <unordered_set>

#include "rewrite/rules.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::rewrite {

bool IsGPivot(const PlanPtr& plan) {
  return plan != nullptr && plan->kind() == PlanKind::kGPivot;
}

std::vector<std::string> PivotCellNames(const GPivotNode& node) {
  return node.spec().OutputColumnNames();
}

ExprPtr ComboDisjunction(const PivotSpec& spec) {
  std::vector<ExprPtr> disjuncts;
  disjuncts.reserve(spec.combos.size());
  for (const Row& combo : spec.combos) {
    std::vector<ExprPtr> conjuncts;
    conjuncts.reserve(spec.pivot_by.size());
    for (size_t d = 0; d < spec.pivot_by.size(); ++d) {
      conjuncts.push_back(Eq(Col(spec.pivot_by[d]), Lit(combo[d])));
    }
    disjuncts.push_back(And(std::move(conjuncts)));
  }
  return Or(std::move(disjuncts));
}

ExprPtr NotAllNull(const std::vector<std::string>& columns) {
  GPIVOT_CHECK(!columns.empty()) << "NotAllNull over no columns";
  std::vector<ExprPtr> disjuncts;
  disjuncts.reserve(columns.size());
  for (const std::string& name : columns) {
    disjuncts.push_back(IsNotNull(Col(name)));
  }
  return Or(std::move(disjuncts));
}

namespace {

// "Same input" detection for Eq. 5: identical node pointers, or two scans of
// the same table.
bool SameSource(const PlanPtr& a, const PlanPtr& b) {
  if (a == b) return true;
  if (a->kind() == PlanKind::kScan && b->kind() == PlanKind::kScan) {
    return static_cast<const ScanNode*>(a.get())->table_name() ==
           static_cast<const ScanNode*>(b.get())->table_name();
  }
  return false;
}

// Unwraps an optional keep-projection: returns {base, had_projection}.
std::pair<PlanPtr, bool> UnwrapProjection(const PlanPtr& plan) {
  if (plan->kind() == PlanKind::kProject) {
    const auto* project = static_cast<const ProjectNode*>(plan.get());
    if (project->mode() == ProjectNode::Mode::kKeep) {
      return {project->child(), true};
    }
  }
  return {plan, false};
}

}  // namespace

Result<PlanPtr> CombineMulticolumnPivots(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kJoin) {
    return Status::NotApplicable("Eq.5 needs a JOIN of two GPIVOTs");
  }
  const auto* join = static_cast<const JoinNode*>(plan.get());
  if (join->residual() != nullptr) {
    return Status::NotApplicable("Eq.5 needs a pure key equi-join");
  }
  if (!IsGPivot(join->left()) || !IsGPivot(join->right())) {
    return Status::NotApplicable("Eq.5 needs GPIVOT on both join sides");
  }
  const auto* left = static_cast<const GPivotNode*>(join->left().get());
  const auto* right = static_cast<const GPivotNode*>(join->right().get());
  if (left->spec().keep_all_null_rows || right->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }
  if (left->spec().pivot_by != right->spec().pivot_by ||
      left->spec().combos != right->spec().combos) {
    return Status::NotApplicable(
        "Eq.5 needs identical pivot-by columns and output combos");
  }

  auto [left_base, left_projected] = UnwrapProjection(left->child());
  auto [right_base, right_projected] = UnwrapProjection(right->child());
  if (!SameSource(left_base, right_base)) {
    return Status::NotApplicable("Eq.5 needs both GPIVOTs over the same input");
  }

  // The join must be on the (entire) pivot output key K.
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> left_key,
                          left->OutputKey());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> right_key,
                          right->OutputKey());
  auto same_set = [](std::vector<std::string> a, std::vector<std::string> b) {
    std::unordered_set<std::string> sa(a.begin(), a.end());
    std::unordered_set<std::string> sb(b.begin(), b.end());
    return sa == sb;
  };
  if (!same_set(join->left_keys(), left_key) ||
      !same_set(join->right_keys(), right_key) ||
      !same_set(left_key, right_key)) {
    return Status::NotApplicable("Eq.5 needs the join to be on the key K");
  }

  PivotSpec merged = left->spec();
  merged.pivot_on.insert(merged.pivot_on.end(),
                         right->spec().pivot_on.begin(),
                         right->spec().pivot_on.end());

  PlanPtr child = left_base;
  if (left_projected || right_projected) {
    // π_{K, A, all measures}(base): the union of the two projections.
    std::vector<std::string> keep = left_key;
    keep.insert(keep.end(), merged.pivot_by.begin(), merged.pivot_by.end());
    keep.insert(keep.end(), merged.pivot_on.begin(), merged.pivot_on.end());
    child = MakeProject(std::move(child), std::move(keep));
  }
  return MakeGPivot(std::move(child), std::move(merged));
}

Result<AdjacentPivotVerdict> ClassifyAdjacentPivots(const PlanPtr& plan) {
  if (!IsGPivot(plan)) {
    return Status::NotApplicable("not a GPIVOT");
  }
  const auto* outer = static_cast<const GPivotNode*>(plan.get());
  if (!IsGPivot(outer->child())) {
    return Status::NotApplicable("child is not a GPIVOT");
  }
  const auto* inner = static_cast<const GPivotNode*>(outer->child().get());
  if (outer->spec().keep_all_null_rows || inner->spec().keep_all_null_rows) {
    return Status::NotApplicable(
        "§8 keep-⊥-rows pivots are maintained with insert/delete rules");
  }

  std::vector<std::string> cells = PivotCellNames(*inner);
  std::unordered_set<std::string> cell_set(cells.begin(), cells.end());
  std::unordered_set<std::string> outer_by(outer->spec().pivot_by.begin(),
                                           outer->spec().pivot_by.end());
  std::unordered_set<std::string> outer_on(outer->spec().pivot_on.begin(),
                                           outer->spec().pivot_on.end());

  // Cells that survive into the outer pivot's key would make data values
  // part of a key (observation 1; Fig. 7 cases 1 and 2).
  for (const std::string& cell : cells) {
    if (outer_by.count(cell) == 0 && outer_on.count(cell) == 0) {
      return AdjacentPivotVerdict::kKeyViolation;
    }
  }
  // A cell used as a dimension loses its name — which is original data —
  // from the output (observation 3; Fig. 7 case 3).
  for (const std::string& name : outer->spec().pivot_by) {
    if (cell_set.count(name) > 0) return AdjacentPivotVerdict::kNameLoss;
  }
  // Extra non-cell measures pivoted together with the cells break the
  // output-name structure (observation 2; Fig. 7 case 4).
  for (const std::string& name : outer->spec().pivot_on) {
    if (cell_set.count(name) == 0) {
      return AdjacentPivotVerdict::kStructureMismatch;
    }
  }
  return AdjacentPivotVerdict::kComposable;
}

Result<PlanPtr> ComposeAdjacentPivots(const PlanPtr& plan) {
  GPIVOT_ASSIGN_OR_RETURN(AdjacentPivotVerdict verdict,
                          ClassifyAdjacentPivots(plan));
  if (verdict != AdjacentPivotVerdict::kComposable) {
    return Status::NotApplicable("adjacent GPIVOTs are not composable");
  }
  const auto* outer = static_cast<const GPivotNode*>(plan.get());
  const auto* inner = static_cast<const GPivotNode*>(outer->child().get());

  // Eq. 6 additionally requires the outer measure order to be the inner
  // cell order (combo-major), so the merged cells line up positionally.
  std::vector<std::string> cells = PivotCellNames(*inner);
  if (outer->spec().pivot_on != cells) {
    return Status::NotApplicable(
        "Eq.6 needs the outer measures in inner cell order");
  }

  PivotSpec merged;
  merged.pivot_by = outer->spec().pivot_by;
  merged.pivot_by.insert(merged.pivot_by.end(), inner->spec().pivot_by.begin(),
                         inner->spec().pivot_by.end());
  merged.pivot_on = inner->spec().pivot_on;
  for (const Row& outer_combo : outer->spec().combos) {
    for (const Row& inner_combo : inner->spec().combos) {
      Row combo = outer_combo;
      combo.insert(combo.end(), inner_combo.begin(), inner_combo.end());
      merged.combos.push_back(std::move(combo));
    }
  }
  return MakeGPivot(inner->child(), std::move(merged));
}

Result<PlanPtr> SplitPivotByMeasures(const PlanPtr& plan,
                                     size_t measure_split) {
  if (!IsGPivot(plan)) {
    return Status::NotApplicable("split needs a GPIVOT");
  }
  const auto* node = static_cast<const GPivotNode*>(plan.get());
  const PivotSpec& spec = node->spec();
  if (spec.keep_all_null_rows) {
    return Status::NotApplicable("splits are defined for Eq. 3 semantics");
  }
  if (measure_split == 0 || measure_split >= spec.pivot_on.size()) {
    return Status::InvalidArgument(
        StrCat("measure split ", measure_split, " out of range (1..",
               spec.pivot_on.size() - 1, ")"));
  }
  PivotSpec first = spec;
  first.pivot_on.assign(spec.pivot_on.begin(),
                        spec.pivot_on.begin() + measure_split);
  PivotSpec second = spec;
  second.pivot_on.assign(spec.pivot_on.begin() + measure_split,
                         spec.pivot_on.end());
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, node->child()->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key,
                          spec.KeyColumns(child_schema));
  // Each side projects away the other side's measures so that its implicit
  // key K matches the original.
  auto side = [&](const PivotSpec& side_spec) {
    std::vector<std::string> keep = key;
    keep.insert(keep.end(), side_spec.pivot_by.begin(),
                side_spec.pivot_by.end());
    keep.insert(keep.end(), side_spec.pivot_on.begin(),
                side_spec.pivot_on.end());
    return MakeGPivot(MakeProject(node->child(), std::move(keep)), side_spec);
  };
  return MakeJoin(side(first), side(second), key);
}

Result<PlanPtr> SplitPivotByDimensions(const PlanPtr& plan,
                                       size_t dimension_split) {
  if (!IsGPivot(plan)) {
    return Status::NotApplicable("split needs a GPIVOT");
  }
  const auto* node = static_cast<const GPivotNode*>(plan.get());
  const PivotSpec& spec = node->spec();
  if (spec.keep_all_null_rows) {
    return Status::NotApplicable("splits are defined for Eq. 3 semantics");
  }
  if (dimension_split == 0 || dimension_split >= spec.pivot_by.size()) {
    return Status::InvalidArgument(
        StrCat("dimension split ", dimension_split, " out of range (1..",
               spec.pivot_by.size() - 1, ")"));
  }
  // Extract the distinct prefixes and suffixes; the combo list must be
  // exactly their cross product in outer-major order.
  std::vector<Row> prefixes;
  std::vector<Row> suffixes;
  std::unordered_set<Row, RowHash, RowEq> prefix_set;
  std::unordered_set<Row, RowHash, RowEq> suffix_set;
  for (const Row& combo : spec.combos) {
    Row prefix(combo.begin(), combo.begin() + dimension_split);
    Row suffix(combo.begin() + dimension_split, combo.end());
    if (prefix_set.insert(prefix).second) prefixes.push_back(prefix);
    if (suffix_set.insert(suffix).second) suffixes.push_back(suffix);
  }
  std::vector<Row> expected;
  for (const Row& prefix : prefixes) {
    for (const Row& suffix : suffixes) {
      Row combo = prefix;
      combo.insert(combo.end(), suffix.begin(), suffix.end());
      expected.push_back(std::move(combo));
    }
  }
  if (expected != spec.combos) {
    return Status::NotApplicable(
        "dimension split needs a full cross-product combo list");
  }

  PivotSpec inner;
  inner.pivot_by.assign(spec.pivot_by.begin() + dimension_split,
                        spec.pivot_by.end());
  inner.pivot_on = spec.pivot_on;
  inner.combos = std::move(suffixes);

  PivotSpec outer;
  outer.pivot_by.assign(spec.pivot_by.begin(),
                        spec.pivot_by.begin() + dimension_split);
  outer.combos = std::move(prefixes);
  PlanPtr inner_plan = MakeGPivot(node->child(), inner);
  outer.pivot_on =
      static_cast<const GPivotNode*>(inner_plan.get())->spec()
          .OutputColumnNames();
  return MakeGPivot(std::move(inner_plan), std::move(outer));
}

}  // namespace gpivot::rewrite
