#include "rewrite/rewriter.h"

#include "rewrite/rules.h"
#include "util/check.h"

namespace gpivot::rewrite {

const char* TopShapeToString(TopShape shape) {
  switch (shape) {
    case TopShape::kGPivotTop:
      return "GPIVOT-top";
    case TopShape::kSelectOverGPivotTop:
      return "SELECT-over-GPIVOT-top";
    case TopShape::kGPivotOverGroupByTop:
      return "GPIVOT-over-GROUPBY-top";
    case TopShape::kOther:
      return "other";
  }
  return "?";
}

Result<PlanPtr> RebuildWithChildren(const PlanPtr& node,
                                    std::vector<PlanPtr> children) {
  switch (node->kind()) {
    case PlanKind::kScan:
      return node;
    case PlanKind::kSelect: {
      GPIVOT_CHECK(children.size() == 1) << "SELECT arity";
      const auto* n = static_cast<const SelectNode*>(node.get());
      return MakeSelect(children[0], n->predicate());
    }
    case PlanKind::kProject: {
      GPIVOT_CHECK(children.size() == 1) << "PROJECT arity";
      const auto* n = static_cast<const ProjectNode*>(node.get());
      return PlanPtr(std::make_shared<ProjectNode>(children[0], n->mode(),
                                                   n->columns()));
    }
    case PlanKind::kMap: {
      GPIVOT_CHECK(children.size() == 1) << "MAP arity";
      const auto* n = static_cast<const MapNode*>(node.get());
      return MakeMap(children[0], n->outputs());
    }
    case PlanKind::kJoin: {
      GPIVOT_CHECK(children.size() == 2) << "JOIN arity";
      const auto* n = static_cast<const JoinNode*>(node.get());
      return MakeJoin(children[0], children[1], n->left_keys(),
                      n->right_keys(), n->residual());
    }
    case PlanKind::kGroupBy: {
      GPIVOT_CHECK(children.size() == 1) << "GROUPBY arity";
      const auto* n = static_cast<const GroupByNode*>(node.get());
      return MakeGroupBy(children[0], n->group_columns(), n->aggregates());
    }
    case PlanKind::kGPivot: {
      GPIVOT_CHECK(children.size() == 1) << "GPIVOT arity";
      const auto* n = static_cast<const GPivotNode*>(node.get());
      return MakeGPivot(children[0], n->spec());
    }
    case PlanKind::kGUnpivot: {
      GPIVOT_CHECK(children.size() == 1) << "GUNPIVOT arity";
      const auto* n = static_cast<const GUnpivotNode*>(node.get());
      return MakeGUnpivot(children[0], n->spec());
    }
  }
  return Status::Internal("unknown plan kind");
}

namespace {

// Applies the first matching local rule at `node`. Returns the rewritten
// node, or NotApplicable when no rule fires.
Result<PlanPtr> TryLocalRules(const PlanPtr& node, RewriteOutcome* stats) {
  struct RuleEntry {
    Result<PlanPtr> (*rule)(const PlanPtr&);
    int RewriteOutcome::* counter;
  };
  static constexpr int RewriteOutcome::* kCombined =
      &RewriteOutcome::pivots_combined;
  static constexpr int RewriteOutcome::* kPulled =
      &RewriteOutcome::pivots_pulled;
  static constexpr int RewriteOutcome::* kCancelled =
      &RewriteOutcome::pivots_cancelled;
  static const RuleEntry kRules[] = {
      {&CombineMulticolumnPivots, kCombined},
      {&ComposeAdjacentPivots, kCombined},
      {&CancelUnpivotOfPivot, kCancelled},
      {&CancelPivotOfUnpivot, kCancelled},
      {&PullPivotThroughSelect, kPulled},
      {&PullPivotThroughProject, kPulled},
      {&PullPivotThroughJoin, kPulled},
      {&PullSelectPivotPairThroughJoin, kPulled},
      {&PullPivotThroughGroupBy, kPulled},
      {&SwapUnpivotBelowPivot, kPulled},
  };
  for (const RuleEntry& entry : kRules) {
    Result<PlanPtr> rewritten = entry.rule(node);
    if (rewritten.ok()) {
      stats->*(entry.counter) += 1;
      return rewritten;
    }
    if (!rewritten.status().IsNotApplicable()) {
      return rewritten.status();
    }
  }
  return Status::NotApplicable("no local rule fires");
}

Result<PlanPtr> RewriteBottomUp(const PlanPtr& node, RewriteOutcome* stats) {
  std::vector<PlanPtr> children = node->children();
  bool changed = false;
  for (PlanPtr& child : children) {
    GPIVOT_ASSIGN_OR_RETURN(PlanPtr rewritten, RewriteBottomUp(child, stats));
    if (rewritten != child) {
      changed = true;
      child = std::move(rewritten);
    }
  }
  PlanPtr current = node;
  if (changed) {
    GPIVOT_ASSIGN_OR_RETURN(current, RebuildWithChildren(node, children));
  }
  // Local fixpoint: a successful rule may expose another (e.g. pulling a
  // pivot through a join exposes an Eq. 6 composition).
  while (true) {
    Result<PlanPtr> rewritten = TryLocalRules(current, stats);
    if (!rewritten.ok()) {
      if (rewritten.status().IsNotApplicable()) break;
      return rewritten.status();
    }
    current = std::move(rewritten).value();
  }
  return current;
}

}  // namespace

TopShape ClassifyTopShape(const PlanPtr& plan) {
  if (IsGPivot(plan)) {
    const auto* pivot = static_cast<const GPivotNode*>(plan.get());
    if (pivot->child()->kind() == PlanKind::kGroupBy) {
      return TopShape::kGPivotOverGroupByTop;
    }
    return TopShape::kGPivotTop;
  }
  if (plan->kind() == PlanKind::kSelect) {
    const auto* select = static_cast<const SelectNode*>(plan.get());
    if (IsGPivot(select->child())) {
      return TopShape::kSelectOverGPivotTop;
    }
  }
  return TopShape::kOther;
}

Result<RewriteOutcome> PullUpPivots(const PlanPtr& plan) {
  GPIVOT_CHECK(plan != nullptr) << "PullUpPivots on null plan";
  RewriteOutcome outcome;
  GPIVOT_ASSIGN_OR_RETURN(outcome.plan, RewriteBottomUp(plan, &outcome));
  outcome.top_shape = ClassifyTopShape(outcome.plan);
  return outcome;
}

}  // namespace gpivot::rewrite
