#include "ivm/maintenance.h"

#include "core/gpivot.h"
#include "exec/basic_ops.h"
#include "exec/group_by.h"
#include "obs/metrics.h"
#include "rewrite/rewriter.h"
#include "rewrite/rules.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace gpivot::ivm {

const char* RefreshStrategyToString(RefreshStrategy strategy) {
  switch (strategy) {
    case RefreshStrategy::kFullRecompute:
      return "FullRecompute";
    case RefreshStrategy::kInsertDelete:
      return "InsertDelete";
    case RefreshStrategy::kUpdate:
      return "Update";
    case RefreshStrategy::kSelectPushdownUpdate:
      return "SelectPushdownUpdate";
    case RefreshStrategy::kCombinedSelect:
      return "CombinedSelect";
    case RefreshStrategy::kCombinedGroupBy:
      return "CombinedGroupBy";
  }
  return "?";
}

namespace {

// Applies `rule` at the first (bottom-up, left-to-right) node it fires on.
Result<PlanPtr> TransformFirstMatch(
    const PlanPtr& plan, Result<PlanPtr> (*rule)(const PlanPtr&),
    bool* applied) {
  std::vector<PlanPtr> children = plan->children();
  bool changed = false;
  for (PlanPtr& child : children) {
    if (*applied) break;
    GPIVOT_ASSIGN_OR_RETURN(PlanPtr rewritten,
                            TransformFirstMatch(child, rule, applied));
    if (rewritten != child) {
      changed = true;
      child = std::move(rewritten);
    }
  }
  PlanPtr current = plan;
  if (changed) {
    GPIVOT_ASSIGN_OR_RETURN(current,
                            rewrite::RebuildWithChildren(plan, children));
  }
  if (!*applied) {
    Result<PlanPtr> rewritten = rule(current);
    if (rewritten.ok()) {
      *applied = true;
      return rewritten;
    }
    if (!rewritten.status().IsNotApplicable()) {
      return rewritten.status();
    }
  }
  return current;
}

// Evaluates `plan` against the post-update database, restricted to rows
// whose `key_names` projection is in `keys` — with the restriction pushed
// down toward the scans that provide those columns (the paper's "partial
// re-evaluation by predicate pushdown", §2.3). When a subtree only exposes a
// subset of the key columns, it is restricted on that subset, which yields a
// *superset* of the exact restriction; the caller applies the exact
// semijoin afterwards. The pivot's key is a superkey (every non-pivoted
// column), so subsets commonly suffice to prune most rows.
Result<Table> EvaluatePostRestricted(
    DeltaPropagator* propagator, const PlanPtr& plan,
    const std::vector<std::string>& key_names,
    const std::unordered_set<Row, RowHash, RowEq>& keys) {
  GPIVOT_ASSIGN_OR_RETURN(Schema schema, plan->OutputSchema());

  // Columns of the restriction available in this subtree.
  std::vector<std::string> available;
  std::vector<size_t> available_positions;
  for (size_t i = 0; i < key_names.size(); ++i) {
    if (schema.HasColumn(key_names[i])) {
      available.push_back(key_names[i]);
      available_positions.push_back(i);
    }
  }

  // For unchanged subtrees post == pre, and pre refs never force the lazy
  // post-state build.
  auto post_or_pre = [propagator](const PlanPtr& subtree) -> Result<Table> {
    GPIVOT_ASSIGN_OR_RETURN(bool unchanged, propagator->Unchanged(subtree));
    if (unchanged) {
      GPIVOT_ASSIGN_OR_RETURN(auto table, propagator->EvaluatePreRef(subtree));
      return *table;
    }
    return propagator->EvaluatePost(subtree);
  };

  if (available.empty()) {
    // Nothing to restrict on in this subtree.
    return post_or_pre(plan);
  }
  if (available.size() != key_names.size()) {
    // Recurse with the projected key set (restriction on a subset).
    std::unordered_set<Row, RowHash, RowEq> projected;
    projected.reserve(keys.size());
    for (const Row& key : keys) {
      projected.insert(ProjectRow(key, available_positions));
    }
    return EvaluatePostRestricted(propagator, plan, available, projected);
  }

  switch (plan->kind()) {
    case PlanKind::kScan: {
      // Post-state restriction computed from the pre state plus the delta
      // directly, so the full post table is never materialized:
      //   σ_keys(post) = σ_keys(pre) ∸ σ_keys(∇) ⊎ σ_keys(Δ).
      const auto* scan = static_cast<const ScanNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(auto pre, propagator->EvaluatePreRef(plan));
      GPIVOT_ASSIGN_OR_RETURN(Table restricted,
                              exec::SemiJoinKeySet(*pre, key_names, keys));
      GPIVOT_RETURN_NOT_OK(restricted.SetKey({}));
      auto it = propagator->deltas().find(scan->table_name());
      if (it == propagator->deltas().end()) return restricted;
      const Delta& delta = it->second;
      if (!delta.deletes.empty()) {
        GPIVOT_ASSIGN_OR_RETURN(
            Table deleted,
            exec::SemiJoinKeySet(delta.deletes, key_names, keys));
        GPIVOT_ASSIGN_OR_RETURN(restricted,
                                exec::BagDifference(restricted, deleted));
      }
      if (!delta.inserts.empty()) {
        GPIVOT_ASSIGN_OR_RETURN(
            Table inserted,
            exec::SemiJoinKeySet(delta.inserts, key_names, keys));
        GPIVOT_ASSIGN_OR_RETURN(restricted,
                                exec::UnionAll(restricted, inserted));
      }
      return restricted;
    }
    case PlanKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(
          Table child, EvaluatePostRestricted(propagator, node->child(),
                                              key_names, keys));
      return exec::Select(child, node->predicate());
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(
          Table child, EvaluatePostRestricted(propagator, node->child(),
                                              key_names, keys));
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> kept,
                              node->KeptColumns());
      return exec::Project(child, kept);
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      exec::JoinSpec spec;
      spec.left_keys = node->left_keys();
      spec.right_keys = node->right_keys();
      spec.type = exec::JoinType::kInner;
      spec.residual = node->residual();
      // Each side is restricted on whatever key columns it exposes.
      GPIVOT_ASSIGN_OR_RETURN(
          Table left, EvaluatePostRestricted(propagator, node->left(),
                                             key_names, keys));
      GPIVOT_ASSIGN_OR_RETURN(
          Table right, EvaluatePostRestricted(propagator, node->right(),
                                              key_names, keys));
      return exec::HashJoin(left, right, spec,
                            propagator->exec_context());
    }
    default:
      break;
  }
  GPIVOT_ASSIGN_OR_RETURN(Table full, post_or_pre(plan));
  return exec::SemiJoinKeySet(full, key_names, keys);
}

// Context copy that attributes subsequent operator work to plan node
// `node`; a no-op when no collector is attached or the node is unknown.
ExecContext Attributed(const ExecContext& ctx, int node) {
  ExecContext out = ctx;
  if (out.cost != nullptr && node >= 0) out.cost_node = node;
  return out;
}

// Fig. 28: an aggregate view is delete-maintainable only with a per-group
// COUNT(*). Adds one (and a matching pivot measure) when missing.
Result<PlanPtr> EnsureCountStar(const PlanPtr& plan) {
  GPIVOT_CHECK(plan->kind() == PlanKind::kGPivot) << "expects GPIVOT top";
  const auto* pivot = static_cast<const GPivotNode*>(plan.get());
  GPIVOT_CHECK(pivot->child()->kind() == PlanKind::kGroupBy)
      << "expects GPIVOT over GROUPBY";
  const auto* groupby =
      static_cast<const GroupByNode*>(pivot->child().get());
  for (const AggSpec& agg : groupby->aggregates()) {
    if (agg.func == AggFunc::kCountStar) return plan;
  }
  std::string count_name = "cnt_star";
  GPIVOT_ASSIGN_OR_RETURN(Schema group_schema, groupby->OutputSchema());
  while (group_schema.HasColumn(count_name)) count_name += "_";
  std::vector<AggSpec> aggregates = groupby->aggregates();
  aggregates.push_back(AggSpec::CountStar(count_name));
  PivotSpec spec = pivot->spec();
  spec.pivot_on.push_back(count_name);
  return MakeGPivot(MakeGroupBy(groupby->child(), groupby->group_columns(),
                                std::move(aggregates)),
                    std::move(spec));
}

}  // namespace

Result<MaintenancePlan> MaintenancePlan::Compile(PlanPtr view_query,
                                                 RefreshStrategy strategy) {
  GPIVOT_ASSIGN_OR_RETURN(
      MaintenancePlan plan, CompileInternal(std::move(view_query), strategy));
  plan.node_ids_ =
      std::make_shared<const PlanNodeIds>(AssignNodeIds(plan.effective_query_));
  plan.cost_ = std::make_shared<obs::CostCollector>();
  // The staging code applies the top pivot (and, for kCombinedGroupBy, the
  // GROUPBY under it) to delta tables directly rather than through
  // Evaluate/Propagate; resolve their ids once so that work is attributed
  // to the right nodes.
  const PlanNode* top = plan.effective_query_.get();
  const PlanNode* pivot = nullptr;
  if (top->kind() == PlanKind::kGPivot) {
    pivot = top;
  } else if (top->kind() == PlanKind::kSelect) {
    const PlanNode* child =
        static_cast<const SelectNode*>(top)->child().get();
    if (child->kind() == PlanKind::kGPivot) pivot = child;
  }
  if (pivot != nullptr) {
    plan.pivot_node_id_ = plan.node_ids_->IdOf(pivot);
    const PlanNode* pivot_child =
        static_cast<const GPivotNode*>(pivot)->child().get();
    if (pivot_child->kind() == PlanKind::kGroupBy) {
      plan.group_node_id_ = plan.node_ids_->IdOf(pivot_child);
    }
  }
  return plan;
}

Result<MaintenancePlan> MaintenancePlan::CompileInternal(
    PlanPtr view_query, RefreshStrategy strategy) {
  MaintenancePlan plan;
  plan.strategy_ = strategy;
  plan.original_query_ = view_query;
  plan.effective_query_ = view_query;

  switch (strategy) {
    case RefreshStrategy::kFullRecompute:
    case RefreshStrategy::kInsertDelete:
      return plan;

    case RefreshStrategy::kUpdate:
    case RefreshStrategy::kSelectPushdownUpdate: {
      PlanPtr query = view_query;
      if (strategy == RefreshStrategy::kSelectPushdownUpdate) {
        bool applied = false;
        GPIVOT_ASSIGN_OR_RETURN(
            query,
            TransformFirstMatch(query, &rewrite::PushSelectBelowPivot,
                                &applied));
        if (!applied) {
          return Status::NotApplicable(
              "SelectPushdownUpdate: no σ-over-GPIVOT to push down");
        }
      }
      GPIVOT_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                              rewrite::PullUpPivots(query));
      if (outcome.top_shape != rewrite::TopShape::kGPivotTop &&
          outcome.top_shape != rewrite::TopShape::kGPivotOverGroupByTop) {
        return Status::NotApplicable(
            StrCat("Update strategy needs a GPIVOT on top after rewriting; "
                   "got ",
                   rewrite::TopShapeToString(outcome.top_shape)));
      }
      plan.effective_query_ = outcome.plan;
      const auto* pivot =
          static_cast<const GPivotNode*>(outcome.plan.get());
      if (pivot->spec().keep_all_null_rows) {
        return Status::NotApplicable(
            "Fig. 23 update rules require Eq. 3 pivot semantics; §8 "
            "keep-⊥-rows views need the insert/delete strategy (or an "
            "auxiliary per-key COUNT view)");
      }
      plan.pivot_child_ = pivot->child();
      GPIVOT_ASSIGN_OR_RETURN(Schema view_schema, outcome.plan->OutputSchema());
      GPIVOT_ASSIGN_OR_RETURN(PivotLayout layout,
                              PivotLayout::FromSchema(view_schema,
                                                      pivot->spec()));
      plan.layout_ = std::move(layout);
      return plan;
    }

    case RefreshStrategy::kCombinedGroupBy: {
      GPIVOT_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                              rewrite::PullUpPivots(view_query));
      if (outcome.top_shape != rewrite::TopShape::kGPivotOverGroupByTop) {
        return Status::NotApplicable(
            "CombinedGroupBy needs GPIVOT over GROUPBY on top");
      }
      {
        const auto* top = static_cast<const GPivotNode*>(outcome.plan.get());
        if (top->spec().keep_all_null_rows) {
          return Status::NotApplicable(
              "Fig. 27 rules require Eq. 3 pivot semantics (§8)");
        }
      }
      GPIVOT_ASSIGN_OR_RETURN(PlanPtr with_count,
                              EnsureCountStar(outcome.plan));
      plan.effective_query_ = with_count;
      const auto* pivot = static_cast<const GPivotNode*>(with_count.get());
      const auto* groupby =
          static_cast<const GroupByNode*>(pivot->child().get());
      plan.pivot_child_ = pivot->child();
      plan.group_child_ = groupby->child();
      plan.group_columns_ = groupby->group_columns();
      plan.group_aggregates_ = groupby->aggregates();

      GPIVOT_ASSIGN_OR_RETURN(Schema view_schema, with_count->OutputSchema());
      GPIVOT_ASSIGN_OR_RETURN(
          PivotLayout layout,
          PivotLayout::FromSchema(view_schema, pivot->spec()));

      AggregateLayout aggs;
      std::optional<size_t> count_measure;
      for (size_t b = 0; b < pivot->spec().num_measures(); ++b) {
        const std::string& measure = pivot->spec().pivot_on[b];
        const AggSpec* found = nullptr;
        for (const AggSpec& agg : groupby->aggregates()) {
          if (agg.output == measure) found = &agg;
        }
        if (found == nullptr) {
          return Status::InvalidArgument(
              StrCat("pivot measure '", measure,
                     "' is not a GROUPBY aggregate output"));
        }
        if (found->func != AggFunc::kSum && found->func != AggFunc::kCount &&
            found->func != AggFunc::kCountStar) {
          return Status::InvalidArgument(
              "Fig. 27 maintains SUM/COUNT aggregates");
        }
        if (found->func == AggFunc::kCountStar && !count_measure.has_value()) {
          count_measure = b;
        }
        aggs.measure_funcs.push_back(found->func);
      }
      GPIVOT_CHECK(count_measure.has_value())
          << "EnsureCountStar guarantees a COUNT(*) measure";
      aggs.count_measure = *count_measure;
      plan.agg_layout_ = std::move(aggs);
      plan.layout_ = std::move(layout);
      return plan;
    }

    case RefreshStrategy::kCombinedSelect: {
      GPIVOT_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                              rewrite::PullUpPivots(view_query));
      if (outcome.top_shape != rewrite::TopShape::kSelectOverGPivotTop) {
        return Status::NotApplicable(
            "CombinedSelect needs σ over GPIVOT on top after rewriting");
      }
      plan.effective_query_ = outcome.plan;
      const auto* select =
          static_cast<const SelectNode*>(outcome.plan.get());
      const auto* pivot =
          static_cast<const GPivotNode*>(select->child().get());
      if (pivot->spec().keep_all_null_rows) {
        return Status::NotApplicable(
            "Fig. 29 rules require Eq. 3 pivot semantics (§8)");
      }
      plan.pivot_child_ = pivot->child();
      plan.select_condition_ = select->predicate();
      if (!select->predicate()->IsNullIntolerant()) {
        return Status::InvalidArgument(
            "Fig. 29 rules require a null-intolerant σ condition");
      }
      GPIVOT_ASSIGN_OR_RETURN(Schema view_schema,
                              select->child()->OutputSchema());
      GPIVOT_ASSIGN_OR_RETURN(
          PivotLayout layout,
          PivotLayout::FromSchema(view_schema, pivot->spec()));
      // Which combos the condition references (σ_c' in Fig. 29): only delta
      // rows with these dimension values can newly qualify a key.
      for (const std::string& name :
           ReferencedColumns(select->predicate())) {
        for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
          for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
            if (layout.spec.OutputColumnName(c, b) == name) {
              plan.condition_combos_.insert(c);
            }
          }
        }
      }
      if (plan.condition_combos_.empty()) {
        return Status::InvalidArgument(
            "CombinedSelect: σ condition references no pivoted cell");
      }
      plan.layout_ = std::move(layout);
      return plan;
    }
  }
  return Status::Internal("unknown strategy");
}

Result<StagedRefresh> MaintenancePlan::Stage(const Catalog& pre_catalog,
                                             const SourceDeltas& deltas,
                                             const MaterializedView& view,
                                             const ExecContext& ctx) const {
  GPIVOT_FAULT_POINT("MaintenancePlan::Stage");
  obs::ScopedLatency latency(ctx.metrics, "ivm.stage.ms");
  // Collect per-node actuals for this refresh unless the caller already
  // attached a collector of their own. "Last stage wins": the collector is
  // reset here, so ExplainAnalyze always describes the most recent refresh.
  ExecContext stage_ctx = ctx;
  if (stage_ctx.cost == nullptr && cost_ != nullptr) {
    cost_->Reset();
    stage_ctx.cost = cost_.get();
    stage_ctx.plan_ids = node_ids_.get();
  }
  DeltaPropagator propagator(&pre_catalog, &deltas, stage_ctx);
  StagedRefresh staged;
  switch (strategy_) {
    case RefreshStrategy::kFullRecompute: {
      GPIVOT_ASSIGN_OR_RETURN(MaterializedView rebuilt,
                              StageFullRecompute(&propagator));
      staged.rebuild = std::move(rebuilt);
      return staged;
    }
    case RefreshStrategy::kInsertDelete: {
      GPIVOT_ASSIGN_OR_RETURN(MergePlan merge,
                              StageInsertDeleteRefresh(&propagator, view));
      staged.merge = std::move(merge);
      return staged;
    }
    case RefreshStrategy::kUpdate:
    case RefreshStrategy::kSelectPushdownUpdate: {
      GPIVOT_ASSIGN_OR_RETURN(MergePlan merge,
                              StagePivotUpdateRefresh(&propagator, view));
      staged.merge = std::move(merge);
      return staged;
    }
    case RefreshStrategy::kCombinedGroupBy: {
      GPIVOT_ASSIGN_OR_RETURN(MergePlan merge,
                              StageCombinedGroupByRefresh(&propagator, view));
      staged.merge = std::move(merge);
      return staged;
    }
    case RefreshStrategy::kCombinedSelect: {
      GPIVOT_ASSIGN_OR_RETURN(MergePlan merge,
                              StageCombinedSelectRefresh(&propagator, view));
      staged.merge = std::move(merge);
      return staged;
    }
  }
  return Status::Internal("unknown strategy");
}

Status MaintenancePlan::CommitStaged(StagedRefresh staged,
                                     MaterializedView* view, UndoLog* undo,
                                     const ExecContext& ctx) {
  if (staged.rebuild.has_value()) {
    MaterializedView old = std::move(*view);
    *view = std::move(*staged.rebuild);
    undo->RecordRebuild(std::move(old));
    if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
      ctx.metrics->AddCounter("ivm.merge.rebuilds");
    }
    return Status::OK();
  }
  GPIVOT_CHECK(staged.merge.has_value()) << "empty staged refresh";
  return ExecuteMergePlan(view, *staged.merge, undo, ctx);
}

Status MaintenancePlan::Refresh(const Catalog& pre_catalog,
                                const SourceDeltas& deltas,
                                MaterializedView* view,
                                const ExecContext& ctx) const {
  GPIVOT_ASSIGN_OR_RETURN(StagedRefresh staged,
                          Stage(pre_catalog, deltas, *view, ctx));
  UndoLog undo;
  Status st = CommitStaged(std::move(staged), view, &undo, ctx);
  if (!st.ok()) undo.Rollback(view);
  return st;
}

Result<MaterializedView> MaintenancePlan::StageFullRecompute(
    DeltaPropagator* propagator) const {
  GPIVOT_ASSIGN_OR_RETURN(Table recomputed,
                          propagator->EvaluatePost(effective_query_));
  return MaterializedView::Create(std::move(recomputed));
}

Result<MergePlan> MaintenancePlan::StageInsertDeleteRefresh(
    DeltaPropagator* propagator, const MaterializedView& view) const {
  GPIVOT_ASSIGN_OR_RETURN(Delta view_delta,
                          propagator->Propagate(effective_query_));
  return StageInsertDelete(view, view_delta);
}

Result<MergePlan> MaintenancePlan::StagePivotUpdateRefresh(
    DeltaPropagator* propagator, const MaterializedView& view) const {
  GPIVOT_CHECK(layout_.has_value()) << "missing layout";
  GPIVOT_ASSIGN_OR_RETURN(Delta child_delta,
                          propagator->Propagate(pivot_child_));
  ExecContext pivot_ctx =
      Attributed(propagator->exec_context(), pivot_node_id_);
  GPIVOT_ASSIGN_OR_RETURN(
      Table pivoted_ins, GPivot(child_delta.inserts, layout_->spec, pivot_ctx));
  GPIVOT_ASSIGN_OR_RETURN(
      Table pivoted_del, GPivot(child_delta.deletes, layout_->spec, pivot_ctx));
  return StagePivotUpdate(view, *layout_,
                          Delta{std::move(pivoted_ins),
                                std::move(pivoted_del)});
}

Result<MergePlan> MaintenancePlan::StageCombinedGroupByRefresh(
    DeltaPropagator* propagator, const MaterializedView& view) const {
  GPIVOT_CHECK(layout_.has_value() && agg_layout_.has_value())
      << "missing layouts";
  // Propagate only to the GROUPBY *input*; the group deltas are partial
  // aggregates of the delta rows — no group recomputation (Fig. 27).
  GPIVOT_ASSIGN_OR_RETURN(Delta child_delta,
                          propagator->Propagate(group_child_));
  ExecContext group_ctx =
      Attributed(propagator->exec_context(), group_node_id_);
  ExecContext pivot_ctx =
      Attributed(propagator->exec_context(), pivot_node_id_);
  GPIVOT_ASSIGN_OR_RETURN(
      Table agg_ins, exec::GroupBy(child_delta.inserts, group_columns_,
                                   group_aggregates_, group_ctx));
  GPIVOT_ASSIGN_OR_RETURN(
      Table agg_del, exec::GroupBy(child_delta.deletes, group_columns_,
                                   group_aggregates_, group_ctx));
  GPIVOT_ASSIGN_OR_RETURN(Table pivoted_ins,
                          GPivot(agg_ins, layout_->spec, pivot_ctx));
  GPIVOT_ASSIGN_OR_RETURN(Table pivoted_del,
                          GPivot(agg_del, layout_->spec, pivot_ctx));
  return StagePivotGroupByUpdate(view, *layout_, *agg_layout_,
                                 Delta{std::move(pivoted_ins),
                                       std::move(pivoted_del)});
}

Result<MergePlan> MaintenancePlan::StageCombinedSelectRefresh(
    DeltaPropagator* propagator, const MaterializedView& view) const {
  GPIVOT_CHECK(layout_.has_value()) << "missing layout";
  const PivotSpec& spec = layout_->spec;
  GPIVOT_ASSIGN_OR_RETURN(Delta child_delta,
                          propagator->Propagate(pivot_child_));
  ExecContext pivot_ctx =
      Attributed(propagator->exec_context(), pivot_node_id_);
  GPIVOT_ASSIGN_OR_RETURN(Table pivoted_ins,
                          GPivot(child_delta.inserts, spec, pivot_ctx));
  GPIVOT_ASSIGN_OR_RETURN(Table pivoted_del,
                          GPivot(child_delta.deletes, spec, pivot_ctx));

  // Recompute term (insert case, Fig. 29): keys touched by σ-relevant
  // inserts, re-pivoted from the post-state input.
  Table recompute_candidates{Table(Schema{})};
  GPIVOT_ASSIGN_OR_RETURN(Schema child_schema, pivot_child_->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          spec.KeyColumns(child_schema));
  if (!child_delta.inserts.empty()) {
    // σ_c': keep only delta rows whose dimension values belong to a combo
    // the condition references.
    std::vector<ExprPtr> combo_preds;
    for (size_t c : condition_combos_) {
      std::vector<ExprPtr> conjuncts;
      for (size_t d = 0; d < spec.pivot_by.size(); ++d) {
        conjuncts.push_back(Eq(Col(spec.pivot_by[d]),
                               Lit(spec.combos[c][d])));
      }
      combo_preds.push_back(And(std::move(conjuncts)));
    }
    GPIVOT_ASSIGN_OR_RETURN(
        Table relevant,
        exec::Select(child_delta.inserts, Or(std::move(combo_preds)),
                     propagator->exec_context()));
    if (!relevant.empty()) {
      GPIVOT_ASSIGN_OR_RETURN(auto keys,
                              exec::CollectKeySet(relevant, key_names));
      GPIVOT_ASSIGN_OR_RETURN(
          Table affected,
          EvaluatePostRestricted(propagator, pivot_child_, key_names, keys));
      // The pushed-down restriction may be on a key subset; apply the exact
      // key filter before pivoting.
      GPIVOT_ASSIGN_OR_RETURN(
          affected, exec::SemiJoinKeySet(affected, key_names, keys,
                                         propagator->exec_context()));
      GPIVOT_RETURN_NOT_OK(affected.SetKey({}));
      GPIVOT_ASSIGN_OR_RETURN(recompute_candidates,
                              GPivot(affected, spec, pivot_ctx));
    }
  }

  GPIVOT_ASSIGN_OR_RETURN(Schema view_schema,
                          effective_query_->OutputSchema());
  GPIVOT_ASSIGN_OR_RETURN(CompiledExpr condition,
                          CompileExpr(select_condition_, view_schema));
  return StageSelectPivotUpdate(view, *layout_, condition,
                                Delta{std::move(pivoted_ins),
                                      std::move(pivoted_del)},
                                recompute_candidates);
}

std::string MaintenancePlan::ToString() const {
  return StrCat("MaintenancePlan[", RefreshStrategyToString(strategy_),
                "]\n", PlanToString(effective_query_));
}

CostReport ExplainAnalyze(const MaintenancePlan& plan) {
  CostReport report =
      BuildCostReport(plan.effective_query(), plan.node_ids(),
                      plan.cost_collector()->Snapshot());
  report.strategy = RefreshStrategyToString(plan.strategy());
  return report;
}

}  // namespace gpivot::ivm
