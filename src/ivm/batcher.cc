#include "ivm/batcher.h"

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/runtime.h"
#include "util/string_util.h"

namespace gpivot::ivm {

namespace {

// Publishes the batcher's live queue depth to the runtime (admin-only)
// registry; /healthz compares pending_net_rows against max_net_rows. A
// single relaxed load when the admin surface is off.
void PublishQueueGauges(size_t pending_net_rows, size_t pending_batches) {
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (!runtime.enabled()) return;
  runtime.metrics().SetGauge("ivm.batcher.pending_net_rows",
                             static_cast<double>(pending_net_rows));
  runtime.metrics().SetGauge("ivm.batcher.pending_batches",
                             static_cast<double>(pending_batches));
}

// One table's signed row bag. Entries keep first-touch order; a row whose
// multiplicity returns to zero stays in the vector (dead weight until the
// next flush) but is skipped on emission, so emitted deltas never depend on
// hash-map iteration.
//
// With heavy_threshold > 0 and a keyed table, the bag additionally tracks
// per-key touch frequencies: a key that reaches the threshold is promoted
// to a dedicated HeavyAcc holding at most one pending delete and one
// pending insert — hot-key churn (delete current version, insert next)
// then folds in place instead of appending a dead entry pair per batch.
// A key whose pending shape stops fitting the acc spills back permanently.
struct NetTableBag {
  Schema schema;
  std::vector<std::pair<Row, int64_t>> entries;
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  size_t net_rows = 0;  // Δ + ∇ rows this bag would emit right now

  // Heavy/light classifier state; inert unless heavy_threshold > 0 and the
  // table carries a key. Keyed by the *projected* key row, with the whole
  // per-key lifecycle — touch counting, the dedicated accumulator, the
  // permanent spill — in ONE map entry, so the per-row cost is a single
  // hash probe instead of one per lifecycle structure.
  struct HeavyAcc {
    std::optional<Row> neg;  // pending delete of the key's current version
    std::optional<Row> pos;  // pending insert of the key's next version
  };
  enum class KeyMode : uint8_t {
    kTracking,  // counting touches toward the threshold
    kHeavy,     // promoted: pending rows live in `acc`
    kSpilled,   // permanently back on the general path
  };
  struct KeyState {
    KeyMode mode = KeyMode::kTracking;
    size_t freq = 0;                // touches while tracking
    std::vector<size_t> entry_ids;  // this key's general entries (tracking)
    HeavyAcc acc;                   // pending rows (heavy)
  };
  // Transparent hash/eq let the hot path probe with the unprojected row —
  // HashRowAt(row, idx) == HashRow(ProjectRow(row, idx)) by construction —
  // so a repeat touch of a known key allocates nothing.
  struct KeyRef {
    const Row* row;
    const std::vector<size_t>* indices;
  };
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const Row& key) const { return HashRow(key); }
    size_t operator()(const KeyRef& ref) const {
      return HashRowAt(*ref.row, *ref.indices);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    static bool Matches(const Row& key, const KeyRef& ref) {
      if (key.size() != ref.indices->size()) return false;
      for (size_t i = 0; i < key.size(); ++i) {
        if (key[i] != (*ref.row)[(*ref.indices)[i]]) return false;
      }
      return true;
    }
    bool operator()(const Row& a, const Row& b) const { return a == b; }
    bool operator()(const Row& a, const KeyRef& b) const {
      return Matches(a, b);
    }
    bool operator()(const KeyRef& a, const Row& b) const {
      return Matches(b, a);
    }
  };
  using KeysMap = std::unordered_map<Row, KeyState, KeyHash, KeyEq>;
  size_t heavy_threshold = 0;       // 0 = classifier off for this bag
  std::vector<size_t> key_indices;  // the table's key columns
  KeysMap keys;
  // Heavy keys in classification order: emission appends their acc rows
  // after the general entries in this order, so the emitted delta is a
  // pure function of the ingest sequence (plus the threshold).
  std::vector<Row> heavy_order;
  size_t keys_classified = 0;
  size_t spills = 0;
};

// Folds one signed occurrence of `row` into the general bag. Returns the
// number of rows the fold annihilated: 2 when the occurrence cancelled
// against a pending row of the opposite sign (both vanish from the net),
// else 0. `*created` reports whether a fresh entry was appended.
size_t FoldRowGeneral(NetTableBag* bag, const Row& row, int64_t sign,
                      bool* created = nullptr) {
  auto [it, inserted] = bag->index.emplace(row, bag->entries.size());
  if (created != nullptr) *created = inserted;
  if (inserted) {
    bag->entries.emplace_back(row, sign);
    ++bag->net_rows;
    return 0;
  }
  int64_t& count = bag->entries[it->second].second;
  bool cancels = (count > 0) != (sign > 0) && count != 0;
  count += sign;
  if (cancels) {
    --bag->net_rows;
    return 2;
  }
  ++bag->net_rows;
  return 0;
}

// Demotes a heavy key: its pending acc rows re-fold into the general bag
// (their zeroed pre-promotion entries revive, preserving cancellation) and
// the key turns permanently spilled, so every later fold stays general.
void SpillHeavy(NetTableBag* bag, NetTableBag::KeyState* state) {
  NetTableBag::HeavyAcc acc = std::move(state->acc);
  state->acc = NetTableBag::HeavyAcc{};
  // The key stays in heavy_order; emission skips non-kHeavy keys.
  state->mode = NetTableBag::KeyMode::kSpilled;
  ++bag->spills;
  // net_rows stays consistent: each pending acc row leaves the acc (-1)
  // and FoldRowGeneral counts it back in (+1; a zeroed entry never
  // cancels).
  if (acc.neg.has_value()) {
    --bag->net_rows;
    FoldRowGeneral(bag, *acc.neg, -1);
  }
  if (acc.pos.has_value()) {
    --bag->net_rows;
    FoldRowGeneral(bag, *acc.pos, +1);
  }
}

// Folds one occurrence of a heavy key's row into its acc. Falls back to a
// spill + general fold when the acc's one-delete-one-insert shape cannot
// absorb the occurrence.
size_t FoldRowHeavy(NetTableBag* bag, NetTableBag::KeyState* state,
                    const Row& row, int64_t sign) {
  NetTableBag::HeavyAcc& acc = state->acc;
  RowEq eq;
  if (sign < 0) {
    if (acc.pos.has_value() && eq(*acc.pos, row)) {
      // Deleting the row this window pended for insert: both vanish.
      acc.pos.reset();
      --bag->net_rows;
      return 2;
    }
    if (!acc.neg.has_value()) {
      acc.neg = row;
      ++bag->net_rows;
      return 0;
    }
  } else {
    if (acc.neg.has_value() && eq(*acc.neg, row)) {
      // Re-inserting the row this window pended for delete: both vanish.
      acc.neg.reset();
      --bag->net_rows;
      return 2;
    }
    if (!acc.pos.has_value()) {
      acc.pos = row;
      ++bag->net_rows;
      return 0;
    }
  }
  // Slot conflict: the side is occupied by a different row, so the key's
  // pending multiplicity no longer fits the acc.
  SpillHeavy(bag, state);
  return FoldRowGeneral(bag, row, sign);
}

// Promotes a tracked key to a dedicated acc if its live general entries fit
// the one-pending-delete + one-pending-insert shape; otherwise marks it
// permanently spilled. Migrated entries are zeroed in place (their rows now
// live in the acc), which leaves net_rows unchanged.
void TryClassifyHeavy(NetTableBag* bag, NetTableBag::KeysMap::iterator kit) {
  NetTableBag::KeyState& state = kit->second;
  NetTableBag::HeavyAcc acc;
  std::vector<size_t> migrated;
  for (size_t e : state.entry_ids) {
    const int64_t count = bag->entries[e].second;
    if (count == 0) continue;
    if (count == -1 && !acc.neg.has_value()) {
      acc.neg = bag->entries[e].first;
    } else if (count == 1 && !acc.pos.has_value()) {
      acc.pos = bag->entries[e].first;
    } else {
      state.mode = NetTableBag::KeyMode::kSpilled;
      state.entry_ids = {};
      ++bag->spills;
      return;
    }
    migrated.push_back(e);
  }
  for (size_t e : migrated) bag->entries[e].second = 0;
  state.mode = NetTableBag::KeyMode::kHeavy;
  state.acc = std::move(acc);
  state.entry_ids = {};
  bag->heavy_order.push_back(kit->first);
  ++bag->keys_classified;
}

// Entry point for one signed occurrence: dispatches between the general
// bag and the heavy/light classifier.
size_t FoldRow(NetTableBag* bag, const Row& row, int64_t sign) {
  if (bag->heavy_threshold == 0) return FoldRowGeneral(bag, row, sign);
  auto kit = bag->keys.find(NetTableBag::KeyRef{&row, &bag->key_indices});
  if (kit == bag->keys.end()) {
    kit = bag->keys
              .emplace(ProjectRow(row, bag->key_indices),
                       NetTableBag::KeyState{})
              .first;
  }
  NetTableBag::KeyState& state = kit->second;
  if (state.mode == NetTableBag::KeyMode::kHeavy) {
    return FoldRowHeavy(bag, &state, row, sign);
  }
  if (state.mode == NetTableBag::KeyMode::kSpilled) {
    return FoldRowGeneral(bag, row, sign);
  }
  bool created = false;
  size_t cancelled = FoldRowGeneral(bag, row, sign, &created);
  if (created) state.entry_ids.push_back(bag->entries.size() - 1);
  if (++state.freq >= bag->heavy_threshold) TryClassifyHeavy(bag, kit);
  return cancelled;
}

// The schema checks Ingest needs before folding: unknown tables are
// NotFound and *both* delta sides — empty or not — must match the base
// schema, because an empty side's schema survives the merge and can end up
// on a non-empty net side (see ViewManager::ValidateDeltas, which enforces
// the same rule per epoch).
Status ValidateBatchSchemas(const Catalog& catalog,
                            const SourceDeltas& deltas) {
  for (const auto& [table_name, delta] : deltas) {
    Result<const Table*> table_or = catalog.GetTable(table_name);
    if (!table_or.ok()) {
      return Status::NotFound(
          StrCat("delta for unknown table '", table_name, "'"));
    }
    const Schema& schema = (*table_or)->schema();
    if (delta.deletes.schema() != schema) {
      return Status::InvalidArgument(
          StrCat("delete delta for table '", table_name,
                 "' does not match its schema"));
    }
    if (delta.inserts.schema() != schema) {
      return Status::InvalidArgument(
          StrCat("insert delta for table '", table_name,
                 "' does not match its schema"));
    }
  }
  return Status::OK();
}

}  // namespace

// Keyed by table name; emission iterates table_order_ (first-touch) so the
// flushed SourceDeltas map contents are a pure function of the ingest
// sequence.
struct DeltaBatcher::NetState {
  std::unordered_map<std::string, NetTableBag> bags;
  std::vector<std::string> table_order;
  size_t net_rows = 0;
  // Heavy/light classifier threshold new bags inherit (0 = off; the
  // queue-less CompactDeltas always runs with 0).
  size_t heavy_threshold = 0;

  NetTableBag* BagFor(const std::string& table, const Table& base) {
    auto [it, inserted] = bags.try_emplace(table);
    if (inserted) {
      it->second.schema = base.schema();
      if (heavy_threshold > 0 && base.has_key()) {
        // Key columns resolve against a schema the batch already
        // validated, so this cannot fail; an unkeyed table simply keeps
        // the classifier off (no key to accumulate by).
        Result<std::vector<size_t>> key_indices = base.KeyIndices();
        if (key_indices.ok()) {
          it->second.key_indices = std::move(*key_indices);
          it->second.heavy_threshold = heavy_threshold;
        }
      }
      table_order.push_back(table);
    }
    return &it->second;
  }

  // Folds one batch; returns the number of rows it cancelled. Deletes fold
  // before inserts, mirroring the order ApplyDeltaToTable applies them.
  size_t Fold(const Catalog& catalog, const SourceDeltas& deltas) {
    size_t cancelled = 0;
    for (const auto& [table_name, delta] : deltas) {
      if (delta.empty()) continue;
      NetTableBag* bag = BagFor(table_name, **catalog.GetTable(table_name));
      for (const Row& row : delta.deletes.rows()) {
        cancelled += FoldRow(bag, row, -1);
      }
      for (const Row& row : delta.inserts.rows()) {
        cancelled += FoldRow(bag, row, +1);
      }
    }
    net_rows = 0;
    for (const auto& [name, bag] : bags) net_rows += bag.net_rows;
    return cancelled;
  }

  // Lifetime classifier totals across all bags (monotone within one
  // pending window; Ingest diffs them around a fold).
  std::pair<size_t, size_t> HeavyTotals() const {
    std::pair<size_t, size_t> totals{0, 0};
    for (const auto& [name, bag] : bags) {
      totals.first += bag.keys_classified;
      totals.second += bag.spills;
    }
    return totals;
  }

  // The compacted net delta: positive multiplicities become Δ rows,
  // negative ones ∇ rows; fully cancelled rows — and fully cancelled
  // tables — are dropped. Heavy-key acc rows emit after the general
  // entries, in classification order.
  SourceDeltas Emit() const {
    SourceDeltas net;
    for (const std::string& table : table_order) {
      const NetTableBag& bag = bags.at(table);
      if (bag.net_rows == 0) continue;
      Delta delta = Delta::Empty(bag.schema);
      for (const auto& [row, count] : bag.entries) {
        for (int64_t i = 0; i < count; ++i) delta.inserts.AddRow(row);
        for (int64_t i = 0; i < -count; ++i) delta.deletes.AddRow(row);
      }
      for (const Row& key : bag.heavy_order) {
        auto it = bag.keys.find(key);
        if (it == bag.keys.end() ||
            it->second.mode != NetTableBag::KeyMode::kHeavy) {
          continue;  // spilled back to the bag
        }
        const NetTableBag::HeavyAcc& acc = it->second.acc;
        if (acc.neg.has_value()) delta.deletes.AddRow(*acc.neg);
        if (acc.pos.has_value()) delta.inserts.AddRow(*acc.pos);
      }
      net.emplace(table, std::move(delta));
    }
    return net;
  }
};

Result<BatcherOptions> BatcherOptions::FromEnv() {
  auto parse = [](const char* name, size_t* out) -> Status {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') return Status::OK();
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (value[0] == '-' || end == value || *end != '\0') {
      return Status::InvalidArgument(
          StrCat(name, " is not a non-negative integer: '", value, "'"));
    }
    *out = static_cast<size_t>(parsed);
    return Status::OK();
  };
  BatcherOptions options;
  GPIVOT_RETURN_NOT_OK(parse("GPIVOT_BATCH_MAX_BATCHES",
                             &options.max_batches));
  GPIVOT_RETURN_NOT_OK(parse("GPIVOT_BATCH_MAX_NET_ROWS",
                             &options.max_net_rows));
  GPIVOT_RETURN_NOT_OK(parse("GPIVOT_HEAVY_KEY_THRESHOLD",
                             &options.heavy_key_threshold));
  return options;
}

DeltaBatcher::DeltaBatcher(ViewManager* manager, BatcherOptions options)
    : manager_(manager),
      options_(options),
      net_(std::make_unique<NetState>()) {
  net_->heavy_threshold = options_.heavy_key_threshold;
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (runtime.enabled()) {
    runtime.metrics().SetGauge("ivm.batcher.max_net_rows",
                               static_cast<double>(options_.max_net_rows));
  }
}

DeltaBatcher::~DeltaBatcher() = default;

size_t DeltaBatcher::pending_net_rows() const { return net_->net_rows; }

Status DeltaBatcher::Ingest(const SourceDeltas& deltas) {
  GPIVOT_RETURN_NOT_OK(manager_->ValidateDeltas(deltas));
  size_t ingested = 0;
  for (const auto& [table_name, delta] : deltas) {
    ingested += delta.inserts.num_rows() + delta.deletes.num_rows();
  }
  const bool track_heavy = options_.heavy_key_threshold > 0;
  const std::pair<size_t, size_t> heavy_before =
      track_heavy ? net_->HeavyTotals() : std::pair<size_t, size_t>{0, 0};
  size_t cancelled = net_->Fold(manager_->catalog(), deltas);
  size_t classified = 0, spills = 0;
  if (track_heavy) {
    const std::pair<size_t, size_t> heavy_after = net_->HeavyTotals();
    classified = heavy_after.first - heavy_before.first;
    spills = heavy_after.second - heavy_before.second;
  }
  ++pending_batches_;
  ++stats_.batches_absorbed;
  stats_.rows_ingested += ingested;
  stats_.rows_cancelled += cancelled;
  stats_.heavy_keys_classified += classified;
  stats_.heavy_spills += spills;
  obs::MetricsRegistry* metrics = manager_->exec_context().metrics;
  if (metrics != nullptr && metrics->enabled()) {
    metrics->AddCounter("ivm.batcher.batches_absorbed");
    metrics->AddCounter("ivm.batcher.rows_ingested", ingested);
    metrics->AddCounter("ivm.batcher.rows_cancelled", cancelled);
    // Only materialized while the classifier runs, so counter dumps of
    // threshold-0 runs are byte-identical to pre-classifier builds.
    if (classified > 0) {
      metrics->AddCounter("ivm.batcher.heavy_keys_classified", classified);
    }
    if (spills > 0) metrics->AddCounter("ivm.batcher.heavy_spills", spills);
  }
  PublishQueueGauges(net_->net_rows, pending_batches_);
  bool batch_limit =
      options_.max_batches > 0 && pending_batches_ >= options_.max_batches;
  bool row_limit =
      options_.max_net_rows > 0 && net_->net_rows >= options_.max_net_rows;
  if (batch_limit || row_limit) return Flush();
  return Status::OK();
}

Status DeltaBatcher::Flush() {
  SourceDeltas net = net_->Emit();
  size_t net_rows = net_->net_rows;
  Status st = manager_->BatchedApplyUpdate(net);
  if (!st.ok()) return st;  // epoch rolled back; queue stays pending
  if (net_rows == 0) {
    ++stats_.noop_flushes;
  } else {
    ++stats_.flushes;
    stats_.net_rows_flushed += net_rows;
  }
  obs::MetricsRegistry* metrics = manager_->exec_context().metrics;
  if (metrics != nullptr && metrics->enabled()) {
    metrics->AddCounter(net_rows == 0 ? "ivm.batcher.noop_flushes"
                                      : "ivm.batcher.flushes");
    metrics->AddCounter("ivm.batcher.net_rows_flushed", net_rows);
  }
  *net_ = NetState();
  net_->heavy_threshold = options_.heavy_key_threshold;
  pending_batches_ = 0;
  PublishQueueGauges(0, 0);
  return Status::OK();
}

SourceDeltas DeltaBatcher::PendingNet() const { return net_->Emit(); }

Result<SourceDeltas> CompactDeltas(const Catalog& catalog,
                                   const std::vector<SourceDeltas>& batches) {
  DeltaBatcher::NetState net;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (Status st = ValidateBatchSchemas(catalog, batches[i]); !st.ok()) {
      return Status(st.code(), StrCat("batch #", i, ": ", st.message()));
    }
    net.Fold(catalog, batches[i]);
  }
  return net.Emit();
}

}  // namespace gpivot::ivm
