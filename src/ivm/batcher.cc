#include "ivm/batcher.h"

#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/runtime.h"
#include "util/string_util.h"

namespace gpivot::ivm {

namespace {

// Publishes the batcher's live queue depth to the runtime (admin-only)
// registry; /healthz compares pending_net_rows against max_net_rows. A
// single relaxed load when the admin surface is off.
void PublishQueueGauges(size_t pending_net_rows, size_t pending_batches) {
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (!runtime.enabled()) return;
  runtime.metrics().SetGauge("ivm.batcher.pending_net_rows",
                             static_cast<double>(pending_net_rows));
  runtime.metrics().SetGauge("ivm.batcher.pending_batches",
                             static_cast<double>(pending_batches));
}

// One table's signed row bag. Entries keep first-touch order; a row whose
// multiplicity returns to zero stays in the vector (dead weight until the
// next flush) but is skipped on emission, so emitted deltas never depend on
// hash-map iteration.
struct NetTableBag {
  Schema schema;
  std::vector<std::pair<Row, int64_t>> entries;
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  size_t net_rows = 0;  // Δ + ∇ rows this bag would emit right now
};

// Folds one signed occurrence of `row` into `bag`. Returns the number of
// rows the fold annihilated: 2 when the occurrence cancelled against a
// pending row of the opposite sign (both vanish from the net), else 0.
size_t FoldRow(NetTableBag* bag, const Row& row, int64_t sign) {
  auto [it, inserted] = bag->index.emplace(row, bag->entries.size());
  if (inserted) {
    bag->entries.emplace_back(row, sign);
    ++bag->net_rows;
    return 0;
  }
  int64_t& count = bag->entries[it->second].second;
  bool cancels = (count > 0) != (sign > 0) && count != 0;
  count += sign;
  if (cancels) {
    --bag->net_rows;
    return 2;
  }
  ++bag->net_rows;
  return 0;
}

// The schema checks Ingest needs before folding: unknown tables are
// NotFound and *both* delta sides — empty or not — must match the base
// schema, because an empty side's schema survives the merge and can end up
// on a non-empty net side (see ViewManager::ValidateDeltas, which enforces
// the same rule per epoch).
Status ValidateBatchSchemas(const Catalog& catalog,
                            const SourceDeltas& deltas) {
  for (const auto& [table_name, delta] : deltas) {
    Result<const Table*> table_or = catalog.GetTable(table_name);
    if (!table_or.ok()) {
      return Status::NotFound(
          StrCat("delta for unknown table '", table_name, "'"));
    }
    const Schema& schema = (*table_or)->schema();
    if (delta.deletes.schema() != schema) {
      return Status::InvalidArgument(
          StrCat("delete delta for table '", table_name,
                 "' does not match its schema"));
    }
    if (delta.inserts.schema() != schema) {
      return Status::InvalidArgument(
          StrCat("insert delta for table '", table_name,
                 "' does not match its schema"));
    }
  }
  return Status::OK();
}

}  // namespace

// Keyed by table name; emission iterates table_order_ (first-touch) so the
// flushed SourceDeltas map contents are a pure function of the ingest
// sequence.
struct DeltaBatcher::NetState {
  std::unordered_map<std::string, NetTableBag> bags;
  std::vector<std::string> table_order;
  size_t net_rows = 0;

  NetTableBag* BagFor(const std::string& table, const Schema& schema) {
    auto [it, inserted] = bags.try_emplace(table);
    if (inserted) {
      it->second.schema = schema;
      table_order.push_back(table);
    }
    return &it->second;
  }

  // Folds one batch; returns the number of rows it cancelled. Deletes fold
  // before inserts, mirroring the order ApplyDeltaToTable applies them.
  size_t Fold(const Catalog& catalog, const SourceDeltas& deltas) {
    size_t cancelled = 0;
    for (const auto& [table_name, delta] : deltas) {
      if (delta.empty()) continue;
      NetTableBag* bag =
          BagFor(table_name, (*catalog.GetTable(table_name))->schema());
      for (const Row& row : delta.deletes.rows()) {
        cancelled += FoldRow(bag, row, -1);
      }
      for (const Row& row : delta.inserts.rows()) {
        cancelled += FoldRow(bag, row, +1);
      }
    }
    net_rows = 0;
    for (const auto& [name, bag] : bags) net_rows += bag.net_rows;
    return cancelled;
  }

  // The compacted net delta: positive multiplicities become Δ rows,
  // negative ones ∇ rows; fully cancelled rows — and fully cancelled
  // tables — are dropped.
  SourceDeltas Emit() const {
    SourceDeltas net;
    for (const std::string& table : table_order) {
      const NetTableBag& bag = bags.at(table);
      if (bag.net_rows == 0) continue;
      Delta delta = Delta::Empty(bag.schema);
      for (const auto& [row, count] : bag.entries) {
        for (int64_t i = 0; i < count; ++i) delta.inserts.AddRow(row);
        for (int64_t i = 0; i < -count; ++i) delta.deletes.AddRow(row);
      }
      net.emplace(table, std::move(delta));
    }
    return net;
  }
};

Result<BatcherOptions> BatcherOptions::FromEnv() {
  auto parse = [](const char* name, size_t* out) -> Status {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') return Status::OK();
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (value[0] == '-' || end == value || *end != '\0') {
      return Status::InvalidArgument(
          StrCat(name, " is not a non-negative integer: '", value, "'"));
    }
    *out = static_cast<size_t>(parsed);
    return Status::OK();
  };
  BatcherOptions options;
  GPIVOT_RETURN_NOT_OK(parse("GPIVOT_BATCH_MAX_BATCHES",
                             &options.max_batches));
  GPIVOT_RETURN_NOT_OK(parse("GPIVOT_BATCH_MAX_NET_ROWS",
                             &options.max_net_rows));
  return options;
}

DeltaBatcher::DeltaBatcher(ViewManager* manager, BatcherOptions options)
    : manager_(manager),
      options_(options),
      net_(std::make_unique<NetState>()) {
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (runtime.enabled()) {
    runtime.metrics().SetGauge("ivm.batcher.max_net_rows",
                               static_cast<double>(options_.max_net_rows));
  }
}

DeltaBatcher::~DeltaBatcher() = default;

size_t DeltaBatcher::pending_net_rows() const { return net_->net_rows; }

Status DeltaBatcher::Ingest(const SourceDeltas& deltas) {
  GPIVOT_RETURN_NOT_OK(manager_->ValidateDeltas(deltas));
  size_t ingested = 0;
  for (const auto& [table_name, delta] : deltas) {
    ingested += delta.inserts.num_rows() + delta.deletes.num_rows();
  }
  size_t cancelled = net_->Fold(manager_->catalog(), deltas);
  ++pending_batches_;
  ++stats_.batches_absorbed;
  stats_.rows_ingested += ingested;
  stats_.rows_cancelled += cancelled;
  obs::MetricsRegistry* metrics = manager_->exec_context().metrics;
  if (metrics != nullptr && metrics->enabled()) {
    metrics->AddCounter("ivm.batcher.batches_absorbed");
    metrics->AddCounter("ivm.batcher.rows_ingested", ingested);
    metrics->AddCounter("ivm.batcher.rows_cancelled", cancelled);
  }
  PublishQueueGauges(net_->net_rows, pending_batches_);
  bool batch_limit =
      options_.max_batches > 0 && pending_batches_ >= options_.max_batches;
  bool row_limit =
      options_.max_net_rows > 0 && net_->net_rows >= options_.max_net_rows;
  if (batch_limit || row_limit) return Flush();
  return Status::OK();
}

Status DeltaBatcher::Flush() {
  SourceDeltas net = net_->Emit();
  size_t net_rows = net_->net_rows;
  Status st = manager_->BatchedApplyUpdate(net);
  if (!st.ok()) return st;  // epoch rolled back; queue stays pending
  if (net_rows == 0) {
    ++stats_.noop_flushes;
  } else {
    ++stats_.flushes;
    stats_.net_rows_flushed += net_rows;
  }
  obs::MetricsRegistry* metrics = manager_->exec_context().metrics;
  if (metrics != nullptr && metrics->enabled()) {
    metrics->AddCounter(net_rows == 0 ? "ivm.batcher.noop_flushes"
                                      : "ivm.batcher.flushes");
    metrics->AddCounter("ivm.batcher.net_rows_flushed", net_rows);
  }
  *net_ = NetState();
  pending_batches_ = 0;
  PublishQueueGauges(0, 0);
  return Status::OK();
}

SourceDeltas DeltaBatcher::PendingNet() const { return net_->Emit(); }

Result<SourceDeltas> CompactDeltas(const Catalog& catalog,
                                   const std::vector<SourceDeltas>& batches) {
  DeltaBatcher::NetState net;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (Status st = ValidateBatchSchemas(catalog, batches[i]); !st.ok()) {
      return Status(st.code(), StrCat("batch #", i, ": ", st.message()));
    }
    net.Fold(catalog, batches[i]);
  }
  return net.Emit();
}

}  // namespace gpivot::ivm
