#include "ivm/delta.h"

#include "exec/basic_ops.h"
#include "util/string_util.h"

namespace gpivot::ivm {

std::string Delta::ToString() const {
  return StrCat("Δ(", inserts.num_rows(), " inserts, ", deletes.num_rows(),
                " deletes)");
}

Status ApplyDeltaToTable(Table* table, const Delta& delta) {
  if (!delta.deletes.empty()) {
    if (delta.deletes.schema() != table->schema()) {
      return Status::InvalidArgument("delete delta schema mismatch");
    }
    size_t before = table->num_rows();
    GPIVOT_ASSIGN_OR_RETURN(Table remaining,
                            exec::BagDifference(*table, delta.deletes));
    if (before - remaining.num_rows() != delta.deletes.num_rows()) {
      return Status::ConstraintViolation(
          "some delete-delta rows did not match any stored row");
    }
    std::vector<std::string> key = table->key();
    *table = std::move(remaining);
    GPIVOT_RETURN_NOT_OK(table->SetKey(std::move(key)));
  }
  if (!delta.inserts.empty()) {
    if (delta.inserts.schema() != table->schema()) {
      return Status::InvalidArgument("insert delta schema mismatch");
    }
    for (const Row& row : delta.inserts.rows()) {
      table->AddRow(row);
    }
  }
  return Status::OK();
}

}  // namespace gpivot::ivm
