#include "ivm/delta.h"

#include "exec/basic_ops.h"
#include "util/string_util.h"

namespace gpivot::ivm {

std::string Delta::ToString() const {
  return StrCat("Δ(", inserts.num_rows(), " inserts, ", deletes.num_rows(),
                " deletes)");
}

Status ApplyDeltaToTable(Table* table, const Delta& delta) {
  TableUndo undo;
  return ApplyDeltaToTableWithUndo(table, delta, &undo);
}

Status ApplyDeltaToTableWithUndo(Table* table, const Delta& delta,
                                 TableUndo* undo) {
  // Validate both sides before mutating anything: a schema mismatch in the
  // inserts must not leave the deletes half-applied.
  if (!delta.deletes.empty() && delta.deletes.schema() != table->schema()) {
    return Status::InvalidArgument("delete delta schema mismatch");
  }
  if (!delta.inserts.empty() && delta.inserts.schema() != table->schema()) {
    return Status::InvalidArgument("insert delta schema mismatch");
  }
  if (!delta.deletes.empty()) {
    size_t before = table->num_rows();
    GPIVOT_ASSIGN_OR_RETURN(Table remaining,
                            exec::BagDifference(*table, delta.deletes));
    if (before - remaining.num_rows() != delta.deletes.num_rows()) {
      return Status::ConstraintViolation(
          "some delete-delta rows did not match any stored row");
    }
    std::vector<std::string> key = table->key();
    undo->replaced = std::move(*table);
    *table = std::move(remaining);
    GPIVOT_RETURN_NOT_OK(table->SetKey(std::move(key)));
  } else if (!delta.inserts.empty()) {
    undo->truncate_to = table->num_rows();
  }
  for (const Row& row : delta.inserts.rows()) {
    table->AddRow(row);
  }
  return Status::OK();
}

void RollbackTable(Table* table, TableUndo* undo) {
  if (undo->replaced.has_value()) {
    *table = std::move(*undo->replaced);
    undo->replaced.reset();
  } else if (undo->truncate_to.has_value()) {
    std::vector<Row>& rows = table->mutable_rows();
    rows.erase(rows.begin() + static_cast<ptrdiff_t>(*undo->truncate_to),
               rows.end());
    undo->truncate_to.reset();
  }
}

}  // namespace gpivot::ivm
