#ifndef GPIVOT_IVM_VIEW_MANAGER_H_
#define GPIVOT_IVM_VIEW_MANAGER_H_

#include <string>
#include <unordered_map>

#include "algebra/plan.h"
#include "ivm/maintenance.h"
#include "util/result.h"

namespace gpivot::ivm {

// Owns the base tables and a set of materialized views, keeping the views
// consistent with the base as delta batches arrive. This is the end-to-end
// entry point benchmarks and examples use.
class ViewManager {
 public:
  explicit ViewManager(Catalog base) : catalog_(std::move(base)) {}

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }

  // Compiles a maintenance plan for `query` under `strategy`, materializes
  // the (possibly rewritten) view, and registers it under `name`.
  Status DefineView(const std::string& name, PlanPtr query,
                    RefreshStrategy strategy);

  Result<const MaterializedView*> GetView(const std::string& name) const;
  Result<const MaintenancePlan*> GetPlan(const std::string& name) const;

  // Refreshes every registered view for `deltas` (each with its own
  // strategy), then applies the deltas to the base tables.
  Status ApplyUpdate(const SourceDeltas& deltas);

  // The two halves of ApplyUpdate, exposed separately so benchmarks can
  // time the view-maintenance work in isolation (the paper's refresh cost
  // excludes the base-table update itself, which every strategy pays
  // identically). RefreshViews must run before AdvanceBase.
  Status RefreshViews(const SourceDeltas& deltas);
  Status AdvanceBase(const SourceDeltas& deltas);

  // Convenience for tests: evaluates `name`'s effective query from scratch
  // against the current base tables.
  Result<Table> RecomputeFromScratch(const std::string& name) const;

 private:
  struct ViewState {
    MaintenancePlan plan;
    MaterializedView view;
  };

  Catalog catalog_;
  std::unordered_map<std::string, ViewState> views_;
};

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_VIEW_MANAGER_H_
