#ifndef GPIVOT_IVM_VIEW_MANAGER_H_
#define GPIVOT_IVM_VIEW_MANAGER_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/plan.h"
#include "ivm/delta.h"
#include "ivm/maintenance.h"
#include "util/result.h"

namespace gpivot::ivm {

// Owns the base tables and a set of materialized views, keeping the views
// consistent with the base as delta batches arrive. This is the end-to-end
// entry point benchmarks and examples use.
//
// Every update batch runs as an atomic *maintenance epoch* (the in-memory
// analogue of the DBMS transaction the paper's Oracle MERGE plans run in,
// §7.1): the batch is validated against the catalog, every view's refresh is
// staged without mutating, and only then are the view merges and the base
// advance committed — with an undo log, so any mid-commit failure rolls the
// whole manager back to its exact pre-epoch state. An epoch either commits
// everywhere or leaves no trace.
class ViewManager {
 public:
  explicit ViewManager(Catalog base) : catalog_(std::move(base)) {}

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }

  // Maintenance-executor concurrency. Staging (the propagate phase, which
  // only reads the pre-epoch catalog) runs one task per view on up to
  // num_threads pool workers, and the operators inside each propagation
  // parallelize row work with the same context. The commit phase — view
  // merges, base advance, undo logging — stays serial, preserving the
  // epoch's atomic rollback semantics. Results are byte-identical for every
  // thread count. Default: sequential.
  void set_exec_context(const ExecContext& ctx) { exec_context_ = ctx; }
  const ExecContext& exec_context() const { return exec_context_; }

  // Compiles a maintenance plan for `query` under `strategy`, materializes
  // the (possibly rewritten) view, and registers it under `name`.
  Status DefineView(const std::string& name, PlanPtr query,
                    RefreshStrategy strategy);

  Result<const MaterializedView*> GetView(const std::string& name) const;
  Result<const MaintenancePlan*> GetPlan(const std::string& name) const;

  // Runs one full epoch: refreshes every registered view for `deltas` (each
  // with its own strategy), then applies the deltas to the base tables.
  // On any failure — malformed deltas, a refresh error, or an injected
  // fault — all views and base tables are left byte-identical to their
  // pre-call state.
  Status ApplyUpdate(const SourceDeltas& deltas);

  // The two halves of ApplyUpdate, exposed separately so benchmarks can
  // time the view-maintenance work in isolation (the paper's refresh cost
  // excludes the base-table update itself, which every strategy pays
  // identically). RefreshViews must run before AdvanceBase. Each half is
  // atomic on its own: a failure rolls back whatever that half applied.
  Status RefreshViews(const SourceDeltas& deltas);
  Status AdvanceBase(const SourceDeltas& deltas);

  // Validates a delta batch against the catalog without mutating anything:
  // unknown tables (NotFound), schema/arity mismatches (InvalidArgument),
  // and duplicate keys within a keyed table's insert delta
  // (ConstraintViolation). Every epoch entry point calls this first.
  Status ValidateDeltas(const SourceDeltas& deltas) const;

  // Consistency auditor: verifies every materialized view equals its
  // from-scratch recomputation (bag semantics) and that each view's key
  // index exactly mirrors its table. Run after any epoch in tests; behind
  // GPIVOT_BENCH_AUDIT=1 in benchmarks.
  Status Audit() const;

  // Convenience for tests: evaluates `name`'s effective query from scratch
  // against the current base tables.
  Result<Table> RecomputeFromScratch(const std::string& name) const;

 private:
  struct ViewState {
    MaintenancePlan plan;
    MaterializedView view;
  };

  // Everything one epoch has mutated, in commit order, so a failure can
  // restore the exact pre-epoch state (RollbackEpoch undoes in reverse).
  struct EpochUndo {
    std::vector<std::pair<ViewState*, UndoLog>> views;
    std::vector<std::pair<std::string, TableUndo>> tables;
  };

  Status RefreshViewsInternal(const SourceDeltas& deltas, EpochUndo* undo);
  Status AdvanceBaseInternal(const SourceDeltas& deltas, EpochUndo* undo);
  void RollbackEpoch(EpochUndo* undo);

  Catalog catalog_;
  std::unordered_map<std::string, ViewState> views_;
  // Definition order; epochs stage/commit (and the auditor walks) views in
  // this order so error precedence and trace output never depend on hash
  // iteration.
  std::vector<std::string> view_order_;
  ExecContext exec_context_;
};

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_VIEW_MANAGER_H_
