#ifndef GPIVOT_IVM_VIEW_MANAGER_H_
#define GPIVOT_IVM_VIEW_MANAGER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/plan.h"
#include "ivm/delta.h"
#include "ivm/maintenance.h"
#include "obs/event_log.h"
#include "util/result.h"

namespace gpivot::ivm {

// Structured report of one maintenance-epoch entry-point call: which entry
// ran, the per-table delta cardinalities, every view's strategy and
// EXPLAIN ANALYZE cost report, and the outcome (committed / rolled_back /
// rejected). Deliberately contains no timings: the record is a pure
// function of the work, so it is byte-identical at every thread count.
struct EpochRecord {
  struct TableDelta {
    std::string table;
    uint64_t insert_rows = 0;
    uint64_t delete_rows = 0;
  };
  struct ViewReport {
    std::string name;
    std::string strategy;
    uint64_t rows_after = 0;
    CostReport cost;
  };

  // 1-based per-manager epoch counter. "no_op" records do not consume a
  // sequence number — they carry the seq of the most recent real epoch
  // (0 before any) — so timer-driven empty flushes never fragment the
  // numbering of epochs that did work.
  uint64_t seq = 0;
  // "apply_update" | "batched_apply_update" | "refresh_views" |
  // "advance_base"
  std::string entry;
  // "committed" | "rolled_back" | "rejected" | "no_op"
  std::string outcome;
  std::string error;  // empty when committed / no_op
  std::vector<TableDelta> deltas;  // sorted by table name
  std::vector<ViewReport> views;   // definition order; empty when rejected

  // Indented human-readable rendering (delta summary + per-view cost trees).
  std::string ToText() const;
  // The single-line JSON document appended to the epoch event log.
  std::string ToJsonLine() const;
};

// Observer the durability layer (src/storage) installs on a ViewManager so
// epochs hit the write-ahead log at the right points. Both callbacks run on
// the thread driving the epoch; the manager holds no lock around them.
class EpochDurabilityHook {
 public:
  virtual ~EpochDurabilityHook() = default;

  // Called by ApplyUpdate / BatchedApplyUpdate after the batch validated
  // and proved non-empty, *before anything mutates*: the write-ahead point.
  // `seq` is the sequence number this epoch will consume. A non-OK return
  // rejects the epoch — nothing was staged yet, so the manager is
  // untouched and the epoch records as "rejected" (a batch that cannot be
  // made durable must not be applied).
  virtual Status OnEpochAccepted(uint64_t seq, const std::string& entry,
                                 const SourceDeltas& deltas) = 0;

  // Called after the same epoch resolved and its record was written.
  // `committed` is false when the epoch rolled back: the hook must drop
  // the WAL entry it appended in OnEpochAccepted (replaying a rolled-back
  // epoch would resurrect it). When true the hook may take a checkpoint;
  // an error here surfaces to the ApplyUpdate caller even though the
  // in-memory state committed — the state is valid but its durability
  // cadence slipped, which the caller must hear about.
  virtual Status OnEpochResolved(uint64_t seq, bool committed) = 0;
};

// Observer a serving layer installs to learn the instant a committed epoch's
// state becomes current — the snapshot-install point. Mirrors
// EpochDurabilityHook's threading contract: the callback runs on the thread
// driving the epoch, with no manager lock held. It fires after the epoch's
// record was written (LastEpochReport() describes it) and only for epochs
// that committed new state — never for rejected, rolled-back, or no-op
// calls — so a hook that publishes snapshots can never expose a state the
// epoch log does not record as committed. All four entry points fire it:
// ApplyUpdate / BatchedApplyUpdate after views and base advanced,
// RefreshViews and AdvanceBase after their half committed.
class EpochCommitHook {
 public:
  virtual ~EpochCommitHook() = default;

  // `record` is the committed epoch's report; record.seq is the sequence
  // number its state is current as of.
  virtual void OnEpochCommitted(const EpochRecord& record) = 0;
};

// Maintenance sharding configuration: how many key-range shards the epoch
// machinery splits per-view work into. With num_shards > 1 the stage phase
// runs its per-view tasks on the work-stealing shard executor and the
// commit phase applies each view's in-place updates concurrently, one
// key-hash shard per undo log (see ExecuteMergePlanSharded). All epoch
// artifacts — view bytes, epoch records, counters — are byte-identical for
// every shard count; sharding only changes wall-clock time.
struct ShardingOptions {
  // 1 = the serial commit path, bit-identical to the pre-sharding code.
  size_t num_shards = 1;

  // Reads GPIVOT_SHARDS (unset or empty = 1; zero or malformed values are
  // InvalidArgument, not silently ignored).
  static Result<ShardingOptions> FromEnv();
};

// Owns the base tables and a set of materialized views, keeping the views
// consistent with the base as delta batches arrive. This is the end-to-end
// entry point benchmarks and examples use.
//
// Every update batch runs as an atomic *maintenance epoch* (the in-memory
// analogue of the DBMS transaction the paper's Oracle MERGE plans run in,
// §7.1): the batch is validated against the catalog, every view's refresh is
// staged without mutating, and only then are the view merges and the base
// advance committed — with an undo log, so any mid-commit failure rolls the
// whole manager back to its exact pre-epoch state. An epoch either commits
// everywhere or leaves no trace.
class ViewManager {
 public:
  explicit ViewManager(Catalog base)
      : catalog_(std::move(base)), event_log_(obs::EventLogFromEnv()) {}

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }

  // Maintenance-executor concurrency. Staging (the propagate phase, which
  // only reads the pre-epoch catalog) runs one task per view on up to
  // num_threads pool workers, and the operators inside each propagation
  // parallelize row work with the same context. The commit phase — view
  // merges, base advance, undo logging — stays serial, preserving the
  // epoch's atomic rollback semantics. Results are byte-identical for every
  // thread count. Default: sequential.
  void set_exec_context(const ExecContext& ctx) { exec_context_ = ctx; }
  const ExecContext& exec_context() const { return exec_context_; }

  // Commit-phase sharding (see ShardingOptions). Takes effect on the next
  // epoch; changing it mid-stream is safe because every epoch's undo spans
  // carry their own log layout. Default: one shard (serial commit).
  void set_sharding(const ShardingOptions& sharding) { sharding_ = sharding; }
  const ShardingOptions& sharding() const { return sharding_; }

  // Compiles a maintenance plan for `query` under `strategy`, materializes
  // the (possibly rewritten) view, and registers it under `name`.
  Status DefineView(const std::string& name, PlanPtr query,
                    RefreshStrategy strategy);

  // Registers `name` with `contents` as its materialized state *without*
  // evaluating the query — the recovery path, where contents come from a
  // checkpoint already known consistent with the (restored) base catalog.
  // The query still compiles normally and `contents` must match the
  // effective query's output schema; the view's key index rebuilds from
  // the table's declared key.
  Status RestoreView(const std::string& name, PlanPtr query,
                     RefreshStrategy strategy, Table contents);

  Result<const MaterializedView*> GetView(const std::string& name) const;
  Result<const MaintenancePlan*> GetPlan(const std::string& name) const;

  // Registered view names in definition order.
  const std::vector<std::string>& ViewNames() const { return view_order_; }

  // Runs one full epoch: refreshes every registered view for `deltas` (each
  // with its own strategy), then applies the deltas to the base tables.
  // On any failure — malformed deltas, a refresh error, or an injected
  // fault — all views and base tables are left byte-identical to their
  // pre-call state.
  //
  // An all-empty batch (no Δ or ∇ rows anywhere, including an empty map)
  // short-circuits before staging: nothing is staged or committed, no
  // epoch sequence number is consumed, and the epoch record carries the
  // cheap "no_op" outcome. The DeltaBatcher flushes on external triggers
  // (a serving layer's timer), so empty batches are the common case there.
  Status ApplyUpdate(const SourceDeltas& deltas);

  // Identical to ApplyUpdate but records the epoch under the
  // "batched_apply_update" entry tag: the marker that `deltas` is the
  // compacted net of many ingested micro-batches (see ivm::DeltaBatcher),
  // so epoch logs can tell one-batch-per-epoch traffic from batched flushes.
  Status BatchedApplyUpdate(const SourceDeltas& deltas);

  // The two halves of ApplyUpdate, exposed separately so benchmarks can
  // time the view-maintenance work in isolation (the paper's refresh cost
  // excludes the base-table update itself, which every strategy pays
  // identically). RefreshViews must run before AdvanceBase. Each half is
  // atomic on its own: a failure rolls back whatever that half applied.
  Status RefreshViews(const SourceDeltas& deltas);
  Status AdvanceBase(const SourceDeltas& deltas);

  // Validates a delta batch against the catalog without mutating anything:
  // unknown tables (NotFound), schema/arity mismatches (InvalidArgument),
  // and duplicate keys within a keyed table's insert delta
  // (ConstraintViolation). Every epoch entry point calls this first.
  // Schema equality is required even for an *empty* delta side: the
  // DeltaBatcher merges sides across batches, so a wrong schema riding on
  // an empty side could later surface on a non-empty merged side.
  Status ValidateDeltas(const SourceDeltas& deltas) const;

  // Consistency auditor: verifies every materialized view equals its
  // from-scratch recomputation (bag semantics) and that each view's key
  // index exactly mirrors its table. Run after any epoch in tests; behind
  // GPIVOT_BENCH_AUDIT=1 in benchmarks.
  Status Audit() const;

  // Convenience for tests: evaluates `name`'s effective query from scratch
  // against the current base tables.
  Result<Table> RecomputeFromScratch(const std::string& name) const;

  // EXPLAIN ANALYZE for one view: its effective query annotated with the
  // per-node actuals of the most recent refresh (all zero before the first
  // epoch). Render with CostReport::ToText / ToJson.
  Result<CostReport> ExplainAnalyze(const std::string& name) const;

  // The structured report of the most recent epoch entry-point call
  // (including rejected and rolled-back ones); nullopt before the first.
  const std::optional<EpochRecord>& LastEpochReport() const {
    return last_epoch_;
  }

  // Destination for one-line-per-epoch JSONL records. Defaults to the
  // process-wide GPIVOT_EVENT_LOG sink; nullptr disables emission. The log
  // must outlive this manager.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

  // Durability observer for ApplyUpdate / BatchedApplyUpdate epochs
  // (nullptr = none, the default). Must outlive this manager or be unset
  // first. Recovery detaches the hook while replaying so replayed epochs
  // are not re-logged.
  void set_durability_hook(EpochDurabilityHook* hook) {
    durability_hook_ = hook;
  }

  // Commit observer for every entry point (nullptr = none, the default).
  // Must outlive this manager or be unset first. Called after the durability
  // hook's write-ahead point but before OnEpochResolved, so freshly
  // committed state serves before the (possibly slow) checkpoint cadence
  // runs.
  void set_commit_hook(EpochCommitHook* hook) { commit_hook_ = hook; }

  // The sequence number of the most recent seq-consuming epoch (0 before
  // any). The next committed/rolled-back/rejected epoch records as
  // epoch_seq() + 1.
  uint64_t epoch_seq() const { return epoch_seq_; }

  // Continues the epoch numbering of a previous incarnation: recovery
  // replays a WAL whose entries already consumed seqs 1..n, so the
  // recovered manager must hand out n+1 next — a reset to 0 would emit
  // duplicate seqs into the epoch log.
  void RestoreEpochSeq(uint64_t seq) { epoch_seq_ = seq; }

 private:
  struct ViewState {
    MaintenancePlan plan;
    MaterializedView view;
  };

  // Everything one epoch has mutated, in commit order, so a failure can
  // restore the exact pre-epoch state (RollbackEpoch undoes in reverse).
  struct EpochUndo {
    std::vector<std::pair<ViewState*, UndoLog>> views;
    std::vector<std::pair<std::string, TableUndo>> tables;
  };

  // Shared body of ApplyUpdate / BatchedApplyUpdate; `entry` tags the
  // epoch record.
  Status ApplyUpdateInternal(const char* entry, const SourceDeltas& deltas);
  Status RefreshViewsInternal(const SourceDeltas& deltas, EpochUndo* undo);
  Status AdvanceBaseInternal(const SourceDeltas& deltas, EpochUndo* undo);
  void RollbackEpoch(EpochUndo* undo);
  // Builds last_epoch_ and appends its JSONL line to the event log.
  // `staged` says whether this entry ran the stage phase (view cost reports
  // are only meaningful then); `rejected` marks validation failures that
  // never started the epoch.
  void RecordEpoch(const char* entry, const SourceDeltas& deltas, bool staged,
                   const Status& status, bool rejected);
  // The cheap record for an all-empty batch: outcome "no_op", no views
  // section, no sequence number consumed.
  void RecordNoOpEpoch(const char* entry, const SourceDeltas& deltas);

  Catalog catalog_;
  std::unordered_map<std::string, ViewState> views_;
  // Definition order; epochs stage/commit (and the auditor walks) views in
  // this order so error precedence and trace output never depend on hash
  // iteration.
  std::vector<std::string> view_order_;
  ExecContext exec_context_;
  ShardingOptions sharding_;
  uint64_t epoch_seq_ = 0;
  std::optional<EpochRecord> last_epoch_;
  obs::EventLog* event_log_ = nullptr;
  EpochDurabilityHook* durability_hook_ = nullptr;
  EpochCommitHook* commit_hook_ = nullptr;
};

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_VIEW_MANAGER_H_
