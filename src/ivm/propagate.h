#ifndef GPIVOT_IVM_PROPAGATE_H_
#define GPIVOT_IVM_PROPAGATE_H_

#include <set>
#include <utility>

#include "algebra/plan.h"
#include "ivm/delta.h"
#include "util/result.h"

namespace gpivot::ivm {

// Propagate phase (§3): computes the delta of any plan's output from source
// deltas, using the classic relational propagation rules [11, 18] plus the
// paper's Fig. 22 insert/delete rules for intermediate GPIVOT/GUNPIVOT
// operators.
//
// The propagator sees two database states: `pre` (the catalog as passed in)
// and `post` (pre with the deltas applied). Join and pivot rules evaluate
// subtrees in whichever state the algebra requires. Subtree evaluations are
// memoized per state so shared subplans are computed once.
class DeltaPropagator {
 public:
  // Both referents must outlive the propagator. `pre_catalog` is copied to
  // build the post-state catalog. `ctx` parallelizes the join/group-by
  // operators inside every subtree evaluation and propagation rule.
  DeltaPropagator(const Catalog* pre_catalog, const SourceDeltas* deltas,
                  const ExecContext& ctx = {});

  const ExecContext& exec_context() const { return ctx_; }

  // (Δ, ∇) of `plan`'s output.
  Result<Delta> Propagate(const PlanPtr& plan);

  // Evaluates `plan` against the pre-update / post-update database.
  Result<Table> EvaluatePre(const PlanPtr& plan);
  Result<Table> EvaluatePost(const PlanPtr& plan);

  // Reference-returning variants: scans alias the catalog's table (no copy)
  // and non-scan subtrees are evaluated once and memoized for the lifetime
  // of this propagator.
  Result<std::shared_ptr<const Table>> EvaluatePreRef(const PlanPtr& plan);
  Result<std::shared_ptr<const Table>> EvaluatePostRef(const PlanPtr& plan);

  // True when no base table under `plan` has a delta (the subtree is
  // unchanged, so its delta is empty and pre == post).
  Result<bool> Unchanged(const PlanPtr& plan);

  const SourceDeltas& deltas() const { return *deltas_; }

 private:
  Result<Delta> PropagateImpl(const PlanPtr& plan);
  Result<std::shared_ptr<const Table>> EvaluateRef(
      const PlanPtr& plan, const Catalog& catalog,
      std::unordered_map<const PlanNode*, std::shared_ptr<const Table>>* memo);
  // Builds the post-state catalog on first use: strategies whose rules never
  // re-access the updated base (e.g. the Fig. 23 update rules under deletes)
  // then never pay for patching large tables. Fails (rather than aborting)
  // when a delta names an unknown table or mismatches its schema.
  Result<const Catalog*> PostCatalog();

  const Catalog* pre_;
  const SourceDeltas* deltas_;
  ExecContext ctx_;
  Catalog post_;
  bool post_built_ = false;
  std::unordered_map<const PlanNode*, std::shared_ptr<const Table>> pre_memo_;
  std::unordered_map<const PlanNode*, std::shared_ptr<const Table>> post_memo_;
  // Scan aliases already counted as a base access, keyed by (memo table,
  // node) so a scan read in the pre and post states counts twice, but many
  // rules sharing one state's alias count once.
  std::set<std::pair<const void*, const PlanNode*>> scan_reads_;
};

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_PROPAGATE_H_
