#ifndef GPIVOT_IVM_MAINTENANCE_H_
#define GPIVOT_IVM_MAINTENANCE_H_

#include <optional>
#include <string>
#include <unordered_set>

#include "algebra/plan.h"
#include "ivm/apply.h"
#include "ivm/delta.h"
#include "ivm/propagate.h"
#include "util/result.h"

namespace gpivot::ivm {

// How a view is refreshed (§7's compared methods).
enum class RefreshStrategy {
  // Re-evaluate the whole view query against the post-update database.
  kFullRecompute,
  // Propagate (Δ, ∇) through the *original* plan — intermediate GPIVOTs use
  // the Fig. 22 insert/delete rules — and apply as bag deletes + inserts.
  kInsertDelete,
  // §3: pull pivots to the top (combining adjacent ones), propagate deltas
  // below the top pivot, apply with the Fig. 23 update rules. When the
  // pivot sits over a GROUPBY, the group deltas come from the [18]
  // insert/delete rules — the View-3 baseline of Fig. 40/41.
  kUpdate,
  // View 2 baseline: push the σ below the pivot first (Eq. 7 self-join),
  // then proceed exactly as kUpdate. Propagation through the introduced
  // self-join generates the extra join terms §7.2.2 measures.
  kSelectPushdownUpdate,
  // Fig. 29: keep σ∘GPIVOT paired on top and use the combined
  // SELECT/GPIVOT update rules.
  kCombinedSelect,
  // Fig. 27: GPIVOT over GROUPBY maintained with the combined update rules
  // (COUNT(*) per subgroup decides emptiness; auto-added if missing, Fig. 28).
  kCombinedGroupBy,
};

const char* RefreshStrategyToString(RefreshStrategy strategy);

// A compiled maintenance plan: the (possibly rewritten) query whose output
// the materialized view stores, plus everything the propagate and apply
// phases need. Compile once per view definition; Refresh per delta batch.
class MaintenancePlan {
 public:
  static Result<MaintenancePlan> Compile(PlanPtr view_query,
                                         RefreshStrategy strategy);

  // The plan whose evaluation defines the view contents. Differs from the
  // original when the strategy rewrites the query (pullup/pushdown/Fig. 28
  // COUNT(*) injection).
  const PlanPtr& effective_query() const { return effective_query_; }
  RefreshStrategy strategy() const { return strategy_; }

  // Propagates `deltas` (relative to `pre_catalog`) and applies the result
  // to `view`. Does not touch the base tables themselves.
  Status Refresh(const Catalog& pre_catalog, const SourceDeltas& deltas,
                 MaterializedView* view) const;

  std::string ToString() const;

 private:
  MaintenancePlan() = default;

  Status RefreshFullRecompute(DeltaPropagator* propagator,
                              MaterializedView* view) const;
  Status RefreshInsertDelete(DeltaPropagator* propagator,
                             MaterializedView* view) const;
  Status RefreshPivotUpdate(DeltaPropagator* propagator,
                            MaterializedView* view) const;
  Status RefreshCombinedGroupBy(DeltaPropagator* propagator,
                                MaterializedView* view) const;
  Status RefreshCombinedSelect(DeltaPropagator* propagator,
                               MaterializedView* view) const;

  RefreshStrategy strategy_ = RefreshStrategy::kFullRecompute;
  PlanPtr original_query_;
  PlanPtr effective_query_;

  // kUpdate / kSelectPushdownUpdate / kCombinedSelect / kCombinedGroupBy:
  std::optional<PivotLayout> layout_;
  PlanPtr pivot_child_;  // subtree below the top pivot

  // kCombinedGroupBy:
  std::optional<AggregateLayout> agg_layout_;
  PlanPtr group_child_;                   // subtree below the GROUPBY
  std::vector<std::string> group_columns_;
  std::vector<AggSpec> group_aggregates_;

  // kCombinedSelect:
  ExprPtr select_condition_;
  std::unordered_set<size_t> condition_combos_;  // combos the σ references
};

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_MAINTENANCE_H_
