#ifndef GPIVOT_IVM_MAINTENANCE_H_
#define GPIVOT_IVM_MAINTENANCE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "algebra/explain.h"
#include "algebra/plan.h"
#include "ivm/apply.h"
#include "ivm/delta.h"
#include "ivm/propagate.h"
#include "obs/cost.h"
#include "util/result.h"

namespace gpivot::ivm {

// How a view is refreshed (§7's compared methods).
enum class RefreshStrategy {
  // Re-evaluate the whole view query against the post-update database.
  kFullRecompute,
  // Propagate (Δ, ∇) through the *original* plan — intermediate GPIVOTs use
  // the Fig. 22 insert/delete rules — and apply as bag deletes + inserts.
  kInsertDelete,
  // §3: pull pivots to the top (combining adjacent ones), propagate deltas
  // below the top pivot, apply with the Fig. 23 update rules. When the
  // pivot sits over a GROUPBY, the group deltas come from the [18]
  // insert/delete rules — the View-3 baseline of Fig. 40/41.
  kUpdate,
  // View 2 baseline: push the σ below the pivot first (Eq. 7 self-join),
  // then proceed exactly as kUpdate. Propagation through the introduced
  // self-join generates the extra join terms §7.2.2 measures.
  kSelectPushdownUpdate,
  // Fig. 29: keep σ∘GPIVOT paired on top and use the combined
  // SELECT/GPIVOT update rules.
  kCombinedSelect,
  // Fig. 27: GPIVOT over GROUPBY maintained with the combined update rules
  // (COUNT(*) per subgroup decides emptiness; auto-added if missing, Fig. 28).
  kCombinedGroupBy,
};

const char* RefreshStrategyToString(RefreshStrategy strategy);

// A refresh computed but not yet applied: either the per-key MergePlan
// (incremental strategies) or a wholesale replacement view (kFullRecompute).
// Staging never mutates, so an epoch can stage every view, validate, and
// only then commit — or walk away leaving no trace.
struct StagedRefresh {
  std::optional<MergePlan> merge;
  std::optional<MaterializedView> rebuild;
};

// A compiled maintenance plan: the (possibly rewritten) query whose output
// the materialized view stores, plus everything the propagate and apply
// phases need. Compile once per view definition; Stage+Commit (or Refresh)
// per delta batch.
class MaintenancePlan {
 public:
  static Result<MaintenancePlan> Compile(PlanPtr view_query,
                                         RefreshStrategy strategy);

  // The plan whose evaluation defines the view contents. Differs from the
  // original when the strategy rewrites the query (pullup/pushdown/Fig. 28
  // COUNT(*) injection).
  const PlanPtr& effective_query() const { return effective_query_; }
  RefreshStrategy strategy() const { return strategy_; }

  // Stable pre-order node numbering of effective_query(), assigned once at
  // Compile so cost reports key the same work to the same id every epoch.
  const PlanNodeIds& node_ids() const { return *node_ids_; }

  // Per-node actuals of the most recent Stage call on this plan (reset at
  // the start of each Stage). Shared so reports can outlive the plan.
  std::shared_ptr<const obs::CostCollector> cost_collector() const {
    return cost_;
  }

  // Propagates `deltas` (relative to `pre_catalog`) and computes this
  // view's final refresh without mutating `view` or the base tables.
  // Inconsistent deltas (absent delete keys, duplicate inserts, negative
  // counts) are detected here, before anything changes. `ctx` parallelizes
  // the operators inside propagation; staging itself reads shared state
  // only, so independent views can stage concurrently.
  Result<StagedRefresh> Stage(const Catalog& pre_catalog,
                              const SourceDeltas& deltas,
                              const MaterializedView& view,
                              const ExecContext& ctx = {}) const;

  // Applies a staged refresh, recording every mutation in `undo` so a
  // failure later in the same epoch can roll `view` back byte-identically.
  // `ctx` only feeds observability (ivm.merge.* counters).
  static Status CommitStaged(StagedRefresh staged, MaterializedView* view,
                             UndoLog* undo, const ExecContext& ctx = {});

  // Stage + commit in one step (single-view, no cross-view atomicity). On
  // failure the view is unchanged.
  Status Refresh(const Catalog& pre_catalog, const SourceDeltas& deltas,
                 MaterializedView* view, const ExecContext& ctx = {}) const;

  std::string ToString() const;

 private:
  MaintenancePlan() = default;

  // The strategy-specific rewriting; Compile wraps it with node-id
  // assignment and cost-collector setup.
  static Result<MaintenancePlan> CompileInternal(PlanPtr view_query,
                                                 RefreshStrategy strategy);

  Result<MaterializedView> StageFullRecompute(
      DeltaPropagator* propagator) const;
  Result<MergePlan> StageInsertDeleteRefresh(
      DeltaPropagator* propagator, const MaterializedView& view) const;
  Result<MergePlan> StagePivotUpdateRefresh(
      DeltaPropagator* propagator, const MaterializedView& view) const;
  Result<MergePlan> StageCombinedGroupByRefresh(
      DeltaPropagator* propagator, const MaterializedView& view) const;
  Result<MergePlan> StageCombinedSelectRefresh(
      DeltaPropagator* propagator, const MaterializedView& view) const;

  RefreshStrategy strategy_ = RefreshStrategy::kFullRecompute;
  PlanPtr original_query_;
  PlanPtr effective_query_;

  // Cost accounting (behind shared_ptr: MaintenancePlan is copyable and
  // Stage is const; copies share one "last stage" collector).
  std::shared_ptr<const PlanNodeIds> node_ids_;
  std::shared_ptr<obs::CostCollector> cost_;
  int pivot_node_id_ = -1;  // effective query's top GPIVOT, when one exists
  int group_node_id_ = -1;  // the GROUPBY under it (kCombinedGroupBy)

  // kUpdate / kSelectPushdownUpdate / kCombinedSelect / kCombinedGroupBy:
  std::optional<PivotLayout> layout_;
  PlanPtr pivot_child_;  // subtree below the top pivot

  // kCombinedGroupBy:
  std::optional<AggregateLayout> agg_layout_;
  PlanPtr group_child_;                   // subtree below the GROUPBY
  std::vector<std::string> group_columns_;
  std::vector<AggSpec> group_aggregates_;

  // kCombinedSelect:
  ExprPtr select_condition_;
  std::unordered_set<size_t> condition_combos_;  // combos the σ references
};

// EXPLAIN ANALYZE of the plan's most recent Stage: the effective query
// annotated with per-node actuals, as a CostReport (render with ToText /
// ToJson). Before the first Stage every node reports zero work.
CostReport ExplainAnalyze(const MaintenancePlan& plan);

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_MAINTENANCE_H_
