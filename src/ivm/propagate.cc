#include "ivm/propagate.h"

#include <unordered_set>

#include "core/gpivot.h"
#include "exec/basic_ops.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/rules.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace gpivot::ivm {

DeltaPropagator::DeltaPropagator(const Catalog* pre_catalog,
                                 const SourceDeltas* deltas,
                                 const ExecContext& ctx)
    : pre_(pre_catalog), deltas_(deltas), ctx_(ctx), post_(*pre_catalog) {}

Result<const Catalog*> DeltaPropagator::PostCatalog() {
  if (!post_built_) {
    GPIVOT_FAULT_POINT("DeltaPropagator::PostCatalog");
    // The post-state catalog shares every unchanged table with the pre
    // state (copy-on-write); only delta'd tables are cloned and patched.
    for (const auto& [name, delta] : *deltas_) {
      if (delta.empty()) continue;
      if (!post_.HasTable(name)) {
        return Status::NotFound(
            StrCat("delta for unknown table '", name, "'"));
      }
      Table* table = post_.GetMutableTable(name);
      GPIVOT_RETURN_NOT_OK(ApplyDeltaToTable(table, delta));
    }
    post_built_ = true;
  }
  return &post_;
}

Result<Table> DeltaPropagator::EvaluatePre(const PlanPtr& plan) {
  return Evaluate(plan, *pre_, ctx_);
}

Result<Table> DeltaPropagator::EvaluatePost(const PlanPtr& plan) {
  GPIVOT_ASSIGN_OR_RETURN(const Catalog* post, PostCatalog());
  return Evaluate(plan, *post, ctx_);
}

Result<std::shared_ptr<const Table>> DeltaPropagator::EvaluateRef(
    const PlanPtr& plan, const Catalog& catalog,
    std::unordered_map<const PlanNode*, std::shared_ptr<const Table>>* memo) {
  if (plan->kind() == PlanKind::kScan) {
    const auto* scan = static_cast<const ScanNode*>(plan.get());
    GPIVOT_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                            catalog.GetSharedTable(scan->table_name()));
    // A scan alias is one base-table access per database state, however many
    // rules consume it — mirror the memoization below so the cost report
    // counts the work once.
    if (ctx_.cost != nullptr && ctx_.plan_ids != nullptr) {
      int id = ctx_.plan_ids->IdOf(plan.get());
      if (id >= 0 && scan_reads_.insert({memo, plan.get()}).second) {
        obs::NodeStats stats;
        stats.invocations = 1;
        stats.rows_out = table->num_rows();
        stats.base_accesses = 1;
        stats.base_rows_read = table->num_rows();
        ctx_.cost->Record(id, stats);
      }
    }
    return table;
  }
  auto it = memo->find(plan.get());
  if (it != memo->end()) return it->second;
  GPIVOT_ASSIGN_OR_RETURN(Table result, Evaluate(plan, catalog, ctx_));
  auto shared = std::make_shared<const Table>(std::move(result));
  memo->emplace(plan.get(), shared);
  return std::shared_ptr<const Table>(shared);
}

Result<std::shared_ptr<const Table>> DeltaPropagator::EvaluatePreRef(
    const PlanPtr& plan) {
  return EvaluateRef(plan, *pre_, &pre_memo_);
}

Result<std::shared_ptr<const Table>> DeltaPropagator::EvaluatePostRef(
    const PlanPtr& plan) {
  GPIVOT_ASSIGN_OR_RETURN(const Catalog* post, PostCatalog());
  return EvaluateRef(plan, *post, &post_memo_);
}

Result<bool> DeltaPropagator::Unchanged(const PlanPtr& plan) {
  if (plan->kind() == PlanKind::kScan) {
    const auto* scan = static_cast<const ScanNode*>(plan.get());
    auto it = deltas_->find(scan->table_name());
    return it == deltas_->end() || it->second.empty();
  }
  for (const PlanPtr& child : plan->children()) {
    GPIVOT_ASSIGN_OR_RETURN(bool child_unchanged, Unchanged(child));
    if (!child_unchanged) return false;
  }
  return true;
}

Result<Delta> DeltaPropagator::Propagate(const PlanPtr& plan) {
  GPIVOT_CHECK(plan != nullptr) << "Propagate on null plan";
  GPIVOT_ASSIGN_OR_RETURN(bool unchanged, Unchanged(plan));
  if (unchanged) {
    GPIVOT_ASSIGN_OR_RETURN(Schema schema, plan->OutputSchema());
    return Delta::Empty(schema);
  }
  obs::ScopedSpan span =
      obs::TraceEnabled(ctx_.tracer)
          ? obs::ScopedSpan(
                ctx_.tracer,
                StrCat("propagate:", PlanKindToString(plan->kind())))
          : obs::ScopedSpan();
  // Attribute the exec work of this node's propagation rule to its plan-node
  // id; recursive Propagate calls re-target on entry and restore on exit.
  const int saved_node = ctx_.cost_node;
  if (ctx_.cost != nullptr && ctx_.plan_ids != nullptr) {
    int id = ctx_.plan_ids->IdOf(plan.get());
    if (id >= 0) ctx_.cost_node = id;
  }
  Result<Delta> delta_or = PropagateImpl(plan);
  if (delta_or.ok() && ctx_.cost != nullptr && ctx_.cost_node >= 0) {
    obs::NodeStats stats;
    stats.delta_insert_rows = delta_or->inserts.num_rows();
    stats.delta_delete_rows = delta_or->deletes.num_rows();
    ctx_.cost->Record(ctx_.cost_node, stats);
  }
  ctx_.cost_node = saved_node;
  if (!delta_or.ok()) return delta_or.status();
  Delta delta = std::move(delta_or).value();
  if (ctx_.metrics != nullptr && ctx_.metrics->enabled()) {
    ctx_.metrics->AddCounter("ivm.propagate.calls");
    ctx_.metrics->AddCounter("ivm.propagate.insert_rows",
                             delta.inserts.num_rows());
    ctx_.metrics->AddCounter("ivm.propagate.delete_rows",
                             delta.deletes.num_rows());
  }
  if (span.active()) {
    span.AddAttr("insert_rows", static_cast<uint64_t>(delta.inserts.num_rows()));
    span.AddAttr("delete_rows", static_cast<uint64_t>(delta.deletes.num_rows()));
  }
  return delta;
}

Result<Delta> DeltaPropagator::PropagateImpl(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const auto* scan = static_cast<const ScanNode*>(plan.get());
      auto it = deltas_->find(scan->table_name());
      GPIVOT_CHECK(it != deltas_->end()) << "scan delta vanished";
      Delta delta = it->second;
      // Deltas travel without declared keys.
      GPIVOT_RETURN_NOT_OK(delta.inserts.SetKey({}));
      GPIVOT_RETURN_NOT_OK(delta.deletes.SetKey({}));
      return delta;
    }

    case PlanKind::kSelect: {
      // σ: Δσ(V) = σ(ΔV), ∇σ(V) = σ(∇V).
      const auto* node = static_cast<const SelectNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Delta child, Propagate(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(
          Table ins, exec::Select(child.inserts, node->predicate(), ctx_));
      GPIVOT_ASSIGN_OR_RETURN(
          Table del, exec::Select(child.deletes, node->predicate(), ctx_));
      return Delta{std::move(ins), std::move(del)};
    }

    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Delta child, Propagate(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> kept,
                              node->KeptColumns());
      GPIVOT_ASSIGN_OR_RETURN(Table ins,
                              exec::Project(child.inserts, kept, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(Table del,
                              exec::Project(child.deletes, kept, ctx_));
      return Delta{std::move(ins), std::move(del)};
    }

    case PlanKind::kMap: {
      const auto* node = static_cast<const MapNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Delta child, Propagate(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(
          Table ins, exec::ProjectExprs(child.inserts, node->outputs(), ctx_));
      GPIVOT_ASSIGN_OR_RETURN(
          Table del, exec::ProjectExprs(child.deletes, node->outputs(), ctx_));
      return Delta{std::move(ins), std::move(del)};
    }

    case PlanKind::kJoin: {
      // Classic bag rules [11]:
      //   ∇(A⋈B) = ∇A ⋈ B_pre  ⊎  (A_pre ∸ ∇A) ⋈ ∇B
      //   Δ(A⋈B) = ΔA ⋈ B_post ⊎  (A_post ∸ ΔA) ⋈ ΔB
      const auto* node = static_cast<const JoinNode*>(plan.get());
      exec::JoinSpec spec;
      spec.left_keys = node->left_keys();
      spec.right_keys = node->right_keys();
      spec.type = exec::JoinType::kInner;
      spec.residual = node->residual();

      GPIVOT_ASSIGN_OR_RETURN(bool right_unchanged,
                              Unchanged(node->right()));
      GPIVOT_ASSIGN_OR_RETURN(bool left_unchanged, Unchanged(node->left()));

      if (right_unchanged) {
        GPIVOT_ASSIGN_OR_RETURN(Delta left, Propagate(node->left()));
        GPIVOT_ASSIGN_OR_RETURN(auto right, EvaluatePreRef(node->right()));
        GPIVOT_ASSIGN_OR_RETURN(Table ins,
                                exec::HashJoin(left.inserts, *right, spec, ctx_));
        GPIVOT_ASSIGN_OR_RETURN(Table del,
                                exec::HashJoin(left.deletes, *right, spec, ctx_));
        return Delta{std::move(ins), std::move(del)};
      }
      if (left_unchanged) {
        GPIVOT_ASSIGN_OR_RETURN(Delta right, Propagate(node->right()));
        GPIVOT_ASSIGN_OR_RETURN(auto left, EvaluatePreRef(node->left()));
        GPIVOT_ASSIGN_OR_RETURN(Table ins,
                                exec::HashJoin(*left, right.inserts, spec, ctx_));
        GPIVOT_ASSIGN_OR_RETURN(Table del,
                                exec::HashJoin(*left, right.deletes, spec, ctx_));
        return Delta{std::move(ins), std::move(del)};
      }

      GPIVOT_ASSIGN_OR_RETURN(Delta left, Propagate(node->left()));
      GPIVOT_ASSIGN_OR_RETURN(Delta right, Propagate(node->right()));
      GPIVOT_ASSIGN_OR_RETURN(auto left_pre, EvaluatePreRef(node->left()));
      GPIVOT_ASSIGN_OR_RETURN(auto left_post, EvaluatePostRef(node->left()));
      GPIVOT_ASSIGN_OR_RETURN(auto right_pre, EvaluatePreRef(node->right()));
      GPIVOT_ASSIGN_OR_RETURN(auto right_post,
                              EvaluatePostRef(node->right()));

      GPIVOT_ASSIGN_OR_RETURN(Table del1,
                              exec::HashJoin(left.deletes, *right_pre, spec, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(
          Table left_mid, exec::BagDifference(*left_pre, left.deletes, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(Table del2,
                              exec::HashJoin(left_mid, right.deletes, spec, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(Table del, exec::UnionAll(del1, del2, ctx_));

      GPIVOT_ASSIGN_OR_RETURN(Table ins1,
                              exec::HashJoin(left.inserts, *right_post, spec, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(
          Table left_rest, exec::BagDifference(*left_post, left.inserts, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(Table ins2,
                              exec::HashJoin(left_rest, right.inserts, spec, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(Table ins, exec::UnionAll(ins1, ins2, ctx_));
      return Delta{std::move(ins), std::move(del)};
    }

    case PlanKind::kGroupBy: {
      // [18] insert/delete rules: identify the affected groups and
      // recompute them in both states. This is the expensive baseline the
      // Fig. 27 combined update rules avoid.
      const auto* node = static_cast<const GroupByNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Delta child, Propagate(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(
          auto affected_ins,
          exec::CollectKeySet(child.inserts, node->group_columns()));
      GPIVOT_ASSIGN_OR_RETURN(
          auto affected_del,
          exec::CollectKeySet(child.deletes, node->group_columns()));
      for (const Row& key : affected_del) affected_ins.insert(key);
      const auto& affected = affected_ins;

      GPIVOT_ASSIGN_OR_RETURN(auto pre, EvaluatePreRef(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(
          Table pre_affected,
          exec::SemiJoinKeySet(*pre, node->group_columns(), affected, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(
          Table del, exec::GroupBy(pre_affected, node->group_columns(),
                                   node->aggregates(), ctx_));

      GPIVOT_ASSIGN_OR_RETURN(auto post, EvaluatePostRef(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(
          Table post_affected,
          exec::SemiJoinKeySet(*post, node->group_columns(), affected, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(
          Table ins, exec::GroupBy(post_affected, node->group_columns(),
                                   node->aggregates(), ctx_));
      GPIVOT_RETURN_NOT_OK(ins.SetKey({}));
      GPIVOT_RETURN_NOT_OK(del.SetKey({}));
      return Delta{std::move(ins), std::move(del)};
    }

    case PlanKind::kGPivot: {
      // Fig. 22 insert/delete rules, realized as: find the affected keys,
      // re-pivot them in the pre state (the rows to delete) and in the post
      // state (the rows to insert). This accesses the pivot's input in both
      // states — exactly the cost §2.3 attributes to intermediate pivots.
      const auto* node = static_cast<const GPivotNode*>(plan.get());
      const PivotSpec& spec = node->spec();
      GPIVOT_ASSIGN_OR_RETURN(Delta child, Propagate(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(Schema child_schema,
                              node->child()->OutputSchema());
      GPIVOT_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                              spec.KeyColumns(child_schema));

      // Only delta rows whose dimension values are listed affect the output
      // — except under the §8 keep-⊥-rows variant, where any row decides
      // key presence.
      Table ins_listed = child.inserts;
      Table del_listed = child.deletes;
      if (!spec.keep_all_null_rows) {
        ExprPtr listed = rewrite::ComboDisjunction(spec);
        GPIVOT_ASSIGN_OR_RETURN(ins_listed,
                                exec::Select(child.inserts, listed, ctx_));
        GPIVOT_ASSIGN_OR_RETURN(del_listed,
                                exec::Select(child.deletes, listed, ctx_));
      }
      GPIVOT_ASSIGN_OR_RETURN(auto affected,
                              exec::CollectKeySet(ins_listed, key_names));
      GPIVOT_ASSIGN_OR_RETURN(auto affected2,
                              exec::CollectKeySet(del_listed, key_names));
      for (const Row& key : affected2) affected.insert(key);

      GPIVOT_ASSIGN_OR_RETURN(auto pre, EvaluatePreRef(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(
          Table pre_affected,
          exec::SemiJoinKeySet(*pre, key_names, affected, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(Table del, GPivot(pre_affected, spec, ctx_));

      GPIVOT_ASSIGN_OR_RETURN(auto post, EvaluatePostRef(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(
          Table post_affected,
          exec::SemiJoinKeySet(*post, key_names, affected, ctx_));
      GPIVOT_ASSIGN_OR_RETURN(Table ins, GPivot(post_affected, spec, ctx_));
      GPIVOT_RETURN_NOT_OK(ins.SetKey({}));
      GPIVOT_RETURN_NOT_OK(del.SetKey({}));
      return Delta{std::move(ins), std::move(del)};
    }

    case PlanKind::kGUnpivot: {
      // Fig. 22: GUNPIVOT distributes over ⊎ and ∸, so deltas unpivot
      // independently.
      const auto* node = static_cast<const GUnpivotNode*>(plan.get());
      GPIVOT_ASSIGN_OR_RETURN(Delta child, Propagate(node->child()));
      GPIVOT_ASSIGN_OR_RETURN(Table ins,
                              GUnpivot(child.inserts, node->spec()));
      GPIVOT_ASSIGN_OR_RETURN(Table del,
                              GUnpivot(child.deletes, node->spec()));
      return Delta{std::move(ins), std::move(del)};
    }
  }
  return Status::Internal("unknown plan kind in Propagate");
}

}  // namespace gpivot::ivm
