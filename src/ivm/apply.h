#ifndef GPIVOT_IVM_APPLY_H_
#define GPIVOT_IVM_APPLY_H_

#include <vector>

#include "core/pivot_spec.h"
#include "expr/aggregate.h"
#include "expr/expr.h"
#include "ivm/delta.h"
#include "relation/key_index.h"
#include "relation/table.h"
#include "util/result.h"

namespace gpivot::ivm {

// A materialized view: a keyed table plus a hash index on its key, so the
// apply phase can MERGE deltas (insert / in-place update / delete in one
// pass) — the in-memory analogue of the SQL MERGE the paper uses (§7.1).
class MaterializedView {
 public:
  // `initial` must carry a declared key; keys must be unique.
  static Result<MaterializedView> Create(Table initial);

  const Table& table() const { return table_; }
  size_t num_rows() const { return table_.num_rows(); }
  const std::vector<size_t>& key_indices() const {
    return index_.key_indices();
  }

  // Position of the row whose key matches `row` at `probe_indices`.
  std::optional<size_t> Lookup(const Row& row,
                               const std::vector<size_t>& probe_indices) const {
    return index_.Lookup(row, probe_indices);
  }

  // Inserts a full row; its key must be absent.
  void Insert(Row row);
  // Replaces the row at `position` (key must not change).
  void Update(size_t position, Row row);
  // Deletes the row at `position` (swap-with-last).
  void Delete(size_t position);

  const Row& RowAt(size_t position) const { return table_.rows()[position]; }

 private:
  MaterializedView(Table table, KeyIndex index)
      : table_(std::move(table)), index_(std::move(index)) {}

  Table table_;
  KeyIndex index_;
};

// Describes where the pivoted cells live in a view's schema: cell (c, b)
// of `spec` sits at column `first_cell_index + c * num_measures + b`, and
// the key columns are everything else. Computed once per view.
struct PivotLayout {
  PivotSpec spec;
  std::vector<size_t> key_positions;    // key column positions in the view
  size_t first_cell_index = 0;          // cells are contiguous from here

  size_t CellIndex(size_t combo, size_t measure) const {
    return first_cell_index + combo * spec.num_measures() + measure;
  }
  // True when any cell of `combo` in `row` is non-⊥ (the paper's group
  // presence test).
  bool GroupPresent(const Row& row, size_t combo) const;
  // True when every cell of every combo in `row` is ⊥.
  bool AllGroupsNull(const Row& row) const;
  // Sets every cell of `combo` in `row` to ⊥.
  void ClearGroup(Row* row, size_t combo) const;

  // Derives the layout from a view schema produced by GPivot(spec).
  static Result<PivotLayout> FromSchema(const Schema& view_schema,
                                        PivotSpec spec);
};

// Generic apply for the insert/delete propagation rules: bag-deletes the
// delta's delete rows (by key) and inserts its insert rows. The deletion +
// re-insertion churn this causes on pivoted views is the cost the update
// rules avoid (§2.3).
Status ApplyInsertDelete(MaterializedView* view, const Delta& view_delta);

// Fig. 23: update propagation rules for a GPIVOT at the top of the plan.
// `pivoted_delta.inserts` = GPIVOT(ΔV), `pivoted_delta.deletes` = GPIVOT(∇V)
// where V is the pivot input. Deletes are applied first.
Status ApplyPivotUpdate(MaterializedView* view, const PivotLayout& layout,
                        const Delta& pivoted_delta);

// Fig. 27: combined update rules for GPIVOT over GROUPBY. The measures are
// aggregates; `measure_funcs[b]` gives each one's function and
// `count_measure` indexes the per-group COUNT(*) measure that decides group
// emptiness. `pivoted_delta` holds GPIVOT(F(ΔV)) / GPIVOT(F(∇V)).
struct AggregateLayout {
  std::vector<AggFunc> measure_funcs;
  size_t count_measure = 0;
};
Status ApplyPivotGroupByUpdate(MaterializedView* view,
                               const PivotLayout& layout,
                               const AggregateLayout& aggs,
                               const Delta& pivoted_delta);

// Fig. 29: combined update rules for SELECT over GPIVOT. `condition` is the
// σ's predicate compiled against the view schema. `recompute_candidates`
// holds the recomputed pivot rows for keys that the insert delta might have
// newly qualified (GPIVOT(π_K(σ_c'(ΔV)) ⋉ (V ⊎ ΔV)) in the paper); rows
// whose key is absent from the view and that satisfy the condition are
// inserted.
Status ApplySelectPivotUpdate(MaterializedView* view,
                              const PivotLayout& layout,
                              const CompiledExpr& condition,
                              const Delta& pivoted_delta,
                              const Table& recompute_candidates);

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_APPLY_H_
