#ifndef GPIVOT_IVM_APPLY_H_
#define GPIVOT_IVM_APPLY_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/pivot_spec.h"
#include "expr/aggregate.h"
#include "expr/expr.h"
#include "ivm/delta.h"
#include "relation/key_index.h"
#include "relation/table.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gpivot::ivm {

// A materialized view: a keyed table plus a hash index on its key, so the
// apply phase can MERGE deltas (insert / in-place update / delete in one
// pass) — the in-memory analogue of the SQL MERGE the paper uses (§7.1).
//
// The table and index live behind shared_ptrs with copy-on-write mutation:
// shared_table()/shared_index() hand out O(1) immutable version handles (the
// serving layer's snapshots, the checkpoint writer), and the first mutator
// call of an epoch clones the table/index only when such a handle is still
// outstanding (use_count > 1). With no handles outstanding every mutation is
// in-place, exactly as before — the common single-consumer path pays one
// pointer indirection and nothing else. Mutators must only run on the
// maintenance thread; handle holders on other threads read the *old* version
// objects, which the clone step never touches, so no mutation is ever
// visible through a previously returned handle.
class MaterializedView {
 public:
  // `initial` must carry a declared key; keys must be unique.
  static Result<MaterializedView> Create(Table initial);

  const Table& table() const { return *table_; }
  // The current table/index version as immutable shared handles. O(1): no
  // rows are copied, and the PR 7 column cache stays warm and shared. The
  // pair returned by consecutive calls with no mutation in between is the
  // same version; after a mutation the handles keep their pre-mutation
  // contents (copy-on-write).
  std::shared_ptr<const Table> shared_table() const { return table_; }
  std::shared_ptr<const KeyIndex> shared_index() const { return index_; }
  size_t num_rows() const { return table_->num_rows(); }
  const std::vector<size_t>& key_indices() const {
    return index_->key_indices();
  }

  // Position of the row whose key matches `row` at `probe_indices`.
  std::optional<size_t> Lookup(const Row& row,
                               const std::vector<size_t>& probe_indices) const {
    return index_->Lookup(row, probe_indices);
  }
  // Position of the row whose key equals `key` (already projected).
  std::optional<size_t> LookupKey(const Row& key) const {
    return index_->LookupKey(key);
  }

  // Inserts a full row; returns ConstraintViolation when its key is already
  // present (delta contents come from callers, so this must not abort).
  Status Insert(Row row);
  // Replaces the row at `position` (key must not change).
  void Update(size_t position, Row row);
  // Deletes the row at `position` (swap-with-last).
  void Delete(size_t position);

  // Serially forces the copy-on-write clone and the column-cache
  // invalidation that the first mutation of an epoch would otherwise
  // trigger lazily, so a following batch of Update() calls on *distinct*
  // positions may run concurrently from pool threads (the sharded commit
  // path). Update() never resizes the row vector or touches the key index,
  // so once the clone exists and the cache flag is down, concurrent
  // updates write disjoint rows of a stable vector. All other mutators
  // remain maintenance-thread-only.
  void PrepareForConcurrentUpdates() { MutableTable().mutable_rows(); }

  // Epoch-rollback primitives (see UndoLog). Each exactly inverts the
  // corresponding mutator, restoring row order byte-identically; they assume
  // the view is in the state the mutator left it in.
  void UndoInsert();                          // removes the appended last row
  void UndoDelete(size_t position, Row row);  // re-seats a swap-deleted row

  // Verifies the key index exactly mirrors the table: one entry per row,
  // each mapping the row's key to its position. Internal error on drift.
  Status ValidateIntegrity() const;

  const Row& RowAt(size_t position) const { return table_->rows()[position]; }

 private:
  MaterializedView(std::shared_ptr<Table> table,
                   std::shared_ptr<KeyIndex> index)
      : table_(std::move(table)), index_(std::move(index)) {}

  // The copy-on-write gates every mutator funnels through: clone the
  // current version iff an immutable handle still references it. The
  // use_count probe is safe even while handle holders copy/drop their own
  // shared_ptrs concurrently — an overshoot only clones unnecessarily, and
  // an observed count of 1 proves this view holds the sole reference (no
  // other strong ref exists to be copied from).
  Table& MutableTable();
  KeyIndex& MutableIndex();

  std::shared_ptr<Table> table_;
  std::shared_ptr<KeyIndex> index_;
};

// Describes where the pivoted cells live in a view's schema: cell (c, b)
// of `spec` sits at column `first_cell_index + c * num_measures + b`, and
// the key columns are everything else. Computed once per view.
struct PivotLayout {
  PivotSpec spec;
  std::vector<size_t> key_positions;    // key column positions in the view
  size_t first_cell_index = 0;          // cells are contiguous from here

  size_t CellIndex(size_t combo, size_t measure) const {
    return first_cell_index + combo * spec.num_measures() + measure;
  }
  // True when any cell of `combo` in `row` is non-⊥ (the paper's group
  // presence test).
  bool GroupPresent(const Row& row, size_t combo) const;
  // True when every cell of every combo in `row` is ⊥.
  bool AllGroupsNull(const Row& row) const;
  // Sets every cell of `combo` in `row` to ⊥.
  void ClearGroup(Row* row, size_t combo) const;

  // Derives the layout from a view schema produced by GPivot(spec).
  static Result<PivotLayout> FromSchema(const Schema& view_schema,
                                        PivotSpec spec);
};

// ---- Staged MERGE ----------------------------------------------------------
//
// Each refresh rule is split into a *staging* half that computes the net
// per-key effect against a read-only view, and an *execution* half that
// mutates. Staging validates the whole delta up front (absent delete keys,
// duplicate inserts, inconsistent aggregates) so an epoch either fails
// before any mutation or commits a plan that cannot fail; execution keeps an
// UndoLog so a fault mid-commit (or a failure in a later view of the same
// epoch) rolls the view back byte-identically.

// One key's net effect within an epoch.
struct MergeRecord {
  Row key;                    // the view key, projected
  std::optional<Row> before;  // row in the view when staged; absent = insert
  std::optional<Row> after;   // row the epoch installs; absent = delete
};

// The staged MERGE for one view. `records` are in first-touch order; every
// record's `before` must match the view's contents at execution time.
struct MergePlan {
  std::vector<MergeRecord> records;

  bool empty() const { return records.empty(); }
};

// Records the exact mutations ExecuteMergePlan performs so a failed epoch
// can restore the view byte-identically, row order included. Operations are
// undone in reverse order.
class UndoLog {
 public:
  void RecordInsert() { ops_.push_back({Op::kInsert, 0, {}}); }
  void RecordUpdate(size_t position, Row old_row) {
    ops_.push_back({Op::kUpdate, position, std::move(old_row)});
  }
  void RecordDelete(size_t position, Row old_row) {
    ops_.push_back({Op::kDelete, position, std::move(old_row)});
  }
  // For wholesale rebuilds (full recompute): stashes the pre-epoch view.
  void RecordRebuild(MaterializedView old_view) {
    rebuilt_from_ = std::move(old_view);
  }

  bool empty() const { return ops_.empty() && !rebuilt_from_.has_value(); }

  // Reverts every recorded operation, leaving `view` in the exact state it
  // had before the first one. The log is consumed.
  void Rollback(MaterializedView* view);

 private:
  struct Op {
    enum Kind { kInsert, kUpdate, kDelete } kind;
    size_t position;
    Row old_row;
  };
  std::vector<Op> ops_;
  std::optional<MaterializedView> rebuilt_from_;
};

// Applies a staged plan, appending each performed mutation to `undo`. Fails
// only on an injected fault or when the view no longer matches the plan's
// `before` snapshots (Internal); the caller rolls back via `undo`.
// ctx.metrics (when enabled) receives ivm.merge.{inserts,updates,deletes}.
Status ExecuteMergePlan(MaterializedView* view, const MergePlan& plan,
                        UndoLog* undo, const ExecContext& ctx = {});

// Sharded execution of a staged plan. In-place updates — the only record
// kind that neither moves rows nor touches the key index — are partitioned
// by key hash into `undos.size() - 1` shards and applied concurrently, each
// shard appending to its own undo log in its own record order; inserts and
// deletes then run in a serial structural pass (original record order,
// fresh position lookups) appending to the *last* undo log.
//
// Byte-identity with the serial ExecuteMergePlan: every key appears in at
// most one record (MergeStager dedupes), so an update's row content is
// independent of the structural ops, and the structural pass performs the
// exact same sequence of whole-row moves — the final table, row order
// included, is identical for every shard count.
//
// Rollback contract: callers append the shard logs then the structural log
// to the epoch undo in that order, so reverse-order rollback undoes the
// structural moves first (restoring the positions the shard logs recorded)
// and then the updates — the reverse-commit-order invariant holds within
// each log and across them. On error (injected fault, plan out of sync)
// the logs hold exactly what was applied; the caller rolls back all of
// them. `undos` needs at least two logs (one shard + structural).
Status ExecuteMergePlanSharded(MaterializedView* view, const MergePlan& plan,
                               const std::vector<UndoLog*>& undos,
                               const ExecContext& ctx = {});

// Staging halves of the §6/§7 apply rules. Each reads `view` without
// mutating it and returns the epoch's MergePlan, or a descriptive error when
// the delta is inconsistent with the view.

// Generic insert/delete propagation rules: bag-deletes the delta's delete
// rows (by key) and inserts its insert rows. The deletion + re-insertion
// churn this causes on pivoted views is the cost the update rules avoid
// (§2.3).
Result<MergePlan> StageInsertDelete(const MaterializedView& view,
                                    const Delta& view_delta);

// Fig. 23: update propagation rules for a GPIVOT at the top of the plan.
// `pivoted_delta.inserts` = GPIVOT(ΔV), `pivoted_delta.deletes` = GPIVOT(∇V)
// where V is the pivot input. Deletes are staged first.
Result<MergePlan> StagePivotUpdate(const MaterializedView& view,
                                   const PivotLayout& layout,
                                   const Delta& pivoted_delta);

// Fig. 27: combined update rules for GPIVOT over GROUPBY. The measures are
// aggregates; `measure_funcs[b]` gives each one's function and
// `count_measure` indexes the per-group COUNT(*) measure that decides group
// emptiness. `pivoted_delta` holds GPIVOT(F(ΔV)) / GPIVOT(F(∇V)).
struct AggregateLayout {
  std::vector<AggFunc> measure_funcs;
  size_t count_measure = 0;
};
Result<MergePlan> StagePivotGroupByUpdate(const MaterializedView& view,
                                          const PivotLayout& layout,
                                          const AggregateLayout& aggs,
                                          const Delta& pivoted_delta);

// Fig. 29: combined update rules for SELECT over GPIVOT. `condition` is the
// σ's predicate compiled against the view schema. `recompute_candidates`
// holds the recomputed pivot rows for keys that the insert delta might have
// newly qualified (GPIVOT(π_K(σ_c'(ΔV)) ⋉ (V ⊎ ΔV)) in the paper); rows
// whose key is absent from the view and that satisfy the condition are
// inserted.
Result<MergePlan> StageSelectPivotUpdate(const MaterializedView& view,
                                         const PivotLayout& layout,
                                         const CompiledExpr& condition,
                                         const Delta& pivoted_delta,
                                         const Table& recompute_candidates);

// Stage-and-commit conveniences: the pre-epoch single-view apply entry
// points, kept for tests and direct callers. On failure nothing is mutated.
Status ApplyInsertDelete(MaterializedView* view, const Delta& view_delta);
Status ApplyPivotUpdate(MaterializedView* view, const PivotLayout& layout,
                        const Delta& pivoted_delta);
Status ApplyPivotGroupByUpdate(MaterializedView* view,
                               const PivotLayout& layout,
                               const AggregateLayout& aggs,
                               const Delta& pivoted_delta);
Status ApplySelectPivotUpdate(MaterializedView* view,
                              const PivotLayout& layout,
                              const CompiledExpr& condition,
                              const Delta& pivoted_delta,
                              const Table& recompute_candidates);

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_APPLY_H_
