#ifndef GPIVOT_IVM_DELTA_H_
#define GPIVOT_IVM_DELTA_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "relation/table.h"
#include "util/result.h"

namespace gpivot::ivm {

// A batch of changes to one relation under bag semantics: `inserts` (Δ) are
// added and `deletes` (∇) removed. Updates are modeled as delete + insert,
// as in the paper (§9 lists native update maintenance as future work).
struct Delta {
  Table inserts;
  Table deletes;

  static Delta Empty(const Schema& schema) {
    return Delta{Table(schema), Table(schema)};
  }

  bool empty() const { return inserts.empty() && deletes.empty(); }

  std::string ToString() const;
};

// Changes per base table, keyed by catalog table name.
using SourceDeltas = std::unordered_map<std::string, Delta>;

// Applies `delta` to `table` in place: bag-deletes `delta.deletes` (each
// delete row must match an existing row), then appends `delta.inserts`.
// All-or-nothing per table: any failure leaves `table` untouched.
Status ApplyDeltaToTable(Table* table, const Delta& delta);

// What an epoch needs to restore a base table byte-identically after
// ApplyDeltaToTableWithUndo. Exactly one restoration applies: a delta with
// deletes rebuilds the table, so the whole pre-state is moved (not copied)
// into `replaced`; an append-only delta just records the truncation point.
// Neither set means the apply failed before mutating.
struct TableUndo {
  std::optional<Table> replaced;
  std::optional<size_t> truncate_to;
};

// Same as ApplyDeltaToTable, but fills `undo` so the caller can restore the
// exact pre-state with RollbackTable when a later step of the epoch fails.
Status ApplyDeltaToTableWithUndo(Table* table, const Delta& delta,
                                 TableUndo* undo);

// Reverts a table mutated by ApplyDeltaToTableWithUndo; consumes `undo`.
// No-op when the apply never mutated.
void RollbackTable(Table* table, TableUndo* undo);

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_DELTA_H_
