#ifndef GPIVOT_IVM_DELTA_H_
#define GPIVOT_IVM_DELTA_H_

#include <string>
#include <unordered_map>

#include "relation/table.h"
#include "util/result.h"

namespace gpivot::ivm {

// A batch of changes to one relation under bag semantics: `inserts` (Δ) are
// added and `deletes` (∇) removed. Updates are modeled as delete + insert,
// as in the paper (§9 lists native update maintenance as future work).
struct Delta {
  Table inserts;
  Table deletes;

  static Delta Empty(const Schema& schema) {
    return Delta{Table(schema), Table(schema)};
  }

  bool empty() const { return inserts.empty() && deletes.empty(); }

  std::string ToString() const;
};

// Changes per base table, keyed by catalog table name.
using SourceDeltas = std::unordered_map<std::string, Delta>;

// Applies `delta` to `table` in place: bag-deletes `delta.deletes` (each
// delete row must match an existing row), then appends `delta.inserts`.
Status ApplyDeltaToTable(Table* table, const Delta& delta);

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_DELTA_H_
