#ifndef GPIVOT_IVM_BATCHER_H_
#define GPIVOT_IVM_BATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ivm/delta.h"
#include "ivm/view_manager.h"
#include "util/result.h"

namespace gpivot::ivm {

// When the batcher flushes on its own. Zero disables a trigger; with both
// zero the batcher only flushes when Flush() is called (a serving layer
// would drive that on a timer — flushing an empty queue is a cheap no_op
// epoch, see ViewManager).
struct BatcherOptions {
  // Auto-flush after this many ingested batches.
  size_t max_batches = 0;
  // Auto-flush when the pending *net* delta (post-compaction Δ + ∇ rows
  // across all tables) reaches this many rows.
  size_t max_net_rows = 0;
  // Frequency-based heavy/light key classifier (0 = disabled, the
  // default). A key of a *keyed* table touched this many times within one
  // pending window is classified heavy and gets a dedicated per-key
  // accumulator holding at most one pending delete and one pending insert;
  // the churn a hot key generates then folds in place instead of growing
  // the general bag by a dead entry pair per batch. A heavy key whose
  // pending shape stops fitting the accumulator (|multiplicity| > 1 on
  // either side) spills back to the general path permanently. The emitted
  // net delta stays equivalent — same rows, same multiplicities — but
  // heavy-key rows emit after the general entries, so emission *order*
  // differs from threshold 0. Light keys are untouched.
  size_t heavy_key_threshold = 0;

  // Reads GPIVOT_BATCH_MAX_BATCHES / GPIVOT_BATCH_MAX_NET_ROWS /
  // GPIVOT_HEAVY_KEY_THRESHOLD (unset or empty = 0 = disabled; malformed
  // values are InvalidArgument, not silently ignored).
  static Result<BatcherOptions> FromEnv();
};

// Lifetime totals of one batcher, all pure functions of the ingested
// batches (no timings): byte-identical across thread counts and mirrored
// into the manager's metrics registry as ivm.batcher.* counters.
struct BatcherStats {
  uint64_t batches_absorbed = 0;  // Ingest calls folded into the queue
  uint64_t rows_ingested = 0;     // Δ + ∇ rows across all absorbed batches
  uint64_t rows_cancelled = 0;    // rows annihilated by Δ/∇ pair cancellation
  uint64_t net_rows_flushed = 0;  // Δ + ∇ rows handed to the manager
  uint64_t flushes = 0;           // flushes that ran an epoch
  uint64_t noop_flushes = 0;      // flushes with nothing pending
  // Heavy/light classifier totals (always 0 with heavy_key_threshold = 0).
  uint64_t heavy_keys_classified = 0;  // keys promoted to a dedicated acc
  uint64_t heavy_spills = 0;           // keys demoted back to the general bag
};

// An ingest queue in front of ViewManager: many small SourceDeltas batches
// are folded into one self-compacting net delta, and Flush applies the net
// as a single atomic maintenance epoch (entry "batched_apply_update").
//
// Compaction is the signed bag sum of F-IVM-style delta algebra: each row
// carries a net multiplicity (+1 per Δ occurrence, -1 per ∇ occurrence),
// so an insert and a later delete of the same row — or a delete and a
// later re-insert — cancel exactly, and a keyed update churned across many
// batches collapses to one net delete+insert pair for its key. Rows whose
// multiplicity reaches zero vanish from the flush entirely. A workload of
// N micro-batches therefore pays one propagation over the (often far
// smaller) net delta instead of N full propagations — the PR 4 cost trees
// show the shrunken Δ/∇ cardinalities directly.
//
// Equivalence: applying Flush() once yields base tables and views
// byte-identical (bag-equal views, identical table contents) to applying
// the ingested batches one epoch at a time, provided the sequential
// application would have succeeded. The net delta is strictly stricter on
// one class of invalid input: a keyed table whose net inserts repeat a key
// is rejected at flush (ValidateDeltas), where sequential application
// would have silently broken the key invariant across epochs.
//
// Failure model: Ingest validates each batch against the manager's catalog
// before folding it in, so a malformed batch is rejected without polluting
// the queue. A failed flush (rule error or injected fault) rolls the epoch
// back per PR 1 semantics and *keeps the queue pending*, so the caller can
// retry or inspect; a successful flush clears it.
//
// Not thread-safe: one ingest thread (or external serialization) per
// batcher, matching ViewManager itself.
class DeltaBatcher {
 public:
  // `manager` must outlive the batcher. Metrics go to
  // manager->exec_context().metrics when enabled.
  explicit DeltaBatcher(ViewManager* manager, BatcherOptions options = {});
  ~DeltaBatcher();

  DeltaBatcher(const DeltaBatcher&) = delete;
  DeltaBatcher& operator=(const DeltaBatcher&) = delete;

  // Validates `deltas` and folds it into the pending net delta. May
  // auto-flush per `options`; the returned status is then the flush's.
  Status Ingest(const SourceDeltas& deltas);

  // Applies the pending net delta as one atomic epoch and clears the queue
  // on success. An empty queue still reaches the manager so timer-driven
  // flushes surface as cheap "no_op" epoch records.
  Status Flush();

  // Snapshot of the compacted pending delta, as it would flush right now.
  // Row order is deterministic: first-touch order of each row across the
  // ingested batches.
  SourceDeltas PendingNet() const;

  size_t pending_batches() const { return pending_batches_; }
  // Net Δ + ∇ rows currently pending across all tables.
  size_t pending_net_rows() const;
  const BatcherStats& stats() const { return stats_; }

 private:
  struct NetState;  // the signed row bags, one per touched table
  // CompactDeltas reuses NetState for the queue-less fold.
  friend Result<SourceDeltas> CompactDeltas(
      const Catalog& catalog, const std::vector<SourceDeltas>& batches);

  ViewManager* manager_;
  BatcherOptions options_;
  std::unique_ptr<NetState> net_;
  size_t pending_batches_ = 0;
  BatcherStats stats_;
};

// Pure compaction, no queue: folds `batches` (in order) into one net
// SourceDeltas against `catalog`'s schemas. Exactly what a DeltaBatcher
// over the same sequence would flush. Validation failures name the
// offending batch index.
Result<SourceDeltas> CompactDeltas(const Catalog& catalog,
                                   const std::vector<SourceDeltas>& batches);

}  // namespace gpivot::ivm

#endif  // GPIVOT_IVM_BATCHER_H_
