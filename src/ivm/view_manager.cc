#include "ivm/view_manager.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/shard_executor.h"
#include "util/string_util.h"

namespace gpivot::ivm {

namespace {

bool AllDeltasEmpty(const SourceDeltas& deltas) {
  for (const auto& [table_name, delta] : deltas) {
    if (!delta.empty()) return false;
  }
  return true;
}

}  // namespace

Result<ShardingOptions> ShardingOptions::FromEnv() {
  ShardingOptions options;
  const char* value = std::getenv("GPIVOT_SHARDS");
  if (value == nullptr || value[0] == '\0') return options;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (value[0] == '-' || end == value || *end != '\0' || parsed == 0) {
    return Status::InvalidArgument(
        StrCat("GPIVOT_SHARDS is not a positive integer: '", value, "'"));
  }
  options.num_shards = static_cast<size_t>(parsed);
  return options;
}

std::string EpochRecord::ToText() const {
  std::string out = StrCat("epoch ", seq, " ", entry, ": ", outcome);
  if (!error.empty()) out += StrCat(" (", error, ")");
  out += "\n";
  for (const TableDelta& delta : deltas) {
    out += StrCat("  delta ", delta.table, ": +", delta.insert_rows, " -",
                  delta.delete_rows, "\n");
  }
  for (const ViewReport& view : views) {
    out += StrCat("  view ", view.name, " [", view.strategy,
                  "] rows_after=", view.rows_after, "\n");
    // Indent the cost tree under its view (strategy already printed above).
    std::string cost = view.cost.ToText();
    size_t start = 0;
    if (cost.rfind("strategy: ", 0) == 0) {
      start = cost.find('\n');
      start = start == std::string::npos ? cost.size() : start + 1;
    }
    while (start < cost.size()) {
      size_t end = cost.find('\n', start);
      if (end == std::string::npos) end = cost.size();
      out += StrCat("    ", cost.substr(start, end - start), "\n");
      start = end + 1;
    }
  }
  return out;
}

std::string EpochRecord::ToJsonLine() const {
  std::string out =
      StrCat("{\"seq\": ", seq, ", \"entry\": ", obs::JsonQuote(entry),
             ", \"outcome\": ", obs::JsonQuote(outcome),
             ", \"error\": ", obs::JsonQuote(error), ", \"deltas\": [");
  for (size_t i = 0; i < deltas.size(); ++i) {
    out += StrCat(i == 0 ? "" : ", ",
                  "{\"table\": ", obs::JsonQuote(deltas[i].table),
                  ", \"insert_rows\": ", deltas[i].insert_rows,
                  ", \"delete_rows\": ", deltas[i].delete_rows, "}");
  }
  out += "], \"views\": [";
  for (size_t i = 0; i < views.size(); ++i) {
    out += StrCat(i == 0 ? "" : ", ",
                  "{\"name\": ", obs::JsonQuote(views[i].name),
                  ", \"strategy\": ", obs::JsonQuote(views[i].strategy),
                  ", \"rows_after\": ", views[i].rows_after,
                  ", \"cost\": ", views[i].cost.ToJsonLine(), "}");
  }
  out += "]}";
  return out;
}

Status ViewManager::DefineView(const std::string& name, PlanPtr query,
                               RefreshStrategy strategy) {
  if (views_.count(name) > 0) {
    return Status::InvalidArgument(StrCat("view '", name, "' already exists"));
  }
  GPIVOT_ASSIGN_OR_RETURN(MaintenancePlan plan,
                          MaintenancePlan::Compile(query, strategy));
  GPIVOT_ASSIGN_OR_RETURN(Table initial,
                          Evaluate(plan.effective_query(), catalog_,
                                   exec_context_));
  GPIVOT_ASSIGN_OR_RETURN(MaterializedView view,
                          MaterializedView::Create(std::move(initial)));
  views_.emplace(name, ViewState{std::move(plan), std::move(view)});
  view_order_.push_back(name);
  return Status::OK();
}

Status ViewManager::RestoreView(const std::string& name, PlanPtr query,
                                RefreshStrategy strategy, Table contents) {
  if (views_.count(name) > 0) {
    return Status::InvalidArgument(StrCat("view '", name, "' already exists"));
  }
  GPIVOT_ASSIGN_OR_RETURN(MaintenancePlan plan,
                          MaintenancePlan::Compile(query, strategy));
  GPIVOT_ASSIGN_OR_RETURN(Schema expected,
                          plan.effective_query()->OutputSchema());
  if (!(contents.schema() == expected)) {
    return Status::InvalidArgument(
        StrCat("restored contents for view '", name,
               "' do not match the effective query's output schema"));
  }
  GPIVOT_ASSIGN_OR_RETURN(MaterializedView view,
                          MaterializedView::Create(std::move(contents)));
  views_.emplace(name, ViewState{std::move(plan), std::move(view)});
  view_order_.push_back(name);
  return Status::OK();
}

Result<const MaterializedView*> ViewManager::GetView(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("view '", name, "' not defined"));
  }
  return &it->second.view;
}

Result<const MaintenancePlan*> ViewManager::GetPlan(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("view '", name, "' not defined"));
  }
  return &it->second.plan;
}

Status ViewManager::ValidateDeltas(const SourceDeltas& deltas) const {
  for (const auto& [table_name, delta] : deltas) {
    Result<const Table*> table_or = catalog_.GetTable(table_name);
    if (!table_or.ok()) {
      return Status::NotFound(
          StrCat("delta for unknown table '", table_name, "'"));
    }
    const Table& table = **table_or;
    // Even an *empty* side must match: the DeltaBatcher merges sides across
    // batches, so a wrong schema on an empty side can be carried into a
    // non-empty merged side and only blow up epochs later.
    auto check_schema = [&](const Table& side, const char* which) -> Status {
      if (side.schema() == table.schema()) return Status::OK();
      return Status::InvalidArgument(
          StrCat(which, " delta for table '", table_name,
                 "' does not match its schema (", side.schema().num_columns(),
                 " vs ", table.schema().num_columns(), " columns",
                 side.empty() ? "; the side is empty but its schema still "
                                "travels with the delta"
                              : "",
                 ")"));
    };
    GPIVOT_RETURN_NOT_OK(check_schema(delta.deletes, "delete"));
    GPIVOT_RETURN_NOT_OK(check_schema(delta.inserts, "insert"));
    if (table.has_key() && !delta.inserts.empty()) {
      GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> key_indices,
                              table.KeyIndices());
      std::unordered_set<Row, RowHash, RowEq> seen;
      seen.reserve(delta.inserts.num_rows());
      for (const Row& row : delta.inserts.rows()) {
        Row key = ProjectRow(row, key_indices);
        if (!seen.insert(key).second) {
          return Status::ConstraintViolation(
              StrCat("insert delta for table '", table_name,
                     "' repeats key ", RowToString(key)));
        }
      }
    }
  }
  return Status::OK();
}

Status ViewManager::ApplyUpdate(const SourceDeltas& deltas) {
  return ApplyUpdateInternal("apply_update", deltas);
}

Status ViewManager::BatchedApplyUpdate(const SourceDeltas& deltas) {
  return ApplyUpdateInternal("batched_apply_update", deltas);
}

Status ViewManager::ApplyUpdateInternal(const char* entry,
                                        const SourceDeltas& deltas) {
  if (Status st = ValidateDeltas(deltas); !st.ok()) {
    RecordEpoch(entry, deltas, /*staged=*/false, st, /*rejected=*/true);
    return st;
  }
  if (AllDeltasEmpty(deltas)) {
    // Consumes no seq and must stay invisible to the durability hook: an
    // empty batch changes nothing, so a WAL entry for it would only make
    // recovery replay (and number) epochs the live run never had.
    RecordNoOpEpoch(entry, deltas);
    return Status::OK();
  }
  if (durability_hook_ != nullptr) {
    // Write-ahead point: the batch becomes durable before anything
    // mutates. Failure rejects the epoch — but still consumes its seq via
    // RecordEpoch, so the WAL (which may or may not hold a torn entry for
    // it) and the epoch log stay aligned on numbering.
    if (Status st = durability_hook_->OnEpochAccepted(epoch_seq_ + 1, entry,
                                                      deltas);
        !st.ok()) {
      RecordEpoch(entry, deltas, /*staged=*/false, st, /*rejected=*/true);
      return st;
    }
  }
  obs::ScopedSpan epoch_span =
      obs::TraceEnabled(exec_context_.tracer)
          ? obs::ScopedSpan(exec_context_.tracer, "epoch")
          : obs::ScopedSpan();
  obs::ScopedLatency latency(exec_context_.metrics, "ivm.epoch.ms");
  // Runtime heartbeat for the stuck-epoch watchdog (no-op unless the admin
  // surface enabled the runtime registry). EndEpoch runs inside
  // RecordEpoch, whatever the outcome.
  obs::RuntimeRegistry::Global().BeginEpochPhase(epoch_seq_ + 1, "stage");
  EpochUndo undo;
  Status st = RefreshViewsInternal(deltas, &undo);
  if (st.ok()) st = AdvanceBaseInternal(deltas, &undo);
  if (!st.ok()) RollbackEpoch(&undo);
  RecordEpoch(entry, deltas, /*staged=*/true, st, /*rejected=*/false);
  // Committed state serves before the durability hook's checkpoint cadence
  // runs: a slow checkpoint must not delay read visibility.
  if (st.ok() && commit_hook_ != nullptr) {
    commit_hook_->OnEpochCommitted(*last_epoch_);
  }
  if (durability_hook_ != nullptr) {
    Status hook_st =
        durability_hook_->OnEpochResolved(last_epoch_->seq, st.ok());
    // A durability failure after a committed epoch surfaces to the caller
    // (the checkpoint cadence slipped); after a rollback the epoch's own
    // error takes precedence.
    if (st.ok() && !hook_st.ok()) return hook_st;
  }
  return st;
}

Status ViewManager::RefreshViews(const SourceDeltas& deltas) {
  if (Status st = ValidateDeltas(deltas); !st.ok()) {
    RecordEpoch("refresh_views", deltas, /*staged=*/false, st,
                /*rejected=*/true);
    return st;
  }
  if (AllDeltasEmpty(deltas)) {
    RecordNoOpEpoch("refresh_views", deltas);
    return Status::OK();
  }
  obs::ScopedSpan epoch_span =
      obs::TraceEnabled(exec_context_.tracer)
          ? obs::ScopedSpan(exec_context_.tracer, "epoch")
          : obs::ScopedSpan();
  obs::ScopedLatency latency(exec_context_.metrics, "ivm.epoch.ms");
  obs::RuntimeRegistry::Global().BeginEpochPhase(epoch_seq_ + 1, "stage");
  EpochUndo undo;
  Status st = RefreshViewsInternal(deltas, &undo);
  if (!st.ok()) RollbackEpoch(&undo);
  RecordEpoch("refresh_views", deltas, /*staged=*/true, st,
              /*rejected=*/false);
  if (st.ok() && commit_hook_ != nullptr) {
    commit_hook_->OnEpochCommitted(*last_epoch_);
  }
  return st;
}

Status ViewManager::AdvanceBase(const SourceDeltas& deltas) {
  if (Status st = ValidateDeltas(deltas); !st.ok()) {
    RecordEpoch("advance_base", deltas, /*staged=*/false, st,
                /*rejected=*/true);
    return st;
  }
  if (AllDeltasEmpty(deltas)) {
    RecordNoOpEpoch("advance_base", deltas);
    return Status::OK();
  }
  obs::ScopedSpan epoch_span =
      obs::TraceEnabled(exec_context_.tracer)
          ? obs::ScopedSpan(exec_context_.tracer, "epoch")
          : obs::ScopedSpan();
  obs::ScopedLatency latency(exec_context_.metrics, "ivm.epoch.ms");
  // No separate stage pass here: the base advance is itself the mutating
  // (commit-like) phase.
  obs::RuntimeRegistry::Global().BeginEpochPhase(epoch_seq_ + 1, "commit");
  EpochUndo undo;
  Status st = AdvanceBaseInternal(deltas, &undo);
  if (!st.ok()) RollbackEpoch(&undo);
  RecordEpoch("advance_base", deltas, /*staged=*/false, st,
              /*rejected=*/false);
  if (st.ok() && commit_hook_ != nullptr) {
    commit_hook_->OnEpochCommitted(*last_epoch_);
  }
  return st;
}

Status ViewManager::RefreshViewsInternal(const SourceDeltas& deltas,
                                         EpochUndo* undo) {
  // Stage phase: every view's refresh is computed against the pre-epoch
  // catalog and validated; nothing mutates until all views staged cleanly.
  // Views are independent (each Stage only reads the shared catalog and its
  // own view), so they stage concurrently — one task per view on the
  // work-stealing shard executor, so a worker done with a cheap view
  // immediately claims the next instead of idling behind a static stripe.
  // Each slot is written by exactly one task; the first failure in
  // view-list order wins, so the reported error doesn't depend on
  // scheduling.
  std::vector<std::pair<const std::string*, ViewState*>> states;
  states.reserve(view_order_.size());
  for (const std::string& name : view_order_) {
    states.emplace_back(&name, &views_.at(name));
  }
  std::vector<std::optional<Result<StagedRefresh>>> slots(states.size());
  {
    obs::ScopedSpan stage_span =
        obs::TraceEnabled(exec_context_.tracer)
            ? obs::ScopedSpan(exec_context_.tracer, "stage")
            : obs::ScopedSpan();
    RunSharded(exec_context_, states.size(), [&](size_t i) {
      // Worker threads carry no thread-local span context, so the per-view
      // span names its parent and position explicitly — the exported tree is
      // identical for every thread count.
      obs::ScopedSpan view_span =
          obs::TraceEnabled(exec_context_.tracer)
              ? obs::ScopedSpan(exec_context_.tracer,
                                StrCat("stage:", *states[i].first),
                                stage_span.id(), static_cast<int64_t>(i))
              : obs::ScopedSpan();
      slots[i].emplace(states[i].second->plan.Stage(
          catalog_, deltas, states[i].second->view, exec_context_));
    });
  }
  std::vector<std::tuple<const std::string*, ViewState*, StagedRefresh>>
      staged;
  staged.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    GPIVOT_ASSIGN_OR_RETURN(StagedRefresh refresh, std::move(*slots[i]));
    staged.emplace_back(states[i].first, states[i].second, std::move(refresh));
  }
  // Commit phase: apply each view's merge, logging every mutation so a
  // failure here (or later in the epoch) rolls everything back. Stays
  // serial — the undo log's "reverse commit order" rollback depends on it.
  obs::RuntimeRegistry::Global().BeginEpochPhase(epoch_seq_ + 1, "commit");
  obs::ScopedSpan commit_span =
      obs::TraceEnabled(exec_context_.tracer)
          ? obs::ScopedSpan(exec_context_.tracer, "commit")
          : obs::ScopedSpan();
  for (auto& [name, state, refresh] : staged) {
    GPIVOT_FAULT_POINT("ViewManager::CommitView");
    obs::ScopedSpan view_span =
        obs::TraceEnabled(exec_context_.tracer)
            ? obs::ScopedSpan(exec_context_.tracer, StrCat("commit:", *name))
            : obs::ScopedSpan();
    if (sharding_.num_shards > 1 && exec_context_.num_threads > 1 &&
        refresh.merge.has_value()) {
      // Sharded commit: in-place updates split across num_shards key-hash
      // shards, each with its own undo log, plus the serial structural log
      // last. Gated on a concurrent executor — with one thread RunSharded
      // runs inline, so the partition pass and per-shard logs would be pure
      // overhead for the byte-identical serial result.
      // The logs append to undo->views in that order, so
      // RollbackEpoch's reverse iteration undoes structural moves first
      // and then the shard updates — the reverse-commit-order invariant
      // holds within each shard and across them. Log pointers are taken
      // only after every emplace (the vector may reallocate).
      const size_t num_logs = sharding_.num_shards + 1;
      const size_t first = undo->views.size();
      for (size_t s = 0; s < num_logs; ++s) {
        undo->views.emplace_back(state, UndoLog());
      }
      std::vector<UndoLog*> logs;
      logs.reserve(num_logs);
      for (size_t s = 0; s < num_logs; ++s) {
        logs.push_back(&undo->views[first + s].second);
      }
      GPIVOT_RETURN_NOT_OK(ExecuteMergePlanSharded(
          &state->view, *refresh.merge, logs, exec_context_));
    } else {
      undo->views.emplace_back(state, UndoLog());
      GPIVOT_RETURN_NOT_OK(MaintenancePlan::CommitStaged(
          std::move(refresh), &state->view, &undo->views.back().second,
          exec_context_));
    }
  }
  return Status::OK();
}

Status ViewManager::AdvanceBaseInternal(const SourceDeltas& deltas,
                                        EpochUndo* undo) {
  obs::ScopedSpan span =
      obs::TraceEnabled(exec_context_.tracer)
          ? obs::ScopedSpan(exec_context_.tracer, "advance")
          : obs::ScopedSpan();
  size_t tables = 0, insert_rows = 0, delete_rows = 0;
  for (const auto& [table_name, delta] : deltas) {
    GPIVOT_FAULT_POINT("ViewManager::AdvanceTable");
    if (!catalog_.HasTable(table_name)) {
      return Status::NotFound(
          StrCat("delta for unknown table '", table_name, "'"));
    }
    Table* table = catalog_.GetMutableTable(table_name);
    undo->tables.emplace_back(table_name, TableUndo{});
    GPIVOT_RETURN_NOT_OK(
        ApplyDeltaToTableWithUndo(table, delta, &undo->tables.back().second));
    ++tables;
    insert_rows += delta.inserts.num_rows();
    delete_rows += delta.deletes.num_rows();
  }
  GPIVOT_FAULT_POINT("ViewManager::EpochEnd");
  // Counted only once everything advanced: a rolled-back epoch contributes
  // nothing, so counter values match the state the caller observes.
  if (exec_context_.metrics != nullptr && exec_context_.metrics->enabled()) {
    exec_context_.metrics->AddCounter("ivm.advance.tables", tables);
    exec_context_.metrics->AddCounter("ivm.advance.insert_rows", insert_rows);
    exec_context_.metrics->AddCounter("ivm.advance.delete_rows", delete_rows);
  }
  return Status::OK();
}

void ViewManager::RollbackEpoch(EpochUndo* undo) {
  obs::ScopedSpan span =
      obs::TraceEnabled(exec_context_.tracer)
          ? obs::ScopedSpan(exec_context_.tracer, "rollback")
          : obs::ScopedSpan();
  if (exec_context_.metrics != nullptr && exec_context_.metrics->enabled()) {
    exec_context_.metrics->AddCounter("ivm.epoch.rollbacks");
  }
  // Undo in reverse commit order: base tables first, then views.
  for (auto it = undo->tables.rbegin(); it != undo->tables.rend(); ++it) {
    RollbackTable(catalog_.GetMutableTable(it->first), &it->second);
  }
  undo->tables.clear();
  for (auto it = undo->views.rbegin(); it != undo->views.rend(); ++it) {
    it->second.Rollback(&it->first->view);
  }
  undo->views.clear();
}

Status ViewManager::Audit() const {
  for (const std::string& name : view_order_) {
    const ViewState& state = views_.at(name);
    GPIVOT_RETURN_NOT_OK(state.view.ValidateIntegrity());
    GPIVOT_ASSIGN_OR_RETURN(Table recomputed,
                            Evaluate(state.plan.effective_query(),
                                     catalog_, exec_context_));
    if (!recomputed.BagEquals(state.view.table())) {
      return Status::Internal(
          StrCat("audit: view '", name,
                 "' diverges from from-scratch recomputation (",
                 state.view.num_rows(), " materialized rows vs ",
                 recomputed.num_rows(), " recomputed)"));
    }
  }
  return Status::OK();
}

Result<Table> ViewManager::RecomputeFromScratch(
    const std::string& name) const {
  GPIVOT_ASSIGN_OR_RETURN(const MaintenancePlan* plan, GetPlan(name));
  return Evaluate(plan->effective_query(), catalog_, exec_context_);
}

Result<CostReport> ViewManager::ExplainAnalyze(const std::string& name) const {
  GPIVOT_ASSIGN_OR_RETURN(const MaintenancePlan* plan, GetPlan(name));
  return ivm::ExplainAnalyze(*plan);
}

void ViewManager::RecordEpoch(const char* entry, const SourceDeltas& deltas,
                              bool staged, const Status& status,
                              bool rejected) {
  EpochRecord record;
  record.seq = ++epoch_seq_;
  record.entry = entry;
  record.outcome =
      rejected ? "rejected" : (status.ok() ? "committed" : "rolled_back");
  if (!status.ok()) record.error = status.ToString();
  record.deltas.reserve(deltas.size());
  for (const auto& [table_name, delta] : deltas) {
    record.deltas.push_back(
        EpochRecord::TableDelta{table_name, delta.inserts.num_rows(),
                                delta.deletes.num_rows()});
  }
  std::sort(record.deltas.begin(), record.deltas.end(),
            [](const EpochRecord::TableDelta& a,
               const EpochRecord::TableDelta& b) { return a.table < b.table; });
  if (staged) {
    record.views.reserve(view_order_.size());
    for (const std::string& name : view_order_) {
      const ViewState& state = views_.at(name);
      EpochRecord::ViewReport report;
      report.name = name;
      report.strategy = RefreshStrategyToString(state.plan.strategy());
      report.rows_after = state.view.num_rows();
      report.cost = ivm::ExplainAnalyze(state.plan);
      record.views.push_back(std::move(report));
    }
  }
  last_epoch_ = std::move(record);
  if (event_log_ != nullptr && event_log_->ok()) {
    event_log_->Append(last_epoch_->ToJsonLine());
  }
  // Runtime (admin-only) surface: heartbeat off, logical clock forward,
  // record into the /epochz ring. Never touches exec_context_.metrics, so
  // deterministic artifacts cannot see any of it.
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (runtime.enabled()) {
    runtime.EndEpoch(last_epoch_->seq);
    runtime.metrics().SetGauge("ivm.manager.epoch_seq",
                               static_cast<double>(last_epoch_->seq));
    runtime.metrics().AddCounter("ivm.epoch.resolved");
    runtime.RecordEpochJson(last_epoch_->ToJsonLine());
  }
}

void ViewManager::RecordNoOpEpoch(const char* entry,
                                  const SourceDeltas& deltas) {
  if (exec_context_.metrics != nullptr && exec_context_.metrics->enabled()) {
    exec_context_.metrics->AddCounter("ivm.epoch.no_ops");
  }
  EpochRecord record;
  record.seq = epoch_seq_;  // not consumed: seq counts epochs that did work
  record.entry = entry;
  record.outcome = "no_op";
  // The batch may still name tables (all with zero rows); keep them so the
  // log shows what the caller handed in.
  record.deltas.reserve(deltas.size());
  for (const auto& [table_name, delta] : deltas) {
    record.deltas.push_back(
        EpochRecord::TableDelta{table_name, delta.inserts.num_rows(),
                                delta.deletes.num_rows()});
  }
  std::sort(record.deltas.begin(), record.deltas.end(),
            [](const EpochRecord::TableDelta& a,
               const EpochRecord::TableDelta& b) { return a.table < b.table; });
  last_epoch_ = std::move(record);
  if (event_log_ != nullptr && event_log_->ok()) {
    event_log_->Append(last_epoch_->ToJsonLine());
  }
  // No-ops consume no seq and never began a heartbeat phase, but they are
  // still interesting in /epochz (a live timer flushing empty batches).
  obs::RuntimeRegistry& runtime = obs::RuntimeRegistry::Global();
  if (runtime.enabled()) {
    runtime.RecordEpochJson(last_epoch_->ToJsonLine());
  }
}

}  // namespace gpivot::ivm
