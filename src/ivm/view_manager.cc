#include "ivm/view_manager.h"

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::ivm {

Status ViewManager::DefineView(const std::string& name, PlanPtr query,
                               RefreshStrategy strategy) {
  if (views_.count(name) > 0) {
    return Status::InvalidArgument(StrCat("view '", name, "' already exists"));
  }
  GPIVOT_ASSIGN_OR_RETURN(MaintenancePlan plan,
                          MaintenancePlan::Compile(query, strategy));
  GPIVOT_ASSIGN_OR_RETURN(Table initial,
                          Evaluate(plan.effective_query(), catalog_));
  GPIVOT_ASSIGN_OR_RETURN(MaterializedView view,
                          MaterializedView::Create(std::move(initial)));
  views_.emplace(name, ViewState{std::move(plan), std::move(view)});
  return Status::OK();
}

Result<const MaterializedView*> ViewManager::GetView(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("view '", name, "' not defined"));
  }
  return &it->second.view;
}

Result<const MaintenancePlan*> ViewManager::GetPlan(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound(StrCat("view '", name, "' not defined"));
  }
  return &it->second.plan;
}

Status ViewManager::ApplyUpdate(const SourceDeltas& deltas) {
  GPIVOT_RETURN_NOT_OK(RefreshViews(deltas));
  return AdvanceBase(deltas);
}

Status ViewManager::RefreshViews(const SourceDeltas& deltas) {
  for (auto& [name, state] : views_) {
    GPIVOT_RETURN_NOT_OK(state.plan.Refresh(catalog_, deltas, &state.view));
  }
  return Status::OK();
}

Status ViewManager::AdvanceBase(const SourceDeltas& deltas) {
  for (const auto& [table_name, delta] : deltas) {
    Table* table = catalog_.GetMutableTable(table_name);
    GPIVOT_RETURN_NOT_OK(ApplyDeltaToTable(table, delta));
  }
  return Status::OK();
}

Result<Table> ViewManager::RecomputeFromScratch(
    const std::string& name) const {
  GPIVOT_ASSIGN_OR_RETURN(const MaintenancePlan* plan, GetPlan(name));
  return Evaluate(plan->effective_query(), catalog_);
}

}  // namespace gpivot::ivm
