#include "ivm/apply.h"

#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::ivm {

namespace {

// ⊥-aware aggregate arithmetic: ⊥ acts as the neutral element for addition
// (a missing subgroup contributes nothing).
Value AddValues(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  if (a.is_int() && b.is_int()) return Value::Int(a.AsInt() + b.AsInt());
  return Value::Real(a.AsNumeric() + b.AsNumeric());
}

Value SubValues(const Value& a, const Value& b) {
  if (b.is_null()) return a;
  if (a.is_null()) return Value::Null();
  if (a.is_int() && b.is_int()) return Value::Int(a.AsInt() - b.AsInt());
  return Value::Real(a.AsNumeric() - b.AsNumeric());
}

}  // namespace

Result<MaterializedView> MaterializedView::Create(Table initial) {
  if (!initial.has_key()) {
    return Status::InvalidArgument(
        "materialized views must carry a key (§6.1)");
  }
  GPIVOT_RETURN_NOT_OK(initial.ValidateKey());
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> key_indices,
                          initial.KeyIndices());
  KeyIndex index(initial, std::move(key_indices));
  return MaterializedView(std::move(initial), std::move(index));
}

void MaterializedView::Insert(Row row) {
  index_.Insert(row, table_.num_rows());
  table_.AddRow(std::move(row));
}

void MaterializedView::Update(size_t position, Row row) {
  GPIVOT_CHECK(position < table_.num_rows()) << "Update out of range";
  GPIVOT_CHECK(RowsEqualAt(table_.rows()[position], index_.key_indices(), row,
                           index_.key_indices()))
      << "Update must not change the key";
  table_.mutable_rows()[position] = std::move(row);
}

void MaterializedView::Delete(size_t position) {
  GPIVOT_CHECK(position < table_.num_rows()) << "Delete out of range";
  std::vector<Row>& rows = table_.mutable_rows();
  index_.EraseKey(ProjectRow(rows[position], index_.key_indices()));
  size_t last = rows.size() - 1;
  if (position != last) {
    rows[position] = std::move(rows[last]);
    index_.Reposition(rows[position], position);
  }
  rows.pop_back();
}

bool PivotLayout::GroupPresent(const Row& row, size_t combo) const {
  for (size_t b = 0; b < spec.num_measures(); ++b) {
    if (!row[CellIndex(combo, b)].is_null()) return true;
  }
  return false;
}

bool PivotLayout::AllGroupsNull(const Row& row) const {
  for (size_t c = 0; c < spec.num_combos(); ++c) {
    if (GroupPresent(row, c)) return false;
  }
  return true;
}

void PivotLayout::ClearGroup(Row* row, size_t combo) const {
  for (size_t b = 0; b < spec.num_measures(); ++b) {
    (*row)[CellIndex(combo, b)] = Value::Null();
  }
}

Result<PivotLayout> PivotLayout::FromSchema(const Schema& view_schema,
                                            PivotSpec spec) {
  PivotLayout layout;
  GPIVOT_ASSIGN_OR_RETURN(size_t first,
                          view_schema.ColumnIndex(spec.OutputColumnName(0, 0)));
  layout.first_cell_index = first;
  size_t num_cells = spec.num_combos() * spec.num_measures();
  for (size_t c = 0; c < spec.num_combos(); ++c) {
    for (size_t b = 0; b < spec.num_measures(); ++b) {
      GPIVOT_ASSIGN_OR_RETURN(
          size_t position,
          view_schema.ColumnIndex(spec.OutputColumnName(c, b)));
      if (position != first + c * spec.num_measures() + b) {
        return Status::InvalidArgument(
            "pivoted cells are not contiguous in the view schema");
      }
    }
  }
  for (size_t i = 0; i < view_schema.num_columns(); ++i) {
    if (i < first || i >= first + num_cells) layout.key_positions.push_back(i);
  }
  layout.spec = std::move(spec);
  return layout;
}

Status ApplyInsertDelete(MaterializedView* view, const Delta& view_delta) {
  const std::vector<size_t>& key_indices = view->key_indices();
  for (const Row& row : view_delta.deletes.rows()) {
    auto position = view->Lookup(row, key_indices);
    if (!position.has_value()) {
      return Status::ConstraintViolation(
          StrCat("delete of absent view row ", RowToString(row)));
    }
    view->Delete(*position);
  }
  for (const Row& row : view_delta.inserts.rows()) {
    view->Insert(row);
  }
  return Status::OK();
}

Status ApplyPivotUpdate(MaterializedView* view, const PivotLayout& layout,
                        const Delta& pivoted_delta) {
  const std::vector<size_t>& key_indices = view->key_indices();
  // Delete case (Fig. 23 bottom): present delta groups turn to ⊥; rows with
  // every group ⊥ leave the view.
  for (const Row& d : pivoted_delta.deletes.rows()) {
    auto position = view->Lookup(d, key_indices);
    if (!position.has_value()) continue;  // key not in view: nothing to do
    Row updated = view->RowAt(*position);
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (layout.GroupPresent(d, c)) layout.ClearGroup(&updated, c);
    }
    if (layout.AllGroupsNull(updated)) {
      view->Delete(*position);
    } else {
      view->Update(*position, std::move(updated));
    }
  }
  // Insert case (Fig. 23 top): unmatched keys insert; matched keys take the
  // delta's groups in place (function f).
  for (const Row& d : pivoted_delta.inserts.rows()) {
    auto position = view->Lookup(d, key_indices);
    if (!position.has_value()) {
      view->Insert(d);
      continue;
    }
    Row updated = view->RowAt(*position);
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        updated[layout.CellIndex(c, b)] = d[layout.CellIndex(c, b)];
      }
    }
    view->Update(*position, std::move(updated));
  }
  return Status::OK();
}

Status ApplyPivotGroupByUpdate(MaterializedView* view,
                               const PivotLayout& layout,
                               const AggregateLayout& aggs,
                               const Delta& pivoted_delta) {
  const std::vector<size_t>& key_indices = view->key_indices();
  const size_t count_measure = aggs.count_measure;
  for (AggFunc func : aggs.measure_funcs) {
    if (func != AggFunc::kSum && func != AggFunc::kCount &&
        func != AggFunc::kCountStar) {
      return Status::InvalidArgument(
          "Fig. 27 rules maintain SUM/COUNT aggregates");
    }
  }

  // Delete case: subtract partial aggregates; a subgroup whose count hits 0
  // empties; a row whose subgroups all emptied leaves the view.
  for (const Row& d : pivoted_delta.deletes.rows()) {
    auto position = view->Lookup(d, key_indices);
    if (!position.has_value()) {
      return Status::ConstraintViolation(
          StrCat("aggregate delete for absent group ", RowToString(d)));
    }
    Row updated = view->RowAt(*position);
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      const Value& old_cnt = updated[layout.CellIndex(c, count_measure)];
      const Value& del_cnt = d[layout.CellIndex(c, count_measure)];
      if (old_cnt.is_null()) {
        return Status::ConstraintViolation(
            "delete delta touches an empty subgroup");
      }
      int64_t new_cnt = old_cnt.AsInt() -
                        (del_cnt.is_null() ? 0 : del_cnt.AsInt());
      if (new_cnt < 0) {
        return Status::ConstraintViolation("subgroup count went negative");
      }
      if (new_cnt == 0) {
        layout.ClearGroup(&updated, c);
        continue;
      }
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        size_t cell = layout.CellIndex(c, b);
        updated[cell] = SubValues(updated[cell], d[cell]);
      }
      updated[layout.CellIndex(c, count_measure)] = Value::Int(new_cnt);
    }
    if (layout.AllGroupsNull(updated)) {
      view->Delete(*position);
    } else {
      view->Update(*position, std::move(updated));
    }
  }

  // Insert case: unmatched keys insert the partial aggregates as-is;
  // matched keys add them subgroup-wise.
  for (const Row& d : pivoted_delta.inserts.rows()) {
    auto position = view->Lookup(d, key_indices);
    if (!position.has_value()) {
      view->Insert(d);
      continue;
    }
    Row updated = view->RowAt(*position);
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      if (!layout.GroupPresent(updated, c)) {
        for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
          size_t cell = layout.CellIndex(c, b);
          updated[cell] = d[cell];
        }
        continue;
      }
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        size_t cell = layout.CellIndex(c, b);
        updated[cell] = AddValues(updated[cell], d[cell]);
      }
    }
    view->Update(*position, std::move(updated));
  }
  return Status::OK();
}

Status ApplySelectPivotUpdate(MaterializedView* view,
                              const PivotLayout& layout,
                              const CompiledExpr& condition,
                              const Delta& pivoted_delta,
                              const Table& recompute_candidates) {
  const std::vector<size_t>& key_indices = view->key_indices();

  // Delete case (Fig. 29 bottom): like Fig. 23, but the updated row is also
  // re-checked against the (postponed) σ condition.
  for (const Row& d : pivoted_delta.deletes.rows()) {
    auto position = view->Lookup(d, key_indices);
    if (!position.has_value()) continue;  // was filtered out before: stays out
    Row updated = view->RowAt(*position);
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (layout.GroupPresent(d, c)) layout.ClearGroup(&updated, c);
    }
    if (layout.AllGroupsNull(updated) || !ValueIsTrue(condition(updated))) {
      view->Delete(*position);
    } else {
      view->Update(*position, std::move(updated));
    }
  }

  // Insert case, matched rows (Fig. 29 top): in-place group updates. A row
  // that satisfied a null-intolerant condition keeps satisfying it after
  // cells are filled in, so no re-check is needed (§6.3.2 proof, case i).
  for (const Row& d : pivoted_delta.inserts.rows()) {
    auto position = view->Lookup(d, key_indices);
    if (!position.has_value()) continue;  // handled by the recompute term
    Row updated = view->RowAt(*position);
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        updated[layout.CellIndex(c, b)] = d[layout.CellIndex(c, b)];
      }
    }
    view->Update(*position, std::move(updated));
  }

  // Insert case, recompute term: keys the delta may have newly qualified.
  for (const Row& candidate : recompute_candidates.rows()) {
    if (view->Lookup(candidate, key_indices).has_value()) continue;
    if (!ValueIsTrue(condition(candidate))) continue;
    view->Insert(candidate);
  }
  return Status::OK();
}

}  // namespace gpivot::ivm
