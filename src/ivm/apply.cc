#include "ivm/apply.h"

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "exec/partition.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/shard_executor.h"
#include "util/string_util.h"

namespace gpivot::ivm {

namespace {

// ⊥-aware aggregate arithmetic: ⊥ acts as the neutral element for addition
// (a missing subgroup contributes nothing).
Value AddValues(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  if (a.is_int() && b.is_int()) return Value::Int(a.AsInt() + b.AsInt());
  return Value::Real(a.AsNumeric() + b.AsNumeric());
}

Value SubValues(const Value& a, const Value& b) {
  if (b.is_null()) return a;
  if (a.is_null()) return Value::Null();
  if (a.is_int() && b.is_int()) return Value::Int(a.AsInt() - b.AsInt());
  return Value::Real(a.AsNumeric() - b.AsNumeric());
}

// Builds a MergePlan against a read-only view: the planners below consult
// and modify the pending overlay so intra-epoch sequences (delete a key,
// then re-insert it) resolve exactly as the mutating rules would have, while
// the view itself stays untouched.
class MergeStager {
 public:
  explicit MergeStager(const MaterializedView& view) : view_(view) {}

  // Current row for `key` across the view plus the overlay; nullptr when
  // absent (never in the view, or deleted earlier in this epoch).
  const Row* Find(const Row& key) const {
    auto it = overlay_.find(key);
    if (it != overlay_.end()) {
      const std::optional<Row>& after = records_[it->second].after;
      return after.has_value() ? &*after : nullptr;
    }
    std::optional<size_t> position = view_.LookupKey(key);
    if (!position.has_value()) return nullptr;
    return &view_.RowAt(*position);
  }

  Status Insert(Row key, Row row) {
    if (Find(key) != nullptr) {
      return Status::ConstraintViolation(
          StrCat("insert of duplicate view key ", RowToString(key)));
    }
    RecordFor(std::move(key)).after = std::move(row);
    return Status::OK();
  }

  Status Update(Row key, Row row) {
    if (Find(key) == nullptr) {
      return Status::Internal(
          StrCat("staged update of absent view key ", RowToString(key)));
    }
    RecordFor(std::move(key)).after = std::move(row);
    return Status::OK();
  }

  Status Delete(Row key) {
    if (Find(key) == nullptr) {
      return Status::Internal(
          StrCat("staged delete of absent view key ", RowToString(key)));
    }
    RecordFor(std::move(key)).after = std::nullopt;
    return Status::OK();
  }

  MergePlan TakePlan() && { return MergePlan{std::move(records_)}; }

 private:
  MergeRecord& RecordFor(Row key) {
    auto it = overlay_.find(key);
    if (it != overlay_.end()) return records_[it->second];
    MergeRecord record;
    std::optional<size_t> position = view_.LookupKey(key);
    if (position.has_value()) record.before = view_.RowAt(*position);
    record.key = key;
    overlay_.emplace(std::move(key), records_.size());
    records_.push_back(std::move(record));
    return records_.back();
  }

  const MaterializedView& view_;
  std::vector<MergeRecord> records_;
  std::unordered_map<Row, size_t, RowHash, RowEq> overlay_;
};

// Stage-and-commit for the single-view Apply* entry points. Execution after
// a successful staging can only fail via fault injection; roll back so even
// that path leaves no trace.
Status CommitPlan(MaterializedView* view, Result<MergePlan> plan) {
  if (!plan.ok()) return plan.status();
  UndoLog undo;
  Status st = ExecuteMergePlan(view, *plan, &undo);
  if (!st.ok()) undo.Rollback(view);
  return st;
}

}  // namespace

Result<MaterializedView> MaterializedView::Create(Table initial) {
  if (!initial.has_key()) {
    return Status::InvalidArgument(
        "materialized views must carry a key (§6.1)");
  }
  GPIVOT_ASSIGN_OR_RETURN(std::vector<size_t> key_indices,
                          initial.KeyIndices());
  // Build detects duplicate keys, so no separate ValidateKey pass.
  GPIVOT_ASSIGN_OR_RETURN(KeyIndex index,
                          KeyIndex::Build(initial, std::move(key_indices)));
  return MaterializedView(std::make_shared<Table>(std::move(initial)),
                          std::make_shared<KeyIndex>(std::move(index)));
}

Table& MaterializedView::MutableTable() {
  if (table_.use_count() > 1) {
    // An immutable handle is outstanding: mutate a private clone so the
    // handle keeps its version. The clone shares the warm column cache
    // (Table's copy ctor) until mutable_rows() invalidates the clone's —
    // the handle holder's cache stays intact either way. One clone per
    // epoch per mutated view at most: the clone's count is 1 until the
    // next shared_table() call.
    obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
    if (global.enabled()) global.AddCounter("ivm.view.cow_table_clones");
    table_ = std::make_shared<Table>(*table_);
  }
  return *table_;
}

KeyIndex& MaterializedView::MutableIndex() {
  if (index_.use_count() > 1) {
    obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
    if (global.enabled()) global.AddCounter("ivm.view.cow_index_clones");
    index_ = std::make_shared<KeyIndex>(*index_);
  }
  return *index_;
}

Status MaterializedView::Insert(Row row) {
  if (index_->Lookup(row, index_->key_indices()).has_value()) {
    return Status::ConstraintViolation(
        StrCat("insert of duplicate view key ",
               RowToString(ProjectRow(row, index_->key_indices()))));
  }
  Table& table = MutableTable();
  MutableIndex().Insert(row, table.num_rows());
  table.AddRow(std::move(row));
  return Status::OK();
}

void MaterializedView::Update(size_t position, Row row) {
  GPIVOT_CHECK(position < table_->num_rows()) << "Update out of range";
  GPIVOT_CHECK(RowsEqualAt(table_->rows()[position], index_->key_indices(),
                           row, index_->key_indices()))
      << "Update must not change the key";
  MutableTable().mutable_rows()[position] = std::move(row);
}

void MaterializedView::Delete(size_t position) {
  GPIVOT_CHECK(position < table_->num_rows()) << "Delete out of range";
  std::vector<Row>& rows = MutableTable().mutable_rows();
  KeyIndex& index = MutableIndex();
  index.EraseKey(ProjectRow(rows[position], index.key_indices()));
  size_t last = rows.size() - 1;
  if (position != last) {
    rows[position] = std::move(rows[last]);
    index.Reposition(rows[position], position);
  }
  rows.pop_back();
}

void MaterializedView::UndoInsert() {
  GPIVOT_CHECK(!table_->empty()) << "UndoInsert on empty view";
  std::vector<Row>& rows = MutableTable().mutable_rows();
  KeyIndex& index = MutableIndex();
  index.EraseKey(ProjectRow(rows.back(), index.key_indices()));
  rows.pop_back();
}

void MaterializedView::UndoDelete(size_t position, Row row) {
  std::vector<Row>& rows = MutableTable().mutable_rows();
  KeyIndex& index = MutableIndex();
  GPIVOT_CHECK(position <= rows.size()) << "UndoDelete out of range";
  if (position == rows.size()) {
    // The deleted row was the last one; no swap happened.
    index.Insert(row, position);
    rows.push_back(std::move(row));
    return;
  }
  // Delete moved the then-last row into `position`; move it back to the end
  // and re-seat the deleted row where it was.
  rows.push_back(std::move(rows[position]));
  index.Reposition(rows.back(), rows.size() - 1);
  index.Insert(row, position);
  rows[position] = std::move(row);
}

Status MaterializedView::ValidateIntegrity() const {
  if (index_->size() != table_->num_rows()) {
    return Status::Internal(StrCat("key index holds ", index_->size(),
                                   " entries for ", table_->num_rows(),
                                   " view rows"));
  }
  for (size_t i = 0; i < table_->num_rows(); ++i) {
    Row key = ProjectRow(table_->rows()[i], index_->key_indices());
    std::optional<size_t> position = index_->LookupKey(key);
    if (!position.has_value() || *position != i) {
      return Status::Internal(
          StrCat("key index maps key ", RowToString(key), " of row ", i,
                 position.has_value() ? StrCat(" to position ", *position)
                                      : " to nothing"));
    }
  }
  return Status::OK();
}

bool PivotLayout::GroupPresent(const Row& row, size_t combo) const {
  for (size_t b = 0; b < spec.num_measures(); ++b) {
    if (!row[CellIndex(combo, b)].is_null()) return true;
  }
  return false;
}

bool PivotLayout::AllGroupsNull(const Row& row) const {
  for (size_t c = 0; c < spec.num_combos(); ++c) {
    if (GroupPresent(row, c)) return false;
  }
  return true;
}

void PivotLayout::ClearGroup(Row* row, size_t combo) const {
  for (size_t b = 0; b < spec.num_measures(); ++b) {
    (*row)[CellIndex(combo, b)] = Value::Null();
  }
}

Result<PivotLayout> PivotLayout::FromSchema(const Schema& view_schema,
                                            PivotSpec spec) {
  PivotLayout layout;
  GPIVOT_ASSIGN_OR_RETURN(size_t first,
                          view_schema.ColumnIndex(spec.OutputColumnName(0, 0)));
  layout.first_cell_index = first;
  size_t num_cells = spec.num_combos() * spec.num_measures();
  for (size_t c = 0; c < spec.num_combos(); ++c) {
    for (size_t b = 0; b < spec.num_measures(); ++b) {
      GPIVOT_ASSIGN_OR_RETURN(
          size_t position,
          view_schema.ColumnIndex(spec.OutputColumnName(c, b)));
      if (position != first + c * spec.num_measures() + b) {
        return Status::InvalidArgument(
            "pivoted cells are not contiguous in the view schema");
      }
    }
  }
  for (size_t i = 0; i < view_schema.num_columns(); ++i) {
    if (i < first || i >= first + num_cells) layout.key_positions.push_back(i);
  }
  layout.spec = std::move(spec);
  return layout;
}

void UndoLog::Rollback(MaterializedView* view) {
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    switch (it->kind) {
      case Op::kInsert:
        view->UndoInsert();
        break;
      case Op::kUpdate:
        view->Update(it->position, std::move(it->old_row));
        break;
      case Op::kDelete:
        view->UndoDelete(it->position, std::move(it->old_row));
        break;
    }
  }
  ops_.clear();
  if (rebuilt_from_.has_value()) {
    *view = std::move(*rebuilt_from_);
    rebuilt_from_.reset();
  }
}

Status ExecuteMergePlan(MaterializedView* view, const MergePlan& plan,
                        UndoLog* undo, const ExecContext& ctx) {
  uint64_t inserts = 0, updates = 0, deletes = 0;
  const size_t mid = (plan.records.size() + 1) / 2;
  for (size_t i = 0; i < plan.records.size(); ++i) {
    if (i == mid) GPIVOT_FAULT_POINT("ExecuteMergePlan::mid-commit");
    const MergeRecord& record = plan.records[i];
    if (!record.before.has_value() && !record.after.has_value()) continue;
    std::optional<size_t> position = view->LookupKey(record.key);
    if (record.before.has_value() != position.has_value()) {
      return Status::Internal(
          StrCat("merge plan out of sync with view at key ",
                 RowToString(record.key)));
    }
    if (!record.before.has_value()) {
      GPIVOT_RETURN_NOT_OK(view->Insert(*record.after));
      undo->RecordInsert();
      ++inserts;
    } else if (record.after.has_value()) {
      undo->RecordUpdate(*position, view->RowAt(*position));
      view->Update(*position, *record.after);
      ++updates;
    } else {
      undo->RecordDelete(*position, view->RowAt(*position));
      view->Delete(*position);
      ++deletes;
    }
  }
  if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
    ctx.metrics->AddCounter("ivm.merge.inserts", inserts);
    ctx.metrics->AddCounter("ivm.merge.updates", updates);
    ctx.metrics->AddCounter("ivm.merge.deletes", deletes);
  }
  return Status::OK();
}

Status ExecuteMergePlanSharded(MaterializedView* view, const MergePlan& plan,
                               const std::vector<UndoLog*>& undos,
                               const ExecContext& ctx) {
  GPIVOT_CHECK(undos.size() >= 2)
      << "sharded merge needs a shard log plus the structural log";
  const size_t num_shards = undos.size() - 1;
  const std::vector<MergeRecord>& records = plan.records;

  // Classify records once. Only in-place updates parallelize; each touches
  // exactly one existing row (keys are unique across records) and never
  // moves rows or mutates the index.
  enum Kind : uint8_t { kSkip, kUpdate, kStructural };
  std::vector<uint8_t> kind(records.size(), kSkip);
  std::vector<uint32_t> bucket(records.size(), 0);
  std::vector<uint64_t> bucket_weights(exec::kPartitionFanout, 0);
  RowHash hasher;
  for (size_t i = 0; i < records.size(); ++i) {
    const MergeRecord& record = records[i];
    if (!record.before.has_value() && !record.after.has_value()) continue;
    if (record.before.has_value() && record.after.has_value()) {
      kind[i] = kUpdate;
      bucket[i] =
          static_cast<uint32_t>(hasher(record.key) % exec::kPartitionFanout);
      ++bucket_weights[bucket[i]];
    } else {
      kind[i] = kStructural;
    }
  }
  // Heavy/light-aware shard ownership: buckets go to shards by observed
  // update weight, so a hot key's bucket lands alone on a shard instead of
  // dragging its hash % num_shards siblings with it. A pure function of
  // (plan, num_shards) — never of thread scheduling.
  const std::vector<uint32_t> shard_of_bucket =
      exec::AssignBucketsByWeight(bucket_weights, num_shards);
  std::vector<size_t> shard_updates(num_shards, 0);
  for (size_t i = 0; i < records.size(); ++i) {
    if (kind[i] == kUpdate) ++shard_updates[shard_of_bucket[bucket[i]]];
  }

  // Phase a: concurrent per-shard updates. The COW clone and column-cache
  // invalidation happen once, serially, before any pool thread writes;
  // after that every Update writes a distinct row of a stable vector and
  // the key index is read-only.
  view->PrepareForConcurrentUpdates();
  std::vector<Status> shard_status(num_shards);
  std::vector<uint64_t> shard_update_count(num_shards, 0);
  RunSharded(ctx, num_shards, [&](size_t s) {
    UndoLog* undo = undos[s];
    const size_t mid = (shard_updates[s] + 1) / 2;
    size_t seen = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      if (kind[i] != kUpdate || shard_of_bucket[bucket[i]] != s) continue;
      if (seen == mid) {
        // Parallel analogue of mid-commit: fires mid-way through this
        // shard's updates, from whatever pool thread runs the shard.
        Status poke =
            FaultInjector::Global().Poke("ExecuteMergePlan::shard-commit");
        if (!poke.ok()) {
          shard_status[s] = std::move(poke);
          return;
        }
      }
      ++seen;
      const MergeRecord& record = records[i];
      std::optional<size_t> position = view->LookupKey(record.key);
      if (!position.has_value()) {
        shard_status[s] = Status::Internal(
            StrCat("merge plan out of sync with view at key ",
                   RowToString(record.key)));
        return;
      }
      undo->RecordUpdate(*position, view->RowAt(*position));
      view->Update(*position, *record.after);
      ++shard_update_count[s];
    }
  });
  uint64_t updates = 0;
  for (size_t s = 0; s < num_shards; ++s) updates += shard_update_count[s];
  for (size_t s = 0; s < num_shards; ++s) {
    // First failing shard in shard order; the caller rolls back every log.
    if (!shard_status[s].ok()) return std::move(shard_status[s]);
  }

  // Phase b: serial structural pass in original record order, with fresh
  // position lookups (updates above never moved rows, so the plan's
  // before-snapshots still decide presence exactly as in the serial path).
  UndoLog* structural = undos.back();
  uint64_t inserts = 0, deletes = 0;
  size_t num_structural = 0;
  for (uint8_t k : kind) num_structural += k == kStructural ? 1 : 0;
  const size_t mid = (num_structural + 1) / 2;
  size_t seen = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (kind[i] != kStructural) continue;
    if (seen == mid) GPIVOT_FAULT_POINT("ExecuteMergePlan::structural-commit");
    ++seen;
    const MergeRecord& record = records[i];
    std::optional<size_t> position = view->LookupKey(record.key);
    if (record.before.has_value() != position.has_value()) {
      return Status::Internal(
          StrCat("merge plan out of sync with view at key ",
                 RowToString(record.key)));
    }
    if (!record.before.has_value()) {
      GPIVOT_RETURN_NOT_OK(view->Insert(*record.after));
      structural->RecordInsert();
      ++inserts;
    } else {
      structural->RecordDelete(*position, view->RowAt(*position));
      view->Delete(*position);
      ++deletes;
    }
  }
  // Same counters as the serial path, with identical values for every
  // shard count — counter dumps stay byte-comparable across shard sweeps.
  if (ctx.metrics != nullptr && ctx.metrics->enabled()) {
    ctx.metrics->AddCounter("ivm.merge.inserts", inserts);
    ctx.metrics->AddCounter("ivm.merge.updates", updates);
    ctx.metrics->AddCounter("ivm.merge.deletes", deletes);
  }
  return Status::OK();
}

Result<MergePlan> StageInsertDelete(const MaterializedView& view,
                                    const Delta& view_delta) {
  const std::vector<size_t>& key_indices = view.key_indices();
  MergeStager stager(view);
  for (const Row& row : view_delta.deletes.rows()) {
    Row key = ProjectRow(row, key_indices);
    if (stager.Find(key) == nullptr) {
      return Status::ConstraintViolation(
          StrCat("delete of absent view row ", RowToString(row)));
    }
    GPIVOT_RETURN_NOT_OK(stager.Delete(std::move(key)));
  }
  for (const Row& row : view_delta.inserts.rows()) {
    GPIVOT_RETURN_NOT_OK(stager.Insert(ProjectRow(row, key_indices), row));
  }
  return std::move(stager).TakePlan();
}

Result<MergePlan> StagePivotUpdate(const MaterializedView& view,
                                   const PivotLayout& layout,
                                   const Delta& pivoted_delta) {
  const std::vector<size_t>& key_indices = view.key_indices();
  MergeStager stager(view);
  // Delete case (Fig. 23 bottom): present delta groups turn to ⊥; rows with
  // every group ⊥ leave the view.
  for (const Row& d : pivoted_delta.deletes.rows()) {
    Row key = ProjectRow(d, key_indices);
    const Row* current = stager.Find(key);
    if (current == nullptr) continue;  // key not in view: nothing to do
    Row updated = *current;
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (layout.GroupPresent(d, c)) layout.ClearGroup(&updated, c);
    }
    if (layout.AllGroupsNull(updated)) {
      GPIVOT_RETURN_NOT_OK(stager.Delete(std::move(key)));
    } else {
      GPIVOT_RETURN_NOT_OK(stager.Update(std::move(key), std::move(updated)));
    }
  }
  // Insert case (Fig. 23 top): unmatched keys insert; matched keys take the
  // delta's groups in place (function f).
  for (const Row& d : pivoted_delta.inserts.rows()) {
    Row key = ProjectRow(d, key_indices);
    const Row* current = stager.Find(key);
    if (current == nullptr) {
      GPIVOT_RETURN_NOT_OK(stager.Insert(std::move(key), d));
      continue;
    }
    Row updated = *current;
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        updated[layout.CellIndex(c, b)] = d[layout.CellIndex(c, b)];
      }
    }
    GPIVOT_RETURN_NOT_OK(stager.Update(std::move(key), std::move(updated)));
  }
  return std::move(stager).TakePlan();
}

Result<MergePlan> StagePivotGroupByUpdate(const MaterializedView& view,
                                          const PivotLayout& layout,
                                          const AggregateLayout& aggs,
                                          const Delta& pivoted_delta) {
  const std::vector<size_t>& key_indices = view.key_indices();
  const size_t count_measure = aggs.count_measure;
  for (AggFunc func : aggs.measure_funcs) {
    if (func != AggFunc::kSum && func != AggFunc::kCount &&
        func != AggFunc::kCountStar) {
      return Status::InvalidArgument(
          "Fig. 27 rules maintain SUM/COUNT aggregates");
    }
  }
  MergeStager stager(view);

  // Delete case: subtract partial aggregates; a subgroup whose count hits 0
  // empties; a row whose subgroups all emptied leaves the view.
  for (const Row& d : pivoted_delta.deletes.rows()) {
    Row key = ProjectRow(d, key_indices);
    const Row* current = stager.Find(key);
    if (current == nullptr) {
      return Status::ConstraintViolation(
          StrCat("aggregate delete for absent group ", RowToString(d)));
    }
    Row updated = *current;
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      const Value& old_cnt = updated[layout.CellIndex(c, count_measure)];
      const Value& del_cnt = d[layout.CellIndex(c, count_measure)];
      if (old_cnt.is_null()) {
        return Status::ConstraintViolation(
            "delete delta touches an empty subgroup");
      }
      int64_t new_cnt = old_cnt.AsInt() -
                        (del_cnt.is_null() ? 0 : del_cnt.AsInt());
      if (new_cnt < 0) {
        return Status::ConstraintViolation("subgroup count went negative");
      }
      if (new_cnt == 0) {
        layout.ClearGroup(&updated, c);
        continue;
      }
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        size_t cell = layout.CellIndex(c, b);
        updated[cell] = SubValues(updated[cell], d[cell]);
      }
      updated[layout.CellIndex(c, count_measure)] = Value::Int(new_cnt);
    }
    if (layout.AllGroupsNull(updated)) {
      GPIVOT_RETURN_NOT_OK(stager.Delete(std::move(key)));
    } else {
      GPIVOT_RETURN_NOT_OK(stager.Update(std::move(key), std::move(updated)));
    }
  }

  // Insert case: unmatched keys insert the partial aggregates as-is;
  // matched keys add them subgroup-wise.
  for (const Row& d : pivoted_delta.inserts.rows()) {
    Row key = ProjectRow(d, key_indices);
    const Row* current = stager.Find(key);
    if (current == nullptr) {
      GPIVOT_RETURN_NOT_OK(stager.Insert(std::move(key), d));
      continue;
    }
    Row updated = *current;
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      if (!layout.GroupPresent(updated, c)) {
        for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
          size_t cell = layout.CellIndex(c, b);
          updated[cell] = d[cell];
        }
        continue;
      }
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        size_t cell = layout.CellIndex(c, b);
        updated[cell] = AddValues(updated[cell], d[cell]);
      }
    }
    GPIVOT_RETURN_NOT_OK(stager.Update(std::move(key), std::move(updated)));
  }
  return std::move(stager).TakePlan();
}

Result<MergePlan> StageSelectPivotUpdate(const MaterializedView& view,
                                         const PivotLayout& layout,
                                         const CompiledExpr& condition,
                                         const Delta& pivoted_delta,
                                         const Table& recompute_candidates) {
  const std::vector<size_t>& key_indices = view.key_indices();
  MergeStager stager(view);

  // Delete case (Fig. 29 bottom): like Fig. 23, but the updated row is also
  // re-checked against the (postponed) σ condition.
  for (const Row& d : pivoted_delta.deletes.rows()) {
    Row key = ProjectRow(d, key_indices);
    const Row* current = stager.Find(key);
    if (current == nullptr) continue;  // was filtered out before: stays out
    Row updated = *current;
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (layout.GroupPresent(d, c)) layout.ClearGroup(&updated, c);
    }
    if (layout.AllGroupsNull(updated) || !ValueIsTrue(condition(updated))) {
      GPIVOT_RETURN_NOT_OK(stager.Delete(std::move(key)));
    } else {
      GPIVOT_RETURN_NOT_OK(stager.Update(std::move(key), std::move(updated)));
    }
  }

  // Insert case, matched rows (Fig. 29 top): in-place group updates. A row
  // that satisfied a null-intolerant condition keeps satisfying it after
  // cells are filled in, so no re-check is needed (§6.3.2 proof, case i).
  for (const Row& d : pivoted_delta.inserts.rows()) {
    Row key = ProjectRow(d, key_indices);
    const Row* current = stager.Find(key);
    if (current == nullptr) continue;  // handled by the recompute term
    Row updated = *current;
    for (size_t c = 0; c < layout.spec.num_combos(); ++c) {
      if (!layout.GroupPresent(d, c)) continue;
      for (size_t b = 0; b < layout.spec.num_measures(); ++b) {
        updated[layout.CellIndex(c, b)] = d[layout.CellIndex(c, b)];
      }
    }
    GPIVOT_RETURN_NOT_OK(stager.Update(std::move(key), std::move(updated)));
  }

  // Insert case, recompute term: keys the delta may have newly qualified.
  for (const Row& candidate : recompute_candidates.rows()) {
    Row key = ProjectRow(candidate, key_indices);
    if (stager.Find(key) != nullptr) continue;
    if (!ValueIsTrue(condition(candidate))) continue;
    GPIVOT_RETURN_NOT_OK(stager.Insert(std::move(key), candidate));
  }
  return std::move(stager).TakePlan();
}

Status ApplyInsertDelete(MaterializedView* view, const Delta& view_delta) {
  return CommitPlan(view, StageInsertDelete(*view, view_delta));
}

Status ApplyPivotUpdate(MaterializedView* view, const PivotLayout& layout,
                        const Delta& pivoted_delta) {
  return CommitPlan(view, StagePivotUpdate(*view, layout, pivoted_delta));
}

Status ApplyPivotGroupByUpdate(MaterializedView* view,
                               const PivotLayout& layout,
                               const AggregateLayout& aggs,
                               const Delta& pivoted_delta) {
  return CommitPlan(view,
                    StagePivotGroupByUpdate(*view, layout, aggs, pivoted_delta));
}

Status ApplySelectPivotUpdate(MaterializedView* view,
                              const PivotLayout& layout,
                              const CompiledExpr& condition,
                              const Delta& pivoted_delta,
                              const Table& recompute_candidates) {
  return CommitPlan(view,
                    StageSelectPivotUpdate(*view, layout, condition,
                                           pivoted_delta,
                                           recompute_candidates));
}

}  // namespace gpivot::ivm
