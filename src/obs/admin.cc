#include "obs/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/json_util.h"
#include "util/string_util.h"

extern char** environ;

namespace gpivot::obs {

namespace {

// Strict uint64 parse: digits only, no sign/space/suffix.
bool ParseStrictUint64(const char* raw, uint64_t* out) {
  if (raw == nullptr || *raw == '\0') return false;
  uint64_t value = 0;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

// Unlabeled gauge lookup; nullopt when the series was never set.
std::optional<double> GaugeValue(const MetricsSnapshot& snapshot,
                                 const std::string& name) {
  auto it = snapshot.gauges.find(name);
  if (it == snapshot.gauges.end()) return std::nullopt;
  auto sample = it->second.find({std::string(), std::string()});
  if (sample == it->second.end()) return std::nullopt;
  return sample->second;
}

void AppendRateGauge(std::ostringstream& out, const std::string& prom_name,
                     const std::string& help, double value) {
  out << "# HELP " << prom_name << " " << PrometheusEscape(help) << "\n"
      << "# TYPE " << prom_name << " gauge\n"
      << prom_name << " " << value << "\n";
}

}  // namespace

Result<AdminOptions> AdminOptions::FromEnv() {
  AdminOptions options;
  const char* raw = std::getenv("GPIVOT_ADMIN_PORT");
  if (raw != nullptr) {
    uint64_t value = 0;
    if (!ParseStrictUint64(raw, &value) || value > 65535) {
      return Status::InvalidArgument(StrCat(
          "GPIVOT_ADMIN_PORT='", raw, "' is not a port number (0-65535)"));
    }
    options.enabled = true;
    options.port = static_cast<int>(value);
  }
  raw = std::getenv("GPIVOT_ADMIN_STUCK_EPOCH_MS");
  if (raw != nullptr) {
    uint64_t value = 0;
    if (!ParseStrictUint64(raw, &value) || value == 0) {
      return Status::InvalidArgument(
          StrCat("GPIVOT_ADMIN_STUCK_EPOCH_MS='", raw,
                 "' is not a positive integer"));
    }
    options.stuck_epoch_ms = value;
  }
  raw = std::getenv("GPIVOT_ADMIN_SAMPLE_MS");
  if (raw != nullptr) {
    uint64_t value = 0;
    if (!ParseStrictUint64(raw, &value) || value == 0) {
      return Status::InvalidArgument(StrCat(
          "GPIVOT_ADMIN_SAMPLE_MS='", raw, "' is not a positive integer"));
    }
    options.sample_ms = value;
  }
  return options;
}

AdminServer::AdminServer(AdminOptions options)
    : options_(options),
      rates_(/*capacity=*/16),
      started_at_(std::chrono::steady_clock::now()) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (running()) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrCat("admin: socket(): ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public surface
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::Internal(StrCat("admin: bind(127.0.0.1:",
                                            options_.port,
                                            "): ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status status =
        Status::Internal(StrCat("admin: listen(): ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options_.port;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::Serve() {
  // Poll with a short timeout so the same thread doubles as the sampler /
  // watchdog driver and notices Stop() promptly.
  const int poll_ms = 100;
  auto last_tick = std::chrono::steady_clock::now();
  SampleTick(UnixSecondsNow());
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, poll_ms);
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        HandleConnection(fd);
        ::close(fd);
      }
    }
    auto now = std::chrono::steady_clock::now();
    std::chrono::duration<double, std::milli> since = now - last_tick;
    if (since.count() >= static_cast<double>(options_.sample_ms)) {
      last_tick = now;
      SampleTick(UnixSecondsNow());
    }
  }
}

void AdminServer::SampleTick(double unix_seconds) {
  RuntimeRegistry& runtime = RuntimeRegistry::Global();
  rates_.Push(unix_seconds, runtime.metrics().Snapshot());
  last_sample_unix_seconds_ = unix_seconds;
  // Keep the watchdog counter live even when nobody scrapes /healthz.
  runtime.CheckStuck(static_cast<double>(options_.stuck_epoch_ms));
}

void AdminServer::HandleConnection(int fd) {
  timeval timeout{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buf[2048];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  Response response;
  size_t line_end = request.find("\r\n");
  std::string_view first_line(request.data(),
                              line_end == std::string::npos ? request.size()
                                                            : line_end);
  size_t sp1 = first_line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : first_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    response = {400, "text/plain; charset=utf-8", "malformed request line\n"};
  } else if (first_line.substr(0, sp1) != "GET") {
    response = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    std::string_view target = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t query = target.find('?');
    if (query != std::string_view::npos) target = target.substr(0, query);
    response = Handle(target);
  }
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << StatusText(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  std::string wire = out.str();
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

AdminServer::Response AdminServer::Handle(std::string_view path) {
  if (path == "/metrics") return Metrics();
  if (path == "/healthz") return Healthz();
  if (path == "/statusz") return Statusz();
  if (path == "/epochz") return Epochz();
  if (path == "/viewz") return Viewz();
  if (path == "/") {
    return {200, "text/plain; charset=utf-8",
            "gpivot admin endpoints:\n  /metrics\n  /healthz\n  /statusz\n"
            "  /epochz\n  /viewz\n"};
  }
  return {404, "text/plain; charset=utf-8",
          StrCat("no such endpoint: ", std::string(path), "\n")};
}

AdminServer::Response AdminServer::Metrics() {
  MetricsSnapshot snapshot = RuntimeRegistry::Global().metrics().Snapshot();
  std::ostringstream out;
  out << snapshot.ToPrometheusText();
  // Derived rates over the sampling window (WindowedRates), exposed as
  // gauges: unlike the raw counters above they are already per-second.
  AppendRateGauge(out, "gpivot_rate_serve_query_ops_per_sec",
                  "Serving-layer query ops per second over the sampling "
                  "window",
                  rates_.CounterRate("serve.query.ops"));
  AppendRateGauge(out, "gpivot_rate_ivm_epochs_per_sec",
                  "Maintenance epochs resolved per second over the sampling "
                  "window",
                  rates_.CounterRate("ivm.epoch.resolved"));
  AppendRateGauge(out, "gpivot_rate_serve_query_p99_ms",
                  "p99 serving query latency (ms) over the sampling window",
                  rates_.WindowQuantileMs("serve.query.ms", 0.99));
  AppendRateGauge(out, "gpivot_rate_window_seconds",
                  "Seconds spanned by the rate window", rates_.WindowSeconds());
  return {200, "text/plain; version=0.0.4; charset=utf-8", out.str()};
}

AdminServer::Response AdminServer::Healthz() {
  RuntimeRegistry& runtime = RuntimeRegistry::Global();
  MetricsSnapshot snapshot = runtime.metrics().Snapshot();
  struct Check {
    std::string name;
    bool ok;
    std::string detail;
  };
  std::vector<Check> checks;

  std::optional<double> poisoned =
      GaugeValue(snapshot, "storage.wal.poisoned");
  checks.push_back({"wal_writable", !(poisoned.has_value() && *poisoned != 0.0),
                    poisoned.has_value() && *poisoned != 0.0
                        ? "WAL poisoned: appends disabled after an earlier "
                          "write failure"
                        : "ok"});

  std::optional<double> age =
      GaugeValue(snapshot, "storage.checkpoint.age_epochs");
  std::optional<double> cadence =
      GaugeValue(snapshot, "storage.checkpoint.cadence");
  bool checkpoint_ok = true;
  std::string checkpoint_detail = "ok";
  if (age.has_value() && cadence.has_value() && *cadence > 0.0 &&
      *age > 2.0 * *cadence) {
    checkpoint_ok = false;
    checkpoint_detail =
        StrCat("checkpoint is ", static_cast<uint64_t>(*age),
               " epochs old (cadence ", static_cast<uint64_t>(*cadence), ")");
  }
  checks.push_back({"checkpoint_fresh", checkpoint_ok, checkpoint_detail});

  std::optional<double> pending =
      GaugeValue(snapshot, "ivm.batcher.pending_net_rows");
  std::optional<double> bound =
      GaugeValue(snapshot, "ivm.batcher.max_net_rows");
  bool batcher_ok = true;
  std::string batcher_detail = "ok";
  if (pending.has_value() && bound.has_value() && *bound > 0.0 &&
      *pending > *bound) {
    batcher_ok = false;
    batcher_detail =
        StrCat("batcher holds ", static_cast<uint64_t>(*pending),
               " net rows, over the auto-flush bound of ",
               static_cast<uint64_t>(*bound));
  }
  checks.push_back({"batcher_queue_bounded", batcher_ok, batcher_detail});

  StuckEpochInfo stuck =
      runtime.CheckStuck(static_cast<double>(options_.stuck_epoch_ms));
  checks.push_back(
      {"epoch_not_stuck", !stuck.stuck,
       stuck.stuck ? StrCat("epoch ", stuck.seq, " stuck in ", stuck.phase,
                            " for ", static_cast<uint64_t>(stuck.elapsed_ms),
                            " ms (bound ", options_.stuck_epoch_ms, " ms)")
                   : "ok"});

  bool healthy = true;
  for (const Check& check : checks) healthy = healthy && check.ok;
  std::ostringstream out;
  out << "{\"status\": " << (healthy ? "\"ok\"" : "\"unhealthy\"")
      << ", \"checks\": [";
  for (size_t i = 0; i < checks.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"name\": " << JsonQuote(checks[i].name)
        << ", \"ok\": " << (checks[i].ok ? "true" : "false")
        << ", \"detail\": " << JsonQuote(checks[i].detail) << "}";
  }
  out << "]}\n";
  return {healthy ? 200 : 503, "application/json", out.str()};
}

AdminServer::Response AdminServer::Statusz() {
  std::chrono::duration<double> uptime =
      std::chrono::steady_clock::now() - started_at_;
  std::ostringstream out;
  out << "{\"build\": {\"compiler\": " << JsonQuote(__VERSION__)
      << ", \"mode\": "
#ifdef NDEBUG
      << "\"release\""
#else
      << "\"debug\""
#endif
      << "}, \"uptime_seconds\": " << uptime.count()
      << ", \"options\": {\"port\": " << port_
      << ", \"stuck_epoch_ms\": " << options_.stuck_epoch_ms
      << ", \"sample_ms\": " << options_.sample_ms << "}, \"env\": {";
  bool first = true;
  for (char** env = environ; env != nullptr && *env != nullptr; ++env) {
    std::string_view entry(*env);
    if (entry.rfind("GPIVOT_", 0) != 0) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    if (!first) out << ", ";
    out << JsonQuote(entry.substr(0, eq)) << ": "
        << JsonQuote(entry.substr(eq + 1));
    first = false;
  }
  out << "}}\n";
  return {200, "application/json", out.str()};
}

AdminServer::Response AdminServer::Epochz() {
  std::vector<std::string> ring = RuntimeRegistry::Global().EpochRing();
  std::ostringstream out;
  out << "{\"epochs\": [";
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n" << ring[i];
  }
  if (!ring.empty()) out << "\n";
  out << "]}\n";
  return {200, "application/json", out.str()};
}

AdminServer::Response AdminServer::Viewz() {
  RuntimeRegistry& runtime = RuntimeRegistry::Global();
  MetricsSnapshot snapshot = runtime.metrics().Snapshot();
  double manager_seq =
      GaugeValue(snapshot, "ivm.manager.epoch_seq").value_or(0.0);
  std::ostringstream out;
  out << "{\"manager_epoch_seq\": " << static_cast<uint64_t>(manager_seq)
      << ", \"stores\": [";
  bool first_store = true;
  for (const auto& [name, json] : runtime.CollectJsonSections()) {
    if (name != "serve") continue;
    std::optional<JsonValue> parsed = ParseJson(json);
    if (!parsed.has_value() || !parsed->is_object()) continue;
    if (!first_store) out << ", ";
    first_store = false;
    const JsonValue* last = parsed->Find("last_committed_seq");
    const JsonValue* slots = parsed->Find("reader_slots");
    const JsonValue* retired = parsed->Find("retired_pending");
    out << "{\"last_committed_seq\": "
        << static_cast<uint64_t>(last != nullptr ? last->number_value : 0)
        << ", \"retired_pending\": "
        << static_cast<uint64_t>(retired != nullptr ? retired->number_value
                                                    : 0);
    if (slots != nullptr && slots->is_object()) {
      const JsonValue* capacity = slots->Find("capacity");
      const JsonValue* occupied = slots->Find("occupied");
      out << ", \"reader_slots\": {\"capacity\": "
          << static_cast<uint64_t>(
                 capacity != nullptr ? capacity->number_value : 0)
          << ", \"occupied\": "
          << static_cast<uint64_t>(
                 occupied != nullptr ? occupied->number_value : 0)
          << "}";
    }
    out << ", \"views\": [";
    const JsonValue* views = parsed->Find("views");
    if (views != nullptr && views->is_array()) {
      for (size_t i = 0; i < views->array.size(); ++i) {
        const JsonValue& view = views->array[i];
        const JsonValue* view_name = view.Find("view");
        const JsonValue* seq = view.Find("snapshot_seq");
        double snapshot_seq = seq != nullptr ? seq->number_value : 0.0;
        // The exact staleness contract: manager epoch seq minus the seq of
        // the installed snapshot. Rolled-back epochs consume a seq without
        // installing, so a store can lag the manager even when healthy.
        double staleness =
            manager_seq > snapshot_seq ? manager_seq - snapshot_seq : 0.0;
        if (i > 0) out << ", ";
        out << "{\"view\": "
            << JsonQuote(view_name != nullptr ? view_name->string_value
                                              : std::string())
            << ", \"snapshot_seq\": " << static_cast<uint64_t>(snapshot_seq)
            << ", \"staleness\": " << static_cast<uint64_t>(staleness) << "}";
      }
    }
    out << "]}";
  }
  out << "]}\n";
  return {200, "application/json", out.str()};
}

Result<AdminServer*> AdminServerFromEnv() {
  static const Result<AdminServer*>* const kResult =
      []() -> const Result<AdminServer*>* {
    Result<AdminOptions> options = AdminOptions::FromEnv();
    if (!options.ok()) return new Result<AdminServer*>(options.status());
    if (!options->enabled) {
      return new Result<AdminServer*>(static_cast<AdminServer*>(nullptr));
    }
    // The admin surface is what turns the runtime registry on: with it off,
    // every gauge/heartbeat publish in the hot path stays a single relaxed
    // load.
    RuntimeRegistry::Global().set_enabled(true);
    auto* server = new AdminServer(*options);  // leaked: lives until exit
    Status status = server->Start();
    if (!status.ok()) return new Result<AdminServer*>(status);
    return new Result<AdminServer*>(server);
  }();
  return *kResult;
}

}  // namespace gpivot::obs
