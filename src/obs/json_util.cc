#include "obs/json_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace gpivot::obs {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

// Cursor-based recursive-descent JSON parser that only validates.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool CheckDocument() {
    SkipWs();
    if (!CheckValue()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool CheckLiteral(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool CheckString() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool CheckNumber() {
    Eat('-');
    // Integer part: "0" or a nonzero digit followed by more digits — a
    // leading zero ("01") is not JSON.
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return false;
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      EatDigits();
    }
    if (Eat('.') && !EatDigits()) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!EatDigits()) return false;
    }
    return true;
  }

  bool EatDigits() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool CheckValue() {
    if (++depth_ > kMaxDepth) return false;
    SkipWs();
    bool ok = false;
    if (pos_ >= s_.size()) {
      ok = false;
    } else if (s_[pos_] == '{') {
      ok = CheckObject();
    } else if (s_[pos_] == '[') {
      ok = CheckArray();
    } else if (s_[pos_] == '"') {
      ok = CheckString();
    } else if (s_[pos_] == 't') {
      ok = CheckLiteral("true");
    } else if (s_[pos_] == 'f') {
      ok = CheckLiteral("false");
    } else if (s_[pos_] == 'n') {
      ok = CheckLiteral("null");
    } else {
      ok = CheckNumber();
    }
    --depth_;
    return ok;
  }

  bool CheckObject() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    for (;;) {
      SkipWs();
      if (!CheckString()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      if (!CheckValue()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool CheckArray() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    for (;;) {
      if (!CheckValue()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

// Builds the JsonValue DOM; same grammar as JsonChecker plus escape
// decoding, duplicate-key rejection, and byte-offset diagnostics.
class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  std::optional<JsonValue> ParseDocument(std::string* error) {
    SkipWs();
    std::optional<JsonValue> value = ParseValue();
    if (value.has_value()) {
      SkipWs();
      if (pos_ != s_.size()) {
        value.reset();
        Fail("trailing data after document");
      }
    }
    if (!value.has_value() && error != nullptr) {
      *error = error_.empty() ? "malformed JSON" : error_;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void Fail(const char* what) {
    if (error_.empty()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s at byte %zu", what, pos_);
      error_ = buf;
    }
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) {
      Fail("invalid literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  // Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseHex4(uint32_t* out) {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size() ||
          !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
        Fail("bad \\u escape");
        return false;
      }
      char c = s_[pos_++];
      uint32_t digit = c <= '9'   ? static_cast<uint32_t>(c - '0')
                       : c <= 'F' ? static_cast<uint32_t>(c - 'A' + 10)
                                  : static_cast<uint32_t>(c - 'a' + 10);
      value = value * 16 + digit;
    }
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) {
      Fail("expected string");
      return false;
    }
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
        return false;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < s_.size() &&
              s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              Fail("unpaired surrogate");
              return false;
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          Fail("bad escape");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    // Reuse the checker's grammar for the span, then convert.
    Eat('-');
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      Fail("invalid number");
      return std::nullopt;
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      EatDigits();
    }
    if (Eat('.') && !EatDigits()) {
      Fail("invalid number");
      return std::nullopt;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!EatDigits()) {
        Fail("invalid number");
        return std::nullopt;
      }
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number_value = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(), nullptr);
    return value;
  }

  bool EatDigits() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  std::optional<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) {
      Fail("nesting too deep");
      return std::nullopt;
    }
    SkipWs();
    std::optional<JsonValue> value;
    if (pos_ >= s_.size()) {
      Fail("unexpected end of input");
    } else if (s_[pos_] == '{') {
      value = ParseObject();
    } else if (s_[pos_] == '[') {
      value = ParseArray();
    } else if (s_[pos_] == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      if (ParseString(&v.string_value)) value = std::move(v);
    } else if (s_[pos_] == 't' || s_[pos_] == 'f') {
      bool truth = s_[pos_] == 't';
      if (ParseLiteral(truth ? "true" : "false")) {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.bool_value = truth;
        value = std::move(v);
      }
    } else if (s_[pos_] == 'n') {
      if (ParseLiteral("null")) value = JsonValue{};
    } else {
      value = ParseNumber();
    }
    --depth_;
    return value;
  }

  std::optional<JsonValue> ParseObject() {
    Eat('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Eat('}')) return value;
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return std::nullopt;
      if (value.Find(key) != nullptr) {
        Fail("duplicate object key");
        return std::nullopt;
      }
      SkipWs();
      if (!Eat(':')) {
        Fail("expected ':'");
        return std::nullopt;
      }
      std::optional<JsonValue> member = ParseValue();
      if (!member.has_value()) return std::nullopt;
      value.object.emplace_back(std::move(key), std::move(*member));
      SkipWs();
      if (Eat('}')) return value;
      if (!Eat(',')) {
        Fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> ParseArray() {
    Eat('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Eat(']')) return value;
    for (;;) {
      std::optional<JsonValue> element = ParseValue();
      if (!element.has_value()) return std::nullopt;
      value.array.push_back(std::move(*element));
      SkipWs();
      if (Eat(']')) return value;
      if (!Eat(',')) {
        Fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool IsValidJson(std::string_view s) {
  return JsonChecker(s).CheckDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<JsonValue> ParseJson(std::string_view s, std::string* error) {
  return JsonParser(s).ParseDocument(error);
}

}  // namespace gpivot::obs
