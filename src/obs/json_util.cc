#include "obs/json_util.h"

#include <cctype>
#include <cstdio>

namespace gpivot::obs {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

// Cursor-based recursive-descent JSON parser that only validates.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool CheckDocument() {
    SkipWs();
    if (!CheckValue()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool CheckLiteral(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool CheckString() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool CheckNumber() {
    Eat('-');
    // Integer part: "0" or a nonzero digit followed by more digits — a
    // leading zero ("01") is not JSON.
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return false;
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      EatDigits();
    }
    if (Eat('.') && !EatDigits()) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!EatDigits()) return false;
    }
    return true;
  }

  bool EatDigits() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool CheckValue() {
    if (++depth_ > kMaxDepth) return false;
    SkipWs();
    bool ok = false;
    if (pos_ >= s_.size()) {
      ok = false;
    } else if (s_[pos_] == '{') {
      ok = CheckObject();
    } else if (s_[pos_] == '[') {
      ok = CheckArray();
    } else if (s_[pos_] == '"') {
      ok = CheckString();
    } else if (s_[pos_] == 't') {
      ok = CheckLiteral("true");
    } else if (s_[pos_] == 'f') {
      ok = CheckLiteral("false");
    } else if (s_[pos_] == 'n') {
      ok = CheckLiteral("null");
    } else {
      ok = CheckNumber();
    }
    --depth_;
    return ok;
  }

  bool CheckObject() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    for (;;) {
      SkipWs();
      if (!CheckString()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      if (!CheckValue()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool CheckArray() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    for (;;) {
      if (!CheckValue()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool IsValidJson(std::string_view s) {
  return JsonChecker(s).CheckDocument();
}

}  // namespace gpivot::obs
