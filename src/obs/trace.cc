#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json_util.h"

namespace gpivot::obs {

namespace {

// (tracer id -> innermost open span) for the calling thread. Keyed by a
// process-unique id so a stale entry for a destroyed tracer never aliases
// a new one.
thread_local std::unordered_map<uint64_t, SpanId> t_current_span;

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer()
    : id_(NextTracerId()), epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::Global() {
  // Leaked for the same reason as MetricsRegistry::Global().
  static Tracer* const kTracer = new Tracer();
  return *kTracer;
}

SpanId Tracer::BeginSpan(std::string name, SpanId parent, int64_t order) {
  if (parent == 0) parent = CurrentSpan();
  std::chrono::duration<double, std::micro> start =
      std::chrono::steady_clock::now() - epoch_;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord record;
  record.id = spans_.size() + 1;
  record.parent = parent;
  record.name = std::move(name);
  record.start_us = start.count();
  record.order = order;
  record.tid =
      thread_numbers_.emplace(std::this_thread::get_id(), thread_numbers_.size())
          .first->second;
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id) {
  std::chrono::duration<double, std::micro> now =
      std::chrono::steady_clock::now() - epoch_;
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;  // cleared mid-span
  SpanRecord& record = spans_[id - 1];
  record.dur_us = now.count() - record.start_us;
}

void Tracer::AddAttr(SpanId id, std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::string(key), std::string(value));
}

SpanId Tracer::CurrentSpan() const {
  auto it = t_current_span.find(id_);
  return it == t_current_span.end() ? 0 : it->second;
}

void Tracer::SetCurrentSpan(SpanId id) { t_current_span[id_] = id; }

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << " {\"name\": " << JsonQuote(span.name)
        << ", \"cat\": \"gpivot\", \"ph\": \"X\", \"ts\": " << span.start_us
        << ", \"dur\": " << (span.dur_us < 0 ? 0.0 : span.dur_us)
        << ", \"pid\": 0, \"tid\": " << span.tid;
    if (!span.attrs.empty()) {
      out << ", \"args\": {";
      for (size_t i = 0; i < span.attrs.size(); ++i) {
        if (i > 0) out << ", ";
        out << JsonQuote(span.attrs[i].first) << ": "
            << JsonQuote(span.attrs[i].second);
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

std::string Tracer::ToSpanTree() const {
  std::lock_guard<std::mutex> lock(mu_);
  // children[p] = ids of spans whose parent is p (0 = roots).
  std::unordered_map<SpanId, std::vector<SpanId>> children;
  for (const SpanRecord& span : spans_) {
    children[span.parent].push_back(span.id);
  }
  // Deterministic sibling order: explicit `order` keys first (ascending),
  // then creation order. Creation order across threads is only used for
  // same-thread sequential siblings, so it is deterministic too.
  for (auto& [parent, ids] : children) {
    std::sort(ids.begin(), ids.end(), [this](SpanId a, SpanId b) {
      const SpanRecord& ra = spans_[a - 1];
      const SpanRecord& rb = spans_[b - 1];
      bool a_explicit = ra.order >= 0;
      bool b_explicit = rb.order >= 0;
      if (a_explicit != b_explicit) return a_explicit;
      if (a_explicit && ra.order != rb.order) return ra.order < rb.order;
      return a < b;
    });
  }
  std::ostringstream out;
  // Iterative DFS from the roots; (id, depth) stack, children pre-reversed.
  std::vector<std::pair<SpanId, int>> stack;
  auto push_children = [&](SpanId parent, int depth) {
    auto it = children.find(parent);
    if (it == children.end()) return;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      stack.emplace_back(*rit, depth);
    }
  };
  push_children(0, 0);
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const SpanRecord& span = spans_[id - 1];
    out << std::string(static_cast<size_t>(depth) * 2, ' ') << span.name;
    for (const auto& [key, value] : span.attrs) {
      out << " " << key << "=" << value;
    }
    out << "\n";
    push_children(id, depth + 1);
  }
  return out.str();
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << ToChromeTraceJson();
  return static_cast<bool>(out.flush());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

const std::string& TraceDirFromEnv() {
  static const std::string* const kDir = [] {
    const char* value = std::getenv("GPIVOT_TRACE_DIR");
    return new std::string(value == nullptr ? "" : value);
  }();
  return *kDir;
}

Tracer* TracerFromEnv() {
  static Tracer* const kFromEnv = []() -> Tracer* {
    if (TraceDirFromEnv().empty()) return nullptr;
    Tracer::Global().set_enabled(true);
    return &Tracer::Global();
  }();
  return kFromEnv;
}

}  // namespace gpivot::obs
