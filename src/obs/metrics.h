#ifndef GPIVOT_OBS_METRICS_H_
#define GPIVOT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpivot::obs {

// One latency distribution: count / total / min / max plus log2 buckets.
// Bucket i counts samples with floor(log2(ms)) + kBucketBias == i, clamped
// to the array; covers ~1µs up to ~1000s of milliseconds.
struct HistogramData {
  static constexpr size_t kNumBuckets = 32;
  static constexpr int kBucketBias = 10;  // bucket 10 ~ [1ms, 2ms)

  uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::array<uint64_t, kNumBuckets> buckets{};

  static size_t BucketIndex(double ms);
  void Record(double ms);
  void Merge(const HistogramData& other);
  double mean_ms() const { return count == 0 ? 0.0 : total_ms / count; }

  // Estimated q-quantile (q in [0, 1]) by linear interpolation within the
  // log2 bucket holding that rank, clamped to [min_ms, max_ms]; 0 when
  // empty. Exact observed values are not kept, so this is a bucket-
  // resolution estimate, like any Prometheus histogram quantile.
  double QuantileMs(double q) const;
};

// A merged, sorted view of a registry's state. std::map keys make every
// rendering deterministic regardless of which threads recorded what.
struct MetricsSnapshot {
  // Gauge samples of one name, keyed by an optional (label key, label
  // value) pair; ("", "") is the unlabeled sample. Per-view series
  // (staleness, installed seq) use one label so Prometheus groups them.
  using GaugeSamples = std::map<std::pair<std::string, std::string>, double>;

  std::map<std::string, uint64_t> counters;
  std::map<std::string, GaugeSamples> gauges;
  std::map<std::string, HistogramData> histograms;

  // One "name value" / "name count=.. total_ms=.." line per entry.
  std::string ToString() const;
  // A JSON object {"counters": {...}, "histograms": {...}}; `indent` spaces
  // of leading indentation per line, for embedding in a larger document.
  // A "gauges" member appears only when gauges exist, so registries that
  // never set one (every pre-gauge artifact producer) render byte-
  // identically to before gauges existed.
  std::string ToJson(int indent = 0) const;
  // Prometheus text exposition: counters as `gpivot_<name>` counter
  // samples, gauges as `# TYPE ... gauge` samples, histograms as summaries
  // (p50/p95/p99 quantile labels plus _sum/_count). Characters outside
  // [a-zA-Z0-9_] in metric names become '_'; label values are escaped per
  // the text format (backslash, double quote, newline).
  std::string ToPrometheusText() const;

  // Merges `other` into this snapshot: counters/buckets add, gauges from
  // `other` win on key collisions (last-write-wins, like the registry).
  void MergeFrom(const MetricsSnapshot& other);
};

// Escapes '\' -> "\\", '"' -> "\"", and newline -> "\n" for use inside
// Prometheus HELP text and quoted label values (the text exposition format
// is line-oriented, so an unescaped newline in either corrupts the whole
// scrape).
std::string PrometheusEscape(std::string_view s);

// A registry of named monotonic counters and latency histograms.
//
// Writes go to a per-thread shard (created on first touch, owned by the
// registry), so concurrent AddCounter calls never contend and never lose
// updates: Snapshot() merges the shards under their (otherwise uncontended)
// mutexes, producing exact sums. Counter values are therefore a pure
// function of the work performed — byte-identical across thread counts —
// which the determinism tests rely on.
//
// Disabled registries (the default) cost one relaxed atomic load per call.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry. Used by code with no ExecContext in reach
  // (ThreadPool internals); enabled via set_enabled or GPIVOT_METRICS=1
  // (see MetricsFromEnv).
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void AddCounter(std::string_view name, uint64_t delta = 1);
  void RecordLatency(std::string_view name, double ms);

  // Gauges: last-write-wins point-in-time values (queue depth, installed
  // epoch seq, staleness). Unlike counters they cannot live in per-thread
  // shards — two shards each holding "the" last value would merge into
  // nonsense — so they sit under one mutex; gauge writes happen per epoch
  // or per install, never per row, so contention is irrelevant.
  void SetGauge(std::string_view name, double value);
  // One labeled sample, e.g. SetGauge("serve.view.staleness", "view", "v1",
  // 3): exposed as gpivot_serve_view_staleness{view="v1"} 3.
  void SetGauge(std::string_view name, std::string_view label_key,
                std::string_view label_value, double value);
  // Adds `delta` to the unlabeled sample of `name` (0 when unset).
  void AddGauge(std::string_view name, double delta);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  struct Shard;

  Shard* LocalShard();

  std::atomic<bool> enabled_{false};
  const uint64_t id_;  // process-unique; keys the thread-local shard lookup

  mutable std::mutex mu_;  // guards shards_ (the vector, not shard contents)
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex gauges_mu_;
  std::map<std::string, MetricsSnapshot::GaugeSamples> gauges_;
};

// RAII latency timer: records elapsed wall time into `registry` under
// `name` on destruction. Null/disabled registry makes it a no-op (the
// clock is not even read).
class ScopedLatency {
 public:
  ScopedLatency(MetricsRegistry* registry, std::string_view name)
      : registry_(registry != nullptr && registry->enabled() ? registry
                                                             : nullptr),
        name_(registry_ != nullptr ? std::string(name) : std::string()) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (registry_ == nullptr) return;
    std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    registry_->RecordLatency(name_, elapsed.count());
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

// Returns &MetricsRegistry::Global() with the registry enabled when the
// GPIVOT_METRICS environment variable is set to anything but "" or "0",
// else nullptr. The env var is read once per process.
MetricsRegistry* MetricsFromEnv();

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_METRICS_H_
