#ifndef GPIVOT_OBS_JSON_UTIL_H_
#define GPIVOT_OBS_JSON_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpivot::obs {

// Returns `s` as a quoted JSON string literal: wrapped in double quotes
// with ", \, and control characters escaped.
std::string JsonQuote(std::string_view s);

// Strict validity check for a complete JSON document (one value spanning
// the whole input, modulo whitespace). A minimal recursive-descent parser —
// enough for tests and CI to assert that exported trace/metrics files are
// well-formed without pulling in a JSON library.
bool IsValidJson(std::string_view s);

// A parsed JSON document — the small DOM tools use to *read back* the
// artifacts this library writes (BENCH_*.json, cost reports, epoch
// records). Numbers are kept as double (every number we emit fits);
// object members keep source order and duplicate keys are rejected.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses a complete JSON document with the same strictness as IsValidJson
// (whole input, duplicate object keys rejected, escapes decoded — \uXXXX
// outside ASCII is kept as UTF-8). Returns nullopt on malformed input and,
// when `error` is non-null, stores a byte-offset diagnostic there.
std::optional<JsonValue> ParseJson(std::string_view s,
                                   std::string* error = nullptr);

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_JSON_UTIL_H_
