#ifndef GPIVOT_OBS_JSON_UTIL_H_
#define GPIVOT_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace gpivot::obs {

// Returns `s` as a quoted JSON string literal: wrapped in double quotes
// with ", \, and control characters escaped.
std::string JsonQuote(std::string_view s);

// Strict validity check for a complete JSON document (one value spanning
// the whole input, modulo whitespace). A minimal recursive-descent parser —
// enough for tests and CI to assert that exported trace/metrics files are
// well-formed without pulling in a JSON library.
bool IsValidJson(std::string_view s);

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_JSON_UTIL_H_
