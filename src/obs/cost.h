#ifndef GPIVOT_OBS_COST_H_
#define GPIVOT_OBS_COST_H_

#include <cstdint>
#include <map>
#include <mutex>

namespace gpivot::obs {

// Per-plan-node actuals accumulated while a maintenance plan stages one
// delta batch (or evaluates from scratch). Every field is a pure function
// of the work performed — never of the schedule — so reports built from
// these are byte-identical across thread counts, like the counter
// registries (see DESIGN.md, "Observability").
struct NodeStats {
  // Operator executions attributed to this node (an incremental strategy
  // may run the same node's operator several times: once per delta side,
  // once per database state).
  uint64_t invocations = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  // Hash-join sides; zero for every other operator.
  uint64_t build_rows = 0;
  uint64_t probe_rows = 0;
  // Base-table accesses: how many times a scan's backing catalog table was
  // read, and the total rows those reads covered. The paper's plan-shape
  // claims (§7) reduce to these two numbers — an incremental strategy
  // proves itself by keeping them at zero for the delta'd table.
  uint64_t base_accesses = 0;
  uint64_t base_rows_read = 0;
  // Delta cardinalities this node's propagation rule produced (Δ / ∇).
  uint64_t delta_insert_rows = 0;
  uint64_t delta_delete_rows = 0;

  void Merge(const NodeStats& other);
  bool IsZero() const;
};

// Accumulates NodeStats keyed by the plan-node id assigned at compile time
// (AssignNodeIds in algebra/plan.h). One collector per maintenance plan;
// Reset at the start of every Stage so a snapshot always describes the most
// recent refresh. Staging runs one thread per view but operators record
// from the staging thread only, so the mutex is effectively uncontended.
class CostCollector {
 public:
  void Record(int node, const NodeStats& delta);
  std::map<int, NodeStats> Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<int, NodeStats> stats_;
};

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_COST_H_
