#ifndef GPIVOT_OBS_RUNTIME_H_
#define GPIVOT_OBS_RUNTIME_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace gpivot::obs {

// Ring buffer of periodic MetricsSnapshot samples, each stamped with the
// wall-clock second it was taken at, from which the admin surface derives
// rates over the retained window: queries/sec, epochs/sec, and "p99 over
// the last window" (by subtracting the oldest histogram buckets from the
// newest). The clock is supplied by the caller — the admin thread's sampler
// in production, a plain counter in tests — so this class itself is
// deterministic and clock-free.
//
// All methods are thread-safe; rate queries see the ring as of the last
// Push.
class WindowedRates {
 public:
  // `capacity` samples are retained (>= 2 required to form any rate);
  // pushing past capacity evicts the oldest.
  explicit WindowedRates(size_t capacity = 16);

  void Push(double unix_seconds, MetricsSnapshot snapshot);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  // Seconds spanned by the retained window: newest stamp minus oldest.
  // 0 with fewer than two samples.
  double WindowSeconds() const;

  // (newest counter value - oldest) / WindowSeconds(). 0 when the window
  // is empty, spans no time, or the counter is absent from both ends
  // (a counter absent from the oldest sample counts as 0 there, so a
  // series that appears mid-window still yields its rate).
  double CounterRate(std::string_view name) const;

  // Same, for a histogram's sample count: events/sec for `name`.
  double HistogramCountRate(std::string_view name) const;

  // q-quantile of `name` over just the window: the newest histogram minus
  // the oldest (bucket-wise), i.e. only events recorded inside the window
  // contribute. 0 when the difference is empty or the histogram is absent.
  double WindowQuantileMs(std::string_view name, double q) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::pair<double, MetricsSnapshot>> ring_;
};

// What the stuck-epoch watchdog saw: whether some epoch has been inside
// one phase (stage/commit) longer than the bound, and which.
struct StuckEpochInfo {
  bool stuck = false;
  uint64_t seq = 0;
  std::string phase;
  double elapsed_ms = 0.0;
};

// The process-wide *runtime* observability surface: everything the admin
// endpoint serves that is allowed to involve wall-clock time.
//
// This is deliberately a separate world from the ExecContext / global
// MetricsRegistry that benchmarks and the determinism suite snapshot into
// artifacts: those artifacts are byte-identical across runs and thread
// counts, so no live value (timestamps, queue depths sampled mid-run,
// heartbeats) may ever land in them. Components therefore publish runtime
// state here — gauges into metrics(), epoch heartbeats via
// BeginEpochPhase/EndEpoch, epoch records via RecordEpochJson — and the
// registry stays disabled (every call a single relaxed load) unless the
// admin server enables it.
//
// Like MetricsRegistry::Global(), the instance is leaked so component
// threads may publish during static destruction.
class RuntimeRegistry {
 public:
  static RuntimeRegistry& Global();

  // The runtime metrics registry (gauges + live counters). Enabled
  // together with the rest of the runtime surface.
  MetricsRegistry& metrics() { return metrics_; }

  bool enabled() const { return metrics_.enabled(); }
  void set_enabled(bool enabled) { metrics_.set_enabled(enabled); }

  // --- Epoch heartbeat / stuck watchdog -----------------------------
  //
  // The maintenance path brackets each potentially long-running phase:
  // BeginEpochPhase(seq, "stage") when propagation starts,
  // BeginEpochPhase(seq, "commit") before the serial commit loop, and
  // EndEpoch(seq) once the epoch resolved (any outcome). The watchdog
  // (CheckStuck, driven by the admin thread) flags an epoch that has sat
  // in one phase past the bound.

  void BeginEpochPhase(uint64_t seq, std::string_view phase);
  void EndEpoch(uint64_t seq);

  // Returns the current phase's age against `bound_ms`; on the transition
  // into stuck, increments the runtime counter "ivm.epoch.stuck" exactly
  // once per stuck episode (EndEpoch re-arms it).
  StuckEpochInfo CheckStuck(double bound_ms);

  // --- Epoch record ring --------------------------------------------

  // Appends one EpochRecord JSON line; the ring keeps the most recent
  // kEpochRingCapacity of them for /epochz.
  static constexpr size_t kEpochRingCapacity = 64;
  void RecordEpochJson(std::string json_line);
  std::vector<std::string> EpochRing() const;

  // --- Named JSON sections ------------------------------------------
  //
  // Components that own structure too rich for flat gauges (the serving
  // layer's per-view table) register a provider returning one JSON value.
  // Providers run under the section mutex, so Unregister blocks until any
  // in-flight invocation finishes — after Unregister returns it is safe
  // to destroy whatever the provider captured.

  using JsonSectionFn = std::function<std::string()>;
  int RegisterJsonSection(std::string name, JsonSectionFn provider);
  void UnregisterJsonSection(int token);
  // name -> rendered JSON value, in registration order.
  std::vector<std::pair<std::string, std::string>> CollectJsonSections() const;

  // Test hook: drops heartbeat state, the epoch ring, and runtime metrics
  // (sections stay — their owners hold tokens).
  void ResetForTest();

 private:
  RuntimeRegistry() = default;

  MetricsRegistry metrics_;

  mutable std::mutex epoch_mu_;
  bool phase_active_ = false;
  bool stuck_flagged_ = false;
  uint64_t phase_seq_ = 0;
  std::string phase_name_;
  std::chrono::steady_clock::time_point phase_start_{};
  std::deque<std::string> epoch_ring_;

  mutable std::mutex sections_mu_;
  int next_section_token_ = 1;
  std::vector<std::pair<int, std::pair<std::string, JsonSectionFn>>> sections_;
};

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_RUNTIME_H_
