#include "obs/cost.h"

namespace gpivot::obs {

void NodeStats::Merge(const NodeStats& other) {
  invocations += other.invocations;
  rows_in += other.rows_in;
  rows_out += other.rows_out;
  build_rows += other.build_rows;
  probe_rows += other.probe_rows;
  base_accesses += other.base_accesses;
  base_rows_read += other.base_rows_read;
  delta_insert_rows += other.delta_insert_rows;
  delta_delete_rows += other.delta_delete_rows;
}

bool NodeStats::IsZero() const {
  return invocations == 0 && rows_in == 0 && rows_out == 0 &&
         build_rows == 0 && probe_rows == 0 && base_accesses == 0 &&
         base_rows_read == 0 && delta_insert_rows == 0 &&
         delta_delete_rows == 0;
}

void CostCollector::Record(int node, const NodeStats& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[node].Merge(delta);
}

std::map<int, NodeStats> CostCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CostCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

}  // namespace gpivot::obs
