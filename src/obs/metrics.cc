#include "obs/metrics.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "obs/json_util.h"

namespace gpivot::obs {

namespace {

// Maps (registry id -> shard) for the calling thread. Keyed by a
// process-unique id rather than by pointer so that a stale entry for a
// destroyed registry can never alias a newly constructed one.
thread_local std::unordered_map<uint64_t, void*> t_shards;

uint64_t NextRegistryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

size_t HistogramData::BucketIndex(double ms) {
  if (!(ms > 0.0)) return 0;
  int exponent = static_cast<int>(std::floor(std::log2(ms))) + kBucketBias;
  if (exponent < 0) return 0;
  if (exponent >= static_cast<int>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<size_t>(exponent);
}

void HistogramData::Record(double ms) {
  if (count == 0 || ms < min_ms) min_ms = ms;
  if (count == 0 || ms > max_ms) max_ms = ms;
  ++count;
  total_ms += ms;
  ++buckets[BucketIndex(ms)];
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min_ms < min_ms) min_ms = other.min_ms;
  if (count == 0 || other.max_ms > max_ms) max_ms = other.max_ms;
  count += other.count;
  total_ms += other.total_ms;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

double HistogramData::QuantileMs(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within the bucket's [2^(i-bias), 2^(i+1-bias)) range;
    // bucket 0 also holds everything below its lower edge, so it starts
    // at 0.
    double lower =
        i == 0 ? 0.0 : std::exp2(static_cast<int>(i) - kBucketBias);
    double upper = std::exp2(static_cast<int>(i) + 1 - kBucketBias);
    double fraction =
        (target - before) / static_cast<double>(buckets[i]);
    double value = lower + fraction * (upper - lower);
    if (value < min_ms) value = min_ms;
    if (value > max_ms) value = max_ms;
    return value;
  }
  return max_ms;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, samples] : other.gauges) {
    for (const auto& [label, value] : samples) gauges[name][label] = value;
  }
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, samples] : gauges) {
    for (const auto& [label, value] : samples) {
      out << name;
      if (!label.first.empty()) {
        out << "{" << label.first << "=" << label.second << "}";
      }
      out << " " << value << "\n";
    }
  }
  for (const auto& [name, h] : histograms) {
    out << name << " count=" << h.count << " total_ms=" << h.total_ms
        << " mean_ms=" << h.mean_ms() << " min_ms=" << h.min_ms
        << " max_ms=" << h.max_ms << " p50_ms=" << h.QuantileMs(0.50)
        << " p95_ms=" << h.QuantileMs(0.95)
        << " p99_ms=" << h.QuantileMs(0.99) << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  std::ostringstream out;
  out << "{\n" << pad << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << pad << "    " << JsonQuote(name) << ": "
        << value;
    first = false;
  }
  if (!first) out << "\n" << pad << "  ";
  out << "}";
  // Rendered only when present: pre-gauge artifacts stay byte-identical.
  if (!gauges.empty()) {
    out << ",\n" << pad << "  \"gauges\": {";
    first = true;
    for (const auto& [name, samples] : gauges) {
      for (const auto& [label, value] : samples) {
        std::string key = name;
        if (!label.first.empty()) {
          key += "{" + label.first + "=" + label.second + "}";
        }
        out << (first ? "\n" : ",\n") << pad << "    " << JsonQuote(key)
            << ": " << value;
        first = false;
      }
    }
    if (!first) out << "\n" << pad << "  ";
    out << "}";
  }
  out << ",\n" << pad << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n" : ",\n") << pad << "    " << JsonQuote(name)
        << ": {\"count\": " << h.count << ", \"total_ms\": " << h.total_ms
        << ", \"mean_ms\": " << h.mean_ms() << ", \"min_ms\": " << h.min_ms
        << ", \"max_ms\": " << h.max_ms
        << ", \"p50_ms\": " << h.QuantileMs(0.50)
        << ", \"p95_ms\": " << h.QuantileMs(0.95)
        << ", \"p99_ms\": " << h.QuantileMs(0.99) << "}";
    first = false;
  }
  if (!first) out << "\n" << pad << "  ";
  out << "}\n" << pad << "}";
  return out.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; we map everything else
// (the registry uses '.') to '_' and prefix with the exporter namespace.
std::string PrometheusName(const std::string& name) {
  std::string out = "gpivot_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string PrometheusEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, samples] : gauges) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n";
    for (const auto& [label, value] : samples) {
      out << prom;
      if (!label.first.empty()) {
        // Label values are free-form strings (view names today, anything
        // tomorrow); the escape keeps one sample on one line no matter
        // what they contain.
        out << "{" << PrometheusName(label.first).substr(7)  // drop prefix
            << "=\"" << PrometheusEscape(label.second) << "\"}";
      }
      out << " " << value << "\n";
    }
  }
  for (const auto& [name, h] : histograms) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " summary\n";
    out << prom << "{quantile=\"0.5\"} " << h.QuantileMs(0.50) << "\n";
    out << prom << "{quantile=\"0.95\"} " << h.QuantileMs(0.95) << "\n";
    out << prom << "{quantile=\"0.99\"} " << h.QuantileMs(0.99) << "\n";
    out << prom << "_sum " << h.total_ms << "\n";
    out << prom << "_count " << h.count << "\n";
  }
  return out.str();
}

struct MetricsRegistry::Shard {
  std::mutex mu;  // uncontended except while a Snapshot/Reset runs
  std::unordered_map<std::string, uint64_t> counters;
  std::unordered_map<std::string, HistogramData> histograms;
};

MetricsRegistry::MetricsRegistry() : id_(NextRegistryId()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: worker threads of the (also leaked) global ThreadPool may
  // record into it during static destruction.
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  auto it = t_shards.find(id_);
  if (it != t_shards.end()) return static_cast<Shard*>(it->second);
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(shard));
  }
  t_shards.emplace(id_, raw);
  return raw;
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  if (!enabled()) return;
  Shard* shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->counters[std::string(name)] += delta;
}

void MetricsRegistry::RecordLatency(std::string_view name, double ms) {
  if (!enabled()) return;
  Shard* shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->histograms[std::string(name)].Record(ms);
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  SetGauge(name, std::string_view(), std::string_view(), value);
}

void MetricsRegistry::SetGauge(std::string_view name,
                               std::string_view label_key,
                               std::string_view label_value, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(gauges_mu_);
  gauges_[std::string(name)][{std::string(label_key),
                              std::string(label_value)}] = value;
}

void MetricsRegistry::AddGauge(std::string_view name, double delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(gauges_mu_);
  gauges_[std::string(name)][{std::string(), std::string()}] += delta;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      for (const auto& [name, value] : shard->counters) {
        snapshot.counters[name] += value;
      }
      for (const auto& [name, h] : shard->histograms) {
        snapshot.histograms[name].Merge(h);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(gauges_mu_);
    snapshot.gauges = gauges_;
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->counters.clear();
      shard->histograms.clear();
    }
  }
  std::lock_guard<std::mutex> lock(gauges_mu_);
  gauges_.clear();
}

MetricsRegistry* MetricsFromEnv() {
  static MetricsRegistry* const kFromEnv = []() -> MetricsRegistry* {
    const char* value = std::getenv("GPIVOT_METRICS");
    if (value == nullptr || value[0] == '\0' ||
        (value[0] == '0' && value[1] == '\0')) {
      return nullptr;
    }
    MetricsRegistry::Global().set_enabled(true);
    return &MetricsRegistry::Global();
  }();
  return kFromEnv;
}

}  // namespace gpivot::obs
