#include "obs/event_log.h"

#include <cstdlib>

namespace gpivot::obs {

EventLog::EventLog(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_.is_open() || out_.fail()) {
    error_ = "cannot open '" + path_ + "' for appending";
  }
}

void EventLog::Append(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok()) return;
  out_ << json_line << '\n';
  out_.flush();
}

EventLog* EventLogFromEnv() {
  static EventLog* const kFromEnv = []() -> EventLog* {
    const char* value = std::getenv("GPIVOT_EVENT_LOG");
    if (value == nullptr || value[0] == '\0') return nullptr;
    // Leaked: see header.
    return new EventLog(value);
  }();
  return kFromEnv;
}

}  // namespace gpivot::obs
