#ifndef GPIVOT_OBS_EVENT_LOG_H_
#define GPIVOT_OBS_EVENT_LOG_H_

#include <fstream>
#include <mutex>
#include <string>

namespace gpivot::obs {

// Append-only JSONL sink for structured epoch records: one complete JSON
// document per line, one line per maintenance epoch (see
// ViewManager::LastEpochReportJson for the record shape). The file is
// opened once in append mode and every Append writes a single line under a
// mutex, so concurrent writers interleave at line granularity only.
//
// Record contents are deterministic (no timestamps), so two runs of the
// same workload produce byte-identical logs regardless of thread count —
// the determinism tests compare whole files.
class EventLog {
 public:
  explicit EventLog(std::string path);

  // False when the path could not be opened for appending; `error()` then
  // explains. Appends on a failed log are dropped silently (callers that
  // must fail fast — the bench harness — check ok() up front).
  bool ok() const { return out_.is_open() && !out_.fail(); }
  const std::string& error() const { return error_; }
  const std::string& path() const { return path_; }

  // Writes `json_line` (one complete JSON document, no trailing newline)
  // plus '\n', then flushes.
  void Append(const std::string& json_line);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

 private:
  std::string path_;
  std::string error_;
  std::mutex mu_;
  std::ofstream out_;
};

// Returns a process-wide EventLog for the path in GPIVOT_EVENT_LOG, or
// nullptr when the variable is unset/empty. The env var is read once per
// process; the log is leaked (epoch records may be appended during static
// destruction). An unwritable path still returns the log object — with
// ok() false — so the bench harness can report the problem and exit.
EventLog* EventLogFromEnv();

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_EVENT_LOG_H_
