#ifndef GPIVOT_OBS_TRACE_H_
#define GPIVOT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gpivot::obs {

// Span handle. 0 means "no span".
using SpanId = uint64_t;

// One recorded span: a named, timed region with key/value attributes,
// nested under a parent span.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  std::string name;
  double start_us = 0.0;
  double dur_us = -1.0;  // -1 until EndSpan
  // Explicit sibling sort key for spans created by parallel fan-out, where
  // creation order is scheduling-dependent; -1 = order by creation (id).
  int64_t order = -1;
  uint64_t tid = 0;  // small per-tracer thread number, for Chrome tracks
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Collects nested spans and renders them as Chrome chrome://tracing JSON
// (load via chrome://tracing or https://ui.perfetto.dev) or as a
// structure-only text tree.
//
// Nesting: each thread tracks its innermost open span; a new span parents
// to it unless an explicit parent is passed (used when a child span starts
// on a different thread than its logical parent, e.g. per-view staging
// inside ParallelFor). Sibling order in the text tree is deterministic:
// explicit `order` keys first, then creation order — cross-thread siblings
// always carry explicit orders, same-thread siblings are created
// sequentially.
//
// Disabled tracers (the default) make ScopedSpan construction a pointer
// check; no clock reads, no allocation, no locking.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Process-wide tracer, enabled via set_enabled or GPIVOT_TRACE_DIR (see
  // TracerFromEnv). Leaked, like ThreadPool::Global().
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Low-level span API; prefer ScopedSpan. `parent` 0 means "the calling
  // thread's innermost open span" (root if none).
  SpanId BeginSpan(std::string name, SpanId parent = 0, int64_t order = -1);
  void EndSpan(SpanId id);
  void AddAttr(SpanId id, std::string_view key, std::string_view value);

  // The calling thread's innermost open span (maintained by ScopedSpan).
  SpanId CurrentSpan() const;
  void SetCurrentSpan(SpanId id);

  // {"traceEvents": [...]} with one complete ("ph":"X") event per span.
  std::string ToChromeTraceJson() const;
  // Indented name/attr tree; timing excluded, sibling order deterministic.
  // The determinism tests compare these strings across thread counts.
  std::string ToSpanTree() const;
  // Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  void Clear();
  size_t num_spans() const;

 private:
  std::atomic<bool> enabled_{false};
  const uint64_t id_;  // process-unique; keys the thread-local current-span

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  // span id == index + 1
  std::unordered_map<std::thread::id, uint64_t> thread_numbers_;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII span: opens on construction, closes (and restores the thread's
// previous current span) on destruction. Inactive — all methods no-ops —
// when the tracer is null or disabled; build span names inside a
// `TraceEnabled(t) ? ScopedSpan(t, ...) : ScopedSpan()` conditional to
// skip the name construction too on the disabled path.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  // `parent` 0 = nest under the thread's current span; pass an explicit
  // parent (plus an `order` key for deterministic sibling sorting) when
  // this span starts on a different thread than its logical parent.
  ScopedSpan(Tracer* tracer, std::string name, SpanId parent = 0,
             int64_t order = -1) {
    if (tracer == nullptr || !tracer->enabled()) return;
    tracer_ = tracer;
    saved_current_ = tracer->CurrentSpan();
    id_ = tracer->BeginSpan(std::move(name), parent, order);
    tracer->SetCurrentSpan(id_);
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->EndSpan(id_);
    tracer_->SetCurrentSpan(saved_current_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttr(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->AddAttr(id_, key, value);
  }
  void AddAttr(std::string_view key, uint64_t value) {
    if (tracer_ != nullptr) tracer_->AddAttr(id_, key, std::to_string(value));
  }

  bool active() const { return tracer_ != nullptr; }
  SpanId id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  SpanId saved_current_ = 0;
};

inline bool TraceEnabled(const Tracer* tracer) {
  return tracer != nullptr && tracer->enabled();
}

// The GPIVOT_TRACE_DIR environment variable (empty when unset); read once.
const std::string& TraceDirFromEnv();

// Returns &Tracer::Global() with the tracer enabled when GPIVOT_TRACE_DIR
// is set, else nullptr.
Tracer* TracerFromEnv();

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_TRACE_H_
