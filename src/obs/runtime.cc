#include "obs/runtime.h"

#include <algorithm>

namespace gpivot::obs {

WindowedRates::WindowedRates(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {}

void WindowedRates::Push(double unix_seconds, MetricsSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.emplace_back(unix_seconds, std::move(snapshot));
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t WindowedRates::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

double WindowedRates::WindowSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return 0.0;
  return ring_.back().first - ring_.front().first;
}

double WindowedRates::CounterRate(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return 0.0;
  double dt = ring_.back().first - ring_.front().first;
  if (!(dt > 0.0)) return 0.0;
  const std::string key(name);
  auto value_of = [&key](const MetricsSnapshot& s) -> uint64_t {
    auto it = s.counters.find(key);
    return it == s.counters.end() ? 0 : it->second;
  };
  uint64_t newest = value_of(ring_.back().second);
  uint64_t oldest = value_of(ring_.front().second);
  // Counters are monotonic per registry, but a Reset between samples can
  // make the newest smaller; report 0 rather than a negative rate.
  if (newest < oldest) return 0.0;
  return static_cast<double>(newest - oldest) / dt;
}

double WindowedRates::HistogramCountRate(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return 0.0;
  double dt = ring_.back().first - ring_.front().first;
  if (!(dt > 0.0)) return 0.0;
  const std::string key(name);
  auto count_of = [&key](const MetricsSnapshot& s) -> uint64_t {
    auto it = s.histograms.find(key);
    return it == s.histograms.end() ? 0 : it->second.count;
  };
  uint64_t newest = count_of(ring_.back().second);
  uint64_t oldest = count_of(ring_.front().second);
  if (newest < oldest) return 0.0;
  return static_cast<double>(newest - oldest) / dt;
}

double WindowedRates::WindowQuantileMs(std::string_view name,
                                       double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0.0;
  const std::string key(name);
  auto newest_it = ring_.back().second.histograms.find(key);
  if (newest_it == ring_.back().second.histograms.end()) return 0.0;
  HistogramData window = newest_it->second;
  if (ring_.size() >= 2) {
    auto oldest_it = ring_.front().second.histograms.find(key);
    if (oldest_it != ring_.front().second.histograms.end()) {
      const HistogramData& oldest = oldest_it->second;
      if (window.count >= oldest.count) {
        window.count -= oldest.count;
        window.total_ms -= oldest.total_ms;
        for (size_t i = 0; i < HistogramData::kNumBuckets; ++i) {
          window.buckets[i] -= std::min(window.buckets[i], oldest.buckets[i]);
        }
        // min/max describe the whole series, not the window; keep them as
        // wide clamp bounds (QuantileMs clamps into [min, max]).
      } else {
        // Registry reset between samples: the newest snapshot alone IS the
        // window.
      }
    }
  }
  if (window.count == 0) return 0.0;
  return window.QuantileMs(q);
}

RuntimeRegistry& RuntimeRegistry::Global() {
  static RuntimeRegistry* const kRegistry = new RuntimeRegistry();
  return *kRegistry;
}

void RuntimeRegistry::BeginEpochPhase(uint64_t seq, std::string_view phase) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  phase_active_ = true;
  phase_seq_ = seq;
  phase_name_.assign(phase.data(), phase.size());
  phase_start_ = std::chrono::steady_clock::now();
  // A fresh phase re-arms the watchdog: "stuck in stage" and "stuck in
  // commit" of the same epoch are distinct episodes.
  stuck_flagged_ = false;
}

void RuntimeRegistry::EndEpoch(uint64_t seq) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  // Ignore stale EndEpoch calls racing a newer Begin (can only happen if
  // two managers share the registry; last Begin wins).
  if (!phase_active_ || phase_seq_ != seq) return;
  phase_active_ = false;
  stuck_flagged_ = false;
}

StuckEpochInfo RuntimeRegistry::CheckStuck(double bound_ms) {
  StuckEpochInfo info;
  bool newly_stuck = false;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (!phase_active_ || !(bound_ms > 0.0)) return info;
    std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - phase_start_;
    info.elapsed_ms = elapsed.count();
    if (info.elapsed_ms <= bound_ms) return info;
    info.stuck = true;
    info.seq = phase_seq_;
    info.phase = phase_name_;
    if (!stuck_flagged_) {
      stuck_flagged_ = true;
      newly_stuck = true;
    }
  }
  if (newly_stuck) metrics_.AddCounter("ivm.epoch.stuck");
  return info;
}

void RuntimeRegistry::RecordEpochJson(std::string json_line) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_ring_.push_back(std::move(json_line));
  while (epoch_ring_.size() > kEpochRingCapacity) epoch_ring_.pop_front();
}

std::vector<std::string> RuntimeRegistry::EpochRing() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return {epoch_ring_.begin(), epoch_ring_.end()};
}

int RuntimeRegistry::RegisterJsonSection(std::string name,
                                         JsonSectionFn provider) {
  std::lock_guard<std::mutex> lock(sections_mu_);
  int token = next_section_token_++;
  sections_.emplace_back(token,
                         std::make_pair(std::move(name), std::move(provider)));
  return token;
}

void RuntimeRegistry::UnregisterJsonSection(int token) {
  std::lock_guard<std::mutex> lock(sections_mu_);
  sections_.erase(
      std::remove_if(sections_.begin(), sections_.end(),
                     [token](const auto& entry) { return entry.first == token; }),
      sections_.end());
}

std::vector<std::pair<std::string, std::string>>
RuntimeRegistry::CollectJsonSections() const {
  // Providers run under sections_mu_ on purpose: Unregister then acts as a
  // barrier against in-flight collection, which is what makes it safe for
  // a component to tear itself down right after unregistering.
  std::lock_guard<std::mutex> lock(sections_mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(sections_.size());
  for (const auto& [token, entry] : sections_) {
    (void)token;
    out.emplace_back(entry.first, entry.second());
  }
  return out;
}

void RuntimeRegistry::ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    phase_active_ = false;
    stuck_flagged_ = false;
    phase_seq_ = 0;
    phase_name_.clear();
    epoch_ring_.clear();
  }
  metrics_.Reset();
}

}  // namespace gpivot::obs
