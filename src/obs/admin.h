#ifndef GPIVOT_OBS_ADMIN_H_
#define GPIVOT_OBS_ADMIN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "obs/runtime.h"
#include "util/result.h"

namespace gpivot::obs {

// Admin-endpoint configuration, parsed from the environment with the same
// strictness as every other knob (digits only; a malformed value is an
// error, never a silent default):
//
//   GPIVOT_ADMIN_PORT            TCP port to listen on (0 = ephemeral,
//                                picked by the kernel; unset = disabled)
//   GPIVOT_ADMIN_STUCK_EPOCH_MS  watchdog bound: an epoch sitting in one
//                                stage/commit phase longer than this is
//                                "stuck" (healthz 503). Default 10000.
//   GPIVOT_ADMIN_SAMPLE_MS       WindowedRates sampling period. Default
//                                1000.
struct AdminOptions {
  bool enabled = false;
  int port = 0;
  uint64_t stuck_epoch_ms = 10000;
  uint64_t sample_ms = 1000;

  static Result<AdminOptions> FromEnv();
};

// A dependency-free HTTP/1.1 admin server over a POSIX socket, bound to
// 127.0.0.1 only. One background thread accepts connections and answers
// one GET per connection (Connection: close); between connections the same
// thread drives the WindowedRates sampler and the stuck-epoch watchdog, so
// enabling the admin surface costs the process exactly one extra thread.
//
// Endpoints:
//   /metrics   live Prometheus text (runtime registry + derived rates)
//   /healthz   200 "ok" / 503 with the failing checks as JSON
//   /statusz   build info, GPIVOT_* environment, uptime (JSON)
//   /epochz    ring of the most recent EpochRecord JSON lines
//   /viewz     per-view snapshot seq / staleness / reader slots (JSON)
//
// Everything it serves comes from RuntimeRegistry::Global() — the
// wall-clock-tolerant side of the determinism boundary (see runtime.h).
// Handle() is the pure request->response core, exposed so tests can hit
// every endpoint without a socket.
class AdminServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  explicit AdminServer(AdminOptions options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds 127.0.0.1:<port> and starts the serving thread. With port 0 the
  // kernel assigns one; port() reports the actual value.
  Status Start();
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const { return port_; }

  // Routes one request path (query strings are ignored) to its endpoint.
  Response Handle(std::string_view path);

  // The sampler/watchdog tick Serve() runs between connections; public so
  // tests can drive it deterministically.
  void SampleTick(double unix_seconds);

 private:
  void Serve();
  void HandleConnection(int fd);

  Response Metrics();
  Response Healthz();
  Response Statusz();
  Response Epochz();
  Response Viewz();

  AdminOptions options_;
  WindowedRates rates_;
  std::chrono::steady_clock::time_point started_at_;
  double last_sample_unix_seconds_ = 0.0;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

// Builds (and leaks) the process-wide admin server from the environment on
// first call, enabling RuntimeRegistry::Global() and starting the listener
// when GPIVOT_ADMIN_PORT is set. Returns nullptr when disabled; a
// malformed knob or a failed bind returns the error (callers exit 2, the
// strict-env convention). Subsequent calls return the first result.
Result<AdminServer*> AdminServerFromEnv();

}  // namespace gpivot::obs

#endif  // GPIVOT_OBS_ADMIN_H_
