// Mixed read/write serving figure (no paper counterpart): N reader threads
// issue a fixed lookup/scan/top-k workload through QueryService while the
// main thread drives live churn epochs through the DeltaBatcher. Every read
// is validated against per-epoch expectations precomputed on a scratch
// manager — a result must match exactly one committed epoch's state, never
// a mix — and the read path must stay lock-free (serve.read.locks absent).
// The record publishes QPS and p50/p95/p99 op latencies alongside the usual
// wall time so the serving trajectory is tracked across PRs.
//
// Knobs (all strict-parse, exit 2 on garbage, like every bench knob):
//   GPIVOT_SERVE_READERS            reader threads (default 4, min 2)
//   GPIVOT_SERVE_EPOCHS             churn epochs (default 6, min 4)
//   GPIVOT_SERVE_OPS                ops per reader per epoch (default 64)
//   GPIVOT_SERVE_MIX                "lookup:scan:topk" weights (default 8:1:1)
//   GPIVOT_SERVE_MAX_PINNED_EPOCHS  reader slots / version bound (default 8)
//
// Epoch pacing: the writer commits epoch e only after every reader has
// acquired (and acknowledged) epoch e-1; each reader then finishes its op
// block while the next flush runs. Ops in block b can therefore observe
// seq b or b+1 — both committed — and nothing else, which is exactly the
// snapshot-isolation claim the validation asserts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "expr/expr.h"
#include "ivm/batcher.h"
#include "ivm/view_manager.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "relation/row.h"
#include "serve/query.h"
#include "serve/snapshot.h"
#include "tpch/views.h"
#include "util/check.h"

namespace gpivot::bench {
namespace {

constexpr const char* kFigure = "Serving/MixedReadWrite";
// Same churn shape (and total volume knob) as the micro-batch figure: batch
// b inserts chunk b of a new-key workload and retracts chunk b-1.
constexpr double kTotalFraction = 0.04;
constexpr size_t kScanWindows = 4;
constexpr size_t kTopK = 10;
constexpr size_t kStableKeys = 32;
constexpr const char* kMeasure = "1**extendedprice";

size_t ServeReaders() {
  static const size_t kReaders = [] {
    uint64_t n = BenchEnvUint64("GPIVOT_SERVE_READERS", 4);
    return n < 2 ? size_t{2} : static_cast<size_t>(n);
  }();
  return kReaders;
}

size_t ServeEpochs() {
  static const size_t kEpochs = [] {
    uint64_t n = BenchEnvUint64("GPIVOT_SERVE_EPOCHS", 6);
    return n < 4 ? size_t{4} : static_cast<size_t>(n);
  }();
  return kEpochs;
}

size_t ServeOps() {
  static const size_t kOps = [] {
    uint64_t n = BenchEnvUint64("GPIVOT_SERVE_OPS", 64);
    return n == 0 ? size_t{1} : static_cast<size_t>(n);
  }();
  return kOps;
}

struct WorkloadMix {
  uint64_t lookup = 8;
  uint64_t scan = 1;
  uint64_t topk = 1;
  uint64_t total() const { return lookup + scan + topk; }
};

bool ParseMixPart(const char** p, uint64_t* out) {
  if (**p < '0' || **p > '9') return false;
  uint64_t value = 0;
  while (**p >= '0' && **p <= '9') {
    if (value > (UINT64_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(**p - '0');
    ++*p;
  }
  *out = value;
  return true;
}

// "l:s:t" weights; anything else — including a zero total, which would
// leave the op picker with no kinds — is a typo that must not silently
// publish numbers for a different workload.
WorkloadMix MixFromEnv() {
  static const WorkloadMix kMix = [] {
    WorkloadMix mix;
    const char* value = std::getenv("GPIVOT_SERVE_MIX");
    if (value == nullptr || value[0] == '\0') return mix;
    const char* p = value;
    bool ok = ParseMixPart(&p, &mix.lookup) && *p == ':' && (++p, true) &&
              ParseMixPart(&p, &mix.scan) && *p == ':' && (++p, true) &&
              ParseMixPart(&p, &mix.topk) && *p == '\0' && mix.total() > 0;
    if (!ok) {
      std::fprintf(stderr,
                   "GPIVOT_SERVE_MIX must be 'lookup:scan:topk' with a "
                   "positive total, got \"%s\"\n",
                   value);
      std::exit(2);
    }
    return mix;
  }();
  return kMix;
}

serve::ServeOptions ServeOptionsOrDie() {
  auto options = serve::ServeOptions::FromEnv();
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    std::exit(2);
  }
  return *options;
}

// Order-insensitive bag fingerprint: a result matches a committed state iff
// count, wrapping sum and xor of the row hashes all agree; a torn mix of
// two epochs produces a different triple than either.
struct Fingerprint {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t xored = 0;
  bool operator==(const Fingerprint& other) const {
    return count == other.count && sum == other.sum && xored == other.xored;
  }
};

Fingerprint FingerprintTable(const Table& table) {
  Fingerprint fp;
  for (const Row& row : table.rows()) {
    uint64_t h = static_cast<uint64_t>(HashRow(row));
    ++fp.count;
    fp.sum += h;
    fp.xored ^= h;
  }
  return fp;
}

std::vector<ivm::SourceDeltas> MakeChurnBatches(const Catalog& catalog,
                                                const tpch::Config& config,
                                                size_t num_batches) {
  auto workload = tpch::MakeLineitemInsertsNewKeys(catalog, config,
                                                   kTotalFraction, 0xBEEF);
  GPIVOT_CHECK(workload.ok()) << workload.status().ToString();
  const Table& inserts = workload->at("lineitem").inserts;
  const std::vector<Row>& rows = inserts.rows();
  size_t n = rows.size();
  std::vector<ivm::SourceDeltas> batches;
  batches.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    ivm::Delta delta = ivm::Delta::Empty(inserts.schema());
    for (size_t i = b * n / num_batches; i < (b + 1) * n / num_batches; ++i) {
      delta.inserts.AddRow(rows[i]);
    }
    if (b > 0) {
      for (size_t i = (b - 1) * n / num_batches; i < b * n / num_batches;
           ++i) {
        delta.deletes.AddRow(rows[i]);
      }
    }
    ivm::SourceDeltas deltas;
    deltas.emplace("lineitem", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

ivm::ViewManager MakeView1Manager(const BenchContext& context,
                                  const ExecContext& exec) {
  tpch::Data copy = context.data;
  auto catalog = tpch::MakeCatalog(std::move(copy));
  GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
  auto query = tpch::View1(*catalog, context.config.max_line_numbers);
  GPIVOT_CHECK(query.ok()) << query.status().ToString();
  ivm::ViewManager manager(std::move(*catalog));
  manager.set_exec_context(exec);
  Status defined =
      manager.DefineView("v", *query, ivm::RefreshStrategy::kUpdate);
  GPIVOT_CHECK(defined.ok()) << defined.ToString();
  return manager;
}

// What every query must resolve to at one committed epoch.
struct EpochExpectation {
  Fingerprint full;                 // whole view table
  std::vector<Fingerprint> scans;   // per orderkey window
  Fingerprint topk;
};

struct Workload {
  std::vector<ivm::SourceDeltas> batches;
  std::vector<ExprPtr> windows;     // orderkey range predicates
  std::vector<Row> stable_keys;     // initial-view keys untouched by churn
  std::vector<uint64_t> stable_hashes;
  std::map<uint64_t, EpochExpectation> expected;  // committed seq -> state
  size_t delta_rows = 0;
};

EpochExpectation ExpectAt(const serve::QueryService& service,
                          const std::vector<ExprPtr>& windows,
                          serve::ReaderHandle* handle) {
  EpochExpectation expectation;
  std::shared_ptr<const serve::Snapshot> snapshot =
      service.AcquireSnapshot("v", handle);
  GPIVOT_CHECK(snapshot != nullptr);
  expectation.full = FingerprintTable(snapshot->table());
  for (const ExprPtr& window : windows) {
    auto scan = service.Scan("v", window, handle);
    GPIVOT_CHECK(scan.ok()) << scan.status().ToString();
    expectation.scans.push_back(FingerprintTable(*scan));
  }
  auto topk = service.TopK("v", kMeasure, kTopK, handle);
  GPIVOT_CHECK(topk.ok()) << topk.status().ToString();
  expectation.topk = FingerprintTable(*topk);
  return expectation;
}

// Runs the whole churn schedule once on a scratch manager (single-threaded,
// unmeasured, before any reader thread exists) and records the exact query
// results after every committed epoch.
Workload BuildWorkload(const BenchContext& context, size_t epochs) {
  ExecContext plain;
  ivm::ViewManager manager = MakeView1Manager(context, plain);
  Workload workload;
  workload.batches =
      MakeChurnBatches(manager.catalog(), context.config, epochs);
  for (const ivm::SourceDeltas& batch : workload.batches) {
    for (const auto& [name, delta] : batch) {
      workload.delta_rows +=
          delta.inserts.num_rows() + delta.deletes.num_rows();
    }
  }

  const auto* view = manager.GetView("v").value();
  const Table& table = view->table();
  GPIVOT_CHECK(table.num_rows() > 0) << "View 1 is empty at this SF";
  size_t okey = table.schema().ColumnIndexOrDie("orderkey");
  int64_t lo = table.rows().front()[okey].AsInt();
  int64_t hi = lo;
  for (const Row& row : table.rows()) {
    int64_t v = row[okey].AsInt();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  int64_t span = hi - lo + 1;
  for (size_t w = 0; w < kScanWindows; ++w) {
    int64_t from = lo + span * static_cast<int64_t>(w) /
                            static_cast<int64_t>(kScanWindows);
    int64_t to = lo + span * static_cast<int64_t>(w + 1) /
                          static_cast<int64_t>(kScanWindows);
    workload.windows.push_back(
        And(Ge(Col("orderkey"), Lit(from)), Lt(Col("orderkey"), Lit(to))));
  }
  // Keys sampled from the initial view: the new-key workload only inserts
  // (then retracts) rows for keys outside the initial table, so these rows
  // are byte-identical at every committed epoch.
  for (size_t k = 0; k < kStableKeys && k < table.num_rows(); ++k) {
    const Row& row = table.rows()[k * table.num_rows() / kStableKeys];
    workload.stable_keys.push_back(ProjectRow(row, view->key_indices()));
    workload.stable_hashes.push_back(static_cast<uint64_t>(HashRow(row)));
  }

  serve::SnapshotStore store(&manager, serve::ServeOptions{});
  Status attached = store.Attach();
  GPIVOT_CHECK(attached.ok()) << attached.ToString();
  auto handle = store.RegisterReader();
  GPIVOT_CHECK(handle.ok()) << handle.status().ToString();
  serve::QueryService service(&store, plain);

  workload.expected[0] = ExpectAt(service, workload.windows, *handle);
  ivm::DeltaBatcher batcher(&manager);
  for (size_t b = 0; b < epochs; ++b) {
    Status st = batcher.Ingest(workload.batches[b]);
    GPIVOT_CHECK(st.ok()) << st.ToString();
    st = batcher.Flush();
    GPIVOT_CHECK(st.ok()) << st.ToString();
    GPIVOT_CHECK(manager.epoch_seq() == b + 1)
        << "churn flush must consume exactly one epoch seq";
    workload.expected[b + 1] = ExpectAt(service, workload.windows, *handle);
  }
  store.UnregisterReader(*handle);
  return workload;
}

struct ReaderStats {
  std::vector<double> latencies_ms;
  uint64_t ops = 0;
  uint64_t epochs_seen = 0;
  uint64_t failures = 0;
  std::string first_failure;
};

void ReaderLoop(const serve::SnapshotStore* store, const Workload* workload,
                serve::ReaderHandle* handle, size_t reader_id, size_t epochs,
                size_t ops_per_epoch, WorkloadMix mix,
                std::atomic<uint64_t>* ack, ReaderStats* stats) {
  // Per-reader registry: the reader-side serve.query.* counters are
  // workload-determined, but which global shard they land in is not, so
  // they stay out of the published (gated) snapshot.
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  ExecContext ctx;
  ctx.metrics = &metrics;
  serve::QueryService service(store, ctx);
  stats->latencies_ms.reserve((epochs + 1) * ops_per_epoch);
  auto fail = [&](std::string why) {
    if (stats->failures++ == 0) stats->first_failure = std::move(why);
  };
  const uint64_t weight = mix.total();

  for (size_t b = 0; b <= epochs; ++b) {
    // The writer holds flush b+1 until every reader acknowledges b, so the
    // head is exactly b once last_committed_seq reaches it.
    while (store->last_committed_seq() < b) std::this_thread::yield();
    std::shared_ptr<const serve::Snapshot> snapshot =
        store->Acquire("v", handle);
    if (snapshot == nullptr || snapshot->epoch_seq() != b) {
      fail("block " + std::to_string(b) + ": acquired wrong epoch");
    } else if (!(FingerprintTable(snapshot->table()) ==
                 workload->expected.at(b).full)) {
      fail("block " + std::to_string(b) +
           ": snapshot diverges from committed state");
    } else {
      ++stats->epochs_seen;
    }
    ack->store(b + 1, std::memory_order_release);

    // Fixed op block, deliberately overlapping the writer's next flush.
    // Each op re-acquires through QueryService, so it may see b or b+1 —
    // it must match exactly one of those committed states.
    const EpochExpectation& at_b = workload->expected.at(b);
    const EpochExpectation* at_next =
        b < epochs ? &workload->expected.at(b + 1) : nullptr;
    for (size_t i = 0; i < ops_per_epoch; ++i) {
      uint64_t pick = (i + reader_id) % weight;
      auto begin = std::chrono::steady_clock::now();
      if (pick < mix.lookup) {
        size_t ki = (b * 31 + i * 7 + reader_id) %
                    workload->stable_keys.size();
        auto row = service.PointLookup("v", workload->stable_keys[ki],
                                       handle);
        if (!row.ok() || !row->has_value()) {
          fail("lookup missed a stable key");
        } else if (static_cast<uint64_t>(HashRow(**row)) !=
                   workload->stable_hashes[ki]) {
          fail("lookup row diverged from the initial state");
        }
      } else if (pick < mix.lookup + mix.scan) {
        size_t wi = (b + i + reader_id) % workload->windows.size();
        auto scan = service.Scan("v", workload->windows[wi], handle);
        if (!scan.ok()) {
          fail("scan failed: " + scan.status().ToString());
        } else {
          Fingerprint fp = FingerprintTable(*scan);
          if (!(fp == at_b.scans[wi]) &&
              !(at_next != nullptr && fp == at_next->scans[wi])) {
            fail("scan result matches no committed epoch");
          }
        }
      } else {
        auto topk = service.TopK("v", kMeasure, kTopK, handle);
        if (!topk.ok()) {
          fail("topk failed: " + topk.status().ToString());
        } else {
          Fingerprint fp = FingerprintTable(*topk);
          if (!(fp == at_b.topk) &&
              !(at_next != nullptr && fp == at_next->topk)) {
            fail("topk result matches no committed epoch");
          }
        }
      }
      auto end = std::chrono::steady_clock::now();
      stats->latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(end - begin).count());
      ++stats->ops;
    }
  }
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  return sorted[static_cast<size_t>(q *
                                    static_cast<double>(sorted.size() - 1))];
}

void RunServing(benchmark::State& state) {
  const BenchContext& context = SharedContext();
  const ExecContext exec = BenchExecContext();
  const size_t num_readers = ServeReaders();
  const size_t epochs = ServeEpochs();
  const size_t ops_per_epoch = ServeOps();
  const WorkloadMix mix = MixFromEnv();
  const serve::ServeOptions options = ServeOptionsOrDie();
  const Workload workload = BuildWorkload(context, epochs);

  double wall_ms = 0;
  double qps = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  uint64_t total_ops = 0;
  size_t view_rows = 0;
  std::string metrics_json;
  std::string cost_json;
  std::string cost_text;
  std::string prom_text;
  for (auto _ : state) {
    ivm::ViewManager manager = MakeView1Manager(context, exec);
    // The store publishes into the gated registry (serve.snapshot.installs
    // is deterministic; serve.acquire./serve.retire. are diff-ignored) and
    // appends its install/retire records to the same epoch event log the
    // manager writes, interleaved deterministically with the commits.
    serve::SnapshotStore store(&manager, options, obs::MetricsFromEnv(),
                               obs::EventLogFromEnv());
    Status attached = store.Attach();
    GPIVOT_CHECK(attached.ok()) << attached.ToString();
    std::vector<serve::ReaderHandle*> handles;
    for (size_t r = 0; r < num_readers; ++r) {
      auto handle = store.RegisterReader();
      GPIVOT_CHECK(handle.ok())
          << handle.status().ToString()
          << " (raise GPIVOT_SERVE_MAX_PINNED_EPOCHS to at least the "
             "reader count)";
      handles.push_back(*handle);
    }
    // Published counters cover only the mixed phase: the attach-time
    // install would otherwise make the gated install count off by one.
    if (exec.metrics != nullptr) exec.metrics->Reset();

    std::vector<ReaderStats> stats(num_readers);
    std::vector<std::atomic<uint64_t>> acks(num_readers);
    auto wall_begin = std::chrono::steady_clock::now();
    std::vector<std::thread> readers;
    for (size_t r = 0; r < num_readers; ++r) {
      readers.emplace_back(ReaderLoop, &store, &workload, handles[r], r,
                           epochs, ops_per_epoch, mix, &acks[r], &stats[r]);
    }
    ivm::DeltaBatcher batcher(&manager);
    for (size_t s = 1; s <= epochs; ++s) {
      for (size_t r = 0; r < num_readers; ++r) {
        while (acks[r].load(std::memory_order_acquire) < s) {
          std::this_thread::yield();
        }
      }
      Status st = batcher.Ingest(workload.batches[s - 1]);
      GPIVOT_CHECK(st.ok()) << st.ToString();
      st = batcher.Flush();
      GPIVOT_CHECK(st.ok()) << st.ToString();
    }
    for (std::thread& t : readers) t.join();
    auto wall_end = std::chrono::steady_clock::now();

    std::vector<double> latencies;
    total_ops = 0;
    for (size_t r = 0; r < num_readers; ++r) {
      GPIVOT_CHECK(stats[r].failures == 0)
          << "reader " << r << ": " << stats[r].first_failure;
      GPIVOT_CHECK(stats[r].epochs_seen == epochs + 1)
          << "reader " << r << " missed a committed epoch";
      latencies.insert(latencies.end(), stats[r].latencies_ms.begin(),
                       stats[r].latencies_ms.end());
      total_ops += stats[r].ops;
    }
    std::sort(latencies.begin(), latencies.end());
    wall_ms = std::chrono::duration<double, std::milli>(wall_end - wall_begin)
                  .count();
    qps = static_cast<double>(total_ops) / (wall_ms / 1000.0);
    p50 = Percentile(latencies, 0.50);
    p95 = Percentile(latencies, 0.95);
    p99 = Percentile(latencies, 0.99);

    if (exec.metrics != nullptr && exec.metrics->enabled()) {
      obs::MetricsSnapshot snapshot = exec.metrics->Snapshot();
      // The lock-free claim, asserted: registered readers never touched
      // the slow path, and every churn epoch installed exactly once.
      GPIVOT_CHECK(snapshot.counters.find("serve.read.locks") ==
                   snapshot.counters.end())
          << "a registered reader took the locked acquire path";
      auto installs = snapshot.counters.find("serve.snapshot.installs");
      GPIVOT_CHECK(installs != snapshot.counters.end() &&
                   installs->second == epochs)
          << "expected one snapshot install per churn epoch";
      metrics_json = snapshot.ToJson(5);
      prom_text = snapshot.ToPrometheusText();
      auto cost = manager.ExplainAnalyze("v");
      if (cost.ok()) {
        cost_json = cost->ToJsonLine();
        cost_text = cost->ToText();
      }
    }
    view_rows = manager.GetView("v").value()->num_rows();
    for (serve::ReaderHandle* handle : handles) {
      store.UnregisterReader(handle);
    }
    store.FlushRetired();
    state.SetIterationTime(wall_ms / 1000.0);
  }

  state.counters["qps"] = qps;
  state.counters["p99_ms"] = p99;
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(workload.delta_rows);
  std::ostringstream extra;
  extra << "\"readers\": " << num_readers << ", \"serve_epochs\": " << epochs
        << ", \"ops\": " << total_ops << ", \"qps\": " << qps
        << ", \"p50_ms\": " << p50 << ", \"p95_ms\": " << p95
        << ", \"p99_ms\": " << p99;
  AddFigureRecord(
      kFigure,
      FigureRecord{"mixed_read_write", kTotalFraction, wall_ms, wall_ms, 1,
                   view_rows, workload.delta_rows, std::move(metrics_json),
                   std::move(cost_json), std::move(cost_text),
                   std::move(prom_text), extra.str()});
}

void RegisterServing() {
  ValidateBenchEnvOnce();
  // Fail fast on malformed serve knobs at registration, not mid-run.
  MixFromEnv();
  ServeOptionsOrDie();
  std::string name = std::string(kFigure) +
                     "/readers:" + std::to_string(ServeReaders()) +
                     "/epochs:" + std::to_string(ServeEpochs());
  benchmark::RegisterBenchmark(name.c_str(), RunServing)
      ->Unit(benchmark::kMillisecond)
      ->UseManualTime()
      ->Iterations(1);
}

}  // namespace
}  // namespace gpivot::bench

int main(int argc, char** argv) {
  gpivot::bench::RegisterServing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
