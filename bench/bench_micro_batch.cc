// Micro-batch ingest figure (no paper counterpart): a heavy-traffic
// workload of N small churny delta batches — each batch inserts a chunk of
// new lineitem rows and retracts the previous batch's chunk — applied to
// View 1 under the Fig. 23 update rules, either one epoch per batch
// (ApplyUpdate N times) or through the DeltaBatcher (N ingests, one
// compacted flush). The batched run's cost tree and ivm.propagate.*
// counters show the compaction: most of the churn cancels before
// propagation, so the single flushed epoch propagates a fraction of the
// Δ/∇ rows the one-by-one run pays N full propagations for.
//
// GPIVOT_BENCH_MICRO_BATCHES sets N (default 8).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ivm/batcher.h"
#include "ivm/view_manager.h"
#include "obs/metrics.h"
#include "tpch/views.h"
#include "util/check.h"

namespace gpivot::bench {
namespace {

constexpr const char* kFigure = "MicroBatch/View1Churn";
// Total new-key insert volume the churn is derived from, as a fraction of
// lineitem — the same knob the paper figures sweep, held at one point here.
constexpr double kTotalFraction = 0.04;

size_t NumMicroBatches() {
  static const size_t kBatches = [] {
    uint64_t n = BenchEnvUint64("GPIVOT_BENCH_MICRO_BATCHES", 8);
    return n < 2 ? size_t{2} : static_cast<size_t>(n);
  }();
  return kBatches;
}

// N churn batches over one new-key insert workload: batch b inserts chunk
// b and (for b > 0) deletes chunk b-1, so applied in order every batch is
// individually valid and the net of all N is just the final chunk's
// inserts — the best case compaction is built to exploit and exactly the
// shape of a hot row set being rewritten under traffic.
std::vector<ivm::SourceDeltas> MakeChurnBatches(const Catalog& catalog,
                                                const tpch::Config& config,
                                                size_t num_batches) {
  auto workload =
      tpch::MakeLineitemInsertsNewKeys(catalog, config, kTotalFraction,
                                       0xBEEF);
  GPIVOT_CHECK(workload.ok()) << workload.status().ToString();
  const Table& inserts = workload->at("lineitem").inserts;
  const std::vector<Row>& rows = inserts.rows();
  size_t n = rows.size();
  std::vector<ivm::SourceDeltas> batches;
  batches.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    ivm::Delta delta = ivm::Delta::Empty(inserts.schema());
    for (size_t i = b * n / num_batches; i < (b + 1) * n / num_batches; ++i) {
      delta.inserts.AddRow(rows[i]);
    }
    if (b > 0) {
      for (size_t i = (b - 1) * n / num_batches; i < b * n / num_batches;
           ++i) {
        delta.deletes.AddRow(rows[i]);
      }
    }
    ivm::SourceDeltas deltas;
    deltas.emplace("lineitem", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

void RunMicroBatch(benchmark::State& state, bool batched) {
  const BenchContext& context = SharedContext();
  const ExecContext exec = BenchExecContext();
  const bool verify = std::getenv("GPIVOT_BENCH_VERIFY") != nullptr;
  const bool audit = std::getenv("GPIVOT_BENCH_AUDIT") != nullptr;
  const size_t reps = BenchReps();
  const size_t num_batches = NumMicroBatches();
  size_t view_rows = 0;
  size_t delta_rows = 0;
  std::vector<double> rep_ms;
  std::string metrics_json;
  std::string cost_json;
  std::string cost_text;
  std::string prom_text;
  for (auto _ : state) {
    rep_ms.clear();
    for (size_t rep = 0; rep < reps; ++rep) {
      tpch::Data copy = context.data;
      auto catalog = tpch::MakeCatalog(std::move(copy));
      GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
      auto query = tpch::View1(*catalog, context.config.max_line_numbers);
      GPIVOT_CHECK(query.ok()) << query.status().ToString();
      ivm::ViewManager manager(std::move(*catalog));
      manager.set_exec_context(exec);
      Status defined =
          manager.DefineView("v", *query, ivm::RefreshStrategy::kUpdate);
      GPIVOT_CHECK(defined.ok()) << defined.ToString();
      std::vector<ivm::SourceDeltas> batches =
          MakeChurnBatches(manager.catalog(), context.config, num_batches);
      delta_rows = 0;
      for (const ivm::SourceDeltas& batch : batches) {
        for (const auto& [name, delta] : batch) {
          delta_rows += delta.inserts.num_rows() + delta.deletes.num_rows();
        }
      }
      if (exec.metrics != nullptr) exec.metrics->Reset();

      // Timed: the whole ingest pipeline — N epochs one-by-one, or N
      // ingest folds plus the single compacted flush epoch.
      auto wall_begin = std::chrono::steady_clock::now();
      if (batched) {
        ivm::DeltaBatcher batcher(&manager);
        for (const ivm::SourceDeltas& batch : batches) {
          Status st = batcher.Ingest(batch);
          GPIVOT_CHECK(st.ok()) << st.ToString();
        }
        Status st = batcher.Flush();
        GPIVOT_CHECK(st.ok()) << st.ToString();
      } else {
        for (const ivm::SourceDeltas& batch : batches) {
          Status st = manager.ApplyUpdate(batch);
          GPIVOT_CHECK(st.ok()) << st.ToString();
        }
      }
      auto wall_end = std::chrono::steady_clock::now();

      rep_ms.push_back(
          std::chrono::duration<double, std::milli>(wall_end - wall_begin)
              .count());
      if (exec.metrics != nullptr && exec.metrics->enabled()) {
        obs::MetricsSnapshot snapshot = exec.metrics->Snapshot();
        metrics_json = snapshot.ToJson(5);
        prom_text = snapshot.ToPrometheusText();
        auto cost = manager.ExplainAnalyze("v");
        if (cost.ok()) {
          cost_json = cost->ToJsonLine();
          cost_text = cost->ToText();
        }
      }
      view_rows = manager.GetView("v").value()->num_rows();
      if (verify) {
        auto recomputed = manager.RecomputeFromScratch("v");
        GPIVOT_CHECK(recomputed.ok()) << recomputed.status().ToString();
        GPIVOT_CHECK(
            recomputed->BagEquals(manager.GetView("v").value()->table()))
            << "verification failed for "
            << (batched ? "batched" : "one_by_one");
      }
      if (audit) {
        Status audited = manager.Audit();
        GPIVOT_CHECK(audited.ok()) << audited.ToString();
      }
    }
    std::sort(rep_ms.begin(), rep_ms.end());
    state.SetIterationTime(rep_ms.front() / 1000.0);
  }
  double median = rep_ms[rep_ms.size() / 2];
  if (rep_ms.size() % 2 == 0) {
    median = (median + rep_ms[rep_ms.size() / 2 - 1]) / 2.0;
  }
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(delta_rows);
  AddFigureRecord(kFigure,
                  FigureRecord{batched ? "batched" : "one_by_one",
                               kTotalFraction, rep_ms.front(), median, reps,
                               view_rows, delta_rows, std::move(metrics_json),
                               std::move(cost_json), std::move(cost_text),
                               std::move(prom_text), /*extra=*/std::string()});
}

void RegisterMicroBatch() {
  ValidateBenchEnvOnce();
  for (bool batched : {false, true}) {
    std::string name = std::string(kFigure) + "/" +
                       (batched ? "batched" : "one_by_one") + "/batches:" +
                       std::to_string(NumMicroBatches());
    benchmark::RegisterBenchmark(
        name.c_str(),
        [batched](benchmark::State& state) { RunMicroBatch(state, batched); })
        ->Unit(benchmark::kMillisecond)
        ->UseManualTime()
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gpivot::bench

int main(int argc, char** argv) {
  gpivot::bench::RegisterMicroBatch();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
