// Fig. 33: maintenance of View 1 (non-aggregate, Fig. 32) under deletions
// of 1–10% of lineitem. Compares full recomputation, the Fig. 22
// insert/delete rules (pivot left intermediate), and the Fig. 23 update
// rules after GPIVOT pullup. Expected shape: Update ≪ InsertDelete ≪
// FullRecompute, with Update growing roughly linearly in the delta.
#include "bench_common.h"

int main(int argc, char** argv) {
  using gpivot::bench::RegisterFigure;
  using gpivot::bench::ViewId;
  using gpivot::bench::WorkloadKind;
  using gpivot::ivm::RefreshStrategy;
  RegisterFigure("Fig33/View1Delete", ViewId::kView1, WorkloadKind::kDelete,
                 {RefreshStrategy::kFullRecompute,
                  RefreshStrategy::kInsertDelete, RefreshStrategy::kUpdate});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
