// Recovery figure (no paper counterpart): wall time and propagated-row
// cost of bringing a durable View 1 back after a crash. Setup (untimed)
// ingests N churny micro-batches through the durability layer with
// checkpointing disabled, so the whole workload sits in the WAL, then
// drops the manager without a clean shutdown. Timed: a fresh
// DurableViewManager::Open over the directory — checkpoint load, WAL
// replay, re-covering checkpoint, log reset. The two strategies differ
// only in replay mode: `raw_replay` re-applies every WAL entry as its own
// epoch (paying N full propagations), `compacted_replay` folds all
// entries through DeltaBatcher compaction into one net epoch first. The
// churn cancels across batches, so compacted replay propagates a fraction
// of the rows — delta_rows records replay_rows_applied, which is what
// tools/bench_diff gates on.
//
// GPIVOT_BENCH_MICRO_BATCHES sets N (default 8). GPIVOT_WAL_DIR, when
// set, hosts the storage directories (inspectable with walinspect after
// the run); otherwise they live under the system temp dir.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "ivm/view_manager.h"
#include "obs/metrics.h"
#include "storage/recovery.h"
#include "tpch/views.h"
#include "util/check.h"

namespace gpivot::bench {
namespace {

constexpr const char* kFigure = "Recovery/WalReplay";
constexpr double kTotalFraction = 0.04;

size_t NumMicroBatches() {
  static const size_t kBatches = [] {
    uint64_t n = BenchEnvUint64("GPIVOT_BENCH_MICRO_BATCHES", 8);
    return n < 2 ? size_t{2} : static_cast<size_t>(n);
  }();
  return kBatches;
}

// Same churn shape as bench_micro_batch: batch b inserts chunk b and
// retracts chunk b-1, so the net of all N is the final chunk alone.
std::vector<ivm::SourceDeltas> MakeChurnBatches(const Catalog& catalog,
                                                const tpch::Config& config,
                                                size_t num_batches) {
  auto workload =
      tpch::MakeLineitemInsertsNewKeys(catalog, config, kTotalFraction,
                                       0xBEEF);
  GPIVOT_CHECK(workload.ok()) << workload.status().ToString();
  const Table& inserts = workload->at("lineitem").inserts;
  const std::vector<Row>& rows = inserts.rows();
  size_t n = rows.size();
  std::vector<ivm::SourceDeltas> batches;
  batches.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    ivm::Delta delta = ivm::Delta::Empty(inserts.schema());
    for (size_t i = b * n / num_batches; i < (b + 1) * n / num_batches; ++i) {
      delta.inserts.AddRow(rows[i]);
    }
    if (b > 0) {
      for (size_t i = (b - 1) * n / num_batches; i < b * n / num_batches;
           ++i) {
        delta.deletes.AddRow(rows[i]);
      }
    }
    ivm::SourceDeltas deltas;
    deltas.emplace("lineitem", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

std::string StorageRoot() {
  auto env = storage::StorageOptions::FromEnv();
  GPIVOT_CHECK(env.ok()) << env.status().ToString();
  if (!env->dir.empty()) return env->dir;
  return (std::filesystem::temp_directory_path() / "gpivot_bench_recovery")
      .string();
}

void RunRecovery(benchmark::State& state, bool compacted) {
  const BenchContext& context = SharedContext();
  const ExecContext exec = BenchExecContext();
  const bool verify = std::getenv("GPIVOT_BENCH_VERIFY") != nullptr;
  const bool audit = std::getenv("GPIVOT_BENCH_AUDIT") != nullptr;
  const size_t reps = BenchReps();
  const size_t num_batches = NumMicroBatches();
  const std::string strategy = compacted ? "compacted_replay" : "raw_replay";
  size_t view_rows = 0;
  size_t delta_rows = 0;
  std::vector<double> rep_ms;
  std::string metrics_json;
  std::string cost_json;
  std::string cost_text;
  std::string prom_text;
  for (auto _ : state) {
    rep_ms.clear();
    for (size_t rep = 0; rep < reps; ++rep) {
      auto make_catalog = [&]() {
        tpch::Data copy = context.data;
        auto catalog = tpch::MakeCatalog(std::move(copy));
        GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
        return std::move(*catalog);
      };
      auto make_views = [&](const Catalog& catalog) {
        auto query = tpch::View1(catalog, context.config.max_line_numbers);
        GPIVOT_CHECK(query.ok()) << query.status().ToString();
        return std::vector<storage::ViewDefinition>{
            {"v", *query, ivm::RefreshStrategy::kUpdate}};
      };
      std::string dir =
          StorageRoot() + "/" + strategy + "_rep" + std::to_string(rep);
      std::filesystem::remove_all(dir);
      storage::StorageOptions options;
      options.dir = dir;
      options.checkpoint_every_n_epochs = 0;  // keep the workload in the WAL
      options.replay_mode = compacted ? storage::ReplayMode::kCompacted
                                      : storage::ReplayMode::kSequential;
      options.exec_context = exec;

      // Untimed: ingest durably, then "crash" (drop without a clean stop).
      {
        Catalog catalog = make_catalog();
        auto views = make_views(catalog);
        auto dvm = storage::DurableViewManager::Open(std::move(catalog),
                                                     views, options);
        GPIVOT_CHECK(dvm.ok()) << dvm.status().ToString();
        std::vector<ivm::SourceDeltas> batches = MakeChurnBatches(
            (*dvm)->manager()->catalog(), context.config, num_batches);
        for (const ivm::SourceDeltas& batch : batches) {
          Status st = (*dvm)->ApplyUpdate(batch);
          GPIVOT_CHECK(st.ok()) << st.ToString();
        }
      }
      if (exec.metrics != nullptr) exec.metrics->Reset();

      // Timed: full recovery — checkpoint load, replay, re-cover, reset.
      auto wall_begin = std::chrono::steady_clock::now();
      Catalog catalog = make_catalog();
      auto views = make_views(catalog);
      auto dvm = storage::DurableViewManager::Open(std::move(catalog), views,
                                                   options);
      GPIVOT_CHECK(dvm.ok()) << dvm.status().ToString();
      auto wall_end = std::chrono::steady_clock::now();

      rep_ms.push_back(
          std::chrono::duration<double, std::milli>(wall_end - wall_begin)
              .count());
      const storage::RecoveryReport& report = (*dvm)->recovery_report();
      GPIVOT_CHECK(report.wal_entries_replayed == num_batches)
          << "expected " << num_batches << " WAL entries, replayed "
          << report.wal_entries_replayed;
      delta_rows = static_cast<size_t>(report.replay_rows_applied);
      ivm::ViewManager* manager = (*dvm)->manager();
      if (exec.metrics != nullptr && exec.metrics->enabled()) {
        obs::MetricsSnapshot snapshot = exec.metrics->Snapshot();
        metrics_json = snapshot.ToJson(5);
        prom_text = snapshot.ToPrometheusText();
        auto cost = manager->ExplainAnalyze("v");
        if (cost.ok()) {
          cost_json = cost->ToJsonLine();
          cost_text = cost->ToText();
        }
      }
      view_rows = manager->GetView("v").value()->num_rows();
      if (verify) {
        auto recomputed = manager->RecomputeFromScratch("v");
        GPIVOT_CHECK(recomputed.ok()) << recomputed.status().ToString();
        GPIVOT_CHECK(
            recomputed->BagEquals(manager->GetView("v").value()->table()))
            << "recovered view diverges under " << strategy;
      }
      if (audit) {
        Status audited = manager->Audit();
        GPIVOT_CHECK(audited.ok()) << audited.ToString();
      }
    }
    std::sort(rep_ms.begin(), rep_ms.end());
    state.SetIterationTime(rep_ms.front() / 1000.0);
  }
  double median = rep_ms[rep_ms.size() / 2];
  if (rep_ms.size() % 2 == 0) {
    median = (median + rep_ms[rep_ms.size() / 2 - 1]) / 2.0;
  }
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(delta_rows);
  AddFigureRecord(kFigure,
                  FigureRecord{strategy, kTotalFraction, rep_ms.front(),
                               median, reps, view_rows, delta_rows,
                               std::move(metrics_json), std::move(cost_json),
                               std::move(cost_text), std::move(prom_text),
                               /*extra=*/std::string()});
}

void RegisterRecovery() {
  ValidateBenchEnvOnce();
  for (bool compacted : {false, true}) {
    std::string name = std::string(kFigure) + "/" +
                       (compacted ? "compacted_replay" : "raw_replay") +
                       "/batches:" + std::to_string(NumMicroBatches());
    benchmark::RegisterBenchmark(name.c_str(),
                                 [compacted](benchmark::State& state) {
                                   RunRecovery(state, compacted);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->UseManualTime()
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace gpivot::bench

int main(int argc, char** argv) {
  gpivot::bench::RegisterRecovery();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
