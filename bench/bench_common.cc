#include "bench_common.h"

#include <cstdlib>
#include <string>

#include "ivm/view_manager.h"
#include "tpch/views.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::bench {

namespace {

constexpr double kView2PriceThreshold = 30000.0;

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

Result<PlanPtr> BuildView(ViewId view, const Catalog& catalog,
                          const tpch::Config& config) {
  switch (view) {
    case ViewId::kView1:
      return tpch::View1(catalog, config.max_line_numbers);
    case ViewId::kView2:
      return tpch::View2(catalog, config.max_line_numbers,
                         kView2PriceThreshold);
    case ViewId::kView3:
      return tpch::View3(catalog, config.first_year, config.num_years);
  }
  return Status::Internal("unknown view");
}

Result<ivm::SourceDeltas> MakeWorkload(const Catalog& catalog,
                                       const tpch::Config& config,
                                       WorkloadKind kind, double fraction,
                                       uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kDelete:
      return tpch::MakeLineitemDeletes(catalog, fraction, seed);
    case WorkloadKind::kInsertUpdates:
      return tpch::MakeLineitemInsertsUpdatesOnly(catalog, config, fraction,
                                                  seed);
    case WorkloadKind::kInsertNew:
      return tpch::MakeLineitemInsertsNewKeys(catalog, config, fraction,
                                              seed);
    case WorkloadKind::kInsertMixed:
      return tpch::MakeLineitemInsertsMixed(catalog, config, fraction, seed);
  }
  return Status::Internal("unknown workload");
}

void RunRefresh(benchmark::State& state, ViewId view,
                ivm::RefreshStrategy strategy, WorkloadKind kind,
                double fraction) {
  const BenchContext& context = SharedContext();
  const bool verify = std::getenv("GPIVOT_BENCH_VERIFY") != nullptr;
  const bool audit = std::getenv("GPIVOT_BENCH_AUDIT") != nullptr;
  size_t view_rows = 0;
  size_t delta_rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    tpch::Data copy = context.data;  // fresh base tables per iteration
    auto catalog = tpch::MakeCatalog(std::move(copy));
    GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
    auto query = BuildView(view, *catalog, context.config);
    GPIVOT_CHECK(query.ok()) << query.status().ToString();
    ivm::ViewManager manager(std::move(*catalog));
    Status defined = manager.DefineView("v", *query, strategy);
    GPIVOT_CHECK(defined.ok()) << defined.ToString();
    auto deltas = MakeWorkload(manager.catalog(), context.config, kind,
                               fraction, 0xBEEF + state.iterations());
    GPIVOT_CHECK(deltas.ok()) << deltas.status().ToString();
    const ivm::Delta& lineitem_delta = deltas->at("lineitem");
    delta_rows = lineitem_delta.inserts.num_rows() +
                 lineitem_delta.deletes.num_rows();
    state.ResumeTiming();

    // Timed: the propagate + apply phases only. The base-table advance is
    // identical across strategies and excluded, as in the paper.
    Status refreshed = manager.RefreshViews(*deltas);

    state.PauseTiming();
    GPIVOT_CHECK(refreshed.ok()) << refreshed.ToString();
    Status advanced = manager.AdvanceBase(*deltas);
    GPIVOT_CHECK(advanced.ok()) << advanced.ToString();
    view_rows = manager.GetView("v").value()->num_rows();
    if (verify) {
      auto recomputed = manager.RecomputeFromScratch("v");
      GPIVOT_CHECK(recomputed.ok()) << recomputed.status().ToString();
      GPIVOT_CHECK(recomputed->BagEquals(
          manager.GetView("v").value()->table()))
          << "verification failed for "
          << ivm::RefreshStrategyToString(strategy);
    }
    if (audit) {
      Status audited = manager.Audit();
      GPIVOT_CHECK(audited.ok())
          << "audit failed for " << ivm::RefreshStrategyToString(strategy)
          << ": " << audited.ToString();
    }
    state.ResumeTiming();
  }
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(delta_rows);
}

}  // namespace

const BenchContext& SharedContext() {
  static const BenchContext* const kContext = [] {
    auto* context = new BenchContext();
    context->config.scale_factor = EnvDouble("GPIVOT_BENCH_SF", 0.02);
    context->config.seed = static_cast<uint64_t>(
        EnvDouble("GPIVOT_BENCH_SEED", 20050405));
    context->data = tpch::Generate(context->config);
    return context;
  }();
  return *kContext;
}

const std::vector<double>& Fractions() {
  static const std::vector<double>* const kFractions =
      new std::vector<double>{0.01, 0.02, 0.04, 0.06, 0.08, 0.10};
  return *kFractions;
}

void RegisterFigure(const char* figure_name, ViewId view, WorkloadKind kind,
                    const std::vector<ivm::RefreshStrategy>& strategies) {
  for (ivm::RefreshStrategy strategy : strategies) {
    for (double fraction : Fractions()) {
      std::string name =
          StrCat(figure_name, "/", ivm::RefreshStrategyToString(strategy),
                 "/pct:", static_cast<int>(fraction * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [view, strategy, kind, fraction](benchmark::State& state) {
            RunRefresh(state, view, strategy, kind, fraction);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace gpivot::bench
