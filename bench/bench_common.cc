#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>  // environ

#include "exec/vector_ops.h"
#include "ivm/batcher.h"
#include "ivm/view_manager.h"
#include "obs/admin.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/recovery.h"
#include "tpch/views.h"
#include "util/check.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace gpivot::bench {

namespace {

constexpr double kView2PriceThreshold = 30000.0;

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

// The environment variables the harness and the libraries it links read.
// Anything else spelled GPIVOT_* is almost certainly a typo (a silently
// ignored GPIVOT_BENCH_THREDS would publish wrong numbers), so warn.
constexpr const char* kKnownEnvVars[] = {
    "GPIVOT_BENCH_SF",      "GPIVOT_BENCH_SEED",  "GPIVOT_BENCH_THREADS",
    "GPIVOT_BENCH_REPS",    "GPIVOT_BENCH_VERIFY", "GPIVOT_BENCH_AUDIT",
    "GPIVOT_BENCH_JSON_DIR", "GPIVOT_METRICS",     "GPIVOT_TRACE_DIR",
    "GPIVOT_EVENT_LOG",     "GPIVOT_BENCH_MICRO_BATCHES",
    "GPIVOT_BATCH_MAX_BATCHES", "GPIVOT_BATCH_MAX_NET_ROWS",
    "GPIVOT_WAL_DIR",       "GPIVOT_CHECKPOINT_EVERY_N_EPOCHS",
    "GPIVOT_VECTOR_CHUNK_SIZE", "GPIVOT_SERVE_READERS",
    "GPIVOT_SERVE_MAX_PINNED_EPOCHS", "GPIVOT_SERVE_MIX",
    "GPIVOT_SERVE_EPOCHS",  "GPIVOT_SERVE_OPS",
    "GPIVOT_ADMIN_PORT",    "GPIVOT_ADMIN_STUCK_EPOCH_MS",
    "GPIVOT_ADMIN_SAMPLE_MS", "GPIVOT_SHARDS",
    "GPIVOT_HEAVY_KEY_THRESHOLD", "GPIVOT_BENCH_ZIPF_THETA",
};

using BenchRecord = FigureRecord;

// Warns on unrecognized GPIVOT_* variables and exits (code 2) when an
// artifact sink — GPIVOT_TRACE_DIR or GPIVOT_EVENT_LOG — is unwritable:
// those files are flushed at process exit, far too late to notice a bad
// path after an hour-long sweep.
void ValidateBenchEnv() {
  for (char** env = environ; *env != nullptr; ++env) {
    std::string entry = *env;
    if (entry.rfind("GPIVOT_", 0) != 0) continue;
    std::string name = entry.substr(0, entry.find('='));
    bool known = false;
    for (const char* candidate : kKnownEnvVars) known |= name == candidate;
    if (!known) {
      std::fprintf(stderr, "bench: warning: unrecognized env var %s ignored\n",
                   name.c_str());
    }
  }
  const std::string& trace_dir = obs::TraceDirFromEnv();
  if (!trace_dir.empty()) {
    std::string probe = StrCat(trace_dir, "/.gpivot_probe");
    bool writable = static_cast<bool>(std::ofstream(probe));
    if (writable) {
      std::remove(probe.c_str());
    } else {
      std::fprintf(stderr, "bench: GPIVOT_TRACE_DIR=%s is not writable\n",
                   trace_dir.c_str());
      std::exit(2);
    }
  }
  obs::EventLog* event_log = obs::EventLogFromEnv();
  if (event_log != nullptr && !event_log->ok()) {
    std::fprintf(stderr, "bench: GPIVOT_EVENT_LOG unusable: %s\n",
                 event_log->error().c_str());
    std::exit(2);
  }
  // Force the strict GPIVOT_VECTOR_CHUNK_SIZE parse now (exit 2 on garbage)
  // rather than on first operator call mid-run.
  (void)exec::VectorChunkSizeFromEnv();
  // Sharding knobs fail fast too: GPIVOT_SHARDS and
  // GPIVOT_HEAVY_KEY_THRESHOLD are strict-parsed by the libraries, but a
  // bench run should reject them before generating data, not mid-sweep.
  Result<ivm::ShardingOptions> sharding = ivm::ShardingOptions::FromEnv();
  if (!sharding.ok()) {
    std::fprintf(stderr, "bench: %s\n", sharding.status().ToString().c_str());
    std::exit(2);
  }
  Result<ivm::BatcherOptions> batcher = ivm::BatcherOptions::FromEnv();
  if (!batcher.ok()) {
    std::fprintf(stderr, "bench: %s\n", batcher.status().ToString().c_str());
    std::exit(2);
  }
  (void)BenchEnvDouble("GPIVOT_BENCH_ZIPF_THETA", 0.0);
  // Durability knobs fail fast the same way: a garbled cadence or an
  // unwritable WAL dir must not silently run the benchmark undurably.
  Result<storage::StorageOptions> storage = storage::StorageOptions::FromEnv();
  if (!storage.ok()) {
    std::fprintf(stderr, "bench: %s\n", storage.status().ToString().c_str());
    std::exit(2);
  }
  if (!storage->dir.empty()) {
    std::string probe = StrCat(storage->dir, "/.gpivot_probe");
    bool writable =
        EnsureDir(storage->dir).ok() && static_cast<bool>(std::ofstream(probe));
    if (writable) {
      std::remove(probe.c_str());
    } else {
      std::fprintf(stderr, "bench: GPIVOT_WAL_DIR=%s is not writable\n",
                   storage->dir.c_str());
      std::exit(2);
    }
  }
  // Start the admin endpoint (GPIVOT_ADMIN_PORT) before any workload runs
  // so /healthz answers during data generation too. Same strictness: a
  // garbled port or a failed bind is exit 2, not a silent no-admin run.
  Result<obs::AdminServer*> admin = obs::AdminServerFromEnv();
  if (!admin.ok()) {
    std::fprintf(stderr, "bench: %s\n", admin.status().ToString().c_str());
    std::exit(2);
  }
  if (*admin != nullptr) {
    std::fprintf(stderr, "bench: admin endpoint on 127.0.0.1:%d\n",
                 (*admin)->port());
  }
}

// Collects every record produced by this process and writes one
// BENCH_<figure>.json per figure at exit. The registry (not each
// benchmark run) owns the files so a --benchmark_filter'ed run still
// produces a well-formed document for the figures it touched.
class BenchJsonRegistry {
 public:
  static BenchJsonRegistry& Get() {
    static BenchJsonRegistry* const kRegistry = [] {
      auto* registry = new BenchJsonRegistry();
      std::atexit([] { Get().WriteAll(); });
      return registry;
    }();
    return *kRegistry;
  }

  void Add(const std::string& figure, BenchRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    by_figure_[figure].push_back(std::move(record));
  }

 private:
  static std::string Sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (c == '/' || c == ' ' || c == ':') c = '_';
    }
    return out;
  }

  static std::string FormatDouble(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.4f", value);
    return buffer;
  }

  // COST_<figure>.txt: the annotated operator tree per (strategy, fraction),
  // for reading a run's plan shapes without a JSON pipeline.
  // METRICS_<figure>.prom: the figure's final metrics snapshot in Prometheus
  // text exposition format, scrape-ready.
  static void WriteSidecars(const std::string& dir, const std::string& figure,
                            const std::vector<BenchRecord>& records) {
    bool any_cost = false;
    for (const BenchRecord& r : records) any_cost |= !r.cost_text.empty();
    if (any_cost) {
      std::ofstream out(StrCat(dir, "/COST_", Sanitize(figure), ".txt"));
      for (const BenchRecord& r : records) {
        if (r.cost_text.empty()) continue;
        out << "== " << r.strategy << " @" << FormatDouble(r.fraction)
            << "\n" << r.cost_text << "\n";
      }
    }
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->prom_text.empty()) continue;
      std::ofstream out(StrCat(dir, "/METRICS_", Sanitize(figure), ".prom"));
      out << it->prom_text;
      break;
    }
  }

  void WriteAll() {
    std::lock_guard<std::mutex> lock(mu_);
    const char* dir_env = std::getenv("GPIVOT_BENCH_JSON_DIR");
    std::string dir = dir_env == nullptr ? "." : dir_env;
    const BenchContext& context = SharedContext();
    ExecContext exec = BenchExecContext();
    for (const auto& [figure, records] : by_figure_) {
      std::string path = StrCat(dir, "/BENCH_", Sanitize(figure), ".json");
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        continue;
      }
      out << "{\n";
      out << "  \"figure\": \"" << figure << "\",\n";
      out << "  \"scale_factor\": " << FormatDouble(context.config.scale_factor)
          << ",\n";
      out << "  \"seed\": " << context.config.seed << ",\n";
      out << "  \"num_threads\": " << exec.num_threads << ",\n";
      out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
          << ",\n";
      out << "  \"vector_chunk_size\": " << exec::EffectiveVectorChunkSize(exec)
          << ",\n";
      Result<ivm::ShardingOptions> sharding = ivm::ShardingOptions::FromEnv();
      out << "  \"num_shards\": "
          << (sharding.ok() ? sharding->num_shards : size_t{1}) << ",\n";
      out << "  \"results\": [\n";
      for (size_t i = 0; i < records.size(); ++i) {
        const BenchRecord& r = records[i];
        out << "    {\"strategy\": \"" << r.strategy << "\", "
            << "\"delta_fraction\": " << FormatDouble(r.fraction) << ", "
            << "\"wall_ms\": " << FormatDouble(r.wall_ms) << ", "
            << "\"wall_ms_median\": " << FormatDouble(r.wall_ms_median) << ", "
            << "\"reps\": " << r.reps << ", "
            << "\"view_rows\": " << r.view_rows << ", "
            << "\"delta_rows\": " << r.delta_rows;
        if (!r.extra.empty()) {
          out << ", " << r.extra;
        }
        if (!r.metrics_json.empty()) {
          out << ",\n     \"metrics\": " << r.metrics_json;
        }
        if (!r.cost_json.empty()) {
          out << ",\n     \"cost\": " << r.cost_json;
        }
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
      }
      out << "  ]\n";
      out << "}\n";
      WriteSidecars(dir, figure, records);
      // When tracing is on, drop the process's span log next to the figure
      // JSON (same base name) in GPIVOT_TRACE_DIR.
      const std::string& trace_dir = obs::TraceDirFromEnv();
      if (!trace_dir.empty() && obs::Tracer::Global().num_spans() > 0) {
        std::string trace_path =
            StrCat(trace_dir, "/TRACE_", Sanitize(figure), ".json");
        if (!obs::Tracer::Global().WriteChromeTrace(trace_path)) {
          std::fprintf(stderr, "bench: cannot write %s\n", trace_path.c_str());
        }
      }
    }
  }

  std::mutex mu_;
  std::map<std::string, std::vector<BenchRecord>> by_figure_;
};

Result<PlanPtr> BuildView(ViewId view, const Catalog& catalog,
                          const tpch::Config& config) {
  switch (view) {
    case ViewId::kView1:
      return tpch::View1(catalog, config.max_line_numbers);
    case ViewId::kView2:
      return tpch::View2(catalog, config.max_line_numbers,
                         kView2PriceThreshold);
    case ViewId::kView3:
      return tpch::View3(catalog, config.first_year, config.num_years);
  }
  return Status::Internal("unknown view");
}

Result<ivm::SourceDeltas> MakeWorkload(const Catalog& catalog,
                                       const tpch::Config& config,
                                       WorkloadKind kind, double fraction,
                                       uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kDelete:
      return tpch::MakeLineitemDeletes(catalog, fraction, seed);
    case WorkloadKind::kInsertUpdates:
      return tpch::MakeLineitemInsertsUpdatesOnly(catalog, config, fraction,
                                                  seed);
    case WorkloadKind::kInsertNew:
      return tpch::MakeLineitemInsertsNewKeys(catalog, config, fraction,
                                              seed);
    case WorkloadKind::kInsertMixed:
      return tpch::MakeLineitemInsertsMixed(catalog, config, fraction, seed);
  }
  return Status::Internal("unknown workload");
}

void RunRefresh(benchmark::State& state, const char* figure_name, ViewId view,
                ivm::RefreshStrategy strategy, WorkloadKind kind,
                double fraction) {
  const BenchContext& context = SharedContext();
  const ExecContext exec = BenchExecContext();
  const bool verify = std::getenv("GPIVOT_BENCH_VERIFY") != nullptr;
  const bool audit = std::getenv("GPIVOT_BENCH_AUDIT") != nullptr;
  const size_t reps = BenchReps();
  size_t view_rows = 0;
  size_t delta_rows = 0;
  std::vector<double> rep_ms;
  std::string metrics_json;
  std::string cost_json;
  std::string cost_text;
  std::string prom_text;
  for (auto _ : state) {
    rep_ms.clear();
    // Every repetition rebuilds the view and replays the *same* delta batch
    // (fixed workload seed), so the reps time an identical epoch and their
    // spread is pure measurement noise.
    for (size_t rep = 0; rep < reps; ++rep) {
      tpch::Data copy = context.data;  // fresh base tables per repetition
      auto catalog = tpch::MakeCatalog(std::move(copy));
      GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
      auto query = BuildView(view, *catalog, context.config);
      GPIVOT_CHECK(query.ok()) << query.status().ToString();
      ivm::ViewManager manager(std::move(*catalog));
      manager.set_exec_context(exec);
      Status defined = manager.DefineView("v", *query, strategy);
      GPIVOT_CHECK(defined.ok()) << defined.ToString();
      auto deltas =
          MakeWorkload(manager.catalog(), context.config, kind, fraction,
                       0xBEEF);
      GPIVOT_CHECK(deltas.ok()) << deltas.status().ToString();
      const ivm::Delta& lineitem_delta = deltas->at("lineitem");
      delta_rows = lineitem_delta.inserts.num_rows() +
                   lineitem_delta.deletes.num_rows();
      if (exec.metrics != nullptr) exec.metrics->Reset();

      // Timed: the propagate + apply phases only. The base-table advance is
      // identical across strategies and excluded, as in the paper.
      auto wall_begin = std::chrono::steady_clock::now();
      Status refreshed = manager.RefreshViews(*deltas);
      auto wall_end = std::chrono::steady_clock::now();

      rep_ms.push_back(
          std::chrono::duration<double, std::milli>(wall_end - wall_begin)
              .count());
      GPIVOT_CHECK(refreshed.ok()) << refreshed.ToString();
      if (exec.metrics != nullptr && exec.metrics->enabled()) {
        obs::MetricsSnapshot snapshot = exec.metrics->Snapshot();
        metrics_json = snapshot.ToJson(5);
        prom_text = snapshot.ToPrometheusText();
        auto cost = manager.ExplainAnalyze("v");
        if (cost.ok()) {
          cost_json = cost->ToJsonLine();
          cost_text = cost->ToText();
        }
      }
      Status advanced = manager.AdvanceBase(*deltas);
      GPIVOT_CHECK(advanced.ok()) << advanced.ToString();
      view_rows = manager.GetView("v").value()->num_rows();
      if (verify) {
        auto recomputed = manager.RecomputeFromScratch("v");
        GPIVOT_CHECK(recomputed.ok()) << recomputed.status().ToString();
        GPIVOT_CHECK(recomputed->BagEquals(
            manager.GetView("v").value()->table()))
            << "verification failed for "
            << ivm::RefreshStrategyToString(strategy);
      }
      if (audit) {
        Status audited = manager.Audit();
        GPIVOT_CHECK(audited.ok())
            << "audit failed for " << ivm::RefreshStrategyToString(strategy)
            << ": " << audited.ToString();
      }
    }
    std::sort(rep_ms.begin(), rep_ms.end());
    // Manual time = the min rep: the benchmark table and the JSON agree.
    state.SetIterationTime(rep_ms.front() / 1000.0);
  }
  double median = rep_ms[rep_ms.size() / 2];
  if (rep_ms.size() % 2 == 0) {
    median = (median + rep_ms[rep_ms.size() / 2 - 1]) / 2.0;
  }
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(delta_rows);
  BenchJsonRegistry::Get().Add(
      figure_name,
      BenchRecord{ivm::RefreshStrategyToString(strategy), fraction,
                  rep_ms.front(), median, reps, view_rows, delta_rows,
                  std::move(metrics_json), std::move(cost_json),
                  std::move(cost_text), std::move(prom_text),
                  /*extra=*/std::string()});
}

}  // namespace

// Integer env vars (seeds, rep counts, thread counts) must not round-trip
// through double (atof silently truncates large seeds) and must not be
// lenient: atol-style parsing reads "4x" as 4 and a silent fallback turns a
// typo into a mislabeled published run. Anything but a fully-consumed
// non-negative decimal integer is fatal (exit 2, like an unwritable sink).
uint64_t BenchEnvUint64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (value[0] == '-' || end == value || *end != '\0') {
    std::fprintf(stderr,
                 "bench: %s='%s' is not a non-negative integer\n", name,
                 value);
    std::exit(2);
  }
  return static_cast<uint64_t>(parsed);
}

// Double env vars (the Zipf theta) get the same strictness: a partially
// consumed or negative value is a typo, and a typo'd skew parameter
// publishes a mislabeled run.
double BenchEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(parsed >= 0.0) ||
      parsed > 1e9) {
    std::fprintf(stderr,
                 "bench: %s='%s' is not a finite non-negative number\n", name,
                 value);
    std::exit(2);
  }
  return parsed;
}

// GPIVOT_BENCH_REPS: identical-epoch repetitions per (strategy, fraction);
// the JSON reports min and median so one descheduled rep doesn't skew the
// trajectory.
size_t BenchReps() {
  static const size_t kReps = [] {
    uint64_t reps = BenchEnvUint64("GPIVOT_BENCH_REPS", 3);
    return reps == 0 ? size_t{1} : static_cast<size_t>(reps);
  }();
  return kReps;
}

void ValidateBenchEnvOnce() {
  static const bool kValidated = [] {
    ValidateBenchEnv();
    return true;
  }();
  (void)kValidated;
}

void AddFigureRecord(const std::string& figure, FigureRecord record) {
  BenchJsonRegistry::Get().Add(figure, std::move(record));
}

const BenchContext& SharedContext() {
  static const BenchContext* const kContext = [] {
    auto* context = new BenchContext();
    context->config.scale_factor = EnvDouble("GPIVOT_BENCH_SF", 0.02);
    context->config.seed = BenchEnvUint64("GPIVOT_BENCH_SEED", 20050405);
    context->data = tpch::Generate(context->config);
    return context;
  }();
  return *kContext;
}

ExecContext BenchExecContext() {
  ExecContext ctx;
  uint64_t threads = BenchEnvUint64("GPIVOT_BENCH_THREADS", 1);
  if (threads == 0) {
    std::fprintf(stderr, "bench: GPIVOT_BENCH_THREADS must be >= 1\n");
    std::exit(2);
  }
  ctx.num_threads = static_cast<size_t>(threads);
  ctx.metrics = obs::MetricsFromEnv();
  ctx.tracer = obs::TracerFromEnv();
  return ctx;
}

const std::vector<double>& Fractions() {
  static const std::vector<double>* const kFractions =
      new std::vector<double>{0.01, 0.02, 0.04, 0.06, 0.08, 0.10};
  return *kFractions;
}

void RegisterFigure(const char* figure_name, ViewId view, WorkloadKind kind,
                    const std::vector<ivm::RefreshStrategy>& strategies) {
  ValidateBenchEnvOnce();
  for (ivm::RefreshStrategy strategy : strategies) {
    for (double fraction : Fractions()) {
      std::string name =
          StrCat(figure_name, "/", ivm::RefreshStrategyToString(strategy),
                 "/pct:", static_cast<int>(fraction * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [figure_name, view, strategy, kind, fraction](
              benchmark::State& state) {
            RunRefresh(state, figure_name, view, strategy, kind, fraction);
          })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(1);
    }
  }
}

}  // namespace gpivot::bench
