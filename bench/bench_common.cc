#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "ivm/view_manager.h"
#include "tpch/views.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::bench {

namespace {

constexpr double kView2PriceThreshold = 30000.0;

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

// One (strategy, fraction) measurement inside a figure sweep.
struct BenchRecord {
  std::string strategy;
  double fraction = 0;
  double wall_ms = 0;
  size_t view_rows = 0;
  size_t delta_rows = 0;
};

// Collects every record produced by this process and writes one
// BENCH_<figure>.json per figure at exit. The registry (not each
// benchmark run) owns the files so a --benchmark_filter'ed run still
// produces a well-formed document for the figures it touched.
class BenchJsonRegistry {
 public:
  static BenchJsonRegistry& Get() {
    static BenchJsonRegistry* const kRegistry = [] {
      auto* registry = new BenchJsonRegistry();
      std::atexit([] { Get().WriteAll(); });
      return registry;
    }();
    return *kRegistry;
  }

  void Add(const std::string& figure, BenchRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    by_figure_[figure].push_back(std::move(record));
  }

 private:
  static std::string Sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (c == '/' || c == ' ' || c == ':') c = '_';
    }
    return out;
  }

  static std::string FormatDouble(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.4f", value);
    return buffer;
  }

  void WriteAll() {
    std::lock_guard<std::mutex> lock(mu_);
    const char* dir_env = std::getenv("GPIVOT_BENCH_JSON_DIR");
    std::string dir = dir_env == nullptr ? "." : dir_env;
    const BenchContext& context = SharedContext();
    ExecContext exec = BenchExecContext();
    for (const auto& [figure, records] : by_figure_) {
      std::string path = StrCat(dir, "/BENCH_", Sanitize(figure), ".json");
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        continue;
      }
      out << "{\n";
      out << "  \"figure\": \"" << figure << "\",\n";
      out << "  \"scale_factor\": " << FormatDouble(context.config.scale_factor)
          << ",\n";
      out << "  \"seed\": " << context.config.seed << ",\n";
      out << "  \"num_threads\": " << exec.num_threads << ",\n";
      out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
          << ",\n";
      out << "  \"results\": [\n";
      for (size_t i = 0; i < records.size(); ++i) {
        const BenchRecord& r = records[i];
        out << "    {\"strategy\": \"" << r.strategy << "\", "
            << "\"delta_fraction\": " << FormatDouble(r.fraction) << ", "
            << "\"wall_ms\": " << FormatDouble(r.wall_ms) << ", "
            << "\"view_rows\": " << r.view_rows << ", "
            << "\"delta_rows\": " << r.delta_rows << "}"
            << (i + 1 < records.size() ? "," : "") << "\n";
      }
      out << "  ]\n";
      out << "}\n";
    }
  }

  std::mutex mu_;
  std::map<std::string, std::vector<BenchRecord>> by_figure_;
};

Result<PlanPtr> BuildView(ViewId view, const Catalog& catalog,
                          const tpch::Config& config) {
  switch (view) {
    case ViewId::kView1:
      return tpch::View1(catalog, config.max_line_numbers);
    case ViewId::kView2:
      return tpch::View2(catalog, config.max_line_numbers,
                         kView2PriceThreshold);
    case ViewId::kView3:
      return tpch::View3(catalog, config.first_year, config.num_years);
  }
  return Status::Internal("unknown view");
}

Result<ivm::SourceDeltas> MakeWorkload(const Catalog& catalog,
                                       const tpch::Config& config,
                                       WorkloadKind kind, double fraction,
                                       uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kDelete:
      return tpch::MakeLineitemDeletes(catalog, fraction, seed);
    case WorkloadKind::kInsertUpdates:
      return tpch::MakeLineitemInsertsUpdatesOnly(catalog, config, fraction,
                                                  seed);
    case WorkloadKind::kInsertNew:
      return tpch::MakeLineitemInsertsNewKeys(catalog, config, fraction,
                                              seed);
    case WorkloadKind::kInsertMixed:
      return tpch::MakeLineitemInsertsMixed(catalog, config, fraction, seed);
  }
  return Status::Internal("unknown workload");
}

void RunRefresh(benchmark::State& state, const char* figure_name, ViewId view,
                ivm::RefreshStrategy strategy, WorkloadKind kind,
                double fraction) {
  const BenchContext& context = SharedContext();
  const bool verify = std::getenv("GPIVOT_BENCH_VERIFY") != nullptr;
  const bool audit = std::getenv("GPIVOT_BENCH_AUDIT") != nullptr;
  size_t view_rows = 0;
  size_t delta_rows = 0;
  double wall_ms = 0;
  for (auto _ : state) {
    state.PauseTiming();
    tpch::Data copy = context.data;  // fresh base tables per iteration
    auto catalog = tpch::MakeCatalog(std::move(copy));
    GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
    auto query = BuildView(view, *catalog, context.config);
    GPIVOT_CHECK(query.ok()) << query.status().ToString();
    ivm::ViewManager manager(std::move(*catalog));
    manager.set_exec_context(BenchExecContext());
    Status defined = manager.DefineView("v", *query, strategy);
    GPIVOT_CHECK(defined.ok()) << defined.ToString();
    auto deltas = MakeWorkload(manager.catalog(), context.config, kind,
                               fraction, 0xBEEF + state.iterations());
    GPIVOT_CHECK(deltas.ok()) << deltas.status().ToString();
    const ivm::Delta& lineitem_delta = deltas->at("lineitem");
    delta_rows = lineitem_delta.inserts.num_rows() +
                 lineitem_delta.deletes.num_rows();
    state.ResumeTiming();

    // Timed: the propagate + apply phases only. The base-table advance is
    // identical across strategies and excluded, as in the paper.
    auto wall_begin = std::chrono::steady_clock::now();
    Status refreshed = manager.RefreshViews(*deltas);
    auto wall_end = std::chrono::steady_clock::now();

    state.PauseTiming();
    wall_ms = std::chrono::duration<double, std::milli>(wall_end - wall_begin)
                  .count();
    GPIVOT_CHECK(refreshed.ok()) << refreshed.ToString();
    Status advanced = manager.AdvanceBase(*deltas);
    GPIVOT_CHECK(advanced.ok()) << advanced.ToString();
    view_rows = manager.GetView("v").value()->num_rows();
    if (verify) {
      auto recomputed = manager.RecomputeFromScratch("v");
      GPIVOT_CHECK(recomputed.ok()) << recomputed.status().ToString();
      GPIVOT_CHECK(recomputed->BagEquals(
          manager.GetView("v").value()->table()))
          << "verification failed for "
          << ivm::RefreshStrategyToString(strategy);
    }
    if (audit) {
      Status audited = manager.Audit();
      GPIVOT_CHECK(audited.ok())
          << "audit failed for " << ivm::RefreshStrategyToString(strategy)
          << ": " << audited.ToString();
    }
    state.ResumeTiming();
  }
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(delta_rows);
  BenchJsonRegistry::Get().Add(
      figure_name,
      BenchRecord{ivm::RefreshStrategyToString(strategy), fraction, wall_ms,
                  view_rows, delta_rows});
}

}  // namespace

const BenchContext& SharedContext() {
  static const BenchContext* const kContext = [] {
    auto* context = new BenchContext();
    context->config.scale_factor = EnvDouble("GPIVOT_BENCH_SF", 0.02);
    context->config.seed = static_cast<uint64_t>(
        EnvDouble("GPIVOT_BENCH_SEED", 20050405));
    context->data = tpch::Generate(context->config);
    return context;
  }();
  return *kContext;
}

ExecContext BenchExecContext() {
  ExecContext ctx;
  const char* value = std::getenv("GPIVOT_BENCH_THREADS");
  if (value != nullptr) {
    long parsed = std::atol(value);
    if (parsed > 0) ctx.num_threads = static_cast<size_t>(parsed);
  }
  return ctx;
}

const std::vector<double>& Fractions() {
  static const std::vector<double>* const kFractions =
      new std::vector<double>{0.01, 0.02, 0.04, 0.06, 0.08, 0.10};
  return *kFractions;
}

void RegisterFigure(const char* figure_name, ViewId view, WorkloadKind kind,
                    const std::vector<ivm::RefreshStrategy>& strategies) {
  for (ivm::RefreshStrategy strategy : strategies) {
    for (double fraction : Fractions()) {
      std::string name =
          StrCat(figure_name, "/", ivm::RefreshStrategyToString(strategy),
                 "/pct:", static_cast<int>(fraction * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [figure_name, view, strategy, kind, fraction](
              benchmark::State& state) {
            RunRefresh(state, figure_name, view, strategy, kind, fraction);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace gpivot::bench
