// Fig. 40: maintenance of the aggregate crosstab View 3 (Fig. 39) under
// deletions. Compares full recomputation, GPIVOT update rules over the [18]
// GROUPBY insert/delete rules (affected groups recomputed), and the
// combined GPIVOT/GROUPBY update rules of Fig. 27 (pure delta aggregation).
#include "bench_common.h"

int main(int argc, char** argv) {
  using gpivot::bench::RegisterFigure;
  using gpivot::bench::ViewId;
  using gpivot::bench::WorkloadKind;
  using gpivot::ivm::RefreshStrategy;
  RegisterFigure("Fig40/View3Delete", ViewId::kView3, WorkloadKind::kDelete,
                 {RefreshStrategy::kFullRecompute, RefreshStrategy::kUpdate,
                  RefreshStrategy::kCombinedGroupBy});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
