// Row-shim vs vectorized ablation (no paper counterpart): the same View 1
// maintenance epochs — a new-key insert batch and a uniform delete batch —
// run once through the row-at-a-time shim (vector_chunk_size = 0) and once
// through the columnar batch executor at its effective chunk width. Both
// paths produce byte-identical views and counters (columnar_property_test
// enforces that); this figure records what the vectorized inner loops buy
// in wall-clock on exactly the delta hot path the paper's figures sweep.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/vector_ops.h"
#include "ivm/view_manager.h"
#include "obs/metrics.h"
#include "tpch/views.h"
#include "util/check.h"

namespace gpivot::bench {
namespace {

constexpr const char* kFigure = "Ablation/RowVsColumn";
constexpr double kFraction = 0.04;

void RunAblation(benchmark::State& state, bool vectorized, bool deletes) {
  const BenchContext& context = SharedContext();
  ExecContext exec = BenchExecContext();
  // The one knob under ablation. The vectorized arm keeps the effective
  // env-driven width so the recorded vector_chunk_size matches the run.
  exec.vector_chunk_size =
      vectorized ? gpivot::exec::EffectiveVectorChunkSize(exec) : 0;
  const bool verify = std::getenv("GPIVOT_BENCH_VERIFY") != nullptr;
  const bool audit = std::getenv("GPIVOT_BENCH_AUDIT") != nullptr;
  const size_t reps = BenchReps();
  size_t view_rows = 0;
  size_t delta_rows = 0;
  std::vector<double> rep_ms;
  std::string metrics_json;
  std::string cost_json;
  std::string cost_text;
  std::string prom_text;
  for (auto _ : state) {
    rep_ms.clear();
    for (size_t rep = 0; rep < reps; ++rep) {
      tpch::Data copy = context.data;
      auto catalog = tpch::MakeCatalog(std::move(copy));
      GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
      auto query = tpch::View1(*catalog, context.config.max_line_numbers);
      GPIVOT_CHECK(query.ok()) << query.status().ToString();
      ivm::ViewManager manager(std::move(*catalog));
      manager.set_exec_context(exec);
      Status defined =
          manager.DefineView("v", *query, ivm::RefreshStrategy::kUpdate);
      GPIVOT_CHECK(defined.ok()) << defined.ToString();
      auto workload =
          deletes ? tpch::MakeLineitemDeletes(manager.catalog(), kFraction,
                                              0xC0DE)
                  : tpch::MakeLineitemInsertsNewKeys(
                        manager.catalog(), context.config, kFraction, 0xC0DE);
      GPIVOT_CHECK(workload.ok()) << workload.status().ToString();
      delta_rows = 0;
      for (const auto& [name, delta] : *workload) {
        delta_rows += delta.inserts.num_rows() + delta.deletes.num_rows();
      }
      if (exec.metrics != nullptr) exec.metrics->Reset();

      // Timed: one maintenance epoch under the selected execution path.
      auto wall_begin = std::chrono::steady_clock::now();
      Status st = manager.ApplyUpdate(*workload);
      GPIVOT_CHECK(st.ok()) << st.ToString();
      auto wall_end = std::chrono::steady_clock::now();

      rep_ms.push_back(
          std::chrono::duration<double, std::milli>(wall_end - wall_begin)
              .count());
      if (exec.metrics != nullptr && exec.metrics->enabled()) {
        obs::MetricsSnapshot snapshot = exec.metrics->Snapshot();
        metrics_json = snapshot.ToJson(5);
        prom_text = snapshot.ToPrometheusText();
        auto cost = manager.ExplainAnalyze("v");
        if (cost.ok()) {
          cost_json = cost->ToJsonLine();
          cost_text = cost->ToText();
        }
      }
      view_rows = manager.GetView("v").value()->num_rows();
      if (verify) {
        auto recomputed = manager.RecomputeFromScratch("v");
        GPIVOT_CHECK(recomputed.ok()) << recomputed.status().ToString();
        GPIVOT_CHECK(
            recomputed->BagEquals(manager.GetView("v").value()->table()))
            << "verification failed for "
            << (vectorized ? "vectorized" : "row_shim");
      }
      if (audit) {
        Status audited = manager.Audit();
        GPIVOT_CHECK(audited.ok()) << audited.ToString();
      }
    }
    std::sort(rep_ms.begin(), rep_ms.end());
    state.SetIterationTime(rep_ms.front() / 1000.0);
  }
  double median = rep_ms[rep_ms.size() / 2];
  if (rep_ms.size() % 2 == 0) {
    median = (median + rep_ms[rep_ms.size() / 2 - 1]) / 2.0;
  }
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(delta_rows);
  std::string strategy = std::string(vectorized ? "vectorized" : "row_shim") +
                         (deletes ? "_delete" : "_insert");
  AddFigureRecord(kFigure,
                  FigureRecord{strategy, kFraction, rep_ms.front(), median,
                               reps, view_rows, delta_rows,
                               std::move(metrics_json), std::move(cost_json),
                               std::move(cost_text), std::move(prom_text),
                               /*extra=*/std::string()});
}

void RegisterAblation() {
  ValidateBenchEnvOnce();
  for (bool deletes : {false, true}) {
    for (bool vectorized : {false, true}) {
      std::string name = std::string(kFigure) + "/" +
                         (vectorized ? "vectorized" : "row_shim") +
                         (deletes ? "_delete" : "_insert");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [vectorized, deletes](benchmark::State& state) {
            RunAblation(state, vectorized, deletes);
          })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace gpivot::bench

int main(int argc, char** argv) {
  gpivot::bench::RegisterAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
