// Fig. 38: maintenance of View 2 under insertions (mixed update-causing and
// new-key batches). The combined SELECT/GPIVOT rules (Fig. 29) restrict the
// recompute term to σ-relevant keys; the pushdown alternative propagates
// through the Eq. 7 self-join and pays for the extra join terms.
#include "bench_common.h"

int main(int argc, char** argv) {
  using gpivot::bench::RegisterFigure;
  using gpivot::bench::ViewId;
  using gpivot::bench::WorkloadKind;
  using gpivot::ivm::RefreshStrategy;
  RegisterFigure("Fig38/View2Insert", ViewId::kView2,
                 WorkloadKind::kInsertMixed,
                 {RefreshStrategy::kFullRecompute,
                  RefreshStrategy::kInsertDelete,
                  RefreshStrategy::kSelectPushdownUpdate,
                  RefreshStrategy::kCombinedSelect});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
