#ifndef GPIVOT_BENCH_BENCH_COMMON_H_
#define GPIVOT_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <vector>

#include "algebra/plan.h"
#include "ivm/maintenance.h"
#include "tpch/dbgen.h"
#include "util/thread_pool.h"

namespace gpivot::bench {

// The three experiment views of §7 (Figs. 32, 36, 39).
enum class ViewId { kView1, kView2, kView3 };

// The delta workloads on lineitem that form each figure's x-axis.
enum class WorkloadKind {
  kDelete,         // Fig. 33 / 37 / 40
  kInsertUpdates,  // Fig. 34 (inserts that only update view rows)
  kInsertNew,      // Fig. 35 (inserts that only insert view rows)
  kInsertMixed,    // Fig. 38 / 41
};

// Shared generated database. Scale factor comes from the environment
// variable GPIVOT_BENCH_SF (default 0.01 ≈ 1.5k customers / 15k orders /
// ~50k lineitems); seed from GPIVOT_BENCH_SEED.
struct BenchContext {
  tpch::Config config;
  tpch::Data data;
};
const BenchContext& SharedContext();

// Maintenance-executor concurrency for every timed epoch, from
// GPIVOT_BENCH_THREADS (default 1 = the sequential baseline).
ExecContext BenchExecContext();

// Registers one google-benchmark per (strategy, fraction): each run builds
// a fresh view under `strategy`, generates the workload delta at that
// fraction of lineitem, and times ViewManager::ApplyUpdate (propagate +
// apply + base-table advance). Set GPIVOT_BENCH_VERIFY=1 to additionally
// compare the refreshed view against full recomputation (unmeasured);
// GPIVOT_BENCH_AUDIT=1 runs the full consistency auditor
// (ViewManager::Audit — integrity check plus recompute comparison) after
// each epoch, also outside the timed region.
//
// Each (strategy, fraction) point runs GPIVOT_BENCH_REPS identical epochs
// (default 3; same data, same delta batch) and reports the min as the
// headline number.
//
// Besides the human-readable google-benchmark output, every run appends to
// a machine-readable BENCH_<figure>.json (written at process exit into
// GPIVOT_BENCH_JSON_DIR, default the working directory): one record per
// (strategy, fraction) with the min/median wall-clock refresh time and rows
// touched, so the perf trajectory is tracked across PRs instead of scraped
// from stdout. With GPIVOT_METRICS=1 each record additionally embeds the
// last rep's per-operator metrics snapshot and per-plan-node cost report,
// and two sidecar files land next to the JSON: COST_<figure>.txt (annotated
// operator trees) and METRICS_<figure>.prom (Prometheus text exposition).
// With GPIVOT_TRACE_DIR set a Chrome-trace TRACE_<figure>.json lands in
// that directory.
//
// The first registration validates the environment: unrecognized GPIVOT_*
// variables get a stderr warning (they are typos until proven otherwise),
// and an unwritable GPIVOT_TRACE_DIR or GPIVOT_EVENT_LOG aborts the process
// immediately rather than losing artifacts at exit.
void RegisterFigure(const char* figure_name, ViewId view, WorkloadKind kind,
                    const std::vector<ivm::RefreshStrategy>& strategies);

// Delta fractions of the lineitem table (the paper sweeps 1%–10%).
const std::vector<double>& Fractions();

}  // namespace gpivot::bench

#endif  // GPIVOT_BENCH_BENCH_COMMON_H_
