#ifndef GPIVOT_BENCH_BENCH_COMMON_H_
#define GPIVOT_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "ivm/maintenance.h"
#include "tpch/dbgen.h"
#include "util/thread_pool.h"

namespace gpivot::bench {

// The three experiment views of §7 (Figs. 32, 36, 39).
enum class ViewId { kView1, kView2, kView3 };

// The delta workloads on lineitem that form each figure's x-axis.
enum class WorkloadKind {
  kDelete,         // Fig. 33 / 37 / 40
  kInsertUpdates,  // Fig. 34 (inserts that only update view rows)
  kInsertNew,      // Fig. 35 (inserts that only insert view rows)
  kInsertMixed,    // Fig. 38 / 41
};

// Shared generated database. Scale factor comes from the environment
// variable GPIVOT_BENCH_SF (default 0.01 ≈ 1.5k customers / 15k orders /
// ~50k lineitems); seed from GPIVOT_BENCH_SEED.
struct BenchContext {
  tpch::Config config;
  tpch::Data data;
};
const BenchContext& SharedContext();

// Maintenance-executor concurrency for every timed epoch, from
// GPIVOT_BENCH_THREADS (default 1 = the sequential baseline).
ExecContext BenchExecContext();

// Registers one google-benchmark per (strategy, fraction): each run builds
// a fresh view under `strategy`, generates the workload delta at that
// fraction of lineitem, and times ViewManager::ApplyUpdate (propagate +
// apply + base-table advance). Set GPIVOT_BENCH_VERIFY=1 to additionally
// compare the refreshed view against full recomputation (unmeasured);
// GPIVOT_BENCH_AUDIT=1 runs the full consistency auditor
// (ViewManager::Audit — integrity check plus recompute comparison) after
// each epoch, also outside the timed region.
//
// Each (strategy, fraction) point runs GPIVOT_BENCH_REPS identical epochs
// (default 3; same data, same delta batch) and reports the min as the
// headline number.
//
// Besides the human-readable google-benchmark output, every run appends to
// a machine-readable BENCH_<figure>.json (written at process exit into
// GPIVOT_BENCH_JSON_DIR, default the working directory): one record per
// (strategy, fraction) with the min/median wall-clock refresh time and rows
// touched, so the perf trajectory is tracked across PRs instead of scraped
// from stdout. With GPIVOT_METRICS=1 each record additionally embeds the
// last rep's per-operator metrics snapshot and per-plan-node cost report,
// and two sidecar files land next to the JSON: COST_<figure>.txt (annotated
// operator trees) and METRICS_<figure>.prom (Prometheus text exposition).
// With GPIVOT_TRACE_DIR set a Chrome-trace TRACE_<figure>.json lands in
// that directory.
//
// The first registration validates the environment: unrecognized GPIVOT_*
// variables get a stderr warning (they are typos until proven otherwise),
// and an unwritable GPIVOT_TRACE_DIR or GPIVOT_EVENT_LOG aborts the process
// immediately rather than losing artifacts at exit.
void RegisterFigure(const char* figure_name, ViewId view, WorkloadKind kind,
                    const std::vector<ivm::RefreshStrategy>& strategies);

// Delta fractions of the lineitem table (the paper sweeps 1%–10%).
const std::vector<double>& Fractions();

// Strict integer env parsing shared by every GPIVOT_BENCH_* integer knob:
// unset/empty yields `fallback`; anything that does not consume the whole
// value as a non-negative decimal integer ("4x", "-1", "3.5") prints the
// offending variable and exits 2 — the same fail-fast path as an
// unwritable trace dir, because a silently mis-parsed knob publishes wrong
// numbers.
uint64_t BenchEnvUint64(const char* name, uint64_t fallback);

// Strict double env parsing (GPIVOT_BENCH_ZIPF_THETA): unset/empty yields
// `fallback`; anything that does not consume the whole value as a finite
// non-negative decimal number prints the offending variable and exits 2,
// for the same reason as BenchEnvUint64.
double BenchEnvDouble(const char* name, double fallback);

// Identical-epoch repetitions per measured point (GPIVOT_BENCH_REPS,
// default 3; 0 is clamped to 1).
size_t BenchReps();

// Runs the GPIVOT_* environment validation (unknown-var warnings, sink
// writability, exit 2 on unusable sinks) exactly once per process. Every
// figure registration path must call it.
void ValidateBenchEnvOnce();

// One measured record of a figure sweep, as it lands in
// BENCH_<figure>.json. RunRefresh-based figures fill this internally;
// custom figures (the micro-batch pipeline bench) build it themselves and
// hand it to AddFigureRecord.
struct FigureRecord {
  std::string strategy;
  double fraction = 0;
  double wall_ms = 0;         // min across reps
  double wall_ms_median = 0;  // median across reps
  size_t reps = 0;
  size_t view_rows = 0;
  size_t delta_rows = 0;
  std::string metrics_json;  // last rep's snapshot; empty when disabled
  std::string cost_json;     // last rep's per-node cost report (JSON line)
  std::string cost_text;     // same report, annotated-tree rendering
  std::string prom_text;     // last rep's Prometheus exposition
  // Extra figure-specific JSON fields rendered verbatim into the record
  // (e.g. `"qps": 1234.5, "p99_ms": 0.8`). Must be valid JSON key/value
  // pairs without the surrounding braces; bench_diff ignores keys it does
  // not know, so custom figures can publish their own measures here.
  std::string extra;
};

// Appends one record to `figure`'s BENCH_<figure>.json (written at process
// exit, see RegisterFigure).
void AddFigureRecord(const std::string& figure, FigureRecord record);

}  // namespace gpivot::bench

#endif  // GPIVOT_BENCH_BENCH_COMMON_H_
