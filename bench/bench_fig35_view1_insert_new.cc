// Fig. 35: maintenance of View 1 under inserts that cause only view
// *insertions* (first lines for previously line-less orders). This is the
// most favourable case for the insert/delete rules — no re-insertion churn
// — yet the update rules still win because they never re-access
// GPIVOT(lineitem) (§7.2.1).
#include "bench_common.h"

int main(int argc, char** argv) {
  using gpivot::bench::RegisterFigure;
  using gpivot::bench::ViewId;
  using gpivot::bench::WorkloadKind;
  using gpivot::ivm::RefreshStrategy;
  RegisterFigure("Fig35/View1InsertNew", ViewId::kView1,
                 WorkloadKind::kInsertNew,
                 {RefreshStrategy::kFullRecompute,
                  RefreshStrategy::kInsertDelete, RefreshStrategy::kUpdate});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
