// Ablation: execution strategies for the GPIVOT operator itself (the
// paper's §8/§9 "optimization and execution of GPIVOT in RDBMS" angle).
// Compares
//   * Hash      — the library's single-pass hash implementation,
//   * Reference — the literal Eq. 3 composition (p selections + p-1 full
//                 outer joins), i.e. what a non-native engine would run,
//   * Parallel  — the §4.3 local/global split at 2 and 8 partitions,
// over the TPC-H lineitem pivot while the number of output combos grows.
#include <benchmark/benchmark.h>

#include "core/gpivot.h"
#include "core/parallel.h"
#include "tpch/dbgen.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::bench {
namespace {

const Table& Lineitem() {
  static const Table* const kTable = [] {
    tpch::Config config;
    config.scale_factor = 0.02;
    config.max_initial_lines = 7;
    return new Table(tpch::Generate(config).lineitem);
  }();
  return *kTable;
}

PivotSpec SpecWithCombos(int num_combos) {
  PivotSpec spec;
  spec.pivot_by = {"linenumber"};
  spec.pivot_on = {"quantity", "extendedprice"};
  for (int l = 1; l <= num_combos; ++l) {
    spec.combos.push_back({Value::Int(l)});
  }
  return spec;
}

void BM_Hash(benchmark::State& state) {
  PivotSpec spec = SpecWithCombos(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = GPivot(Lineitem(), spec);
    GPIVOT_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.counters["rows_out"] =
      static_cast<double>(GPivot(Lineitem(), spec)->num_rows());
}

void BM_Reference(benchmark::State& state) {
  PivotSpec spec = SpecWithCombos(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = GPivotReference(Lineitem(), spec);
    GPIVOT_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->num_rows());
  }
}

void BM_Parallel(benchmark::State& state) {
  PivotSpec spec = SpecWithCombos(static_cast<int>(state.range(0)));
  size_t partitions = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto result = GPivotParallel(Lineitem(), spec, partitions);
    GPIVOT_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->num_rows());
  }
}

}  // namespace
}  // namespace gpivot::bench

BENCHMARK(gpivot::bench::BM_Hash)
    ->Arg(2)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(gpivot::bench::BM_Reference)
    ->Arg(2)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(gpivot::bench::BM_Parallel)
    ->Args({7, 2})->Args({7, 8})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
