// Fig. 41: maintenance of the aggregate crosstab View 3 under insertions
// (mixed batch). Same comparison as Fig. 40; the combined Fig. 27 rules
// aggregate only the delta rows.
#include "bench_common.h"

int main(int argc, char** argv) {
  using gpivot::bench::RegisterFigure;
  using gpivot::bench::ViewId;
  using gpivot::bench::WorkloadKind;
  using gpivot::ivm::RefreshStrategy;
  RegisterFigure("Fig41/View3Insert", ViewId::kView3,
                 WorkloadKind::kInsertMixed,
                 {RefreshStrategy::kFullRecompute, RefreshStrategy::kUpdate,
                  RefreshStrategy::kCombinedGroupBy});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
