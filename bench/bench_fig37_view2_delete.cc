// Fig. 37: maintenance of View 2 (σ over a pivoted cell, Fig. 36) under
// deletions. Compares full recomputation, insert/delete rules, the σ-
// pushdown alternative (Eq. 7 self-join, then Fig. 23), and the combined
// SELECT/GPIVOT update rules (Fig. 29). Expected: Combined < Pushdown <
// InsertDelete < FullRecompute.
#include "bench_common.h"

int main(int argc, char** argv) {
  using gpivot::bench::RegisterFigure;
  using gpivot::bench::ViewId;
  using gpivot::bench::WorkloadKind;
  using gpivot::ivm::RefreshStrategy;
  RegisterFigure("Fig37/View2Delete", ViewId::kView2, WorkloadKind::kDelete,
                 {RefreshStrategy::kFullRecompute,
                  RefreshStrategy::kInsertDelete,
                  RefreshStrategy::kSelectPushdownUpdate,
                  RefreshStrategy::kCombinedSelect});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
