// Fig. 34: maintenance of View 1 under inserts that cause only view
// *updates* (new line numbers for orders already in the view). The update
// rules avoid the delete-then-reinsert churn entirely.
#include "bench_common.h"

int main(int argc, char** argv) {
  using gpivot::bench::RegisterFigure;
  using gpivot::bench::ViewId;
  using gpivot::bench::WorkloadKind;
  using gpivot::ivm::RefreshStrategy;
  RegisterFigure("Fig34/View1InsertUpdates", ViewId::kView1,
                 WorkloadKind::kInsertUpdates,
                 {RefreshStrategy::kFullRecompute,
                  RefreshStrategy::kInsertDelete, RefreshStrategy::kUpdate});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
