// Skewed-churn figure (no paper counterpart): hot-key churn batches drawn
// from a Zipf(theta) popularity distribution over lineitem rows, ingested
// through the DeltaBatcher and flushed as one epoch, under two maintenance
// configurations:
//
//   uniform_chunking    — one shard, heavy/light classifier off: the
//                         pre-sharding commit path with blind row chunking.
//   heavy_light_sharded — GPIVOT_SHARDS-way sharded stage/commit (default
//                         4) with the frequency-based heavy-key classifier
//                         on (GPIVOT_HEAVY_KEY_THRESHOLD, default 4).
//
// Each configuration runs against both a uniform workload (theta = 0) and
// a skewed one (theta = GPIVOT_BENCH_ZIPF_THETA, default 1.0). The point
// of the figure: under skew a handful of hot keys dominate the delta, so
// weight-aware shard assignment plus per-key accumulators beat uniform
// chunking, while at theta = 0 the two configurations should be within
// noise of each other. The JSON records carry theta in delta_fraction and
// the configuration knobs in `extra`, and both configurations' refreshed
// views are verified identical under GPIVOT_BENCH_VERIFY=1.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ivm/batcher.h"
#include "ivm/view_manager.h"
#include "obs/metrics.h"
#include "tpch/views.h"
#include "util/check.h"
#include "util/string_util.h"

namespace gpivot::bench {
namespace {

constexpr const char* kFigure = "SkewHeavyLight";
// Churn volume: 24 batches, each touching 2% of lineitem. Small enough for
// the CI smoke loop, deep enough that hot keys repeat many times within
// one pending window at theta = 1 — repeated touches are what the
// classifier converts into O(1) in-place folds, while the uniform bag
// appends a dead entry pair per superseded version.
constexpr size_t kNumBatches = 24;
constexpr double kBatchFraction = 0.02;

struct SkewConfig {
  const char* name;
  size_t num_shards;
  size_t heavy_key_threshold;
};

double ZipfTheta() {
  // Default 1.5: a hot-head regime where a handful of keys dominate the
  // churn — the workload the heavy/light classifier exists for. The
  // theta = 0 control always runs alongside, so the figure shows the
  // classifier's uniform-workload overhead next to its skewed-workload win.
  static const double kTheta =
      BenchEnvDouble("GPIVOT_BENCH_ZIPF_THETA", 1.5);
  return kTheta;
}

std::vector<SkewConfig> Configs() {
  // The sharded configuration honors the env knobs when set (a smoke run
  // can sweep them) and falls back to 4-way / threshold-4 otherwise.
  size_t shards = static_cast<size_t>(BenchEnvUint64("GPIVOT_SHARDS", 0));
  size_t threshold =
      static_cast<size_t>(BenchEnvUint64("GPIVOT_HEAVY_KEY_THRESHOLD", 0));
  if (shards <= 1) shards = 4;
  if (threshold == 0) threshold = 4;
  return {{"uniform_chunking", 1, 0},
          {"heavy_light_sharded", shards, threshold}};
}

void RunSkew(benchmark::State& state, const SkewConfig& config, double theta) {
  const BenchContext& context = SharedContext();
  const ExecContext exec = BenchExecContext();
  const bool verify = std::getenv("GPIVOT_BENCH_VERIFY") != nullptr;
  const bool audit = std::getenv("GPIVOT_BENCH_AUDIT") != nullptr;
  const size_t reps = BenchReps();
  size_t view_rows = 0;
  size_t delta_rows = 0;
  uint64_t heavy_classified = 0;
  uint64_t heavy_spills = 0;
  uint64_t net_rows_flushed = 0;
  std::vector<double> rep_ms;
  std::string metrics_json;
  std::string cost_json;
  std::string cost_text;
  std::string prom_text;
  for (auto _ : state) {
    rep_ms.clear();
    for (size_t rep = 0; rep < reps; ++rep) {
      tpch::Data copy = context.data;
      auto catalog = tpch::MakeCatalog(std::move(copy));
      GPIVOT_CHECK(catalog.ok()) << catalog.status().ToString();
      auto query = tpch::View1(*catalog, context.config.max_line_numbers);
      GPIVOT_CHECK(query.ok()) << query.status().ToString();
      ivm::ViewManager manager(std::move(*catalog));
      manager.set_exec_context(exec);
      ivm::ShardingOptions sharding;
      sharding.num_shards = config.num_shards;
      manager.set_sharding(sharding);
      Status defined =
          manager.DefineView("v", *query, ivm::RefreshStrategy::kUpdate);
      GPIVOT_CHECK(defined.ok()) << defined.ToString();
      size_t rows_per_batch = static_cast<size_t>(
          kBatchFraction *
          static_cast<double>(
              (*manager.catalog().GetTable("lineitem"))->num_rows()));
      auto batches = tpch::MakeLineitemZipfChurn(
          manager.catalog(), kNumBatches, rows_per_batch, theta, 0xBEEF);
      GPIVOT_CHECK(batches.ok()) << batches.status().ToString();
      delta_rows = 0;
      for (const ivm::SourceDeltas& batch : *batches) {
        for (const auto& [name, delta] : batch) {
          delta_rows += delta.inserts.num_rows() + delta.deletes.num_rows();
        }
      }
      if (exec.metrics != nullptr) exec.metrics->Reset();

      // Timed: the whole ingest pipeline — kNumBatches folds through the
      // heavy/light classifier plus the single sharded flush epoch.
      ivm::BatcherOptions options;
      options.heavy_key_threshold = config.heavy_key_threshold;
      auto wall_begin = std::chrono::steady_clock::now();
      ivm::DeltaBatcher batcher(&manager, options);
      for (const ivm::SourceDeltas& batch : *batches) {
        Status st = batcher.Ingest(batch);
        GPIVOT_CHECK(st.ok()) << st.ToString();
      }
      Status st = batcher.Flush();
      GPIVOT_CHECK(st.ok()) << st.ToString();
      auto wall_end = std::chrono::steady_clock::now();

      rep_ms.push_back(
          std::chrono::duration<double, std::milli>(wall_end - wall_begin)
              .count());
      heavy_classified = batcher.stats().heavy_keys_classified;
      heavy_spills = batcher.stats().heavy_spills;
      net_rows_flushed = batcher.stats().net_rows_flushed;
      if (exec.metrics != nullptr && exec.metrics->enabled()) {
        obs::MetricsSnapshot snapshot = exec.metrics->Snapshot();
        metrics_json = snapshot.ToJson(5);
        prom_text = snapshot.ToPrometheusText();
        auto cost = manager.ExplainAnalyze("v");
        if (cost.ok()) {
          cost_json = cost->ToJsonLine();
          cost_text = cost->ToText();
        }
      }
      view_rows = manager.GetView("v").value()->num_rows();
      if (verify) {
        auto recomputed = manager.RecomputeFromScratch("v");
        GPIVOT_CHECK(recomputed.ok()) << recomputed.status().ToString();
        GPIVOT_CHECK(
            recomputed->BagEquals(manager.GetView("v").value()->table()))
            << "verification failed for " << config.name;
      }
      if (audit) {
        Status audited = manager.Audit();
        GPIVOT_CHECK(audited.ok()) << audited.ToString();
      }
    }
    std::sort(rep_ms.begin(), rep_ms.end());
    state.SetIterationTime(rep_ms.front() / 1000.0);
  }
  double median = rep_ms[rep_ms.size() / 2];
  if (rep_ms.size() % 2 == 0) {
    median = (median + rep_ms[rep_ms.size() / 2 - 1]) / 2.0;
  }
  state.counters["view_rows"] = static_cast<double>(view_rows);
  state.counters["delta_rows"] = static_cast<double>(delta_rows);
  state.counters["heavy_keys"] = static_cast<double>(heavy_classified);
  char theta_str[32];
  std::snprintf(theta_str, sizeof(theta_str), "%.4f", theta);
  std::string extra = StrCat(
      "\"theta\": ", theta_str, ", ",
      "\"config_shards\": ", config.num_shards, ", ",
      "\"heavy_key_threshold\": ", config.heavy_key_threshold, ", ",
      "\"heavy_keys_classified\": ", heavy_classified, ", ",
      "\"heavy_spills\": ", heavy_spills, ", ",
      "\"net_rows_flushed\": ", net_rows_flushed);
  AddFigureRecord(kFigure,
                  FigureRecord{config.name, theta, rep_ms.front(), median,
                               reps, view_rows, delta_rows,
                               std::move(metrics_json), std::move(cost_json),
                               std::move(cost_text), std::move(prom_text),
                               std::move(extra)});
}

void RegisterSkew() {
  ValidateBenchEnvOnce();
  std::vector<double> thetas = {0.0};
  if (ZipfTheta() > 0.0) thetas.push_back(ZipfTheta());
  for (double theta : thetas) {
    for (const SkewConfig& config : Configs()) {
      std::string name = StrCat(kFigure, "/", config.name, "/theta:",
                                static_cast<int>(theta * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, theta](benchmark::State& state) {
            RunSkew(state, config, theta);
          })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace gpivot::bench

int main(int argc, char** argv) {
  gpivot::bench::RegisterSkew();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
