// ThreadPool / ParallelFor edge cases promised by the executor contract:
// degenerate thread counts run inline on the caller, nested invocations on
// pool workers never re-enter the pool, and pool-level metrics account for
// every submitted task. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

TEST(ThreadPoolEdgeTest, ZeroAndOneThreadRunInlineInOrder) {
  for (size_t threads : {size_t{0}, size_t{1}}) {
    std::thread::id caller = std::this_thread::get_id();
    std::vector<size_t> visited;
    ParallelFor(ExecContext{threads, 1}, 50, [&](size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), caller)
          << "num_threads=" << threads << " left the calling thread";
      visited.push_back(i);  // safe: inline execution is sequential
    });
    ASSERT_EQ(visited.size(), 50u) << "num_threads=" << threads;
    for (size_t i = 0; i < visited.size(); ++i) EXPECT_EQ(visited[i], i);
  }
}

TEST(ThreadPoolEdgeTest, EmptyRangeCallsNothing) {
  std::atomic<size_t> calls{0};
  ParallelFor(ExecContext{4, 1}, 0,
              [&](size_t) { calls.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolEdgeTest, NestedParallelForOnWorkerRunsInline) {
  // The inner loop's body must run on the same thread as the outer body
  // that spawned it — pool workers never wait on the pool (deadlock), so
  // nested calls fall back to inline.
  std::atomic<size_t> total{0};
  std::atomic<size_t> escaped{0};
  ParallelFor(ExecContext{4, 1}, 8, [&](size_t) {
    std::thread::id outer_thread = std::this_thread::get_id();
    bool on_worker = ThreadPool::OnWorkerThread();
    ParallelFor(ExecContext{4, 1}, 8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
      if (on_worker && std::this_thread::get_id() != outer_thread) {
        escaped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  });
  EXPECT_EQ(total.load(), 64u);
  EXPECT_EQ(escaped.load(), 0u)
      << "inner iterations ran off the worker that started them";
}

TEST(ThreadPoolEdgeTest, ConcurrentRegistryWritesFromPoolSumExactly) {
  // Exercises the metrics shards from genuinely concurrent pool workers
  // (TSan verifies no data race; the assertion verifies no lost update).
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  const size_t n = 20000;
  ParallelFor(ExecContext{7, 1}, n, [&](size_t i) {
    registry.AddCounter("c");
    if (i % 2 == 0) registry.RecordLatency("h", 0.001);
  });
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c"), n);
  EXPECT_EQ(snapshot.histograms.at("h").count, n / 2);
}

TEST(ThreadPoolEdgeTest, PoolMetricsCountTasksAndStripes) {
  // Pool-level accounting lands in the global registry (it is scheduling-
  // dependent, so it must stay out of deterministic ExecContext registries).
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  global.Reset();
  global.set_enabled(true);
  ParallelFor(ExecContext{4, 1}, 1000, [](size_t) {});
  ParallelFor(ExecContext{1, 1}, 10, [](size_t) {});  // inline path
  global.set_enabled(false);
  obs::MetricsSnapshot snapshot = global.Snapshot();
  global.Reset();
  EXPECT_EQ(snapshot.counters.at("thread_pool.parallel_for.calls"), 2u);
  EXPECT_EQ(snapshot.counters.at("thread_pool.parallel_for.inline_calls"), 1u);
  // 4 stripes; the caller runs stripe 0, so 3 tasks hit the pool queue.
  EXPECT_EQ(snapshot.counters.at("thread_pool.parallel_for.stripes"), 4u);
  EXPECT_EQ(snapshot.counters.at("thread_pool.tasks_submitted"), 3u);
  EXPECT_EQ(snapshot.histograms.at("thread_pool.queue_wait_ms").count, 3u);
}

TEST(ThreadPoolEdgeTest, StripesClampToRangeSize) {
  // More threads than indices: every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(ExecContext{16, 1}, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace gpivot
