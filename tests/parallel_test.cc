// Tests for the §4.3 parallel GPIVOT split (local pivot + global merge).
#include "core/parallel.h"

#include <gtest/gtest.h>

#include "core/gpivot.h"
#include "test_util.h"
#include "util/string_util.h"

namespace gpivot {
namespace {

using testing::BagEqual;
using testing::I;
using testing::MakeTable;
using testing::RandomVerticalSpec;
using testing::RandomVerticalTable;
using testing::S;

TEST(PartitionTest, RoundRobinCoversAllRows) {
  Table t = MakeTable({{"x", DataType::kInt64}},
                      {{I(1)}, {I(2)}, {I(3)}, {I(4)}, {I(5)}});
  std::vector<Table> parts = PartitionRows(t, 3);
  ASSERT_EQ(parts.size(), 3u);
  size_t total = 0;
  for (const Table& p : parts) total += p.num_rows();
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(parts[0].num_rows(), 2u);
  EXPECT_EQ(parts[2].num_rows(), 1u);
}

struct ParallelCase {
  size_t num_partitions;
  size_t num_dims;
  size_t num_measures;
};

class GPivotParallelTest : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(GPivotParallelTest, MatchesSequentialPivot) {
  const ParallelCase& param = GetParam();
  Rng rng(4300 + param.num_partitions * 7 + param.num_dims);
  for (int trial = 0; trial < 4; ++trial) {
    RandomVerticalSpec vspec;
    vspec.num_dims = param.num_dims;
    vspec.num_measures = param.num_measures;
    vspec.null_fraction = 0.1;
    Table input = RandomVerticalTable(vspec, &rng);

    PivotSpec spec;
    for (size_t d = 0; d < param.num_dims; ++d) {
      spec.pivot_by.push_back(StrCat("a", d + 1));
    }
    for (size_t b = 0; b < param.num_measures; ++b) {
      spec.pivot_on.push_back(StrCat("b", b + 1));
    }
    std::vector<std::vector<Value>> dims(param.num_dims,
                                         {S("v0"), S("v1"), S("v2")});
    spec.combos = PivotSpec::CrossProduct(dims);

    ASSERT_OK_AND_ASSIGN(Table sequential, GPivot(input, spec));
    ASSERT_OK_AND_ASSIGN(Table parallel,
                         GPivotParallel(input, spec, param.num_partitions));
    EXPECT_TRUE(BagEqual(sequential, parallel)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GPivotParallelTest,
    ::testing::Values(ParallelCase{1, 1, 1}, ParallelCase{2, 1, 2},
                      ParallelCase{3, 2, 1}, ParallelCase{4, 2, 2},
                      ParallelCase{7, 1, 1}, ParallelCase{16, 2, 2}));

TEST(GPivotParallelTest, MorePartitionsThanRows) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"a", DataType::kString},
                       {"b", DataType::kInt64}},
                      {{I(1), S("x"), I(10)}});
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}};
  ASSERT_OK_AND_ASSIGN(Table result, GPivotParallel(t, spec, 8));
  EXPECT_EQ(result.num_rows(), 1u);
}

TEST(MergeTest, DetectsDuplicateGroupAcrossPartitions) {
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}};
  Schema schema({{"k", DataType::kInt64}, {"x**b", DataType::kInt64}});
  Table p1 = MakeTable(schema.columns(), {{I(1), I(10)}});
  Table p2 = MakeTable(schema.columns(), {{I(1), I(20)}});
  auto merged = MergePivotedPartials({p1, p2}, spec, schema);
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsConstraintViolation());
}

TEST(MergeTest, DisjointGroupsCombine) {
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}, {S("y")}};
  Schema schema({{"k", DataType::kInt64},
                 {"x**b", DataType::kInt64},
                 {"y**b", DataType::kInt64}});
  Table p1 = MakeTable(schema.columns(), {{I(1), I(10), Value::Null()}});
  Table p2 = MakeTable(schema.columns(), {{I(1), Value::Null(), I(20)}});
  ASSERT_OK_AND_ASSIGN(Table merged,
                       MergePivotedPartials({p1, p2}, spec, schema));
  Table expected = MakeTable(schema.columns(), {{I(1), I(10), I(20)}});
  EXPECT_TRUE(BagEqual(expected, merged));
}

}  // namespace
}  // namespace gpivot
