// JSON plumbing for observability artifacts: JsonQuote escaping, the strict
// ParseJson/IsValidJson pair, and a well-formedness sweep over every JSON
// artifact kind the repo emits — metrics snapshots, Chrome traces, cost
// reports, epoch records, and the committed BENCH_*.json results.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "algebra/explain.h"
#include "ivm/view_manager.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"

namespace gpivot {
namespace {

using obs::IsValidJson;
using obs::JsonQuote;
using obs::JsonValue;
using obs::ParseJson;

TEST(JsonQuoteTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  // Bare control bytes must become \u00XX escapes, not raw bytes.
  EXPECT_EQ(JsonQuote(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(JsonQuote(std::string("\x1f", 1)), "\"\\u001f\"");
}

TEST(JsonQuoteTest, PassesMultiByteUtf8Through) {
  // GPIVOT^{...} labels and the paper's §-references contain multi-byte
  // UTF-8; those bytes are not control characters and pass through intact.
  std::string s = "Δ∇ §7 é";
  std::string quoted = JsonQuote(s);
  EXPECT_EQ(quoted, "\"" + s + "\"");
  auto parsed = ParseJson(quoted);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string_value, s);
}

TEST(ParseJsonTest, ScalarsAndNesting) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->bool_value, true);
  EXPECT_EQ(ParseJson("-12.5e2")->number_value, -1250.0);
  auto doc = ParseJson(R"({"a": [1, {"b": "c"}], "d": null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_EQ(a->array[0].number_value, 1.0);
  EXPECT_EQ(a->array[1].Find("b")->string_value, "c");
  EXPECT_TRUE(doc->Find("d")->is_null());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(ParseJsonTest, DecodesEscapesIncludingSurrogatePairs) {
  auto doc = ParseJson(R"("a\u00e9b\ud83d\ude00c\\n")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_value, "aéb\xF0\x9F\x98\x80"
                               "c\\n");
}

TEST(ParseJsonTest, RejectsMalformedInputWithDiagnostics) {
  std::string error;
  EXPECT_FALSE(ParseJson("", &error).has_value());
  EXPECT_FALSE(ParseJson("{\"a\": 1,}", &error).has_value());
  EXPECT_FALSE(ParseJson("[1, 2] trailing", &error).has_value());
  EXPECT_NE(error.find("byte"), std::string::npos) << error;
  // Duplicate keys are rejected: our writers never emit them, so one in an
  // artifact means a writer bug.
  EXPECT_FALSE(ParseJson(R"({"a": 1, "a": 2})").has_value());
  // Unbounded nesting must not overflow the stack.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).has_value());
  EXPECT_TRUE(ParseJson("[[[[1]]]]").has_value());
}

TEST(ParseJsonTest, AgreesWithIsValidJson) {
  for (const char* doc :
       {"{}", "[]", "3", "\"x\"", R"({"k": [true, false, null]})", "{",
        "nul", "[1 2]", "\"\\q\"", "01"}) {
    EXPECT_EQ(ParseJson(doc).has_value(), IsValidJson(doc)) << doc;
  }
}

// --- Artifact sweep: everything the repo writes parses back. -------------

TEST(ArtifactJsonTest, MetricsSnapshotJson) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("exec.join.calls", 3);
  registry.RecordLatency("ivm.stage_ms", 2.5);
  registry.RecordLatency("ivm.stage_ms", 40.0);
  std::string json = registry.Snapshot().ToJson();
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_NE(doc->Find("counters"), nullptr);
}

TEST(ArtifactJsonTest, ChromeTraceJson) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedSpan outer(&tracer, "epoch \"quoted\"");
    obs::ScopedSpan inner(&tracer, "stage:v\n1");
    inner.AddAttr("rows", uint64_t{7});
  }
  std::string json = tracer.ToChromeTraceJson();
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 2u);
}

TEST(ArtifactJsonTest, CostReportAndEpochRecordJson) {
  tpch::Config config;
  config.scale_factor = 0.002;
  config.seed = 7;
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  ivm::ViewManager manager(std::move(catalog));
  manager.set_event_log(nullptr);
  ASSERT_OK(manager.DefineView("v2", v2,
                               ivm::RefreshStrategy::kCombinedSelect));
  ivm::SourceDeltas deltas =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.05, 42).value();
  ASSERT_OK(manager.ApplyUpdate(deltas));

  CostReport cost = manager.ExplainAnalyze("v2").value();
  auto cost_doc = ParseJson(cost.ToJson());
  ASSERT_TRUE(cost_doc.has_value()) << cost.ToJson();
  EXPECT_EQ(cost_doc->Find("strategy")->string_value, "CombinedSelect");
  EXPECT_FALSE(cost_doc->Find("plan")->array.empty());
  EXPECT_TRUE(ParseJson(cost.ToJsonLine()).has_value());

  ASSERT_TRUE(manager.LastEpochReport().has_value());
  std::string line = manager.LastEpochReport()->ToJsonLine();
  auto epoch_doc = ParseJson(line);
  ASSERT_TRUE(epoch_doc.has_value()) << line;
  EXPECT_EQ(epoch_doc->Find("outcome")->string_value, "committed");
  EXPECT_EQ(epoch_doc->Find("views")->array.size(), 1u);
}

TEST(ArtifactJsonTest, CommittedBenchResultsParse) {
  namespace fs = std::filesystem;
  fs::path results = fs::path(GPIVOT_SOURCE_DIR) / "bench" / "results";
  ASSERT_TRUE(fs::is_directory(results)) << results;
  size_t checked = 0;
  for (const fs::directory_entry& dir : fs::directory_iterator(results)) {
    if (!dir.is_directory()) continue;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() != ".json") continue;
      std::ifstream in(entry.path());
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::string error;
      auto doc = ParseJson(buffer.str(), &error);
      ASSERT_TRUE(doc.has_value()) << entry.path() << ": " << error;
      EXPECT_NE(doc->Find("figure"), nullptr) << entry.path();
      EXPECT_TRUE(doc->Find("results")->is_array()) << entry.path();
      ++checked;
    }
  }
  EXPECT_GE(checked, 14u);  // baseline + parallel, 7 figures each
}

}  // namespace
}  // namespace gpivot
