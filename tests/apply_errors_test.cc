// Error-path tests for the apply-phase rules: corrupted or inconsistent
// deltas must be detected, not silently applied. Also home of the epoch
// robustness suite: fault-injection sweeps asserting that a failure at any
// point of an update epoch rolls the manager back byte-identically, and
// that malformed delta batches are rejected before any mutation.
#include <gtest/gtest.h>

#include "ivm/apply.h"
#include "ivm/view_manager.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/fault_injection.h"

namespace gpivot {
namespace {

using ivm::AggregateLayout;
using ivm::Delta;
using ivm::MaterializedView;
using ivm::PivotLayout;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::S;

// View schema: (k | x**sum x**cnt | y**sum y**cnt), aggregate layout with
// the COUNT(*) as measure 1.
struct AggFixture {
  PivotLayout layout;
  AggregateLayout aggs;
  MaterializedView view;

  static AggFixture Make() {
    PivotSpec spec;
    spec.pivot_by = {"a"};
    spec.pivot_on = {"sum", "cnt"};
    spec.combos = {{S("x")}, {S("y")}};
    Schema schema({{"k", DataType::kInt64},
                   {"x**sum", DataType::kInt64},
                   {"x**cnt", DataType::kInt64},
                   {"y**sum", DataType::kInt64},
                   {"y**cnt", DataType::kInt64}});
    Table initial = MakeTable(schema.columns(),
                              {{I(1), I(100), I(2), N(), N()},
                               {I(2), I(50), I(1), I(70), I(3)}});
    EXPECT_TRUE(initial.SetKey({"k"}).ok());
    AggregateLayout aggs;
    aggs.measure_funcs = {AggFunc::kSum, AggFunc::kCountStar};
    aggs.count_measure = 1;
    return AggFixture{PivotLayout::FromSchema(schema, spec).value(),
                      std::move(aggs),
                      MaterializedView::Create(std::move(initial)).value()};
  }

  Delta EmptyDelta() const { return Delta::Empty(view.table().schema()); }
};

TEST(ApplyPivotGroupByTest, DeleteForAbsentGroupFails) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(99), I(10), I(1), N(), N()});  // unknown key
  EXPECT_TRUE(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta)
                  .IsConstraintViolation());
}

TEST(ApplyPivotGroupByTest, DeleteFromEmptySubgroupFails) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  // Key 1 has no 'y' subgroup, yet the delta claims to delete from it.
  delta.deletes.AddRow({I(1), N(), N(), I(10), I(1)});
  EXPECT_TRUE(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta)
                  .IsConstraintViolation());
}

TEST(ApplyPivotGroupByTest, NegativeCountFails) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  // Key 1's 'x' subgroup has count 2; deleting 5 rows is inconsistent.
  delta.deletes.AddRow({I(1), I(500), I(5), N(), N()});
  EXPECT_TRUE(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta)
                  .IsConstraintViolation());
}

TEST(ApplyPivotGroupByTest, CountReachingZeroEmptiesSubgroup) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(2), I(50), I(1), N(), N()});
  ASSERT_OK(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta));
  auto position = f.view.Lookup({I(2), N(), N(), N(), N()},
                                f.view.key_indices());
  ASSERT_TRUE(position.has_value());
  const Row& row = f.view.RowAt(*position);
  EXPECT_TRUE(row[1].is_null());  // x**sum gone with its count
  EXPECT_TRUE(row[2].is_null());
  EXPECT_EQ(row[3], I(70));       // y subgroup untouched
}

TEST(ApplyPivotGroupByTest, AllSubgroupsEmptyDeletesRow) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(1), I(100), I(2), N(), N()});
  ASSERT_OK(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta));
  EXPECT_EQ(f.view.num_rows(), 1u);
  EXPECT_FALSE(f.view.Lookup({I(1), N(), N(), N(), N()},
                             f.view.key_indices())
                   .has_value());
}

TEST(ApplyPivotGroupByTest, MinMaxMeasuresRejected) {
  AggFixture f = AggFixture::Make();
  AggregateLayout bad = f.aggs;
  bad.measure_funcs[0] = AggFunc::kMin;
  EXPECT_TRUE(
      ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, bad, f.EmptyDelta())
          .IsInvalidArgument());
}

TEST(ApplyPivotGroupByTest, InsertIntoExistingSubgroupAdds) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.inserts.AddRow({I(1), I(40), I(1), I(7), I(1)});
  ASSERT_OK(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta));
  auto position = f.view.Lookup({I(1), N(), N(), N(), N()},
                                f.view.key_indices());
  const Row& row = f.view.RowAt(position.value());
  EXPECT_EQ(row[1], I(140));  // 100 + 40
  EXPECT_EQ(row[2], I(3));    // 2 + 1
  EXPECT_EQ(row[3], I(7));    // previously-⊥ subgroup filled in
  EXPECT_EQ(row[4], I(1));
}

TEST(ApplyPivotUpdateTest, DeleteForAbsentKeyIsIgnored) {
  // Fig. 23's delete case skips keys not in the view (they may have been
  // filtered out upstream); this must not error.
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(99), I(1), I(1), N(), N()});
  ASSERT_OK(ivm::ApplyPivotUpdate(&f.view, f.layout, delta));
  EXPECT_EQ(f.view.num_rows(), 2u);
}

TEST(ApplyPivotUpdateTest, InsertOverwritesPresentGroups) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.inserts.AddRow({I(2), I(999), I(9), N(), N()});
  ASSERT_OK(ivm::ApplyPivotUpdate(&f.view, f.layout, delta));
  auto position = f.view.Lookup({I(2), N(), N(), N(), N()},
                                f.view.key_indices());
  const Row& row = f.view.RowAt(position.value());
  EXPECT_EQ(row[1], I(999));  // overwritten, not summed (non-agg semantics)
  EXPECT_EQ(row[3], I(70));   // absent delta group untouched
}

// ---------------------------------------------------------------------------
// Epoch robustness: fault sweeps and pre-mutation validation.
// ---------------------------------------------------------------------------

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;

tpch::Config SmallConfig() {
  tpch::Config config;
  config.scale_factor = 0.001;
  config.seed = 11;
  return config;
}

// Builds a manager over the paper's three experiment views, each on a
// different incremental strategy, so one epoch exercises the plain-update,
// combined-select, and combined-group-by commit paths together.
ViewManager MakeThreeViewManager(const tpch::Config& config) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v1 = tpch::View1(catalog, config.max_line_numbers).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  PlanPtr v3 =
      tpch::View3(catalog, config.first_year, config.num_years).value();
  ViewManager manager(std::move(catalog));
  EXPECT_TRUE(manager.DefineView("v1", v1, RefreshStrategy::kUpdate).ok());
  EXPECT_TRUE(
      manager.DefineView("v2", v2, RefreshStrategy::kCombinedSelect).ok());
  EXPECT_TRUE(
      manager.DefineView("v3", v3, RefreshStrategy::kCombinedGroupBy).ok());
  return manager;
}

// Exact (position-sensitive) snapshot of every base table and view: rollback
// must restore not just the same bag of rows but the same physical order.
struct ManagerSnapshot {
  std::vector<std::pair<std::string, std::vector<Row>>> tables;
  std::vector<std::pair<std::string, std::vector<Row>>> views;
};

ManagerSnapshot Snapshot(const ViewManager& manager) {
  ManagerSnapshot snap;
  for (const std::string& name : manager.catalog().TableNames()) {
    snap.tables.emplace_back(name,
                             manager.catalog().GetTable(name).value()->rows());
  }
  for (const char* name : {"v1", "v2", "v3"}) {
    auto view = manager.GetView(name);
    if (view.ok()) snap.views.emplace_back(name, (*view)->table().rows());
  }
  return snap;
}

void ExpectIdentical(const ManagerSnapshot& before,
                     const ViewManager& manager) {
  ManagerSnapshot after = Snapshot(manager);
  ASSERT_EQ(before.tables.size(), after.tables.size());
  for (size_t i = 0; i < before.tables.size(); ++i) {
    EXPECT_EQ(before.tables[i].first, after.tables[i].first);
    EXPECT_EQ(before.tables[i].second, after.tables[i].second)
        << "base table '" << before.tables[i].first
        << "' not byte-identical after rollback";
  }
  ASSERT_EQ(before.views.size(), after.views.size());
  for (size_t i = 0; i < before.views.size(); ++i) {
    EXPECT_EQ(before.views[i].second, after.views[i].second)
        << "view '" << before.views[i].first
        << "' not byte-identical after rollback";
  }
}

enum class EpochWorkload { kDelete, kInsertUpdates, kInsertNew };

SourceDeltas MakeWorkload(const ViewManager& manager,
                          const tpch::Config& config, EpochWorkload kind) {
  switch (kind) {
    case EpochWorkload::kDelete:
      return tpch::MakeLineitemDeletes(manager.catalog(), 0.05, 42).value();
    case EpochWorkload::kInsertUpdates:
      return tpch::MakeLineitemInsertsUpdatesOnly(manager.catalog(), config,
                                                  0.05, 42)
          .value();
    case EpochWorkload::kInsertNew:
      return tpch::MakeLineitemInsertsNewKeys(manager.catalog(), config, 0.05,
                                              42)
          .value();
  }
  return {};
}

class EpochFaultSweepTest : public ::testing::TestWithParam<EpochWorkload> {};

// The sweep: arm the injector to fail at point n = 1, 2, ... of a full
// three-view ApplyUpdate epoch. Every injected failure must surface as the
// injected Status and leave the manager byte-identical to its pre-epoch
// state (verified directly and by the consistency auditor). The sweep
// self-terminates when n exceeds the number of points the epoch traverses —
// i.e. when ApplyUpdate succeeds.
TEST_P(EpochFaultSweepTest, AnyFailureRollsBackExactly) {
  tpch::Config config = SmallConfig();
  ViewManager manager = MakeThreeViewManager(config);
  SourceDeltas deltas = MakeWorkload(manager, config, GetParam());
  ManagerSnapshot before = Snapshot(manager);

  FaultInjector& injector = FaultInjector::Global();
  size_t points_hit = 0;
  for (size_t n = 1;; ++n) {
    injector.Arm(n);
    Status st = manager.ApplyUpdate(deltas);
    bool fired = injector.fired();
    std::string site = injector.fired_site();
    injector.Disarm();
    if (st.ok()) {
      // n exceeded the number of injection points: the epoch committed.
      EXPECT_FALSE(fired);
      break;
    }
    ASSERT_TRUE(fired) << "non-injected failure at n=" << n << ": "
                       << st.ToString();
    EXPECT_TRUE(st.IsInternal()) << st.ToString();
    EXPECT_NE(st.message().find("injected fault"), std::string::npos)
        << st.ToString();
    points_hit = n;
    ExpectIdentical(before, manager);
    Status audit = manager.Audit();
    ASSERT_TRUE(audit.ok()) << "audit failed after rollback at point #" << n
                            << " (" << site << "): " << audit.ToString();
  }
  // One stage + three view commits + one base advance + epoch end, at least.
  EXPECT_GE(points_hit, 6u) << "fault sweep covered suspiciously few points";
  // The final (uninjected) iteration committed: views must now be consistent
  // with the advanced base, and the state must have actually changed.
  ASSERT_OK(manager.Audit());
  EXPECT_NE(Snapshot(manager).tables, before.tables);
}

INSTANTIATE_TEST_SUITE_P(Workloads, EpochFaultSweepTest,
                         ::testing::Values(EpochWorkload::kDelete,
                                           EpochWorkload::kInsertUpdates,
                                           EpochWorkload::kInsertNew),
                         [](const ::testing::TestParamInfo<EpochWorkload>& i) {
                           switch (i.param) {
                             case EpochWorkload::kDelete:
                               return "Delete";
                             case EpochWorkload::kInsertUpdates:
                               return "InsertUpdates";
                             case EpochWorkload::kInsertNew:
                               return "InsertNew";
                           }
                           return "?";
                         });

class EpochValidationTest : public ::testing::Test {
 protected:
  EpochValidationTest()
      : config_(SmallConfig()), manager_(MakeThreeViewManager(config_)) {}

  tpch::Config config_;
  ViewManager manager_;
};

TEST_F(EpochValidationTest, UnknownTableRejectedBeforeMutation) {
  ManagerSnapshot before = Snapshot(manager_);
  SourceDeltas deltas;
  Table junk = MakeTable({{"x", DataType::kInt64}}, {{I(1)}});
  deltas["no_such_table"] = ivm::Delta{junk, Table(junk.schema())};
  Status st = manager_.ApplyUpdate(deltas);
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  EXPECT_NE(st.message().find("no_such_table"), std::string::npos);
  ExpectIdentical(before, manager_);
}

TEST_F(EpochValidationTest, ArityMismatchRejectedBeforeMutation) {
  ManagerSnapshot before = Snapshot(manager_);
  SourceDeltas deltas;
  Table narrow = MakeTable({{"x", DataType::kInt64}}, {{I(1)}});
  const Table& lineitem = *manager_.catalog().GetTable("lineitem").value();
  deltas["lineitem"] = ivm::Delta{narrow, Table(lineitem.schema())};
  Status st = manager_.ApplyUpdate(deltas);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  ExpectIdentical(before, manager_);
}

TEST_F(EpochValidationTest, DuplicateInsertKeysRejectedBeforeMutation) {
  ManagerSnapshot before = Snapshot(manager_);
  const Table& lineitem = *manager_.catalog().GetTable("lineitem").value();
  Table inserts(lineitem.schema());
  // The same (orderkey, linenumber) twice within one insert batch.
  inserts.AddRow(lineitem.rows()[0]);
  inserts.AddRow(lineitem.rows()[0]);
  SourceDeltas deltas;
  deltas["lineitem"] = ivm::Delta{std::move(inserts),
                                  Table(lineitem.schema())};
  Status st = manager_.ApplyUpdate(deltas);
  EXPECT_TRUE(st.IsConstraintViolation()) << st.ToString();
  EXPECT_NE(st.message().find("repeats key"), std::string::npos);
  ExpectIdentical(before, manager_);
}

TEST_F(EpochValidationTest, AdvanceBaseUnknownTableIsNotFound) {
  SourceDeltas deltas;
  Table junk = MakeTable({{"x", DataType::kInt64}}, {{I(1)}});
  deltas["ghost"] = ivm::Delta{junk, Table(junk.schema())};
  EXPECT_TRUE(manager_.AdvanceBase(deltas).IsNotFound());
}

TEST_F(EpochValidationTest, AuditDetectsStaleViews) {
  ASSERT_OK(manager_.Audit());
  // Mutate the base behind the manager's back: views are now stale relative
  // to a from-scratch recomputation, which the auditor must flag.
  Table* lineitem = manager_.mutable_catalog()->GetMutableTable("lineitem");
  std::vector<Row>& rows = lineitem->mutable_rows();
  rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(
                                              rows.size() / 2));
  Status st = manager_.Audit();
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  EXPECT_NE(st.message().find("diverges"), std::string::npos);
}

}  // namespace
}  // namespace gpivot
