// Error-path tests for the apply-phase rules: corrupted or inconsistent
// deltas must be detected, not silently applied.
#include <gtest/gtest.h>

#include "ivm/apply.h"
#include "test_util.h"

namespace gpivot {
namespace {

using ivm::AggregateLayout;
using ivm::Delta;
using ivm::MaterializedView;
using ivm::PivotLayout;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::S;

// View schema: (k | x**sum x**cnt | y**sum y**cnt), aggregate layout with
// the COUNT(*) as measure 1.
struct AggFixture {
  PivotLayout layout;
  AggregateLayout aggs;
  MaterializedView view;

  static AggFixture Make() {
    PivotSpec spec;
    spec.pivot_by = {"a"};
    spec.pivot_on = {"sum", "cnt"};
    spec.combos = {{S("x")}, {S("y")}};
    Schema schema({{"k", DataType::kInt64},
                   {"x**sum", DataType::kInt64},
                   {"x**cnt", DataType::kInt64},
                   {"y**sum", DataType::kInt64},
                   {"y**cnt", DataType::kInt64}});
    Table initial = MakeTable(schema.columns(),
                              {{I(1), I(100), I(2), N(), N()},
                               {I(2), I(50), I(1), I(70), I(3)}});
    EXPECT_TRUE(initial.SetKey({"k"}).ok());
    AggregateLayout aggs;
    aggs.measure_funcs = {AggFunc::kSum, AggFunc::kCountStar};
    aggs.count_measure = 1;
    return AggFixture{PivotLayout::FromSchema(schema, spec).value(),
                      std::move(aggs),
                      MaterializedView::Create(std::move(initial)).value()};
  }

  Delta EmptyDelta() const { return Delta::Empty(view.table().schema()); }
};

TEST(ApplyPivotGroupByTest, DeleteForAbsentGroupFails) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(99), I(10), I(1), N(), N()});  // unknown key
  EXPECT_TRUE(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta)
                  .IsConstraintViolation());
}

TEST(ApplyPivotGroupByTest, DeleteFromEmptySubgroupFails) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  // Key 1 has no 'y' subgroup, yet the delta claims to delete from it.
  delta.deletes.AddRow({I(1), N(), N(), I(10), I(1)});
  EXPECT_TRUE(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta)
                  .IsConstraintViolation());
}

TEST(ApplyPivotGroupByTest, NegativeCountFails) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  // Key 1's 'x' subgroup has count 2; deleting 5 rows is inconsistent.
  delta.deletes.AddRow({I(1), I(500), I(5), N(), N()});
  EXPECT_TRUE(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta)
                  .IsConstraintViolation());
}

TEST(ApplyPivotGroupByTest, CountReachingZeroEmptiesSubgroup) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(2), I(50), I(1), N(), N()});
  ASSERT_OK(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta));
  auto position = f.view.Lookup({I(2), N(), N(), N(), N()},
                                f.view.key_indices());
  ASSERT_TRUE(position.has_value());
  const Row& row = f.view.RowAt(*position);
  EXPECT_TRUE(row[1].is_null());  // x**sum gone with its count
  EXPECT_TRUE(row[2].is_null());
  EXPECT_EQ(row[3], I(70));       // y subgroup untouched
}

TEST(ApplyPivotGroupByTest, AllSubgroupsEmptyDeletesRow) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(1), I(100), I(2), N(), N()});
  ASSERT_OK(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta));
  EXPECT_EQ(f.view.num_rows(), 1u);
  EXPECT_FALSE(f.view.Lookup({I(1), N(), N(), N(), N()},
                             f.view.key_indices())
                   .has_value());
}

TEST(ApplyPivotGroupByTest, MinMaxMeasuresRejected) {
  AggFixture f = AggFixture::Make();
  AggregateLayout bad = f.aggs;
  bad.measure_funcs[0] = AggFunc::kMin;
  EXPECT_TRUE(
      ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, bad, f.EmptyDelta())
          .IsInvalidArgument());
}

TEST(ApplyPivotGroupByTest, InsertIntoExistingSubgroupAdds) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.inserts.AddRow({I(1), I(40), I(1), I(7), I(1)});
  ASSERT_OK(ivm::ApplyPivotGroupByUpdate(&f.view, f.layout, f.aggs, delta));
  auto position = f.view.Lookup({I(1), N(), N(), N(), N()},
                                f.view.key_indices());
  const Row& row = f.view.RowAt(position.value());
  EXPECT_EQ(row[1], I(140));  // 100 + 40
  EXPECT_EQ(row[2], I(3));    // 2 + 1
  EXPECT_EQ(row[3], I(7));    // previously-⊥ subgroup filled in
  EXPECT_EQ(row[4], I(1));
}

TEST(ApplyPivotUpdateTest, DeleteForAbsentKeyIsIgnored) {
  // Fig. 23's delete case skips keys not in the view (they may have been
  // filtered out upstream); this must not error.
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.deletes.AddRow({I(99), I(1), I(1), N(), N()});
  ASSERT_OK(ivm::ApplyPivotUpdate(&f.view, f.layout, delta));
  EXPECT_EQ(f.view.num_rows(), 2u);
}

TEST(ApplyPivotUpdateTest, InsertOverwritesPresentGroups) {
  AggFixture f = AggFixture::Make();
  Delta delta = f.EmptyDelta();
  delta.inserts.AddRow({I(2), I(999), I(9), N(), N()});
  ASSERT_OK(ivm::ApplyPivotUpdate(&f.view, f.layout, delta));
  auto position = f.view.Lookup({I(2), N(), N(), N(), N()},
                                f.view.key_indices());
  const Row& row = f.view.RowAt(position.value());
  EXPECT_EQ(row[1], I(999));  // overwritten, not summed (non-agg semantics)
  EXPECT_EQ(row[3], I(70));   // absent delta group untouched
}

}  // namespace
}  // namespace gpivot
