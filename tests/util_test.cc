// Unit tests for the util layer: Status/Result, strings, hashing, RNG.
#include <gtest/gtest.h>

#include "util/check.h"
#include "util/hash_util.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace gpivot {
namespace {

TEST(StatusTest, OkIsDefaultAndCheap) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.message(), "");
  EXPECT_EQ(ok.ToString(), "OK");
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad pivot");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad pivot");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad pivot");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::NotApplicable("x").IsNotApplicable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
}

TEST(StatusTest, CopyAndMove) {
  Status st = Status::NotFound("gone");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_TRUE(st.IsNotFound());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsNotFound());
  Status assigned;
  assigned = copy;
  EXPECT_EQ(assigned.message(), "gone");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  GPIVOT_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = ParsePositive(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 3);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_TRUE(Doubled(-4).status().IsInvalidArgument());
}

TEST(ResultTest, AccessingErrorAborts) {
  Result<int> bad = ParsePositive(-1);
  EXPECT_DEATH({ int x = *bad; (void)x; }, "Result::value on error");
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r{std::make_unique<int>(7)};
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Split("a**b**c", "**"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("abc", "**"), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", "**"), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("**", "**"), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::vector<std::string> parts = {"Sony", "TV", "Price"};
  EXPECT_EQ(Split(Join(parts, "**"), "**"), parts);
}

TEST(StringUtilTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("Sony**TV", "Sony"));
  EXPECT_FALSE(StartsWith("So", "Sony"));
}

TEST(HashUtilTest, CombineOrderSensitive) {
  size_t a = HashCombine(HashCombine(0, 1), 2);
  size_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    int64_t va = a.Int(-5, 5);
    EXPECT_EQ(va, b.Int(-5, 5));
    EXPECT_GE(va, -5);
    EXPECT_LE(va, 5);
  }
  EXPECT_EQ(a.Int(3, 3), 3);
}

TEST(RngTest, RealAndChanceBounds) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    double v = rng.Real(0.0, 1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, StringIsLowercase) {
  Rng rng(11);
  std::string s = rng.String(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(CheckTest, PassingCheckIsSilent) {
  GPIVOT_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST(CheckTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(GPIVOT_CHECK(false) << "extra context 123",
               "extra context 123");
}

}  // namespace
}  // namespace gpivot
