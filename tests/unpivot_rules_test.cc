// Property tests for the GUNPIVOT rewrite rules (§5.3 / §5.4, Eq. 13–18).
#include "rewrite/rules.h"

#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "core/gpivot.h"
#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace gpivot {
namespace {

using testing::BagEqualModuloColumnOrder;
using testing::I;
using testing::RandomVerticalSpec;
using testing::RandomVerticalTable;
using testing::S;

// Fixture providing a pivoted table "h" (built by pivoting a random
// vertical table, so its cells follow the naming protocol) and, for join
// rules, a small lookup table "t".
class UnpivotRuleTest : public ::testing::Test {
 protected:
  // Builds h = GPivot(random) with `num_dims` dims / `num_measures`
  // measures and registers it in the catalog. Returns the scan of h.
  PlanPtr FreshPivotedScan(size_t num_dims, size_t num_measures, Rng* rng,
                           double null_fraction = 0.1) {
    RandomVerticalSpec vspec;
    vspec.num_dims = num_dims;
    vspec.num_measures = num_measures;
    vspec.null_fraction = null_fraction;
    vspec.num_rows = 70;
    Table base = RandomVerticalTable(vspec, rng);

    spec_ = PivotSpec();
    for (size_t d = 0; d < num_dims; ++d) {
      spec_.pivot_by.push_back(StrCat("a", d + 1));
    }
    for (size_t b = 0; b < num_measures; ++b) {
      spec_.pivot_on.push_back(StrCat("b", b + 1));
    }
    std::vector<std::vector<Value>> dims(num_dims, {S("v0"), S("v1")});
    spec_.combos = PivotSpec::CrossProduct(dims);

    Table h = GPivot(base, spec_).value();
    catalog_ = Catalog();
    GPIVOT_CHECK(catalog_.AddTable("h", std::move(h)).ok()) << "AddTable h";
    return MakeScan(catalog_, "h").value();
  }

  UnpivotSpec Inverse() const { return UnpivotSpec::InverseOf(spec_); }

  void AddLookupTable(Rng* rng) {
    Table t{Schema({{"K1", DataType::kInt64}, {"K2", DataType::kString}})};
    for (int i = 0; i < 400; ++i) {
      t.AddRow({I(rng->Int(0, 999)), S(StrCat("t", i % 5).c_str())});
    }
    GPIVOT_CHECK(catalog_.AddTable("t", std::move(t)).ok()) << "AddTable t";
  }

  void ExpectEquivalent(const PlanPtr& original, const PlanPtr& rewritten) {
    ASSERT_OK_AND_ASSIGN(Table expected, Evaluate(original, catalog_));
    ASSERT_OK_AND_ASSIGN(Table actual, Evaluate(rewritten, catalog_));
    EXPECT_TRUE(BagEqualModuloColumnOrder(expected, actual))
        << "original:\n" << PlanToString(original) << "rewritten:\n"
        << PlanToString(rewritten);
  }

  Catalog catalog_;
  PivotSpec spec_;
};

// ---- Eq. 13 / §5.3.1: push σ below GUNPIVOT ---------------------------------

TEST_F(UnpivotRuleTest, SelectOnKeyColumnsCommutes) {
  Rng rng(1301);
  PlanPtr h = FreshPivotedScan(1, 2, &rng);
  PlanPtr unpivot = MakeGUnpivot(h, Inverse());
  PlanPtr select = MakeSelect(unpivot, Le(Col("k"), Lit(int64_t{6})));
  ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                       rewrite::PushSelectBelowUnpivot(select));
  EXPECT_EQ(pushed->kind(), PlanKind::kGUnpivot);
  ExpectEquivalent(select, pushed);
}

TEST_F(UnpivotRuleTest, Eq13NameColumnConditionDropsGroups) {
  Rng rng(1302);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng);
    PlanPtr unpivot = MakeGUnpivot(h, Inverse());
    PlanPtr select = MakeSelect(unpivot, Eq(Col("a1"), Lit("v0")));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushSelectBelowUnpivot(select));
    EXPECT_EQ(pushed->kind(), PlanKind::kGUnpivot);
    // Only one group survives.
    EXPECT_EQ(static_cast<const GUnpivotNode*>(pushed.get())
                  ->spec()
                  .groups.size(),
              1u);
    ExpectEquivalent(select, pushed);
  }
}

TEST_F(UnpivotRuleTest, Eq13ValueColumnConditionBecomesCase) {
  Rng rng(1303);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng);
    PlanPtr unpivot = MakeGUnpivot(h, Inverse());
    PlanPtr select = MakeSelect(unpivot, Gt(Col("b1"), Lit(int64_t{400})));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushSelectBelowUnpivot(select));
    ExpectEquivalent(select, pushed);
  }
}

TEST_F(UnpivotRuleTest, Eq13CombinedNameAndValueCondition) {
  Rng rng(1304);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng);
    PlanPtr unpivot = MakeGUnpivot(h, Inverse());
    PlanPtr select =
        MakeSelect(unpivot, And(Eq(Col("a1"), Lit("v1")),
                                Lt(Col("b2"), Lit(int64_t{600}))));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushSelectBelowUnpivot(select));
    ExpectEquivalent(select, pushed);
  }
}

TEST_F(UnpivotRuleTest, Eq13UnsatisfiableNameConditionIsEmpty) {
  Rng rng(1305);
  PlanPtr h = FreshPivotedScan(1, 1, &rng);
  PlanPtr unpivot = MakeGUnpivot(h, Inverse());
  PlanPtr select = MakeSelect(unpivot, Eq(Col("a1"), Lit("nope")));
  ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                       rewrite::PushSelectBelowUnpivot(select));
  ASSERT_OK_AND_ASSIGN(Table result, Evaluate(pushed, catalog_));
  EXPECT_EQ(result.num_rows(), 0u);
}

// ---- §5.3.2: push π below GUNPIVOT ------------------------------------------

TEST_F(UnpivotRuleTest, ProjectDropValueColumn) {
  Rng rng(1321);
  for (int trial = 0; trial < 5; ++trial) {
    // No NULL measures: dropping a value column changes all-⊥ groups
    // otherwise (the paper glosses over this; see rule comment).
    PlanPtr h = FreshPivotedScan(1, 2, &rng, /*null_fraction=*/0.0);
    PlanPtr unpivot = MakeGUnpivot(h, Inverse());
    PlanPtr project = MakeDrop(unpivot, {"b2"});
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushProjectBelowUnpivot(project));
    EXPECT_EQ(pushed->kind(), PlanKind::kGUnpivot);
    ExpectEquivalent(project, pushed);
  }
}

TEST_F(UnpivotRuleTest, ProjectDropKeyColumnCommutes) {
  Rng rng(1322);
  // Add a droppable non-key column by unpivoting a table with extra keys —
  // here we drop nothing structural: unpivot then drop 'k' is disallowed
  // only if k is needed; the rule itself just pushes the drop below.
  PlanPtr h = FreshPivotedScan(1, 1, &rng);
  PlanPtr unpivot = MakeGUnpivot(h, Inverse());
  PlanPtr project = MakeDrop(unpivot, {"k"});
  ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                       rewrite::PushProjectBelowUnpivot(project));
  ExpectEquivalent(project, pushed);
}

TEST_F(UnpivotRuleTest, ProjectDropNameColumnNotApplicable) {
  Rng rng(1323);
  PlanPtr h = FreshPivotedScan(1, 1, &rng);
  PlanPtr unpivot = MakeGUnpivot(h, Inverse());
  PlanPtr project = MakeDrop(unpivot, {"a1"});
  EXPECT_TRUE(
      rewrite::PushProjectBelowUnpivot(project).status().IsNotApplicable());
}

// ---- Eq. 14: GUNPIVOT through a value-column join ---------------------------

TEST_F(UnpivotRuleTest, Eq14JoinOnValueColumn) {
  Rng rng(1401);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng);
    AddLookupTable(&rng);
    ASSERT_OK_AND_ASSIGN(PlanPtr t, MakeScan(catalog_, "t"));
    PlanPtr unpivot = MakeGUnpivot(h, Inverse());
    PlanPtr join = MakeJoin(unpivot, t, {"b1"}, {"K1"});
    ASSERT_OK_AND_ASSIGN(PlanPtr pulled,
                         rewrite::PullUnpivotThroughJoin(join));
    ExpectEquivalent(join, pulled);
  }
}

TEST_F(UnpivotRuleTest, Eq14NameColumnJoinNotApplicable) {
  Rng rng(1402);
  PlanPtr h = FreshPivotedScan(1, 1, &rng);
  AddLookupTable(&rng);
  ASSERT_OK_AND_ASSIGN(PlanPtr t, MakeScan(catalog_, "t"));
  PlanPtr unpivot = MakeGUnpivot(h, Inverse());
  PlanPtr join = MakeJoin(unpivot, t, {"a1"}, {"K2"});
  EXPECT_TRUE(
      rewrite::PullUnpivotThroughJoin(join).status().IsNotApplicable());
}

// ---- Eq. 15: GROUPBY over GUNPIVOT (horizontal aggregation) -----------------

TEST_F(UnpivotRuleTest, Eq15SumByKey) {
  Rng rng(1501);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng, /*null_fraction=*/0.0);
    PlanPtr unpivot = MakeGUnpivot(h, Inverse());
    PlanPtr groupby = MakeGroupBy(unpivot, {"k"},
                                  {AggSpec::Sum("b1", "total1"),
                                   AggSpec::Sum("b2", "total2")});
    ASSERT_OK_AND_ASSIGN(PlanPtr pulled,
                         rewrite::PullUnpivotThroughGroupBy(groupby));
    // Two-level aggregation: F(GUNPIVOT(F(H))).
    EXPECT_EQ(pulled->kind(), PlanKind::kGroupBy);
    ExpectEquivalent(groupby, pulled);
  }
}

TEST_F(UnpivotRuleTest, Eq15GroupingByNameColumn) {
  Rng rng(1502);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng, /*null_fraction=*/0.0);
    PlanPtr unpivot = MakeGUnpivot(h, Inverse());
    PlanPtr groupby = MakeGroupBy(
        unpivot, {"a1"},
        {AggSpec::Sum("b1", "total"), AggSpec::Count("b2", "cnt2")});
    ASSERT_OK_AND_ASSIGN(PlanPtr pulled,
                         rewrite::PullUnpivotThroughGroupBy(groupby));
    ExpectEquivalent(groupby, pulled);
  }
}

TEST_F(UnpivotRuleTest, Eq15RejectsGroupingOnValueColumn) {
  Rng rng(1503);
  PlanPtr h = FreshPivotedScan(1, 1, &rng);
  PlanPtr unpivot = MakeGUnpivot(h, Inverse());
  PlanPtr groupby =
      MakeGroupBy(unpivot, {"b1"}, {AggSpec::Count("b1", "cnt")});
  EXPECT_TRUE(
      rewrite::PullUnpivotThroughGroupBy(groupby).status().IsNotApplicable());
}

// ---- Eq. 16: push GUNPIVOT below σ over cells --------------------------------

TEST_F(UnpivotRuleTest, Eq16SelectOnCells) {
  Rng rng(1601);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng);
    std::string cell = spec_.OutputColumnName(0, 0);
    PlanPtr select = MakeSelect(h, Gt(Col(cell), Lit(int64_t{350})));
    PlanPtr unpivot = MakeGUnpivot(select, Inverse());
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushUnpivotBelowSelect(unpivot));
    EXPECT_EQ(pushed->kind(), PlanKind::kJoin);
    ExpectEquivalent(unpivot, pushed);
  }
}

TEST_F(UnpivotRuleTest, Eq16TwoCellComparison) {
  Rng rng(1602);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng);
    PlanPtr select =
        MakeSelect(h, Lt(Col(spec_.OutputColumnName(0, 0)),
                         Col(spec_.OutputColumnName(1, 0))));
    PlanPtr unpivot = MakeGUnpivot(select, Inverse());
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushUnpivotBelowSelect(unpivot));
    ExpectEquivalent(unpivot, pushed);
  }
}

// ---- Eq. 17: push GUNPIVOT below a cell join ---------------------------------

TEST_F(UnpivotRuleTest, Eq17JoinOnCell) {
  Rng rng(1701);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr h = FreshPivotedScan(1, 2, &rng);
    AddLookupTable(&rng);
    ASSERT_OK_AND_ASSIGN(PlanPtr t, MakeScan(catalog_, "t"));
    PlanPtr join = MakeJoin(h, t, {spec_.OutputColumnName(0, 0)}, {"K1"});
    PlanPtr unpivot = MakeGUnpivot(join, Inverse());
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushUnpivotBelowJoin(unpivot));
    ExpectEquivalent(unpivot, pushed);
  }
}

// ---- Eq. 18: push GUNPIVOT below GROUPBY -------------------------------------

TEST_F(UnpivotRuleTest, Eq18UnpivotAggregateOutputs) {
  Rng rng(1801);
  for (int trial = 0; trial < 5; ++trial) {
    // Base: (k, a1, b1, b2) keyed (k, a1); group by k computing f(b1), f(b2)
    // as FB1 / FB2, then unpivot those outputs (Fig. 21 shape).
    RandomVerticalSpec vspec;
    vspec.num_dims = 1;
    vspec.num_measures = 2;
    vspec.null_fraction = 0.0;
    Table base = RandomVerticalTable(vspec, &rng);
    catalog_ = Catalog();
    ASSERT_OK(catalog_.AddTable("base", std::move(base)));
    ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "base"));
    PlanPtr groupby = MakeGroupBy(
        scan, {"k"},
        {AggSpec::Sum("b1", "FB1"), AggSpec::Sum("b2", "FB2")});
    UnpivotSpec unspec;
    unspec.name_columns = {"which"};
    unspec.value_columns = {"total"};
    unspec.groups = {{{S("one")}, {"FB1"}}, {{S("two")}, {"FB2"}}};
    PlanPtr unpivot = MakeGUnpivot(groupby, unspec);
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushUnpivotBelowGroupBy(unpivot));
    EXPECT_EQ(pushed->kind(), PlanKind::kGroupBy);
    ExpectEquivalent(unpivot, pushed);
  }
}

TEST_F(UnpivotRuleTest, Eq18RejectsUnpivotingGroupColumns) {
  Rng rng(1802);
  RandomVerticalSpec vspec;
  vspec.num_dims = 1;
  vspec.num_measures = 1;
  Table base = RandomVerticalTable(vspec, &rng);
  catalog_ = Catalog();
  ASSERT_OK(catalog_.AddTable("base", std::move(base)));
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "base"));
  PlanPtr groupby =
      MakeGroupBy(scan, {"k"}, {AggSpec::Sum("b1", "FB1")});
  UnpivotSpec unspec;
  unspec.name_columns = {"which"};
  unspec.value_columns = {"value"};
  unspec.groups = {{{S("key")}, {"k"}}, {{S("one")}, {"FB1"}}};
  PlanPtr unpivot = MakeGUnpivot(groupby, unspec);
  EXPECT_TRUE(
      rewrite::PushUnpivotBelowGroupBy(unpivot).status().IsNotApplicable());
}

}  // namespace
}  // namespace gpivot
