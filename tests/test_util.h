#ifndef GPIVOT_TESTS_TEST_UTIL_H_
#define GPIVOT_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relation/table.h"
#include "util/random.h"
#include "util/result.h"

namespace gpivot::testing {

// Shorthand literal constructors.
inline Value I(int64_t v) { return Value::Int(v); }
inline Value D(double v) { return Value::Real(v); }
inline Value S(const char* v) { return Value::Str(v); }
inline Value N() { return Value::Null(); }

// Builds a table from column specs and row literals.
Table MakeTable(std::vector<Column> columns, std::vector<Row> rows);

// gtest helper: asserts `result` is OK and yields its value.
#define ASSERT_OK(expr)                                                  \
  do {                                                                   \
    auto _st = (expr);                                                   \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                             \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                       \
  auto GPIVOT_TEST_CONCAT(_res_, __LINE__) = (expr);          \
  ASSERT_TRUE(GPIVOT_TEST_CONCAT(_res_, __LINE__).ok())       \
      << GPIVOT_TEST_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(GPIVOT_TEST_CONCAT(_res_, __LINE__)).value()

#define GPIVOT_TEST_CONCAT_INNER(a, b) a##b
#define GPIVOT_TEST_CONCAT(a, b) GPIVOT_TEST_CONCAT_INNER(a, b)

// Bag equality that tolerates column reordering and declared-type
// differences: both tables must expose the same column-name set; `actual`
// is projected into `expected`'s column order and the row multisets
// compared. Used to verify rewrite rules, which may permute columns.
::testing::AssertionResult BagEqualModuloColumnOrder(const Table& expected,
                                                     const Table& actual);

// Strict bag equality (same schema incl. order, same row multiset) with a
// readable diff.
::testing::AssertionResult BagEqual(const Table& expected,
                                    const Table& actual);

// Random keyed "vertical" table for pivot property tests: columns
// (k INT, a1.. STR dims, b1.. measures), with (k, dims) forming a key. Dims
// draw from small alphabets so combos repeat; measures may be NULL with
// probability `null_fraction`.
struct RandomVerticalSpec {
  size_t num_rows = 60;
  int num_keys = 12;          // distinct k values
  size_t num_dims = 1;        // a1..am
  int dim_alphabet = 3;       // values "v0".."v{n-1}" per dim
  size_t num_measures = 2;    // b1..bn
  double null_fraction = 0.1;
};
Table RandomVerticalTable(const RandomVerticalSpec& spec, Rng* rng);

}  // namespace gpivot::testing

#endif  // GPIVOT_TESTS_TEST_UTIL_H_
