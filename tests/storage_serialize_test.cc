// Properties of the durability layer's canonical binary serialization:
// decode(encode(x)) reproduces x exactly (including NaN payloads, -0.0,
// NULLs, empty tables, declared keys), re-encoding the decoded value is
// byte-identical (canonical form), and every single-bit corruption of a
// framed WAL entry or checkpoint file is caught by the CRC32C checksum —
// never by a crash or a silently wrong decode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "ivm/delta.h"
#include "storage/checkpoint.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "test_util.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace gpivot::storage {
namespace {

using gpivot::testing::I;
using gpivot::testing::MakeTable;
using gpivot::testing::N;
using gpivot::testing::S;

TEST(Crc32cTest, KnownVectors) {
  // The CRC-32C check value from RFC 3720 / the Castagnoli literature.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  // 32 zero bytes, another published vector.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, ChunkedEqualsWhole) {
  std::string data = "incremental maintenance of complex ROLAP views";
  uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t first = Crc32c(data.data(), split, 0);
    uint32_t chunked = Crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chunked, whole) << "split=" << split;
  }
}

Value RandomValue(Rng* rng) {
  switch (rng->Index(6)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Int(rng->Int(std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()));
    case 2:
      return Value::Real(rng->Real(-1e12, 1e12));
    case 3:
      // Specials that only survive bit-pattern encoding.
      switch (rng->Index(4)) {
        case 0:
          return Value::Real(-0.0);
        case 1:
          return Value::Real(std::numeric_limits<double>::quiet_NaN());
        case 2:
          return Value::Real(std::numeric_limits<double>::infinity());
        default:
          return Value::Real(std::numeric_limits<double>::denorm_min());
      }
    case 4:
      return Value::Str(rng->String(rng->Index(12)));
    default:
      return Value::Int(rng->Int(-5, 5));
  }
}

Table RandomTable(Rng* rng, bool keyed) {
  std::vector<Column> columns;
  size_t ncols = keyed ? 2 + rng->Index(3) : rng->Index(4);
  for (size_t c = 0; c < ncols; ++c) {
    DataType type = static_cast<DataType>(rng->Index(4));
    columns.push_back(Column{"c" + std::to_string(c), type});
  }
  Table table{Schema(std::move(columns))};
  size_t nrows = rng->Index(8);
  if (table.schema().num_columns() == 0) nrows = 0;
  int64_t next_key = 0;
  for (size_t r = 0; r < nrows; ++r) {
    Row row;
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      // Column 0 of keyed tables gets a unique int so SetKey succeeds.
      if (keyed && c == 0) {
        row.push_back(Value::Int(next_key++));
      } else {
        row.push_back(RandomValue(rng));
      }
    }
    table.AddRow(std::move(row));
  }
  if (keyed && table.schema().num_columns() > 0) {
    EXPECT_TRUE(table.SetKey({"c0"}).ok());
  }
  return table;
}

// Bit-exact value equality: NaN == NaN, and -0.0 != 0.0. Plain Value
// equality treats doubles numerically, which is wrong for this test.
bool BitExactEqual(const Value& a, const Value& b) {
  BinaryWriter wa, wb;
  EncodeValue(a, &wa);
  EncodeValue(b, &wb);
  return wa.buffer() == wb.buffer();
}

TEST(SerializeRoundTripTest, RandomTablesByteIdentical) {
  Rng rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    Table table = RandomTable(&rng, trial % 3 == 0);
    std::string encoded = EncodeTableToString(table);

    BinaryReader reader(encoded);
    auto decoded = DecodeTable(&reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(reader.exhausted());

    // Structure round-trips...
    ASSERT_EQ(decoded->num_rows(), table.num_rows());
    ASSERT_TRUE(decoded->schema() == table.schema());
    EXPECT_EQ(decoded->key(), table.key());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t c = 0; c < table.schema().num_columns(); ++c) {
        EXPECT_TRUE(
            BitExactEqual(table.rows()[r][c], decoded->rows()[r][c]))
            << "row " << r << " col " << c;
      }
    }
    // ...and the canonical form is a fixed point.
    EXPECT_EQ(EncodeTableToString(*decoded), encoded);
  }
}

TEST(SerializeRoundTripTest, SourceDeltasSortedAndByteIdentical) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    ivm::SourceDeltas deltas;
    size_t ntables = 1 + rng.Index(3);
    for (size_t t = 0; t < ntables; ++t) {
      Table inserts = RandomTable(&rng, false);
      // Δ and ∇ share the table's schema in real deltas; the codec does
      // not care, so random schemas exercise more shapes.
      Table deletes = RandomTable(&rng, false);
      deltas.emplace("t" + std::to_string(t),
                     ivm::Delta{std::move(inserts), std::move(deletes)});
    }
    BinaryWriter writer;
    EncodeSourceDeltas(deltas, &writer);
    std::string encoded = writer.Take();

    BinaryReader reader(encoded);
    auto decoded = DecodeSourceDeltas(&reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(reader.exhausted());
    ASSERT_EQ(decoded->size(), deltas.size());

    BinaryWriter rewriter;
    EncodeSourceDeltas(*decoded, &rewriter);
    EXPECT_EQ(rewriter.buffer(), encoded);
  }
}

TEST(SerializeRoundTripTest, EmptyShapes) {
  // Empty map.
  ivm::SourceDeltas empty;
  BinaryWriter writer;
  EncodeSourceDeltas(empty, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeSourceDeltas(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
  EXPECT_TRUE(reader.exhausted());

  // Zero-column, zero-row table.
  Table none{Schema({})};
  std::string encoded = EncodeTableToString(none);
  BinaryReader table_reader(encoded);
  auto table = DecodeTable(&table_reader);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->schema().num_columns(), 0u);
}

TEST(SerializeDecodeTest, MalformedInputsErrorNotAbort) {
  // Hostile length field: claims 2^32-1 rows in a few bytes.
  BinaryWriter writer;
  writer.PutU32(3);  // schema: 3 columns...
  std::string truncated = writer.Take();
  BinaryReader reader(truncated);
  EXPECT_FALSE(DecodeSchema(&reader).ok());

  BinaryWriter big;
  big.PutU32(0);                    // 0 columns
  big.PutU32(0);                    // 0 key columns
  big.PutU64(0xFFFFFFFFFFFFFFFFull);  // u64-max rows
  BinaryReader big_reader(big.buffer());
  EXPECT_FALSE(DecodeTable(&big_reader).ok());

  // Unknown value tag.
  BinaryWriter tag;
  tag.PutU8(9);
  BinaryReader tag_reader(tag.buffer());
  EXPECT_FALSE(DecodeValue(&tag_reader).ok());
}

ivm::SourceDeltas FixtureDeltas() {
  Table inserts = MakeTable({{"ID", DataType::kInt64},
                             {"Attribute", DataType::kString},
                             {"Value", DataType::kString}},
                            {{I(7), S("Manu"), S("Sony")},
                             {I(8), S("Type"), N()}});
  Table deletes = MakeTable({{"ID", DataType::kInt64},
                             {"Attribute", DataType::kString},
                             {"Value", DataType::kString}},
                            {{I(1), S("Manu"), S("JVC")}});
  ivm::SourceDeltas deltas;
  deltas.emplace("Items", ivm::Delta{std::move(inserts), std::move(deletes)});
  return deltas;
}

// Every single-bit flip anywhere in a WAL file must be *detected*: the
// reader reports the entry torn/corrupt (or, for flips inside the file
// header, refuses the file) — it never returns a successfully decoded
// entry different from the original.
TEST(CorruptionFuzzTest, EveryWalBitFlipCaught) {
  std::string dir = ::testing::TempDir() + "/wal_fuzz";
  std::string path = dir + "/wal.gwal";
  ASSERT_TRUE(EnsureDir(dir).ok());
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(
        writer->Append(1, "apply_update", FixtureDeltas()).ok());
  }
  auto pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  auto clean = ReadWal(path);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->entries.size(), 1u);
  ASSERT_EQ(clean->torn_bytes, 0u);
  const std::string clean_entry_bytes = [&] {
    BinaryWriter w;
    EncodeSourceDeltas(clean->entries[0].deltas, &w);
    return w.Take();
  }();

  for (size_t byte = 0; byte < pristine->size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = *pristine;
      corrupted[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupted[byte]) ^ (1u << bit));
      std::string mutant = dir + "/mutant.gwal";
      ASSERT_TRUE(AtomicWriteFile(mutant, corrupted).ok());
      auto read = ReadWal(mutant);
      if (byte < kWalHeaderSize) {
        EXPECT_FALSE(read.ok())
            << "header flip accepted at byte " << byte << " bit " << bit;
        continue;
      }
      ASSERT_TRUE(read.ok());
      // The flip is inside the (only) entry: the reader must reject it.
      EXPECT_EQ(read->entries.size(), 0u)
          << "flip at byte " << byte << " bit " << bit
          << " yielded a decoded entry";
      EXPECT_GT(read->torn_bytes, 0u);
      EXPECT_FALSE(read->tail_error.empty());
    }
  }
}

TEST(CorruptionFuzzTest, EveryCheckpointBitFlipCaught) {
  std::string dir = ::testing::TempDir() + "/ckpt_fuzz";
  ASSERT_TRUE(EnsureDir(dir).ok());
  std::string path = dir + "/" + CheckpointFileName(3);

  CheckpointContents contents;
  contents.epoch_seq = 3;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString}},
                          {{I(1), S("Manu")}, {I(2), S("Type")}});
  ASSERT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  contents.base_tables.emplace("Items", std::move(items));
  contents.view_tables.emplace(
      "v", std::make_shared<const Table>(
               MakeTable({{"ID", DataType::kInt64}}, {{I(1)}})));
  ASSERT_TRUE(WriteCheckpoint(path, contents).ok());
  auto pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  ASSERT_TRUE(ReadCheckpoint(path).ok());

  for (size_t byte = 0; byte < pristine->size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = *pristine;
      corrupted[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupted[byte]) ^ (1u << bit));
      std::string mutant = dir + "/mutant.gpck";
      ASSERT_TRUE(AtomicWriteFile(mutant, corrupted).ok());
      EXPECT_FALSE(ReadCheckpoint(mutant).ok())
          << "flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

}  // namespace
}  // namespace gpivot::storage
